"""StepStream assembly and online OLS during recording."""

import pytest

from repro.core.analyzer import TPUPointAnalyzer, ols_labels
from repro.core.profiler import ProfilerOptions, TPUPointProfiler
from repro.core.profiler.record import ProfileRecord, StepStats
from repro.core.profiler.streaming import StepStream
from repro.errors import ConfigurationError, ProfilerError
from repro.runtime.events import DeviceKind


def _record(index, step_ops):
    """step_ops: {step: [(name, duration), ...]}"""
    record = ProfileRecord(index=index, window_start_us=0.0, window_end_us=1.0)
    for number, ops in step_ops.items():
        step = StepStats(step=number)
        for name, duration in ops:
            step.observe(name, DeviceKind.TPU, duration)
        record.steps[number] = step
    return record


class TestStepStream:
    def test_withholds_newest_step(self):
        stream = StepStream()
        released = list(stream.submit(_record(0, {1: [("a", 1.0)], 2: [("a", 1.0)]})))
        assert [s.step for s in released] == [1]
        assert stream.pending_steps == 1

    def test_merges_split_steps(self):
        stream = StepStream()
        list(stream.submit(_record(0, {1: [("a", 1.0)]})))
        list(stream.submit(_record(1, {1: [("a", 2.0)]})))
        released = list(stream.submit(_record(2, {2: [("b", 1.0)]})))
        assert len(released) == 1
        assert released[0].operators[("a", "tpu")].total_duration_us == 3.0
        assert released[0].operators[("a", "tpu")].count == 2

    def test_flush_releases_pending(self):
        stream = StepStream()
        list(stream.submit(_record(0, {5: [("a", 1.0)]})))
        flushed = list(stream.flush())
        assert [s.step for s in flushed] == [5]
        assert stream.pending_steps == 0

    def test_rejects_revisited_steps(self):
        stream = StepStream()
        list(stream.submit(_record(0, {1: [("a", 1.0)], 2: [("a", 1.0)]})))
        with pytest.raises(ProfilerError):
            list(stream.submit(_record(1, {1: [("a", 1.0)]})))

    def test_releases_in_order(self):
        stream = StepStream()
        released = list(
            stream.submit(_record(0, {3: [("a", 1.0)], 1: [("a", 1.0)], 2: [("a", 1.0)]}))
        )
        assert [s.step for s in released] == [1, 2]

    def test_empty_record_is_noop(self):
        stream = StepStream()
        assert list(stream.submit(_record(0, {}))) == []

    def test_flush_releases_final_partial_step(self):
        # The newest step is withheld even when split across records;
        # flush() must release it with all partial views merged.
        stream = StepStream()
        list(stream.submit(_record(0, {1: [("a", 1.0)], 2: [("b", 2.0)]})))
        list(stream.submit(_record(1, {2: [("b", 3.0)]})))
        flushed = list(stream.flush())
        assert [s.step for s in flushed] == [2]
        assert flushed[0].operators[("b", "tpu")].total_duration_us == 5.0
        assert flushed[0].operators[("b", "tpu")].count == 2

    def test_flush_on_empty_stream_yields_nothing(self):
        stream = StepStream()
        assert list(stream.flush()) == []

    def test_revisit_after_flush_rejected(self):
        stream = StepStream()
        list(stream.submit(_record(0, {3: [("a", 1.0)]})))
        list(stream.flush())
        with pytest.raises(ProfilerError):
            list(stream.submit(_record(1, {3: [("a", 1.0)]})))

    def test_stream_continues_after_flush(self):
        stream = StepStream()
        list(stream.submit(_record(0, {1: [("a", 1.0)]})))
        list(stream.flush())
        released = list(stream.submit(_record(1, {2: [("a", 1.0)], 3: [("a", 1.0)]})))
        assert [s.step for s in released] == [2]
        assert stream.pending_steps == 1

    def test_empty_record_between_steps_preserves_state(self):
        stream = StepStream()
        list(stream.submit(_record(0, {1: [("a", 1.0)], 2: [("a", 1.0)]})))
        assert list(stream.submit(_record(1, {}))) == []
        released = list(stream.submit(_record(2, {3: [("a", 1.0)]})))
        assert [s.step for s in released] == [2]

    def test_gap_after_dropped_record_is_tolerated(self):
        # repro.serve may shed a whole record under queue overflow; the
        # assembler must treat the resulting step gap as lossy, not an
        # error.
        stream = StepStream()
        list(stream.submit(_record(0, {1: [("a", 1.0)], 2: [("a", 1.0)]})))
        # Record 1 (steps 3-4) was dropped; record 2 arrives next.
        released = list(stream.submit(_record(2, {5: [("a", 1.0)], 6: [("a", 1.0)]})))
        assert [s.step for s in released] == [2, 5]


class TestRecordHandOff:
    def test_hooks_fire_live_and_in_order(self, tiny_model, tiny_dataset):
        from repro.workloads.runner import attach_record_sink

        estimator = tiny_model.build_estimator(tiny_dataset)
        seen = []
        profiler = attach_record_sink(estimator, seen.append)
        estimator.train()
        during_run = len(seen)
        records = profiler.stop()
        assert during_run > 0  # hand-off happens while the run is in flight
        assert [r.index for r in seen] == sorted(r.index for r in seen)
        assert [r.index for r in seen] == [r.index for r in records]

    def test_run_workload_forwards_records(self):
        from repro.workloads.runner import run_workload
        from repro.workloads.spec import WorkloadSpec

        seen = []
        run = run_workload(WorkloadSpec("dcgan-mnist"), record_sink=seen.append)
        assert seen and run.summary.steps_executed > 0


class TestOnlinePhases:
    def _profiled(self, tiny_model, tiny_dataset, **options):
        estimator = tiny_model.build_estimator(tiny_dataset)
        profiler = TPUPointProfiler(
            estimator,
            ProfilerOptions(request_interval_ms=150.0, online_phases=True, **options),
        )
        profiler.start(analyzer=True)
        estimator.train()
        records = profiler.stop()
        return profiler, records

    def test_online_matches_offline_exactly(self, tiny_model, tiny_dataset):
        profiler, records = self._profiled(tiny_model, tiny_dataset)
        analyzer = TPUPointAnalyzer(records)
        offline = dict(
            zip(
                [s.step for s in analyzer.steps],
                ols_labels(analyzer.steps, 0.70).tolist(),
            )
        )
        assert profiler.online_phase_labels == offline

    def test_online_count_matches_offline(self, tiny_model, tiny_dataset):
        profiler, records = self._profiled(tiny_model, tiny_dataset)
        result = TPUPointAnalyzer(records).ols_phases(0.70)
        assert profiler.online_phase_count == result.num_phases

    def test_custom_threshold(self, tiny_model, tiny_dataset):
        profiler, records = self._profiled(
            tiny_model, tiny_dataset, online_phase_threshold=0.0
        )
        assert profiler.online_phase_count == 1

    def test_disabled_by_default(self, tiny_run):
        estimator, _, _ = tiny_run
        profiler = TPUPointProfiler(estimator)
        with pytest.raises(ProfilerError):
            profiler.online_phase_labels
        with pytest.raises(ProfilerError):
            profiler.online_phase_count

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            ProfilerOptions(online_phase_threshold=1.5)
