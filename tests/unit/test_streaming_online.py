"""StepStream assembly and online OLS during recording."""

import pytest

from repro.core.analyzer import TPUPointAnalyzer, ols_labels
from repro.core.profiler import ProfilerOptions, TPUPointProfiler
from repro.core.profiler.record import ProfileRecord, StepStats
from repro.core.profiler.streaming import StepStream
from repro.errors import ConfigurationError, ProfilerError
from repro.runtime.events import DeviceKind


def _record(index, step_ops):
    """step_ops: {step: [(name, duration), ...]}"""
    record = ProfileRecord(index=index, window_start_us=0.0, window_end_us=1.0)
    for number, ops in step_ops.items():
        step = StepStats(step=number)
        for name, duration in ops:
            step.observe(name, DeviceKind.TPU, duration)
        record.steps[number] = step
    return record


class TestStepStream:
    def test_withholds_newest_step(self):
        stream = StepStream()
        released = list(stream.submit(_record(0, {1: [("a", 1.0)], 2: [("a", 1.0)]})))
        assert [s.step for s in released] == [1]
        assert stream.pending_steps == 1

    def test_merges_split_steps(self):
        stream = StepStream()
        list(stream.submit(_record(0, {1: [("a", 1.0)]})))
        list(stream.submit(_record(1, {1: [("a", 2.0)]})))
        released = list(stream.submit(_record(2, {2: [("b", 1.0)]})))
        assert len(released) == 1
        assert released[0].operators[("a", "tpu")].total_duration_us == 3.0
        assert released[0].operators[("a", "tpu")].count == 2

    def test_flush_releases_pending(self):
        stream = StepStream()
        list(stream.submit(_record(0, {5: [("a", 1.0)]})))
        flushed = list(stream.flush())
        assert [s.step for s in flushed] == [5]
        assert stream.pending_steps == 0

    def test_rejects_revisited_steps(self):
        stream = StepStream()
        list(stream.submit(_record(0, {1: [("a", 1.0)], 2: [("a", 1.0)]})))
        with pytest.raises(ProfilerError):
            list(stream.submit(_record(1, {1: [("a", 1.0)]})))

    def test_releases_in_order(self):
        stream = StepStream()
        released = list(
            stream.submit(_record(0, {3: [("a", 1.0)], 1: [("a", 1.0)], 2: [("a", 1.0)]}))
        )
        assert [s.step for s in released] == [1, 2]

    def test_empty_record_is_noop(self):
        stream = StepStream()
        assert list(stream.submit(_record(0, {}))) == []


class TestOnlinePhases:
    def _profiled(self, tiny_model, tiny_dataset, **options):
        estimator = tiny_model.build_estimator(tiny_dataset)
        profiler = TPUPointProfiler(
            estimator,
            ProfilerOptions(request_interval_ms=150.0, online_phases=True, **options),
        )
        profiler.start(analyzer=True)
        estimator.train()
        records = profiler.stop()
        return profiler, records

    def test_online_matches_offline_exactly(self, tiny_model, tiny_dataset):
        profiler, records = self._profiled(tiny_model, tiny_dataset)
        analyzer = TPUPointAnalyzer(records)
        offline = dict(
            zip(
                [s.step for s in analyzer.steps],
                ols_labels(analyzer.steps, 0.70).tolist(),
            )
        )
        assert profiler.online_phase_labels == offline

    def test_online_count_matches_offline(self, tiny_model, tiny_dataset):
        profiler, records = self._profiled(tiny_model, tiny_dataset)
        result = TPUPointAnalyzer(records).ols_phases(0.70)
        assert profiler.online_phase_count == result.num_phases

    def test_custom_threshold(self, tiny_model, tiny_dataset):
        profiler, records = self._profiled(
            tiny_model, tiny_dataset, online_phase_threshold=0.0
        )
        assert profiler.online_phase_count == 1

    def test_disabled_by_default(self, tiny_run):
        estimator, _, _ = tiny_run
        profiler = TPUPointProfiler(estimator)
        with pytest.raises(ProfilerError):
            profiler.online_phase_labels
        with pytest.raises(ProfilerError):
            profiler.online_phase_count

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            ProfilerOptions(online_phase_threshold=1.5)
