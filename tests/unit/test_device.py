"""TPU device step execution."""

import pytest

from repro.errors import ConfigurationError
from repro.tpu.device import TpuDevice, TpuOpCategory, TpuOpWork
from repro.tpu.specs import TPU_V2


def _schedule(infeed_bytes=1e6, flops=1e12, memory_bytes=1e8):
    return [
        TpuOpWork("InfeedDequeueTuple", TpuOpCategory.INFEED, num_bytes=infeed_bytes),
        TpuOpWork(
            "fusion", TpuOpCategory.COMPUTE, flops=flops, efficiency=0.5, uses_mxu=True
        ),
        TpuOpWork("Reshape", TpuOpCategory.MEMORY, num_bytes=memory_bytes),
        TpuOpWork("OutfeedEnqueueTuple", TpuOpCategory.OUTFEED, num_bytes=1e5),
    ]


@pytest.fixture
def device():
    return TpuDevice("v2")


def test_device_accepts_spec_object():
    assert TpuDevice(TPU_V2).spec is TPU_V2


def test_work_rejects_negative_quantities():
    with pytest.raises(ConfigurationError):
        TpuOpWork("x", TpuOpCategory.COMPUTE, flops=-1.0)


def test_step_executes_all_ops_in_order(device):
    result = device.execute_step(1, _schedule(), start_us=0.0)
    assert [e.name for e in result.executions] == [
        "InfeedDequeueTuple",
        "fusion",
        "Reshape",
        "OutfeedEnqueueTuple",
    ]
    ends = [e.end_us for e in result.executions]
    assert ends == sorted(ends)
    assert result.end_us == ends[-1]


def test_infeed_wait_counts_as_idle(device):
    stalled = device.execute_step(1, _schedule(), start_us=0.0, infeed_ready_us=50_000.0)
    assert stalled.idle_us >= 50_000.0
    assert stalled.idle_fraction > 0.0


def test_no_wait_when_data_ready_early():
    device = TpuDevice("v2")
    ready = device.execute_step(1, _schedule(), start_us=100.0, infeed_ready_us=0.0)
    infeed = ready.executions[0]
    transfer_only = 1e6 / device.spec.infeed_bandwidth * 1e6
    assert infeed.duration_us == pytest.approx(transfer_only, rel=0.01)


def test_mxu_flops_accounted(device):
    result = device.execute_step(1, _schedule(flops=2e12), start_us=0.0)
    assert result.mxu_flops == 2e12


def test_compute_duration_honors_efficiency(device):
    fast = TpuOpWork("a", TpuOpCategory.COMPUTE, flops=1e12, efficiency=1.0, uses_mxu=True)
    slow = TpuOpWork("b", TpuOpCategory.COMPUTE, flops=1e12, efficiency=0.25, uses_mxu=True)
    r = device.execute_step(1, [fast, slow], 0.0)
    assert r.executions[1].duration_us == pytest.approx(4 * r.executions[0].duration_us)


def test_lifetime_counters_accumulate(device):
    device.execute_step(1, _schedule(), 0.0)
    device.execute_step(2, _schedule(), device.total_elapsed_us)
    assert device.total_mxu_flops == 2e12
    assert 0.0 < device.idle_fraction() < 1.0
    assert 0.0 < device.mxu_utilization() <= 1.0


def test_reset_clears_counters(device):
    device.execute_step(1, _schedule(), 0.0)
    device.reset()
    assert device.total_elapsed_us == 0.0
    assert device.mxu_utilization() == 0.0


def test_sync_op_has_fixed_cost(device):
    sync = TpuOpWork("all-sync", TpuOpCategory.SYNC, fixed_us=42.0)
    result = device.execute_step(1, [sync], 0.0)
    assert result.executions[0].duration_us == 42.0
    assert result.idle_us == 0.0
