"""Optimizer components: parameters, detector, quality, instrumentation."""

import pytest

from repro.core.optimizer.detector import CRITICAL_PATTERN, CriticalPhaseDetector
from repro.core.optimizer.instrument import ProgramInstrumenter
from repro.core.optimizer.parameters import AdjustableParameter, discover_parameters
from repro.core.optimizer.quality import OutputSignature, QualityController
from repro.core.profiler.record import StepStats
from repro.errors import QualityViolationError
from repro.host.pipeline import PipelineConfig
from repro.runtime.events import DeviceKind, StepKind, StepMetadata


class TestParameters:
    def test_discovery_finds_pipeline_knobs(self):
        names = {p.name for p in discover_parameters(PipelineConfig())}
        assert {"num_parallel_calls", "prefetch_depth", "infeed_threads"} <= names
        assert "vectorized_preprocess" in names

    def test_candidates_exclude_current_and_respect_bounds(self):
        parameter = next(
            p for p in discover_parameters(PipelineConfig()) if p.name == "num_parallel_calls"
        )
        candidates = parameter.candidate_values(1)
        assert 1 not in candidates
        assert all(parameter.minimum <= v <= parameter.maximum for v in candidates)

    def test_clamp(self):
        parameter = AdjustableParameter("x", 1, 8, lambda v: [v * 2])
        assert parameter.clamp(100) == 8
        assert parameter.clamp(0) == 1

    def test_boolean_parameter_flips(self):
        parameter = next(
            p
            for p in discover_parameters(PipelineConfig())
            if p.name == "vectorized_preprocess"
        )
        assert parameter.candidate_values(0) == [1]
        assert parameter.candidate_values(1) == [0]


def _step(number, names, elapsed=10.0):
    step = StepStats(step=number)
    for name in names:
        step.observe(name, DeviceKind.TPU, 1.0)
    step.attach_metadata(
        StepMetadata(number, StepKind.TRAIN, number * elapsed, (number + 1) * elapsed, 0.0, 0.0)
    )
    return step


class TestDetector:
    def test_pattern_triggers(self):
        detector = CriticalPhaseDetector()
        critical_ops = ["Reshape", "fusion", "InfeedDequeueTuple"]
        assert detector.observe(_step(0, critical_ops))
        assert detector.critical_since_step == 0

    def test_benign_ops_do_not_trigger_pattern(self):
        detector = CriticalPhaseDetector(time_fraction=2.0)  # disable condition 2
        for i in range(5):
            detector.observe(_step(i, ["MatMul", "Relu", "Softmax"]))
        assert not detector.critical

    def test_time_domination_triggers(self):
        detector = CriticalPhaseDetector(pattern_hits_required=99)  # disable condition 1
        detector.observe(_step(0, ["MatMul"], elapsed=1.0))
        # A new, long phase that accumulates > 50% of total time.
        for i in range(1, 6):
            detector.observe(_step(i, ["Relu"], elapsed=50.0))
        assert detector.critical

    def test_critical_pattern_matches_paper_operators(self):
        assert {"Reshape", "fusion"} <= CRITICAL_PATTERN
        assert any("Infeed" in name for name in CRITICAL_PATTERN)
        assert any("Outfeed" in name for name in CRITICAL_PATTERN)


class TestQuality:
    def test_signature_stable_for_pipeline_changes(self, tiny_estimator):
        controller = QualityController(tiny_estimator)
        tiny_estimator.update_pipeline_config(PipelineConfig(num_parallel_calls=32))
        controller.verify()  # pipeline knobs never violate quality

    def test_signature_violation_detected(self, tiny_estimator):
        controller = QualityController(tiny_estimator)
        object.__setattr__(tiny_estimator.plan, "batch_size", 64)
        with pytest.raises(QualityViolationError):
            controller.verify()

    def test_signature_of(self, tiny_estimator):
        signature = OutputSignature.of(tiny_estimator)
        assert signature.batch_size == tiny_estimator.plan.batch_size
        assert signature.train_steps == tiny_estimator.plan.train_steps


class TestInstrumenter:
    def test_analyze_is_cached(self, tiny_estimator):
        instrumenter = ProgramInstrumenter(tiny_estimator)
        assert instrumenter.analyze() is instrumenter.analyze()
        assert instrumenter.analyze().parameter_names

    def test_checkpoint_before_segment(self, tiny_estimator):
        instrumenter = ProgramInstrumenter(tiny_estimator)
        tiny_estimator.train_steps(7)
        instrumenter.checkpoint_before_segment()
        assert instrumenter.analyze().checkpoint_steps == [7]
        assert tiny_estimator.checkpoint_store.latest().step == 7
