"""gRPC-style profile service caps and windowing."""

import pytest

from repro.errors import ProfileServiceError
from repro.runtime.events import DeviceKind, EventLog, StepKind, StepMetadata, TraceEvent
from repro.runtime.rpc import (
    MAX_EVENTS_PER_PROFILE,
    MAX_PROFILE_DURATION_MS,
    ProfileRequest,
    ProfileService,
    ProfileStub,
)


def _log_with_events(count=10, spacing_us=1000.0):
    log = EventLog()
    for i in range(count):
        log.append_event(
            TraceEvent("op", DeviceKind.TPU, step=i, start_us=i * spacing_us, duration_us=500.0)
        )
        log.append_step(
            StepMetadata(
                step=i,
                kind=StepKind.TRAIN,
                start_us=i * spacing_us,
                end_us=i * spacing_us + 500.0,
                tpu_idle_us=0.0,
                mxu_flops=1.0,
            )
        )
    return log


def test_caps_match_paper():
    assert MAX_EVENTS_PER_PROFILE == 1_000_000
    assert MAX_PROFILE_DURATION_MS == 60_000.0


def test_request_validation():
    with pytest.raises(ProfileServiceError):
        ProfileRequest(max_events=0)
    with pytest.raises(ProfileServiceError):
        ProfileRequest(max_duration_ms=0.0)


def test_serve_everything_when_under_caps():
    service = ProfileService(_log_with_events(10))
    response = service.serve(ProfileRequest(), finished=True)
    assert response.num_events == 10
    assert response.final
    assert not response.truncated
    assert len(response.step_metadata) == 10


def test_event_cap_truncates():
    service = ProfileService(_log_with_events(10))
    response = service.serve(ProfileRequest(max_events=4), finished=False)
    assert response.num_events == 4
    assert response.truncated
    follow_up = service.serve(ProfileRequest(), finished=True)
    assert follow_up.num_events == 6
    assert follow_up.final


def test_duration_cap_truncates():
    # Events end at 0.5, 1.5, 2.5 ms...; a 2.6ms window fits the first three.
    service = ProfileService(_log_with_events(10, spacing_us=1000.0))
    response = service.serve(ProfileRequest(max_duration_ms=2.6), finished=False)
    assert response.num_events == 3
    assert response.truncated


def test_windows_are_contiguous():
    service = ProfileService(_log_with_events(10))
    first = service.serve(ProfileRequest(max_events=5), finished=False)
    second = service.serve(ProfileRequest(), finished=True)
    assert second.window_start_us == first.window_end_us


def test_requests_clamped_to_service_caps():
    service = ProfileService(_log_with_events(3))
    response = service.serve(
        ProfileRequest(max_events=10**9, max_duration_ms=10**9), finished=True
    )
    assert response.num_events == 3


def test_empty_log_serves_empty_final():
    service = ProfileService(EventLog())
    response = service.serve(ProfileRequest(), finished=True)
    assert response.num_events == 0
    assert response.final


def test_not_final_while_running():
    service = ProfileService(_log_with_events(2))
    response = service.serve(ProfileRequest(), finished=False)
    assert not response.final


def test_stub_delegates():
    service = ProfileService(_log_with_events(4))
    stub = ProfileStub(service)
    response = stub.request_profile(finished=True)
    assert response.num_events == 4
    assert service.requests_served == 1


def test_duration_ms_property():
    service = ProfileService(_log_with_events(10))
    response = service.serve(ProfileRequest(), finished=True)
    assert response.duration_ms == pytest.approx(
        (response.window_end_us - response.window_start_us) / 1000.0
    )


def test_deadline_validation():
    with pytest.raises(ProfileServiceError):
        ProfileRequest(deadline_ms=0.0)
    assert ProfileRequest(deadline_ms=250.0).deadline_ms == 250.0


def test_single_event_longer_than_window_cap():
    # One event spanning 5ms against a 1ms duration cap: the service
    # answers with empty truncated windows whose limit marches forward
    # until the window finally catches up with the event's end.
    log = EventLog()
    log.append_event(
        TraceEvent("op", DeviceKind.TPU, step=0, start_us=0.0, duration_us=5000.0)
    )
    service = ProfileService(log)
    for i in range(4):
        response = service.serve(ProfileRequest(max_duration_ms=1.0), finished=True)
        assert response.num_events == 0
        assert response.truncated
        assert not response.final
        assert response.window_end_us == (i + 1) * 1000.0
    last = service.serve(ProfileRequest(max_duration_ms=1.0), finished=True)
    assert last.num_events == 1
    assert last.final
    assert not last.truncated


def test_finished_empty_log_never_stalls():
    # A drain loop keeps asking until it sees final=True; an empty
    # finished log must answer final immediately and keep answering
    # final, so the loop can never spin forever.
    service = ProfileService(EventLog())
    for _ in range(3):
        response = service.serve(ProfileRequest(), finished=True)
        assert response.final
        assert response.num_events == 0
        assert response.window_start_us == response.window_end_us == 0.0
