"""Deterministic fault injection, the resilient client, and the journal."""

import pytest

from repro import obs
from repro.core.profiler import ProfilerOptions, TPUPointProfiler
from repro.core.profiler.journal import RecordJournal, recover_journal
from repro.core.profiler.record import ProfileRecord, StepStats
from repro.core.profiler.recorder import RecordingThread
from repro.core.profiler.serialize import record_checksum
from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    FaultInjectionError,
    JournalError,
    ProfileServiceError,
)
from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    FaultTarget,
    FaultyProfileService,
    RecordTransit,
    corrupt_record,
    load_plan,
    save_plan,
)
from repro.runtime.events import DeviceKind, EventLog, StepKind, StepMetadata, TraceEvent
from repro.runtime.resilience import (
    BreakerState,
    CircuitBreaker,
    ResilientProfileStub,
    RetryPolicy,
    client_from_config,
)
from repro.runtime.rpc import ProfileRequest, ProfileService


def _log_with_events(count=10, spacing_us=1000.0):
    log = EventLog()
    for i in range(count):
        log.append_event(
            TraceEvent("op", DeviceKind.TPU, step=i, start_us=i * spacing_us, duration_us=500.0)
        )
        log.append_step(
            StepMetadata(
                step=i,
                kind=StepKind.TRAIN,
                start_us=i * spacing_us,
                end_us=i * spacing_us + 500.0,
                tpu_idle_us=0.0,
                mxu_flops=1.0,
            )
        )
    return log


def _record(index=0, steps=(), start=0.0, end=1000.0):
    record = ProfileRecord(index=index, window_start_us=start, window_end_us=end)
    for number in steps:
        step = StepStats(step=number)
        step.observe("MatMul", DeviceKind.TPU, 10.0)
        record.steps[number] = step
    return record


def _metric_value(name, **labels):
    family = obs.default_registry().get(name)
    if family is None:
        return 0.0
    return family.labels(**labels).value


class TestFaultSpec:
    def test_needs_a_schedule(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=FaultKind.ERROR, target=FaultTarget.PROFILE)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=FaultKind.ERROR, target=FaultTarget.PROFILE, probability=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=FaultKind.ERROR, target=FaultTarget.PROFILE, every_nth=0)
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=FaultKind.ERROR, target=FaultTarget.PROFILE, nth=(0,))
        with pytest.raises(ConfigurationError):
            FaultSpec(
                kind=FaultKind.ERROR,
                target=FaultTarget.PROFILE,
                nth=(5,),
                first_request=4,
                last_request=2,
            )

    def test_kind_must_match_target(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=FaultKind.CRASH, target=FaultTarget.PROFILE, nth=(1,))
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=FaultKind.ERROR, target=FaultTarget.RECORDER, nth=(1,))

    def test_nth_and_every_nth_schedules(self):
        spec = FaultSpec(kind=FaultKind.ERROR, target=FaultTarget.PROFILE, nth=(3, 7))
        hits = [i for i in range(1, 11) if spec.matches(i, rng=None)]
        assert hits == [3, 7]
        spec = FaultSpec(kind=FaultKind.ERROR, target=FaultTarget.PROFILE, every_nth=4)
        hits = [i for i in range(1, 13) if spec.matches(i, rng=None)]
        assert hits == [4, 8, 12]

    def test_request_range_bounds_schedule(self):
        spec = FaultSpec(
            kind=FaultKind.ERROR,
            target=FaultTarget.PROFILE,
            every_nth=1,
            first_request=3,
            last_request=5,
        )
        hits = [i for i in range(1, 10) if spec.matches(i, rng=None)]
        assert hits == [3, 4, 5]

    def test_default_targets_from_dict(self):
        assert FaultSpec.from_dict({"kind": "corrupt", "nth": [1]}).target is FaultTarget.INGEST
        assert FaultSpec.from_dict({"kind": "crash", "nth": [1]}).target is FaultTarget.RECORDER
        assert FaultSpec.from_dict({"kind": "error", "nth": [1]}).target is FaultTarget.PROFILE

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec.from_dict({"kind": "error", "nth": [1], "wat": True})


class TestFaultPlan:
    def test_round_trip(self, tmp_path):
        plan = FaultPlan.from_dict(
            {
                "seed": 42,
                "faults": [
                    {"kind": "error", "probability": 0.25},
                    {"kind": "drop", "nth": [2]},
                ],
                "client": {"max_attempts": 3},
            }
        )
        path = save_plan(plan, tmp_path / "plan.json")
        assert load_plan(path) == plan

    def test_lossless_classification(self):
        lossless = FaultPlan.from_dict(
            {"faults": [{"kind": "error", "nth": [1]}, {"kind": "empty", "nth": [2]}]}
        )
        assert lossless.lossless
        lossy = FaultPlan.from_dict({"faults": [{"kind": "drop", "nth": [1]}]})
        assert not lossy.lossless

    def test_load_errors(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_plan(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_plan(bad)

    def test_injector_is_deterministic(self):
        plan = FaultPlan.from_dict(
            {"seed": 9, "faults": [{"kind": "error", "probability": 0.4}]}
        )
        a = plan.injector(FaultTarget.PROFILE)
        b = plan.injector(FaultTarget.PROFILE)
        decisions_a = [a.decide() is not None for _ in range(50)]
        decisions_b = [b.decide() is not None for _ in range(50)]
        assert decisions_a == decisions_b
        assert any(decisions_a)  # the schedule actually fires sometimes

    def test_appending_a_spec_never_shifts_another(self):
        # Per-spec RNG streams: the probabilistic spec draws identically
        # whether or not an unrelated spec is appended after it.
        base = FaultPlan.from_dict(
            {"seed": 5, "faults": [{"kind": "error", "probability": 0.3}]}
        )
        extended = FaultPlan.from_dict(
            {
                "seed": 5,
                "faults": [
                    {"kind": "error", "probability": 0.3},
                    {"kind": "timeout", "nth": [999]},
                ],
            }
        )
        a = base.injector(FaultTarget.PROFILE)
        b = extended.injector(FaultTarget.PROFILE)
        decisions_a = [a.decide() is not None for _ in range(100)]
        decisions_b = [b.decide() is not None for _ in range(100)]
        assert decisions_a == decisions_b

    def test_distinct_keys_get_distinct_streams(self):
        plan = FaultPlan.from_dict(
            {"seed": 3, "faults": [{"kind": "drop", "probability": 0.5}]}
        )
        a = plan.injector(FaultTarget.INGEST, key="job-a")
        b = plan.injector(FaultTarget.INGEST, key="job-b")
        decisions_a = [a.decide() is not None for _ in range(64)]
        decisions_b = [b.decide() is not None for _ in range(64)]
        assert decisions_a != decisions_b


class TestFaultyProfileService:
    def _faulty(self, spec_dicts, count=10, seed=0):
        plan = FaultPlan.from_dict({"seed": seed, "faults": spec_dicts})
        return FaultyProfileService(ProfileService(_log_with_events(count)), plan)

    def test_error_is_retryable_and_preserves_cursor(self):
        service = self._faulty([{"kind": "error", "nth": [1]}])
        with pytest.raises(FaultInjectionError) as excinfo:
            service.serve(ProfileRequest(), finished=True)
        assert excinfo.value.retryable
        assert isinstance(excinfo.value, ProfileServiceError)
        # The retry recovers everything the failed request would have served.
        response = service.serve(ProfileRequest(), finished=True)
        assert response.num_events == 10
        assert response.final

    def test_timeout_kind(self):
        service = self._faulty([{"kind": "timeout", "nth": [1]}])
        with pytest.raises(FaultInjectionError) as excinfo:
            service.serve(ProfileRequest())
        assert excinfo.value.kind == "timeout"

    def test_empty_response_defers_the_window(self):
        service = self._faulty([{"kind": "empty", "nth": [1]}])
        empty = service.serve(ProfileRequest(), finished=True)
        assert empty.num_events == 0
        assert not empty.final
        assert empty.window_start_us == empty.window_end_us == 0.0
        retry = service.serve(ProfileRequest(), finished=True)
        assert retry.num_events == 10
        assert retry.final

    def test_truncate_squeezes_the_event_cap(self):
        service = self._faulty(
            [{"kind": "truncate", "nth": [1], "truncate_events": 4}]
        )
        response = service.serve(ProfileRequest(), finished=False)
        assert response.num_events == 4
        assert response.truncated
        rest = service.serve(ProfileRequest(), finished=True)
        assert rest.num_events == 6  # nothing lost, only deferred

    def test_delay_past_deadline_times_out(self):
        service = self._faulty([{"kind": "delay", "nth": [1], "delay_ms": 2000.0}])
        with pytest.raises(FaultInjectionError) as excinfo:
            service.serve(ProfileRequest(deadline_ms=500.0))
        assert excinfo.value.kind == "timeout"

    def test_delay_within_deadline_serves(self):
        service = self._faulty([{"kind": "delay", "nth": [1], "delay_ms": 100.0}])
        response = service.serve(ProfileRequest(deadline_ms=500.0), finished=True)
        assert response.num_events == 10
        assert service.delay_ms_total == 100.0


class TestRecordTransit:
    def test_drop_returns_none(self):
        plan = FaultPlan.from_dict({"faults": [{"kind": "drop", "nth": [2]}]})
        transit = RecordTransit(plan)
        assert transit.apply(_record(0)) is not None
        assert transit.apply(_record(1)) is None
        assert transit.dropped == 1

    def test_corruption_is_detectable_and_nondestructive(self):
        plan = FaultPlan.from_dict({"faults": [{"kind": "corrupt", "every_nth": 1}]})
        transit = RecordTransit(plan)
        from repro.serve import validate_record

        for index in range(8):
            original = _record(index, steps=(index,))
            checksum = record_checksum(original)
            mangled = transit.apply(original)
            assert mangled is not original
            # The original is untouched; the copy always fails validation.
            assert record_checksum(original) == checksum
            assert validate_record(original, checksum=checksum) is None
            assert validate_record(mangled, checksum=checksum) is not None
        assert transit.corrupted == 8

    def test_corrupt_record_without_steps_falls_back_to_window(self, rng):
        mangled = corrupt_record(_record(0), rng)
        assert mangled.window_end_us < mangled.window_start_us


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff_ms=100.0, max_backoff_ms=10.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_fraction=2.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(deadline_ms=0.0)

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(
            base_backoff_ms=100.0,
            backoff_multiplier=2.0,
            max_backoff_ms=350.0,
            jitter_fraction=0.0,
        )
        assert policy.backoff_ms(1, 0.5) == 100.0
        assert policy.backoff_ms(2, 0.5) == 200.0
        assert policy.backoff_ms(3, 0.5) == 350.0  # capped
        assert policy.backoff_ms(10, 0.5) == 350.0

    def test_jitter_is_symmetric(self):
        policy = RetryPolicy(base_backoff_ms=100.0, jitter_fraction=0.5)
        assert policy.backoff_ms(1, 0.0) == 50.0
        assert policy.backoff_ms(1, 0.5) == 100.0
        assert policy.backoff_ms(1, 1.0) == pytest.approx(150.0)


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_requests=2)
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_cooldown_then_half_open_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_requests=2)
        breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.skips == 2
        assert breaker.allow()  # the probe
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_requests=1)
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.allow()
        assert breaker.record_failure()  # half-open failure re-trips immediately
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2

    def test_force_probe_skips_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_requests=100)
        breaker.record_failure()
        breaker.force_probe()
        assert breaker.allow()

    def test_client_from_config_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            client_from_config({"max_attempts": 2, "retires": 9})
        policy, breaker = client_from_config(
            {"max_attempts": 2, "breaker_threshold": 5}
        )
        assert policy.max_attempts == 2
        assert breaker.failure_threshold == 5


class TestResilientProfileStub:
    def _stub(self, spec_dicts, client=None, count=10, seed=0):
        plan = FaultPlan.from_dict(
            {"seed": seed, "faults": spec_dicts, "client": client or {}}
        )
        service = FaultyProfileService(ProfileService(_log_with_events(count)), plan)
        policy, breaker = client_from_config(plan.client)
        return ResilientProfileStub(service, policy=policy, breaker=breaker, seed=seed)

    def test_retries_through_failures(self):
        before = _metric_value("repro_profiler_retries_total")
        stub = self._stub([{"kind": "error", "nth": [1, 2]}])
        response = stub.request_profile(finished=True)
        assert response.final and response.num_events == 10
        assert stub.retries == 2
        assert _metric_value("repro_profiler_retries_total") - before == 2

    def test_backoff_elapses_on_the_sim_clock(self):
        stub = self._stub([{"kind": "error", "nth": [1]}])
        assert stub.clock.now_us == 0.0
        stub.request_profile(finished=True)
        assert stub.clock.now_us > 0.0  # backoff charged to the stub's clock

    def test_exhausted_attempts_reraise(self):
        stub = self._stub(
            [{"kind": "error", "every_nth": 1}], client={"max_attempts": 3}
        )
        with pytest.raises(FaultInjectionError):
            stub.request_profile()
        assert stub.windows_abandoned == 1
        assert stub.failures == 3

    def test_circuit_opens_and_skips_then_recovers(self):
        stub = self._stub(
            [{"kind": "error", "first_request": 1, "last_request": 4, "every_nth": 1}],
            client={"max_attempts": 10, "breaker_threshold": 4, "breaker_cooldown": 2},
        )
        with pytest.raises(CircuitOpenError):
            stub.request_profile()
        # Cooldown: the next two requests are denied without touching the wire.
        for _ in range(2):
            with pytest.raises(CircuitOpenError):
                stub.request_profile()
        assert stub.breaker.skips == 2
        # The half-open probe goes through; faults stopped at request 4.
        response = stub.request_profile(finished=True)
        assert response.final
        assert stub.breaker.state is BreakerState.CLOSED

    def test_non_retryable_errors_pass_through(self):
        stub = self._stub([])
        with pytest.raises(ProfileServiceError):
            stub.request_profile(max_events=-1)


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RecordJournal(path)
        records = [_record(i, steps=(i,)) for i in range(5)]
        for record in records:
            journal.append(record)
        journal.close()
        recovery = recover_journal(path)
        assert recovery.lossless
        assert recovery.entries_recovered == 5
        assert [r.index for r in recovery.records] == [0, 1, 2, 3, 4]
        assert recovery.records[2].steps[2].operators

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RecordJournal(path)
        journal.append(_record(0))
        journal.append(_record(1))
        journal.tear(_record(2))
        assert not journal.alive
        recovery = recover_journal(path)
        assert recovery.torn_tail
        assert not recovery.lossless
        assert len(recovery.records) == 2

    def test_mid_file_corruption_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RecordJournal(path, format="json")
        for i in range(3):
            journal.append(_record(i))
        journal.close()
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"window_start_us"', '"window_stART_us"')
        path.write_text("\n".join(lines) + "\n")
        recovery = recover_journal(path)
        assert recovery.corrupt_entries == 1
        assert [r.index for r in recovery.records] == [0, 2]
        with pytest.raises(JournalError):
            recover_journal(path, strict=True)

    def test_checksum_catches_value_tampering(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RecordJournal(path, format="json")
        journal.append(_record(0, start=0.0, end=1000.0))
        journal.append(_record(1))
        journal.close()
        tampered = path.read_text().replace('"window_end_us":1000.0', '"window_end_us":9.0', 1)
        path.write_text(tampered)
        recovery = recover_journal(path)
        assert recovery.corrupt_entries == 1
        assert [r.index for r in recovery.records] == [1]

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(JournalError):
            recover_journal(tmp_path / "nope.jsonl")

    def test_append_after_close_raises(self, tmp_path):
        journal = RecordJournal(tmp_path / "run.jsonl")
        journal.close()
        with pytest.raises(JournalError):
            journal.append(_record(0))


class TestRecorderCrash:
    def test_crash_tears_journal_but_keeps_memory(self, tmp_path):
        path = tmp_path / "run.jsonl"
        recorder = RecordingThread(journal=RecordJournal(path))
        recorder.submit(_record(0))
        recorder.crash(_record(1))
        recorder.submit(_record(1))  # the run keeps going in memory
        records = recorder.close()
        assert recorder.crashed
        assert [r.index for r in records] == [0, 1]
        recovery = recover_journal(path)
        assert recovery.torn_tail
        assert [r.index for r in recovery.records] == [0]


class TestFaultyRunEndToEnd:
    PLAN = {
        "seed": 20260805,
        "faults": [
            {"kind": "error", "probability": 0.2},
            {"kind": "timeout", "every_nth": 7},
            {"kind": "empty", "nth": [3]},
            {"kind": "crash", "nth": [4]},
        ],
        "client": {"max_attempts": 8, "breaker_threshold": 16},
    }

    def _run(self, tiny_model, tiny_dataset, plan=None, journal=None):
        estimator = tiny_model.build_estimator(tiny_dataset)
        profiler = TPUPointProfiler(
            estimator,
            ProfilerOptions(
                request_interval_ms=200.0,
                online_phases=True,
                fault_plan=plan,
                journal_path=str(journal) if journal else None,
            ),
        )
        profiler.start(analyzer=True)
        estimator.train()
        records = profiler.stop()
        return profiler, records

    def test_faulty_run_matches_clean_run(self, tiny_model, tiny_dataset, tmp_path):
        clean, clean_records = self._run(tiny_model, tiny_dataset)
        plan = FaultPlan.from_dict(self.PLAN)
        retries_before = _metric_value("repro_profiler_retries_total")
        faulty, faulty_records = self._run(
            tiny_model, tiny_dataset, plan, tmp_path / "run.jsonl"
        )
        # The faults in the plan's profile set are all lossless, so the
        # live phase labels must match the fault-free run exactly.
        assert faulty.online_phase_labels == clean.online_phase_labels
        assert faulty.online_phase_count == clean.online_phase_count
        # Retries account 1:1 for every injected error + timeout.
        report = faulty.fault_report()
        injected = faulty._fault_service.injector.injected_of(
            FaultKind.ERROR, FaultKind.TIMEOUT
        )
        assert report["client"]["retries"] == injected
        assert _metric_value("repro_profiler_retries_total") - retries_before == injected
        # The recorder crashed mid-run; the journal survives minus the tail.
        assert report["recorder"]["crashed"]
        recovery = recover_journal(tmp_path / "run.jsonl")
        assert recovery.torn_tail
        assert len(recovery.records) < len(faulty_records)

    def test_faulty_run_is_deterministic(self, tiny_model, tiny_dataset, tmp_path):
        plan = FaultPlan.from_dict(self.PLAN)
        first, first_records = self._run(tiny_model, tiny_dataset, plan, tmp_path / "a.jsonl")
        second, second_records = self._run(tiny_model, tiny_dataset, plan, tmp_path / "b.jsonl")
        assert first.fault_report() == second.fault_report()
        assert first.online_phase_labels == second.online_phase_labels
        assert [r.index for r in first_records] == [r.index for r in second_records]
        assert (tmp_path / "a.jsonl").read_bytes() == (tmp_path / "b.jsonl").read_bytes()

    def test_clean_plan_changes_nothing(self, tiny_model, tiny_dataset):
        clean, clean_records = self._run(tiny_model, tiny_dataset)
        noop_plan = FaultPlan(seed=1, specs=())
        faulty, faulty_records = self._run(tiny_model, tiny_dataset, noop_plan)
        assert faulty.online_phase_labels == clean.online_phase_labels
        assert len(faulty_records) == len(clean_records)
        assert faulty.fault_report()["profile"] == {}
