"""The tf.data-style pipeline DSL."""

import numpy as np
import pytest

from repro.datasets.registry import SQUAD
from repro.errors import ConfigurationError
from repro.host.data import Dataset


def _base():
    return Dataset.from_tfrecords(SQUAD)


class TestDeclaration:
    def test_immutability(self):
        base = _base()
        shuffled = base.shuffle(1024)
        assert base.shuffle_buffer == 0
        assert shuffled.shuffle_buffer == 1024

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _base().interleave(0)
        with pytest.raises(ConfigurationError):
            _base().map("m", -1.0)
        with pytest.raises(ConfigurationError):
            _base().batch(0)
        with pytest.raises(ConfigurationError):
            _base().batch(32).batch(32)
        with pytest.raises(ConfigurationError):
            _base().prefetch(-1)

    def test_build_requires_batch(self):
        with pytest.raises(ConfigurationError):
            _base().build()


class TestLowering:
    def test_config_from_declaration(self):
        config = (
            _base()
            .interleave(8)
            .shuffle(4096)
            .map("parse", 18.0, num_parallel_calls=16)
            .batch(32)
            .prefetch(4)
            .with_infeed_threads(4)
            .to_config()
        )
        assert config.num_parallel_reads == 8
        assert config.num_parallel_calls == 16
        assert config.shuffle_buffer == 4096
        assert config.prefetch_depth == 4
        assert config.infeed_threads == 4
        assert not config.vectorized_preprocess

    def test_map_after_batch_vectorizes(self):
        config = _base().batch(32).map("augment", 10.0).to_config()
        assert config.vectorized_preprocess

    def test_stages_in_declaration_order(self):
        stages = (
            _base().map("decode", 5.0).map("augment", 3.0).batch(32).to_stages()
        )
        assert [s.name for s in stages] == ["read", "decode", "augment", "batch", "transfer"]

    def test_build_produces_runnable_pipeline(self, rng):
        pipeline = (
            _base().interleave(4).map("parse", 18.0, num_parallel_calls=8).batch(32).prefetch(2).build()
        )
        cost = pipeline.batch_cost(32, rng)
        assert cost.total_wall_us > 0

    def test_naive_pipeline_is_slower(self, rng):
        tuned = (
            _base().interleave(8).map("parse", 50.0, num_parallel_calls=16)
            .batch(64).prefetch(2).build()
        )
        naive = _base().map("parse", 50.0).batch(64).build()
        assert (
            naive.batch_cost(64, np.random.default_rng(0)).total_wall_us
            > tuned.batch_cost(64, np.random.default_rng(0)).total_wall_us
        )
        assert naive.config.prefetch_depth == 0


class TestDescribe:
    def test_chain_rendering(self):
        text = (
            _base().interleave(4).shuffle(1024)
            .map("parse", 18.0, num_parallel_calls=8).batch(32).prefetch(2).describe()
        )
        assert text == (
            "Dataset.from_tfrecords(SQuAD).interleave(cycle_length=4)"
            ".shuffle(1024).map('parse', num_parallel_calls=8).batch(32).prefetch(2)"
        )

    def test_map_after_batch_rendering(self):
        text = _base().batch(32).map("augment", 1.0).describe()
        assert ".batch(32).map('augment'" in text


class TestOptimizerIntegration:
    def test_dsl_pipeline_is_tunable(self, tiny_model, tiny_dataset):
        """A naive DSL declaration exposes the same adjustable parameters."""
        from repro.core.optimizer.parameters import discover_parameters

        config = (
            Dataset.from_tfrecords(tiny_dataset).map("decode", 400.0).batch(32).to_config()
        )
        names = {p.name for p in discover_parameters(config)}
        assert "num_parallel_calls" in names
        assert "prefetch_depth" in names

    def test_estimator_runs_with_dsl_config(self, tiny_model, tiny_dataset):
        declaration = (
            Dataset.from_tfrecords(tiny_dataset)
            .interleave(2)
            .map("decode", 5.0, num_parallel_calls=4)
            .batch(32)
            .prefetch(2)
        )
        estimator = tiny_model.build_estimator(
            tiny_dataset, pipeline_config=declaration.to_config()
        )
        summary = estimator.train()
        assert summary.wall_us > 0
