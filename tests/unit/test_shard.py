"""The sharded fleet tier: ring, ledger, scatter-gather, rebalance."""

import pytest

from repro.core.profiler.record import ProfileRecord, StepStats
from repro.core.profiler.serialize import record_checksum
from repro.errors import ServeError, ShardError, UnknownJobError
from repro.runtime.events import DeviceKind, StepKind
from repro.serve import (
    FleetService,
    FleetServiceOptions,
    GoodputLedger,
    HashRing,
    ShardedFleet,
    ShardedFleetOptions,
)
from repro.serve.shard import ALL_BUCKETS, BADPUT_BUCKETS, GOODPUT_BUCKET


def _step(number, ops, duration_us=100.0, idle_us=20.0, mxu_flops=1e6,
          kind=StepKind.TRAIN):
    step = StepStats(step=number)
    for name in ops:
        step.observe(name, DeviceKind.TPU, 10.0)
    step.kind = kind
    step.start_us = number * duration_us
    step.end_us = (number + 1) * duration_us
    step.tpu_idle_us = idle_us
    step.mxu_flops = mxu_flops
    return step


def _record(index, steps):
    record = ProfileRecord(index=index, window_start_us=0.0, window_end_us=1.0)
    for step in steps:
        record.steps[step.step] = step
    return record


_OPS_A = ["matmul", "fusion", "relu"]
_OPS_B = ["conv", "pool", "softmax"]


def _stream_of_records(num_steps=8, flip_at=4):
    return [
        _record(i, [_step(i, _OPS_A if i < flip_at else _OPS_B)])
        for i in range(num_steps)
    ]


def _drive(service, tenants, num_steps=8):
    """Register tenants, stream each one's records, complete them all."""
    for job_id in tenants:
        service.register("bert-mrpc", job_id=job_id)
    for job_id in tenants:
        for record in _stream_of_records(num_steps):
            service.submit(job_id, record, checksum=record_checksum(record))
    service.pump()
    for job_id in tenants:
        service.complete(job_id)


class TestHashRing:
    def test_routing_is_deterministic(self):
        one, two = HashRing(4), HashRing(4)
        for i in range(200):
            assert one.route(f"job-{i}") == two.route(f"job-{i}")

    def test_routes_stay_in_range_and_spread(self):
        ring = HashRing(4)
        owners = {ring.route(f"job-{i}") for i in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_seed_changes_placement(self):
        base, other = HashRing(4), HashRing(4, seed=99)
        moved = sum(
            1 for i in range(200)
            if base.route(f"job-{i}") != other.route(f"job-{i}")
        )
        assert moved > 0

    def test_resize_moves_few_tenants(self):
        """Consistent hashing: 4 -> 5 shards moves roughly 1/5, not 4/5."""
        ring = HashRing(4)
        grown = ring.resized(5)
        tenants = [f"job-{i}" for i in range(2000)]
        moved = sum(1 for t in tenants if ring.route(t) != grown.route(t))
        assert 0 < moved < len(tenants) // 2  # naive mod-N would move ~80%

    def test_resize_only_moves_to_new_shards(self):
        """Growing the ring never shuffles a tenant between old shards."""
        ring = HashRing(3)
        grown = ring.resized(4)
        for i in range(500):
            before, after = ring.route(f"t{i}"), grown.route(f"t{i}")
            if before != after:
                assert after == 3

    def test_bad_arguments_raise(self):
        with pytest.raises(ShardError):
            HashRing(0)
        with pytest.raises(ShardError):
            HashRing(2, replicas=0)


class TestGoodputLedger:
    def test_buckets_sum_to_total(self):
        ledger = GoodputLedger()
        ledger.charge("j", GOODPUT_BUCKET, 700.0)
        for i, bucket in enumerate(BADPUT_BUCKETS):
            ledger.charge("j", bucket, 10.0 * (i + 1))
        tenant = ledger.tenant("j")
        assert tenant.total_us == pytest.approx(
            tenant.goodput_us + tenant.badput_us
        )
        assert tenant.goodput_us == 700.0
        assert tenant.badput_us == pytest.approx(sum(
            10.0 * (i + 1) for i in range(len(BADPUT_BUCKETS))
        ))

    def test_observe_step_splits_idle_from_busy(self):
        ledger = GoodputLedger()
        ledger.observe_step("j", _step(0, _OPS_A, duration_us=100.0, idle_us=30.0))
        tenant = ledger.tenant("j")
        assert tenant.buckets["infeed_stall"] == pytest.approx(30.0)
        assert tenant.goodput_us == pytest.approx(70.0)

    def test_non_training_steps_are_checkpoint_overhead(self):
        ledger = GoodputLedger()
        ledger.observe_step(
            "j", _step(0, _OPS_A, idle_us=0.0, kind=StepKind.CHECKPOINT)
        )
        tenant = ledger.tenant("j")
        assert tenant.goodput_us == 0.0
        assert tenant.buckets["checkpoint"] == pytest.approx(100.0)

    def test_observe_quarantine_charges_covered_time(self):
        ledger = GoodputLedger()
        ledger.observe_quarantine("j", _record(0, [_step(0, _OPS_A)]))
        assert ledger.tenant("j").buckets["quarantine"] == pytest.approx(100.0)

    def test_observe_fault_report_feeds_badput(self):
        ledger = GoodputLedger()
        report = {
            "client": {"backoff_ms_total": 5.0},
            "windows_skipped": 2,
            "windows_abandoned": 1,
        }
        ledger.observe_fault_report("j", report, request_interval_ms=100.0)
        tenant = ledger.tenant("j")
        assert tenant.buckets["retry_backoff"] == pytest.approx(5000.0)
        assert tenant.buckets["recovery_replay"] == pytest.approx(300000.0)

    def test_unknown_bucket_and_negative_charge_raise(self):
        ledger = GoodputLedger()
        with pytest.raises(ServeError):
            ledger.charge("j", "procrastination", 1.0)
        with pytest.raises(ServeError):
            ledger.charge("j", GOODPUT_BUCKET, -1.0)

    def test_report_is_sorted_and_exports_counters(self):
        ledger = GoodputLedger()
        ledger.charge("b", GOODPUT_BUCKET, 10.0)
        ledger.charge("a", GOODPUT_BUCKET, 20.0)
        report = ledger.report()
        assert [tenant.job_id for tenant in report.tenants] == ["a", "b"]
        rendered = ledger.registry.render()
        assert 'repro_serve_goodput_us_total{bucket="goodput"} 30' in rendered
        # every bucket is exposed even when never charged
        for bucket in ALL_BUCKETS:
            assert f'bucket="{bucket}"' in rendered


class TestShardedFleet:
    def test_scatter_gather_matches_single_service(self):
        tenants = [f"t{i}" for i in range(6)]
        single = FleetService()
        _drive(single, tenants)
        for shards in (1, 2, 4):
            fleet = ShardedFleet(ShardedFleetOptions(shards=shards))
            _drive(fleet, tenants)
            assert fleet.fleet_snapshot() == single.fleet_snapshot()
            for job_id in tenants:
                assert fleet.job_snapshot(job_id) == single.job_snapshot(job_id)
                assert fleet.similar_phases(job_id) == single.similar_phases(job_id)
            fleet.close()

    def test_batch_full_flushes_and_pumps_one_shard(self):
        fleet = ShardedFleet(ShardedFleetOptions(shards=1, batch_size=4))
        fleet.register("bert-mrpc", job_id="t0")
        acks = [
            fleet.submit("t0", record, checksum=record_checksum(record))
            for record in _stream_of_records(4)
        ]
        # buffered until the batch filled, then flushed + pumped
        assert acks[:3] == [None, None, None]
        assert acks[3] is not None and acks[3].accepted
        assert fleet.queue_depth("t0") == 0
        assert fleet.job_snapshot("t0").steps_seen > 0
        fleet.close()

    def test_no_drops_through_sharded_path(self):
        """batch_size clamps to queue capacity: nothing is ever shed."""
        options = ShardedFleetOptions(
            shards=2,
            batch_size=64,
            service=FleetServiceOptions(queue_capacity=4),
        )
        fleet = ShardedFleet(options)
        assert fleet.batch_size == 4
        tenants = [f"t{i}" for i in range(4)]
        _drive(fleet, tenants, num_steps=20)
        assert fleet.metrics.records_dropped == 0
        assert fleet.metrics.records_ingested == 80
        fleet.close()

    def test_default_job_ids_match_single_service(self):
        single, fleet = FleetService(), ShardedFleet(ShardedFleetOptions(shards=3))
        for workload in ("bert-mrpc", "dcgan-mnist", "bert-mrpc"):
            assert fleet.register(workload).job_id == single.register(workload).job_id
        fleet.close()

    def test_unknown_tenant_raises_typed_error(self):
        fleet = ShardedFleet(ShardedFleetOptions(shards=2))
        for query in (
            fleet.job_snapshot,
            fleet.similar_phases,
            fleet.analysis,
            fleet.shard_of,
            fleet.complete,
        ):
            with pytest.raises(UnknownJobError):
                query("ghost")
        fleet.close()

    def test_quarantine_routes_and_counts_per_tenant(self):
        fleet = ShardedFleet(ShardedFleetOptions(shards=2))
        fleet.register("bert-mrpc", job_id="good")
        fleet.register("bert-mrpc", job_id="bad")
        good = _record(0, [_step(0, _OPS_A)])
        fleet.submit("good", good, checksum=record_checksum(good))
        corrupt = _record(0, [_step(0, _OPS_B)])
        fleet.submit("bad", corrupt, checksum=12345)  # wrong checksum
        fleet.pump()
        assert [q.job_id for q in fleet.quarantined()] == ["bad"]
        assert fleet.job_snapshot("bad").records_quarantined == 1
        assert fleet.job_snapshot("good").records_quarantined == 0
        assert fleet.fleet_snapshot().total_quarantined == 1
        # refused wall time lands in the tenant's quarantine bucket
        assert fleet.goodput("bad").buckets["quarantine"] > 0
        fleet.close()

    def test_goodput_invariant_over_a_fleet(self):
        fleet = ShardedFleet(ShardedFleetOptions(shards=2))
        _drive(fleet, [f"t{i}" for i in range(5)])
        report = fleet.goodput_report()
        assert len(report.tenants) == 5
        for tenant in report.tenants:
            assert tenant.total_us == pytest.approx(
                tenant.goodput_us + tenant.badput_us
            )
            assert tenant.total_us == pytest.approx(800.0)  # 8 steps x 100us
        fleet.close()

    def test_rebalance_preserves_results_bit_for_bit(self):
        tenants = [f"t{i}" for i in range(8)]
        fleet = ShardedFleet(ShardedFleetOptions(shards=2))
        _drive(fleet, tenants)
        before_fleet = fleet.fleet_snapshot()
        before_jobs = {job_id: fleet.job_snapshot(job_id) for job_id in tenants}
        before_goodput = fleet.goodput_report()
        moved = fleet.resize(5)
        assert fleet.num_shards == 5
        assert moved == sum(
            1 for job_id in tenants
            if fleet.ring.route(job_id) != HashRing(2).route(job_id)
        )
        assert fleet.fleet_snapshot() == before_fleet
        for job_id in tenants:
            assert fleet.job_snapshot(job_id) == before_jobs[job_id]
        # the ledger attaches after replay: no double-charged wall time
        assert fleet.goodput_report() == before_goodput
        fleet.close()

    def test_rebalance_replays_quarantine_decisions(self):
        fleet = ShardedFleet(ShardedFleetOptions(shards=2))
        fleet.register("bert-mrpc", job_id="bad")
        corrupt = _record(0, [_step(0, _OPS_A)])
        fleet.submit("bad", corrupt, checksum=999)
        fleet.pump()
        before = fleet.goodput("bad").buckets["quarantine"]
        assert before > 0
        fleet.resize(3)
        assert [q.job_id for q in fleet.quarantined()] == ["bad"]
        assert fleet.metrics.records_quarantined == 1
        assert fleet.goodput("bad").buckets["quarantine"] == before
        fleet.close()

    def test_rebalance_can_continue_ingesting(self):
        fleet = ShardedFleet(ShardedFleetOptions(shards=1))
        fleet.register("bert-mrpc", job_id="t0")
        records = _stream_of_records(8)
        for record in records[:4]:
            fleet.submit("t0", record, checksum=record_checksum(record))
        fleet.resize(4)
        for record in records[4:]:
            fleet.submit("t0", record, checksum=record_checksum(record))
        fleet.pump()
        fleet.complete("t0")
        single = FleetService()
        single.register("bert-mrpc", job_id="t0")
        for record in records:
            single.submit("t0", record, checksum=record_checksum(record))
        single.pump()
        single.complete("t0")
        assert fleet.job_snapshot("t0") == single.job_snapshot("t0")
        fleet.close()

    def test_completed_tenant_rejects_ingest(self):
        fleet = ShardedFleet(ShardedFleetOptions(shards=2))
        fleet.register("bert-mrpc", job_id="t0")
        fleet.complete("t0")
        with pytest.raises(ServeError):
            fleet.submit("t0", _record(0, [_step(0, _OPS_A)]))
        fleet.close()

    def test_evicted_tenant_leaves_the_fleet(self):
        fleet = ShardedFleet(ShardedFleetOptions(shards=2))
        fleet.register("bert-mrpc", job_id="t0")
        fleet.submit("t0", _record(0, [_step(0, _OPS_A)]))
        fleet.evict("t0")
        with pytest.raises(UnknownJobError):
            fleet.job_snapshot("t0")
        assert fleet.fleet_snapshot().num_jobs == 0
        assert fleet.metrics.jobs_evicted == 1
        fleet.close()

    def test_options_validation(self):
        with pytest.raises(ShardError):
            ShardedFleetOptions(shards=0)
        with pytest.raises(ShardError):
            ShardedFleetOptions(batch_size=0)
        with pytest.raises(ShardError):
            ShardedFleetOptions(workers=0)

    def test_topology_is_deterministic(self):
        one = ShardedFleet(ShardedFleetOptions(shards=3))
        two = ShardedFleet(ShardedFleetOptions(shards=3))
        for fleet in (one, two):
            for i in range(9):
                fleet.register("bert-mrpc", job_id=f"t{i}")
        assert one.shard_tenants() == two.shard_tenants()
        one.close()
        two.close()
