"""Graph container, ops, and builder."""

import pytest

from repro.errors import GraphError
from repro.graph import ops as opdefs
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.ops import Operation, op_kind, registered_kinds
from repro.graph.shapes import TensorShape


def test_op_kind_registry():
    assert op_kind("MatMul") is opdefs.MATMUL
    assert op_kind("fusion").uses_mxu
    with pytest.raises(GraphError):
        op_kind("NotAnOp")
    assert "Reshape" in registered_kinds()


def test_operation_validation():
    with pytest.raises(GraphError):
        Operation(name="", kind=opdefs.CONST)
    with pytest.raises(GraphError):
        Operation(name="x", kind=opdefs.MATMUL, flops=-1.0)


def test_output_bytes():
    op = Operation("x", opdefs.CONST, shape=TensorShape((4,)))
    assert op.output_bytes == 16.0
    assert Operation("y", opdefs.NO_OP).output_bytes == 0.0


def _diamond() -> Graph:
    g = Graph("diamond")
    g.add(Operation("a", opdefs.CONST, shape=TensorShape((1,))))
    g.add(Operation("b", opdefs.IDENTITY, inputs=("a",)))
    g.add(Operation("c", opdefs.IDENTITY, inputs=("a",)))
    g.add(Operation("d", opdefs.IDENTITY, inputs=("b", "c")))
    return g


def test_duplicate_names_rejected():
    g = Graph()
    g.add(Operation("a", opdefs.CONST))
    with pytest.raises(GraphError):
        g.add(Operation("a", opdefs.CONST))


def test_consumers_and_producers():
    g = _diamond()
    assert {op.name for op in g.consumers("a")} == {"b", "c"}
    assert [op.name for op in g.producers("d")] == ["b", "c"]


def test_remove_guards_live_edges():
    g = _diamond()
    with pytest.raises(GraphError):
        g.remove("a")
    g.remove("d")
    assert "d" not in g


def test_topological_order_respects_edges():
    order = [op.name for op in _diamond().topological_order()]
    assert order.index("a") < order.index("b") < order.index("d")
    assert order.index("a") < order.index("c") < order.index("d")


def test_cycle_detected():
    g = Graph()
    g.add(Operation("a", opdefs.IDENTITY, inputs=("b",)))
    g.add(Operation("b", opdefs.IDENTITY, inputs=("a",)))
    with pytest.raises(GraphError):
        g.topological_order()


def test_unknown_input_detected():
    g = Graph()
    g.add(Operation("a", opdefs.IDENTITY, inputs=("ghost",)))
    with pytest.raises(GraphError):
        g.validate()


def test_total_flops_and_count_kind():
    g = Graph()
    g.add(Operation("m", opdefs.MATMUL, flops=100.0))
    g.add(Operation("m2", opdefs.MATMUL, flops=50.0))
    assert g.total_flops() == 150.0
    assert g.count_kind("MatMul") == 2


class TestGraphBuilder:
    def test_unique_naming(self):
        b = GraphBuilder()
        first = b.const(TensorShape((1,)))
        second = b.const(TensorShape((1,)))
        assert first.name != second.name

    def test_matmul_derives_flops_and_attrs(self):
        b = GraphBuilder()
        x = b.infeed(TensorShape((8, 16)))
        w = b.const(TensorShape((16, 32)))
        mm = b.matmul(x, w, 8, 16, 32)
        assert mm.flops == 2 * 8 * 16 * 32
        assert (mm.attrs["m"], mm.attrs["k"], mm.attrs["n"]) == (8, 16, 32)

    def test_elementwise_requires_shape(self):
        b = GraphBuilder()
        shapeless = b.add(opdefs.NO_OP)
        with pytest.raises(GraphError):
            b.elementwise(opdefs.RELU, shapeless)

    def test_transpose_reverses_dims(self):
        b = GraphBuilder()
        x = b.infeed(TensorShape((2, 3, 4)))
        assert b.transpose(x).shape.dims == (4, 3, 2)

    def test_build_validates(self):
        b = GraphBuilder()
        b.add(opdefs.IDENTITY, inputs=("missing",))
        with pytest.raises(GraphError):
            b.build()
