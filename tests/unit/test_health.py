"""Fleet health telemetry: rings, alert rules, drift, SLO burn rates.

The unit half exercises each layer in isolation (ring buffers, the
registry sampler, the alert state machines, the drift detector, the SLO
engine); the integration half drives seeded fleet runs and asserts the
ISSUE's acceptance bar: a faulted run deterministically fires AND
resolves CIRCUIT_FLAP, GOODPUT_BURN, and PHASE_DRIFT with identical
alert sequences across repeats and shard counts, while a healthy run
emits zero alert events.
"""

import json

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    AlertSeverity,
    builtin_rules,
)
from repro.obs.drift import (
    DriftBand,
    PhaseDriftDetector,
    mix_distance,
    mix_shares,
    operator_totals,
    window_fingerprint,
)
from repro.obs.health import HealthMonitor, HealthOptions
from repro.obs.slo import SLOEngine, SLOSpec
from repro.obs.timeseries import (
    RegistrySampler,
    RingBuffer,
    RingStore,
    histogram_quantile,
    merge_stores,
    sparkline,
)

BURST_PLAN = "examples/faults/health_burst.json"
BURST_OVERRIDES = {"checkpoint_every": 48, "checkpoint_bytes": 4e9}


def _event_log(monitor):
    return [
        f"{e.tick}:{e.rule}:{e.transition}:{e.scope}" for e in monitor.engine.events
    ]


def _run_monitored(shards, fault_plan=None, overrides=None, interval=250.0):
    from repro.core.profiler import ProfilerOptions
    from repro.serve import DEFAULT_FLEET_WORKLOADS, run_fleet

    monitor = HealthMonitor()
    result = run_fleet(
        DEFAULT_FLEET_WORKLOADS,
        shards=shards,
        fault_plan=fault_plan,
        health=monitor,
        profiler_options=ProfilerOptions(request_interval_ms=interval),
        plan_overrides=overrides,
    )
    return monitor, result


class TestHistogramQuantile:
    def test_interpolates_inside_bucket(self):
        # 10 observations <= 1.0, 10 more <= 2.0: the median sits at the
        # 1.0 bound and p75 halfway through the second bucket.
        cumulative = [(1.0, 10), (2.0, 20), (float("inf"), 20)]
        assert histogram_quantile(cumulative, 0.5) == pytest.approx(1.0)
        assert histogram_quantile(cumulative, 0.75) == pytest.approx(1.5)

    def test_infinite_bucket_uses_observed_max(self):
        cumulative = [(1.0, 1), (float("inf"), 4)]
        assert histogram_quantile(cumulative, 0.99, observed_max=7.5) == 7.5
        # Without a known max, the last finite bound caps the answer.
        assert histogram_quantile(cumulative, 0.99) == 1.0

    def test_empty_and_bad_quantile(self):
        assert histogram_quantile([], 0.5) == 0.0
        with pytest.raises(ObsError):
            histogram_quantile([(1.0, 1)], 1.0)


class TestRingBuffer:
    def test_evicts_oldest_beyond_capacity(self):
        ring = RingBuffer(capacity=3)
        for tick in range(5):
            ring.append(tick, float(tick))
        assert ring.ticks() == [2, 3, 4]
        assert ring.values() == [2.0, 3.0, 4.0]
        assert ring.evicted == 2
        assert ring.last() == 4.0
        assert ring.last_tick() == 4
        assert ring.window(2) == [3.0, 4.0]
        assert ring.mean() == pytest.approx(3.0)

    def test_ticks_must_increase(self):
        ring = RingBuffer()
        ring.append(5, 1.0)
        with pytest.raises(ObsError, match="must increase"):
            ring.append(5, 2.0)

    def test_round_trip(self):
        ring = RingBuffer(capacity=4)
        for tick in range(6):
            ring.append(tick, tick * 0.5)
        rebuilt = RingBuffer.from_dict(ring.to_dict())
        assert rebuilt.ticks() == ring.ticks()
        assert rebuilt.values() == ring.values()
        assert rebuilt.evicted == ring.evicted

    @pytest.mark.parametrize(
        "payload, message",
        [
            ({"capacity": 0, "ticks": [], "values": []}, "bad capacity"),
            ({"capacity": 4, "ticks": [1, 2], "values": [1.0]}, "torn"),
            ({"capacity": 4, "ticks": [2, 1], "values": [1.0, 2.0]}, "not increasing"),
            ({"capacity": 1, "ticks": [1, 2], "values": [1.0, 2.0]}, "over capacity"),
            ({"capacity": 4, "ticks": [1.5], "values": [1.0]}, "non-integer tick"),
            ({"capacity": 4, "ticks": [1], "values": ["x"]}, "non-numeric value"),
        ],
    )
    def test_malformed_dump_rejected(self, payload, message):
        with pytest.raises(ObsError, match=message):
            RingBuffer.from_dict(payload)


class TestRingStore:
    def test_record_get_match_points(self):
        store = RingStore(capacity=8)
        store.record("serve:a:rate", 1, 2.0)
        store.record("serve:b:rate", 1, 3.0)
        store.record("drift:job-0", 1, 0.1)
        assert store.names() == ["drift:job-0", "serve:a:rate", "serve:b:rate"]
        assert store.match("serve:") == ["serve:a:rate", "serve:b:rate"]
        assert store.get("missing") is None
        assert store.points() == 3
        assert len(store) == 3

    def test_round_trip_and_validation(self):
        store = RingStore(capacity=4)
        store.record("x", 1, 1.0)
        rebuilt = RingStore.from_dict(store.to_dict())
        assert rebuilt.get("x").values() == [1.0]
        with pytest.raises(ObsError, match="'series'"):
            RingStore.from_dict({"capacity": 4})
        with pytest.raises(ObsError, match="bad series name"):
            RingStore.from_dict({"capacity": 4, "series": {"": {}}})

    def test_merge_sums_counters_and_maxes_quantiles(self):
        left, right = RingStore(), RingStore()
        for tick in (1, 2):
            left.record("serve:ingest:rate", tick, 2.0)
            right.record("serve:ingest:rate", tick, 3.0)
        left.record("repro_latency_us:p95", 1, 40.0)
        right.record("repro_latency_us:p95", 1, 70.0)
        left.record("only:left", 1, 5.0)
        merged = merge_stores([left, right])
        assert merged.get("serve:ingest:rate").values() == [5.0, 5.0]
        # Latencies do not add across shards: quantile series take max.
        assert merged.get("repro_latency_us:p95").values() == [70.0]
        assert merged.get("only:left").values() == [5.0]

    def test_sparkline(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == "▁" and line[-1] == "█" and len(line) == 3
        assert len(sparkline(list(map(float, range(100))), width=24)) == 24


class TestRegistrySampler:
    def test_counter_first_scrape_is_baseline(self):
        registry = obs.MetricsRegistry()
        family = registry.counter("repro_t_total")
        family.labels().inc(10)
        store = RingStore()
        sampler = RegistrySampler(store)
        sampler.sample(registry, 1)
        family.labels().inc(3)
        sampler.sample(registry, 2)
        # Pre-monitoring totals never masquerade as a burst.
        assert store.get("repro_t_total:rate").values() == [0.0, 3.0]

    def test_labeled_series_names_are_stable(self):
        registry = obs.MetricsRegistry()
        registry.gauge("repro_g", labels=("b", "a")).labels(b="2", a="1").set(7.0)
        store = RingStore()
        RegistrySampler(store).sample(registry, 1)
        assert store.names() == ["repro_g{a=1,b=2}"]

    def test_histogram_digest(self):
        registry = obs.MetricsRegistry()
        family = registry.histogram("repro_h_us", buckets=(1.0, 10.0))
        for value in (0.5, 0.5, 12.0):
            family.labels().observe(value)
        store = RingStore()
        RegistrySampler(store).sample(registry, 1)
        assert store.get("repro_h_us:rate").values() == [0.0]
        assert store.get("repro_h_us:p50").last() == pytest.approx(0.75)
        # The +Inf bucket reports the observed max, not infinity.
        assert store.get("repro_h_us:p99").last() == pytest.approx(12.0)


class TestSLOEngine:
    def test_spec_validation(self):
        with pytest.raises(ObsError):
            SLOSpec(name="", target=0.5)
        with pytest.raises(ObsError):
            SLOSpec(name="x", target=1.5)
        with pytest.raises(ObsError):
            SLOSpec(name="x", target=0.5, short_window=5, long_window=3)
        with pytest.raises(ObsError):
            SLOSpec(name="x", target=0.5, burn_factor=0.0)
        with pytest.raises(ObsError):
            SLOEngine((SLOSpec(name="x", target=0.5), SLOSpec(name="x", target=0.6)))

    def test_first_observation_is_baseline(self):
        engine = SLOEngine((SLOSpec(name="goodput", target=0.5),))
        store = RingStore()
        status = engine.observe("goodput", 10.0, 100.0, store, 1)
        assert status.ratio == 1.0  # pre-history is on-target by definition
        status = engine.observe("goodput", 10.0, 100.0, store, 2)
        assert status.ratio == 1.0  # idle window: no charges since last look
        status = engine.observe("goodput", 30.0, 140.0, store, 3)
        assert status.ratio == pytest.approx(0.5)

    def test_unknown_slo_and_bad_totals(self):
        engine = SLOEngine()
        store = RingStore()
        with pytest.raises(ObsError, match="unknown SLO"):
            engine.observe("latency", 1.0, 2.0, store, 1)
        with pytest.raises(ObsError, match="good <= total"):
            engine.observe("goodput", 3.0, 2.0, store, 1)

    def test_burn_uses_nominal_window(self):
        # One on-target tick then one total miss: with a short window of
        # 3 the miss is averaged over the nominal 3 ticks, not the 2
        # held, so a half-filled window cannot page at full burn.
        spec = SLOSpec(name="goodput", target=0.5, short_window=3, long_window=9)
        engine = SLOEngine((spec,))
        store = RingStore()
        engine.observe("goodput", 0.0, 0.0, store, 1)
        engine.observe("goodput", 10.0, 10.0, store, 2)
        status = engine.observe("goodput", 10.0, 20.0, store, 3)
        assert status.ratio == 0.0
        assert status.burn_short == pytest.approx((1.0 / 3) / spec.budget)
        assert not status.burning

    def test_burning_needs_both_windows(self):
        spec = SLOSpec(
            name="goodput", target=0.5, short_window=1, long_window=3, burn_factor=1.0
        )
        engine = SLOEngine((spec,))
        store = RingStore()
        engine.observe("goodput", 0.0, 0.0, store, 1)
        engine.observe("goodput", 0.0, 10.0, store, 2)  # short burns, long not yet
        assert store.get("slo:goodput:burning").last() == 0.0
        engine.observe("goodput", 0.0, 20.0, store, 3)
        status = engine.observe("goodput", 0.0, 30.0, store, 4)
        assert status.burning
        assert store.get("slo:goodput:burning").last() == 1.0
        [row] = engine.status(store)
        assert row.burning and "BURNING" in row.format()


class TestAlertRules:
    def test_rule_validation(self):
        with pytest.raises(ObsError):
            AlertRule(name="", series="s", threshold=0.0)
        with pytest.raises(ObsError):
            AlertRule(name="R", series="s", threshold=0.0, kind="quantile")
        with pytest.raises(ObsError):
            AlertRule(name="R", series="s", threshold=0.0, comparison="near")
        with pytest.raises(ObsError):
            AlertRule(name="R", series="s", threshold=0.0, for_ticks=0)
        with pytest.raises(ObsError):
            AlertEngine(
                [
                    AlertRule(name="R", series="a", threshold=0.0),
                    AlertRule(name="R", series="b", threshold=0.0),
                ]
            )

    def test_builtin_rules_cover_the_fleet_signals(self):
        rules = {rule.name: rule for rule in builtin_rules()}
        assert set(rules) == {
            "CIRCUIT_FLAP",
            "INGEST_SATURATION",
            "QUARANTINE_GROWTH",
            "GOODPUT_COLLAPSE",
            "GOODPUT_BURN",
            "INGEST_BURN",
            "PHASE_DRIFT",
            "CHIP_SDC_SUSPECT",
        }
        assert rules["PHASE_DRIFT"].wildcard
        assert rules["CIRCUIT_FLAP"].severity is AlertSeverity.CRITICAL


class TestAlertEngine:
    RULE = AlertRule(
        name="HOT", series="temp", threshold=1.0, for_ticks=2, clear_ticks=2
    )

    def test_pending_firing_resolved_hysteresis(self):
        engine = AlertEngine([self.RULE])
        store = RingStore()
        store.record("temp", 1, 5.0)
        assert engine.evaluate(store, 1) == []  # pending: for_ticks=2
        store.record("temp", 2, 5.0)
        [fired] = engine.evaluate(store, 2)
        assert (fired.transition, fired.tick) == ("fired", 2)
        store.record("temp", 3, 0.0)
        assert engine.evaluate(store, 3) == []  # clear_ticks=2
        store.record("temp", 4, 5.0)  # breach resets the good streak
        assert engine.evaluate(store, 4) == []
        store.record("temp", 5, 0.0)
        store.record("temp", 6, 0.0)
        engine.evaluate(store, 5)
        [resolved] = engine.evaluate(store, 6)
        assert (resolved.transition, resolved.tick) == ("resolved", 6)
        assert "HOT" in resolved.format() and "resolved" in resolved.format()

    def test_stale_series_counts_as_clear(self):
        engine = AlertEngine(
            [AlertRule(name="HOT", series="temp", threshold=1.0, clear_ticks=1)]
        )
        store = RingStore()
        store.record("temp", 1, 5.0)
        [fired] = engine.evaluate(store, 1)
        assert fired.transition == "fired"
        # No fresh sample at tick 2: a completed job's alert resolves
        # instead of firing forever.
        [resolved] = engine.evaluate(store, 2)
        assert resolved.transition == "resolved"

    def test_wildcard_scopes_one_alert_per_series(self):
        engine = AlertEngine(
            [AlertRule(name="DRIFT", series="drift:*", threshold=0.5, clear_ticks=1)]
        )
        store = RingStore()
        store.record("drift:job-a", 1, 0.9)
        store.record("drift:job-b", 1, 0.1)
        [event] = engine.evaluate(store, 1)
        assert event.scope == "job-a"
        # Healthy scopes are never materialized.
        assert engine.alert("DRIFT", "job-b") is None
        assert engine.alert("DRIFT", "job-a").firing

    def test_absence_rule(self):
        engine = AlertEngine(
            [
                AlertRule(
                    name="SILENT", series="beat", threshold=2.0, kind="absence",
                    clear_ticks=1,
                )
            ]
        )
        store = RingStore()
        assert engine.evaluate(store, 1) == []  # never reported: nothing silent
        store.record("beat", 2, 1.0)
        for tick in (3, 4, 5):
            events = engine.evaluate(store, tick)
        [event] = events
        assert event.transition == "fired" and event.value == 3.0
        store.record("beat", 6, 1.0)
        [resolved] = engine.evaluate(store, 6)
        assert resolved.transition == "resolved"

    def test_ticks_must_increase(self):
        engine = AlertEngine([self.RULE])
        store = RingStore()
        engine.evaluate(store, 3)
        with pytest.raises(ObsError, match="must increase"):
            engine.evaluate(store, 3)

    def test_finish_resolves_residuals_once(self):
        engine = AlertEngine(
            [AlertRule(name="HOT", series="temp", threshold=1.0)]
        )
        store = RingStore()
        store.record("temp", 1, 5.0)
        engine.evaluate(store, 1)
        [resolved] = engine.finish()
        assert resolved.transition == "resolved" and resolved.tick == 2
        assert engine.active() == []

    def test_ack_and_to_dict(self):
        engine = AlertEngine(
            [AlertRule(name="HOT", series="temp", threshold=1.0)]
        )
        store = RingStore()
        store.record("temp", 1, 5.0)
        engine.evaluate(store, 1)
        assert engine.ack("HOT") == 1
        assert engine.ack("HOT") == 0  # already acked
        assert engine.ack("COLD") == 0
        payload = engine.to_dict()
        assert payload["version"] == 1
        assert [event["transition"] for event in payload["events"]] == ["fired"]
        [active] = payload["active"]
        assert active["acked"] is True

    def test_active_orders_critical_first(self):
        engine = AlertEngine(
            [
                AlertRule(name="WARN", series="w", threshold=0.0),
                AlertRule(
                    name="CRIT", series="c", threshold=0.0,
                    severity=AlertSeverity.CRITICAL,
                ),
            ]
        )
        store = RingStore()
        store.record("w", 1, 1.0)
        store.record("c", 1, 1.0)
        engine.evaluate(store, 1)
        assert [alert.rule.name for alert in engine.active()] == ["CRIT", "WARN"]


class _FakeStats:
    def __init__(self, name, duration):
        self.name = name
        self.total_duration_us = duration


class _FakePhase:
    def __init__(self, durations):
        self.operators = {
            name: _FakeStats(name, duration) for name, duration in durations.items()
        }


class _FakeAnalysis:
    def __init__(self, durations, steps_seen=10):
        self.phases = {"P0": _FakePhase(durations)}
        self.steps_seen = steps_seen


class TestDrift:
    def test_mix_distance_properties(self):
        a = {"MatMul": 0.6, "Conv2D": 0.4}
        assert mix_distance(a, a) == 0.0
        assert mix_distance(a, {"Checkpoint": 1.0}) == 1.0
        assert mix_distance({}, a) == 1.0
        assert mix_distance(a, {"MatMul": 0.4, "Conv2D": 0.6}) == pytest.approx(0.2)

    def test_mix_shares_and_fingerprint(self):
        window = {"MatMul": 30.0, "Conv2D": 10.0}
        shares = mix_shares(window)
        assert shares["MatMul"] == pytest.approx(0.75)
        assert mix_shares({}) == {}
        # Ties break by name: deterministic regardless of dict order.
        tied = {"b": 1.0, "a": 1.0, "c": 1.0}
        assert window_fingerprint(tied, top_k=2) == frozenset({"a", "b"})

    def test_band_validation(self):
        with pytest.raises(ObsError):
            DriftBand(fire_distance=0.0)
        with pytest.raises(ObsError):
            DriftBand(top_k=0)

    def test_self_baseline_detects_excursion_and_recovery(self):
        detector = PhaseDriftDetector(band=DriftBand(min_steps=1))
        # Too young: below min_steps nothing is measured.
        assert detector.observe("job", _FakeAnalysis({"MatMul": 1.0}, steps_seen=0)) is None
        # First qualifying look only primes the delta accumulator.
        assert detector.observe("job", _FakeAnalysis({"MatMul": 100.0})) is None
        # First full window pins the self-baseline: distance 0.
        assert detector.observe("job", _FakeAnalysis({"MatMul": 200.0})) == 0.0
        assert detector.baseline("job") == {"MatMul": 1.0}
        # A checkpoint excursion dominates the next window.
        drifted = detector.observe(
            "job", _FakeAnalysis({"MatMul": 210.0, "Checkpoint": 90.0})
        )
        assert drifted == pytest.approx(0.9)
        # Idle window holds the previous distance instead of inventing one.
        assert detector.observe(
            "job", _FakeAnalysis({"MatMul": 210.0, "Checkpoint": 90.0})
        ) == pytest.approx(0.9)
        # Back to the training mix: the distance collapses again.
        recovered = detector.observe(
            "job", _FakeAnalysis({"MatMul": 310.0, "Checkpoint": 90.0})
        )
        assert recovered == 0.0
        totals = operator_totals(_FakeAnalysis({"MatMul": 1.0}))
        assert totals == {"MatMul": 1.0}

    def test_forget_drops_job_state(self):
        detector = PhaseDriftDetector(band=DriftBand(min_steps=1))
        detector.observe("job", _FakeAnalysis({"MatMul": 100.0}))
        detector.observe("job", _FakeAnalysis({"MatMul": 200.0}))
        detector.forget("job")
        assert detector.baseline("job") is None
        assert detector.last_distance == {}
        # After forgetting, the next look primes again.
        assert detector.observe("job", _FakeAnalysis({"MatMul": 300.0})) is None

    def test_knowledge_base_baseline_wins(self):
        class _Nearest:
            similarity = 0.75

        class _FakeKB:
            def __len__(self):
                return 3

            def nearest(self, fingerprint):
                return _Nearest()

        detector = PhaseDriftDetector(knowledge=_FakeKB(), band=DriftBand(min_steps=1))
        detector.observe("job", _FakeAnalysis({"MatMul": 100.0}))
        distance = detector.observe("job", _FakeAnalysis({"MatMul": 200.0}))
        # 1 - similarity, not the self-baseline 0.0.
        assert distance == pytest.approx(0.25)


class TestHealthOptions:
    def test_validation(self):
        with pytest.raises(ObsError):
            HealthOptions(capacity=0)
        with pytest.raises(ObsError):
            HealthOptions(sample_every=0)

    def test_monitor_rejects_double_finish_observe(self):
        monitor = HealthMonitor()
        assert monitor.finish() == []
        assert monitor.finish() == []  # idempotent
        with pytest.raises(ObsError, match="already finished"):
            monitor.observe(object())

    def test_subsampling_skips_offbeat_ticks(self):
        monitor = HealthMonitor(HealthOptions(sample_every=4))
        offset = monitor._offset % 4

        class _Silent:
            class metrics:
                records_submitted = 0
                records_ingested = 0
                records_dropped = 0
                records_quarantined = 0
                steps_assembled = 0
                jobs_stalled = 0

        for tick in range(1, 9):
            monitor.observe(_Silent(), tick)
        assert monitor.samples == sum(1 for t in range(1, 9) if t % 4 == offset)


@pytest.fixture(scope="module")
def burst_run():
    """One faulted, monitored fleet run (the ISSUE acceptance scenario)."""
    from repro.faults import load_plan

    monitor, result = _run_monitored(
        shards=2, fault_plan=load_plan(BURST_PLAN), overrides=BURST_OVERRIDES
    )
    return monitor, result


class TestHealthMonitorFleet:
    def test_healthy_run_emits_no_alerts(self):
        monitor, result = _run_monitored(shards=2)
        assert monitor.engine.events == []
        assert monitor.engine.active() == []
        assert monitor.samples == result.rounds
        # Telemetry still flowed: rings hold steps/ingest series.
        assert monitor.rings.get("serve:steps_assembled:rate").last() is not None
        assert sum(monitor.rings.get("serve:records_ingested:rate").values()) > 0

    def test_faulted_run_fires_and_resolves_the_core_rules(self, burst_run):
        monitor, _ = burst_run
        events = monitor.engine.events
        assert events, "the burst scenario must produce alert transitions"
        for rule in ("CIRCUIT_FLAP", "GOODPUT_BURN", "PHASE_DRIFT"):
            transitions = [e.transition for e in events if e.rule == rule]
            assert "fired" in transitions, f"{rule} never fired"
            assert "resolved" in transitions, f"{rule} never resolved"
        # Nothing is left dangling after finish().
        assert monitor.engine.active() == []
        fired = sum(1 for e in events if e.transition == "fired")
        resolved = sum(1 for e in events if e.transition == "resolved")
        assert fired == resolved

    def test_drift_alerts_are_per_job_scoped(self, burst_run):
        monitor, _ = burst_run
        scopes = {e.scope for e in monitor.engine.events if e.rule == "PHASE_DRIFT"}
        assert scopes, "PHASE_DRIFT produced no scopes"
        assert all(scope != "fleet" for scope in scopes)
        for scope in scopes:
            assert monitor.rings.get(f"drift:{scope}") is not None

    def test_alert_log_is_shard_invariant_and_repeatable(self, burst_run):
        from repro.faults import load_plan

        monitor, _ = burst_run
        reference = _event_log(monitor)
        for shards in (1, 2):
            again, _ = _run_monitored(
                shards=shards,
                fault_plan=load_plan(BURST_PLAN),
                overrides=BURST_OVERRIDES,
            )
            assert _event_log(again) == reference, f"log diverged at {shards} shard(s)"
            # The alert-only dump is deliberately ring-free, so the whole
            # payload must be identical at any shard count too.
            assert again.alerts_dict() == monitor.alerts_dict()

    def test_dashboard_renders_all_sections(self, burst_run):
        monitor, _ = burst_run
        text = "\n".join(monitor.dashboard())
        assert "== fleet health @ tick" in text
        assert "-- shards --" in text
        assert "-- rings --" in text
        assert "-- drift --" in text
        assert "-- slo --" in text
        assert "goodput" in text and "ingest" in text
        assert "-- active alerts (0) --" in text

    def test_health_dump_round_trips_through_inspect(self, burst_run, tmp_path):
        monitor, _ = burst_run
        path = tmp_path / "health.json"
        path.write_text(json.dumps(monitor.to_dict()), encoding="utf-8")
        payload = obs.load_health(path)
        assert payload["tick"] == monitor.tick
        lines = obs.summarize_health(path)
        assert "health dump @ tick" in lines[0]
        assert any("alerts:" in line for line in lines)
        # The generic dispatcher recognizes the shape.
        assert obs.summarize(path) == lines

    def test_alert_dump_round_trips_through_inspect(self, burst_run, tmp_path):
        monitor, _ = burst_run
        path = tmp_path / "alerts.json"
        path.write_text(json.dumps(monitor.alerts_dict()), encoding="utf-8")
        payload = obs.load_alerts(path)
        assert len(payload["events"]) == len(monitor.engine.events)
        lines = obs.summarize_alerts(path)
        assert "alert dump" in lines[0]
        assert obs.summarize(path) == lines

    def test_health_metrics_account_for_the_run(self, burst_run):
        monitor, _ = burst_run
        registry = obs.default_registry()
        samples = registry.get("repro_obs_health_samples_total")
        assert samples is not None
        assert sum(child.value for child in samples.children()) >= monitor.samples
        events_family = registry.get("repro_obs_health_alert_events_total")
        labelled = {
            (child.label_values["rule"], child.label_values["transition"])
            for child in events_family.children()
        }
        assert ("CIRCUIT_FLAP", "fired") in labelled


class TestInspectHealthErrors:
    def test_torn_ring_dump_rejected(self, tmp_path):
        path = tmp_path / "health.json"
        payload = {
            "rings": {
                "capacity": 4,
                "series": {"x": {"capacity": 4, "ticks": [1, 2], "values": [1.0]}},
            }
        }
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ObsError, match="malformed ring dump"):
            obs.load_health(path)

    def test_malformed_shard_rings_rejected(self, tmp_path):
        path = tmp_path / "health.json"
        payload = {
            "rings": {"capacity": 4, "series": {}},
            "shards": {"shard-0": {"capacity": 0, "series": {}}},
        }
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ObsError, match="malformed ring dump"):
            obs.load_health(path)

    def test_not_a_health_dump(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text("{}", encoding="utf-8")
        with pytest.raises(ObsError, match="no 'rings'"):
            obs.load_health(path)

    def test_alert_dump_missing_keys_rejected(self, tmp_path):
        path = tmp_path / "alerts.json"
        path.write_text(json.dumps({"events": []}), encoding="utf-8")
        with pytest.raises(ObsError, match="not an alert dump"):
            obs.load_alerts(path)

    def test_alert_event_bad_transition_rejected(self, tmp_path):
        path = tmp_path / "alerts.json"
        payload = {
            "rules": [],
            "events": [
                {"tick": 1, "rule": "R", "scope": "fleet", "transition": "paged"}
            ],
        }
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ObsError, match="bad transition"):
            obs.load_alerts(path)

    def test_alert_event_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "alerts.json"
        payload = {"rules": [], "events": [{"tick": 1, "rule": "R"}]}
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ObsError, match="malformed alert event"):
            obs.load_alerts(path)
