"""Structural censuses of the workload models' graphs.

These pin the architecture-level facts each model claims (layer counts,
op families, FLOP scales) so a refactor cannot silently turn ResNet-50
into something else.
"""

import pytest

from repro.datasets.registry import dataset
from repro.models.bert import BertModel
from repro.models.dcgan import DcganModel
from repro.models.qanet import QanetModel
from repro.models.resnet import ResNetModel
from repro.models.retinanet import RetinaNetModel


class TestBertCensus:
    @pytest.fixture(scope="class")
    def graph(self):
        return BertModel().build_train_graph(32, dataset("mrpc"))

    def test_attention_projections(self, graph):
        # 12 layers x (Q,K,V,output) projections + scores/context + FFN pairs
        # + task head + backward dX/dW pairs: MatMul count is large and even.
        matmuls = graph.count_kind("MatMul")
        assert matmuls >= 12 * 8

    def test_layout_ops_present(self, graph):
        # Multi-head split/merge: >=4 reshapes and 1 transpose per layer.
        assert graph.count_kind("Reshape") >= 12 * 4
        assert graph.count_kind("Transpose") >= 12

    def test_flops_scale(self, graph):
        # BERT-base fwd ~22 GFLOP/example; training roughly doubles it.
        per_example = graph.total_flops() / 32
        assert 20e9 < per_example < 100e9


class TestResNetCensus:
    @pytest.fixture(scope="class")
    def graph(self):
        return ResNetModel().build_train_graph(64, dataset("imagenet"))

    def test_fifty_conv_layers(self, graph):
        # Stem + 16 bottlenecks x 3 = 49 forward convolutions.
        assert graph.count_kind("Conv2D") == 49

    def test_backward_convs_mirror_forward(self, graph):
        assert graph.count_kind("Conv2DBackpropFilter") == 49
        assert graph.count_kind("Conv2DBackpropInput") == 49

    def test_batch_norm_per_conv(self, graph):
        assert graph.count_kind("FusedBatchNormV3") == 49

    def test_flops_scale(self, graph):
        # ResNet-50 fwd ~4.1 GFLOP at 224^2; training ~3x.
        per_example = graph.total_flops() / 64
        assert 8e9 < per_example < 25e9


class TestQanetCensus:
    @pytest.fixture(scope="class")
    def graph(self):
        return QanetModel().build_train_graph(32, dataset("squad"))

    def test_encoder_blocks(self, graph):
        # 1 embedding + 7 model blocks, each with 2 pointwise convs
        # (as matmuls) + attention (6 matmuls) + FFN (2 matmuls).
        assert graph.count_kind("MatMul") >= 8 * 10

    def test_narrow_hidden_dimension(self):
        assert QanetModel().hidden == 128


class TestDcganCensus:
    @pytest.fixture(scope="class")
    def graph(self):
        return DcganModel().build_train_graph(256, dataset("cifar10"))

    def test_generator_and_two_discriminator_passes(self, graph):
        # Generator upsampling convs + two discriminator applications.
        assert graph.count_kind("Conv2D") >= 8

    def test_infeed_feeds_discriminator_only(self, graph):
        assert graph.count_kind("InfeedDequeueTuple") == 1


class TestRetinaNetCensus:
    @pytest.fixture(scope="class")
    def graph(self):
        return RetinaNetModel().build_train_graph(8, dataset("coco"))

    def test_backbone_plus_heads(self, graph):
        convs = graph.count_kind("Conv2D")
        # 49 backbone + 5 pyramid levels x (1 lateral + 2 subnets x 3).
        assert convs == 49 + 5 * (1 + 2 * 3)

    def test_compute_dominated_by_heads(self, graph):
        eval_graph = RetinaNetModel().build_eval_graph(8, dataset("coco"))
        # The detection heads keep even the eval graph heavyweight.
        assert eval_graph.total_flops() > 0.2 * graph.total_flops()
