"""Profiler work statistics and the compare CLI."""

import pytest

from repro.core.profiler import ProfilerStats, TPUPointProfiler


class TestProfilerStats:
    def test_counts_match_run(self, tiny_run):
        estimator, _, records = tiny_run
        # Rebuild a profiler view from the fixture's records.
        stats = ProfilerStats(
            requests_served=len(records),
            records_kept=len(records),
            events_reduced=sum(
                s.count
                for r in records
                for step in r.steps.values()
                for s in step.operators.values()
            ),
            operator_entries=sum(
                len(step.operators) for r in records for step in r.steps.values()
            ),
            bytes_persisted=0.0,
        )
        assert stats.events_reduced == estimator.session.log.num_events
        assert stats.compression_ratio > 1.0

    def test_live_profiler_stats(self, tiny_estimator):
        profiler = TPUPointProfiler(tiny_estimator)
        profiler.start(analyzer=True)
        tiny_estimator.train()
        profiler.stop()
        stats = profiler.stats()
        assert stats.records_kept == len(profiler.records)
        assert stats.requests_served >= stats.records_kept
        assert stats.events_reduced == tiny_estimator.session.log.num_events
        assert stats.bytes_persisted > 0.0
        # Statistical reduction genuinely compresses.
        assert stats.compression_ratio > 1.0

    def test_zero_division_guard(self):
        empty = ProfilerStats(0, 0, 0, 0, 0.0)
        assert empty.compression_ratio == 0.0


class TestCompareCli:
    def test_compare_command(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["compare", "bert-mrpc"]) == 0
        out = capsys.readouterr().out
        assert "speedup (A/B wall)" in out
        assert "biggest operator movers" in out
        assert "TPUv2 bill" in out and "TPUv3 bill" in out
