"""Dataset descriptors and registry (Table I)."""

import pytest

from repro import units
from repro.datasets.base import DatasetKind, DatasetSpec
from repro.datasets.registry import all_datasets, dataset
from repro.errors import ConfigurationError


@pytest.mark.parametrize(
    "name, size_mib",
    [
        ("SQuAD", 422.27),
        ("MRPC", 2.85),
        ("MNLI", 430.61),
        ("CoLA", 1.44),
        ("CIFAR10", 178.87),
        ("MNIST", 56.21),
    ],
)
def test_table1_sizes_mib(name, size_mib):
    assert dataset(name).total_bytes == pytest.approx(units.mib(size_mib))


@pytest.mark.parametrize("name, size_gib", [("COCO", 48.49), ("ImageNet", 143.38)])
def test_table1_sizes_gib(name, size_gib):
    assert dataset(name).total_bytes == pytest.approx(units.gib(size_gib))


def test_lookup_case_insensitive():
    assert dataset("imagenet").name == "ImageNet"
    assert dataset("ImageNet") is dataset("IMAGENET")


def test_unknown_dataset():
    with pytest.raises(ConfigurationError):
        dataset("cifar100")


def test_half_variant():
    half = dataset("squad-half")
    full = dataset("squad")
    assert half.total_bytes == pytest.approx(full.total_bytes / 2)
    assert half.num_examples == full.num_examples // 2
    assert half.name == "SQuAD-half"
    # Per-example properties are unchanged.
    assert half.device_bytes_per_example == full.device_bytes_per_example


def test_kinds():
    assert dataset("squad").kind is DatasetKind.TEXT
    assert dataset("coco").kind is DatasetKind.IMAGE


def test_storage_bytes_per_example():
    spec = dataset("mnist")
    assert spec.storage_bytes_per_example == pytest.approx(spec.total_bytes / spec.num_examples)


def test_shards_cover_dataset():
    spec = dataset("cifar10")
    shards = spec.shards()
    assert sum(s.num_examples for s in shards) == spec.num_examples
    assert sum(s.num_bytes for s in shards) == pytest.approx(spec.total_bytes)


def test_default_shard_sizing_about_100mib():
    shards = dataset("imagenet").shards()
    assert 50 * units.MIB < shards[0].num_bytes < 200 * units.MIB


def test_all_datasets_returns_eight():
    assert len(all_datasets()) == 8


def test_validation():
    with pytest.raises(ConfigurationError):
        DatasetSpec(
            name="bad",
            kind=DatasetKind.TEXT,
            total_bytes=0.0,
            num_examples=1,
            example_shape=(1,),
            device_bytes_per_example=1.0,
            decode_cpu_us=0.0,
            preprocess_cpu_us=0.0,
        )
