"""Unit helpers: conversions and formatting."""

import pytest

from repro import units


def test_byte_units_are_binary():
    assert units.KIB == 1024
    assert units.MIB == 1024**2
    assert units.GIB == 1024**3
    assert units.TIB == 1024**4


def test_mib_gib_round_trip():
    assert units.mib(1.0) == units.MIB
    assert units.gib(2.0) == 2 * units.GIB


def test_time_units_canonical_microseconds():
    assert units.seconds(1.0) == 1_000_000.0
    assert units.milliseconds(1.0) == 1_000.0
    assert units.minutes(1.0) == 60_000_000.0


def test_time_round_trips():
    assert units.us_to_seconds(units.seconds(3.5)) == pytest.approx(3.5)
    assert units.us_to_ms(units.milliseconds(7.25)) == pytest.approx(7.25)


def test_tflops():
    assert units.tflops(45.0) == 45e12


@pytest.mark.parametrize(
    "num_bytes, expected",
    [
        (500, "500 B"),
        (2048, "2.00 KiB"),
        (422.27 * units.MIB, "422.27 MiB"),
        (48.49 * units.GIB, "48.49 GiB"),
    ],
)
def test_format_bytes(num_bytes, expected):
    assert units.format_bytes(num_bytes) == expected


@pytest.mark.parametrize(
    "duration_us, expected",
    [
        (5.0, "5.0 us"),
        (1500.0, "1.50 ms"),
        (2.5e6, "2.50 s"),
        (90e6, "1.50 min"),
    ],
)
def test_format_duration(duration_us, expected):
    assert units.format_duration(duration_us) == expected
