"""The docs link checker keeps the documentation graph healthy."""

import importlib.util
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs_links", _REPO_ROOT / "tools" / "check_docs_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write(root: Path, relative: str, text: str) -> None:
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")


class TestRepositoryDocs:
    def test_repo_docs_have_no_broken_links(self, checker):
        assert checker.check_links(_REPO_ROOT) == []

    def test_every_docs_page_linked_from_index(self, checker):
        index = (_REPO_ROOT / "docs" / "index.md").read_text(encoding="utf-8")
        for page in sorted((_REPO_ROOT / "docs").glob("*.md")):
            if page.name == "index.md":
                continue
            assert f"({page.name})" in index, f"{page.name} missing from index"


class TestChecker:
    def test_clean_tree_passes(self, checker, tmp_path):
        _write(tmp_path, "docs/index.md", "[guide](guide.md) [up](../README.md)")
        _write(tmp_path, "docs/guide.md", "back to [index](index.md)")
        _write(tmp_path, "README.md", "[docs](docs/index.md)")
        assert checker.check_links(tmp_path) == []

    def test_broken_link_reported(self, checker, tmp_path):
        _write(tmp_path, "docs/index.md", "[gone](missing.md)")
        problems = checker.check_links(tmp_path)
        assert any("broken link -> missing.md" in p for p in problems)

    def test_unreachable_page_reported(self, checker, tmp_path):
        _write(tmp_path, "docs/index.md", "no links here")
        _write(tmp_path, "docs/orphan.md", "never linked")
        problems = checker.check_links(tmp_path)
        assert any("orphan.md is not reachable" in p for p in problems)

    def test_external_urls_and_anchors_ignored(self, checker, tmp_path):
        _write(
            tmp_path,
            "docs/index.md",
            "[web](https://example.com) [sec](#section) [ok](page.md#part)",
        )
        _write(tmp_path, "docs/page.md", "")
        assert checker.check_links(tmp_path) == []

    def test_missing_index_reported(self, checker, tmp_path):
        (tmp_path / "docs").mkdir()
        problems = checker.check_links(tmp_path)
        assert "docs/index.md is missing" in problems

    def test_main_exit_codes(self, checker, tmp_path, capsys):
        _write(tmp_path, "docs/index.md", "[gone](missing.md)")
        assert checker.main([str(tmp_path)]) == 1
        assert "broken link" in capsys.readouterr().err
        _write(tmp_path, "docs/index.md", "fine")
        assert checker.main([str(tmp_path)]) == 0
        assert "docs links OK" in capsys.readouterr().out
