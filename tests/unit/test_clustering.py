"""k-means, DBSCAN, and the elbow method."""

import numpy as np
import pytest

from repro.core.analyzer.dbscan import NOISE, dbscan, default_eps, sweep_min_samples
from repro.core.analyzer.elbow import elbow_value, find_elbow
from repro.core.analyzer.kmeans import kmeans, sweep_k
from repro.errors import AnalyzerError, ClusteringError


def _blobs(rng, centers=((0, 0), (10, 10), (20, 0)), per=30, scale=0.5):
    points = [rng.normal(loc=c, scale=scale, size=(per, 2)) for c in centers]
    return np.vstack(points)


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        data = _blobs(rng)
        result = kmeans(data, 3, rng)
        # Each blob maps to exactly one cluster label.
        for start in (0, 30, 60):
            assert len(set(result.labels[start : start + 30].tolist())) == 1
        assert len(set(result.labels.tolist())) == 3

    def test_inertia_zero_for_identical_points(self, rng):
        data = np.ones((10, 3))
        assert kmeans(data, 1, rng).inertia == pytest.approx(0.0)

    def test_inertia_decreases_with_k(self, rng):
        data = _blobs(rng)
        sweep = sweep_k(data, range(1, 6), rng)
        inertias = [sweep[k].inertia for k in sorted(sweep)]
        assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_k_equals_n_gives_zero_inertia(self, rng):
        data = rng.normal(size=(5, 2))
        assert kmeans(data, 5, rng).inertia == pytest.approx(0.0, abs=1e-9)

    def test_labels_in_range(self, rng):
        result = kmeans(_blobs(rng), 4, rng)
        assert set(result.labels.tolist()) <= set(range(4))

    def test_validation(self, rng):
        with pytest.raises(ClusteringError):
            kmeans(np.zeros((3, 2)), 0, rng)
        with pytest.raises(ClusteringError):
            kmeans(np.zeros((3, 2)), 4, rng)
        with pytest.raises(ClusteringError):
            kmeans(np.zeros((0, 2)), 1, rng)
        with pytest.raises(ClusteringError):
            kmeans(np.zeros((3, 2)), 1, rng, n_init=0)

    def test_deterministic_under_seed(self):
        data = _blobs(np.random.default_rng(0))
        a = kmeans(data, 3, np.random.default_rng(7))
        b = kmeans(data, 3, np.random.default_rng(7))
        assert np.array_equal(a.labels, b.labels)

    def test_sweep_stops_at_sample_count(self, rng):
        data = rng.normal(size=(4, 2))
        sweep = sweep_k(data, range(1, 16), rng)
        assert max(sweep) == 4


class TestDbscan:
    def test_finds_dense_clusters_and_noise(self, rng):
        data = np.vstack([_blobs(rng, centers=((0, 0), (10, 10)), per=40), [[100.0, 100.0]]])
        result = dbscan(data, eps=2.0, min_samples=5)
        assert result.num_clusters == 2
        assert result.labels[-1] == NOISE
        assert result.noise_ratio == pytest.approx(1 / 81)

    def test_min_samples_too_high_all_noise(self, rng):
        data = _blobs(rng, centers=((0, 0),), per=20)
        result = dbscan(data, eps=2.0, min_samples=50)
        assert result.num_clusters == 0
        assert result.noise_ratio == 1.0

    def test_noise_ratio_monotone_in_min_samples(self, rng):
        data = _blobs(rng)
        results = sweep_min_samples(data, [5, 15, 30, 60, 120], eps=2.0)
        ratios = [results[m].noise_ratio for m in sorted(results)]
        assert all(a <= b + 1e-9 for a, b in zip(ratios, ratios[1:]))

    def test_border_points_join_clusters(self):
        # A line of points spaced 1 apart with eps 1.5: one cluster.
        data = np.array([[float(i), 0.0] for i in range(10)])
        result = dbscan(data, eps=1.5, min_samples=3)
        assert result.num_clusters == 1
        assert result.noise_ratio == 0.0

    def test_default_eps_positive(self, rng):
        assert default_eps(_blobs(rng)) > 0.0
        assert default_eps(np.zeros((1, 2))) == 1.0

    def test_validation(self):
        with pytest.raises(ClusteringError):
            dbscan(np.zeros((2, 2)), eps=0.0, min_samples=1)
        with pytest.raises(ClusteringError):
            dbscan(np.zeros((2, 2)), eps=1.0, min_samples=0)
        with pytest.raises(ClusteringError):
            dbscan(np.zeros((0, 2)), eps=1.0, min_samples=1)


class TestElbow:
    def test_finds_knee_of_l_curve(self):
        xs = [1, 2, 3, 4, 5, 6]
        ys = [100.0, 40.0, 12.0, 10.0, 9.0, 8.5]
        assert elbow_value(xs, ys) == 3

    def test_straight_line_has_no_interior_knee(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [4.0, 3.0, 2.0, 1.0]
        idx = find_elbow(xs, ys)
        assert idx in (0, len(xs) - 1) or ys[idx] == pytest.approx(ys[idx])

    def test_short_curves(self):
        assert find_elbow([1.0], [5.0]) == 0
        assert find_elbow([1.0, 2.0], [5.0, 1.0]) == 0

    def test_validation(self):
        with pytest.raises(AnalyzerError):
            find_elbow([], [])
        with pytest.raises(AnalyzerError):
            find_elbow([1.0, 2.0], [1.0])
        with pytest.raises(AnalyzerError):
            find_elbow([1.0, 1.0, 1.0], [1.0, 2.0, 3.0])

    def test_flat_curve_returns_index(self):
        assert find_elbow([1.0, 2.0, 3.0], [5.0, 5.0, 5.0]) in (0, 1, 2)
