"""Edge cases and failure paths across modules."""

import pytest

from repro.cli import main as cli_main
from repro.core.analyzer import TPUPointAnalyzer
from repro.core.profiler import ProfilerOptions, TPUPointProfiler
from repro.errors import AnalyzerError, ClusteringError
from repro.runtime.events import DeviceKind, StepKind
from repro.runtime.session import SessionPlan


class TestCliErrorHandling:
    def test_unknown_workload_exits_one(self, capsys):
        assert cli_main(["profile", "not-a-workload"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_records_dir_exits_one(self, capsys, tmp_path):
        assert cli_main(["analyze", str(tmp_path / "nope")]) == 1
        assert "manifest" in capsys.readouterr().err

    def test_optimize_unknown_generation_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["optimize", "bert-mrpc", "--generation", "v4"])


class TestEvalRounds:
    @pytest.fixture
    def eval_estimator(self, tiny_model, tiny_dataset):
        plan = SessionPlan(
            train_steps=30,
            batch_size=32,
            iterations_per_loop=10,
            eval_every=10,
            eval_steps=3,
            checkpoint_every=0,
        )
        return tiny_model.build_estimator(tiny_dataset, plan=plan)

    def test_eval_steps_recorded(self, eval_estimator):
        eval_estimator.train()
        kinds = [m.kind for m in eval_estimator.session.log.steps]
        assert kinds.count(StepKind.EVAL) == 6  # rounds at step 10 and 20
        assert kinds.count(StepKind.TRAIN) == 30

    def test_eval_emits_padded_output(self, eval_estimator):
        eval_estimator.train()
        eval_steps = {
            m.step
            for m in eval_estimator.session.log.steps
            if m.kind is StepKind.EVAL
        }
        # One eval-output assembly event per eval step, on top of the text
        # pipeline's per-batch padding.
        extra = [
            e
            for e in eval_estimator.session.log.events
            if e.name == "BuildPaddedOutput" and e.step in eval_steps
        ]
        assert len(extra) >= 6

    def test_eval_steps_cheaper_than_train(self, eval_estimator):
        eval_estimator.train()
        steps = eval_estimator.session.log.steps
        train_flops = [m.mxu_flops for m in steps if m.kind is StepKind.TRAIN]
        eval_flops = [m.mxu_flops for m in steps if m.kind is StepKind.EVAL]
        assert max(eval_flops) < min(train_flops)

    def test_no_final_eval_round_after_last_step(self, tiny_model, tiny_dataset):
        plan = SessionPlan(
            train_steps=20, batch_size=32, eval_every=10, eval_steps=2
        )
        estimator = tiny_model.build_estimator(tiny_dataset, plan=plan)
        estimator.train()
        kinds = [m.kind for m in estimator.session.log.steps]
        # The round coinciding with the end of training is skipped.
        assert kinds.count(StepKind.EVAL) == 2


class TestAnalyzerEdgeCases:
    def test_single_step_run_analyzes(self, tiny_model, tiny_dataset):
        plan = SessionPlan(train_steps=1, batch_size=32, checkpoint_every=0)
        estimator = tiny_model.build_estimator(tiny_dataset, plan=plan)
        profiler = TPUPointProfiler(estimator)
        profiler.start()
        estimator.train()
        analyzer = TPUPointAnalyzer(profiler.stop())
        result = analyzer.ols_phases()
        assert result.num_phases >= 1
        # k cannot exceed the sample count.
        with pytest.raises(ClusteringError):
            analyzer.kmeans_phases(k=100)

    def test_kmeans_k_larger_than_steps_rejected(self, bert_mrpc_analyzer):
        with pytest.raises(ClusteringError):
            bert_mrpc_analyzer.kmeans_phases(k=10_000)

    def test_ols_threshold_bounds(self, bert_mrpc_analyzer):
        with pytest.raises(AnalyzerError):
            bert_mrpc_analyzer.ols_phases(threshold=2.0)

    def test_coverage_monotone_in_n(self, bert_mrpc_analyzer):
        report = bert_mrpc_analyzer.ols_phases().coverage()
        values = [report.top(n) for n in range(1, 5)]
        assert values == sorted(values)


class TestProfilerEdgeCases:
    def test_zero_steps_between_requests(self, tiny_model, tiny_dataset):
        """A huge interval means only the final drain produces records."""
        estimator = tiny_model.build_estimator(tiny_dataset)
        profiler = TPUPointProfiler(
            estimator, ProfilerOptions(request_interval_ms=10_000_000.0)
        )
        profiler.start()
        estimator.train()
        records = profiler.stop()
        assert len(records) >= 1
        covered = {s for r in records for s in r.steps}
        assert covered == {m.step for m in estimator.session.log.steps}

    def test_stop_before_any_training(self, tiny_estimator):
        profiler = TPUPointProfiler(tiny_estimator)
        profiler.start()
        records = profiler.stop()
        assert all(not record.num_steps for record in records)

    def test_host_and_tpu_durations_non_negative(self, tiny_run):
        estimator, _, _ = tiny_run
        assert all(e.duration_us >= 0 for e in estimator.session.log.events)

    def test_events_within_session_time(self, tiny_run):
        estimator, summary, _ = tiny_run
        # Host pipeline events may start slightly before t=0 only for the
        # first prefetch; nothing ends after the session's final time.
        assert all(
            e.end_us <= summary.wall_us + 1e-6 for e in estimator.session.log.events
            if e.device is DeviceKind.TPU
        )
