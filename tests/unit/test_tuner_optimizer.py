"""Hill-climbing tuner and the optimizer orchestration."""

import pytest

from repro.core.optimizer.optimizer import OptimizerOptions, TPUPointOptimizer
from repro.core.optimizer.parameters import discover_parameters
from repro.core.optimizer.quality import QualityController
from repro.core.optimizer.tuner import HillClimbTuner, TuningTrial
from repro.errors import OptimizerError
from repro.host.pipeline import PipelineConfig
from repro.models.naive import naive_pipeline_config


def _slow_estimator(tiny_model, tiny_dataset):
    """A tiny workload throttled by a naive pipeline (tunable headroom).

    The dataset's per-example CPU cost is inflated so the single-threaded,
    unprefetched naive pipeline genuinely bounds the step time.
    """
    from dataclasses import replace

    heavy = replace(tiny_dataset, decode_cpu_us=400.0, preprocess_cpu_us=200.0)
    return tiny_model.build_estimator(
        heavy,
        pipeline_config=naive_pipeline_config().with_updates(jitter=0.0),
    )


class TestTuningTrial:
    def test_throughput(self):
        trial = TuningTrial("p", 2, steps=4, elapsed_us=2e6, accepted=True)
        assert trial.throughput == pytest.approx(2.0)

    def test_degenerate_elapsed_time_rejected(self):
        # A zero-time trial is invalid evidence, not an infinitely slow
        # one: it must raise rather than quietly lose the comparison.
        for elapsed_us in (0.0, -1.0):
            trial = TuningTrial("p", 2, steps=4, elapsed_us=elapsed_us, accepted=False)
            with pytest.raises(OptimizerError, match="degenerate trial"):
                trial.throughput


class TestTuner:
    def test_validation(self, tiny_estimator):
        with pytest.raises(OptimizerError):
            HillClimbTuner(
                tiny_estimator,
                [],
                QualityController(tiny_estimator),
                trial_steps=0,
            )

    def test_tune_respects_step_budget(self, tiny_model, tiny_dataset):
        estimator = _slow_estimator(tiny_model, tiny_dataset)
        estimator.train_steps(1)
        tuner = HillClimbTuner(
            estimator,
            discover_parameters(estimator.current_pipeline_config()),
            QualityController(estimator),
            trial_steps=5,
            step_budget=10,
        )
        report = tuner.tune()
        assert report.steps_consumed <= 10

    def test_tuning_improves_naive_pipeline(self, tiny_model, tiny_dataset):
        estimator = _slow_estimator(tiny_model, tiny_dataset)
        estimator.train_steps(1)
        tuner = HillClimbTuner(
            estimator,
            discover_parameters(estimator.current_pipeline_config()),
            QualityController(estimator),
            trial_steps=4,
        )
        report = tuner.tune()
        assert report.improvement > 1.0
        assert report.best_config != report.initial_config
        # The estimator ends up running the best configuration.
        assert estimator.current_pipeline_config() == report.best_config

    def test_accepted_trials_marked(self, tiny_model, tiny_dataset):
        estimator = _slow_estimator(tiny_model, tiny_dataset)
        estimator.train_steps(1)
        tuner = HillClimbTuner(
            estimator,
            discover_parameters(estimator.current_pipeline_config()),
            QualityController(estimator),
            trial_steps=4,
        )
        report = tuner.tune()
        accepted = [t for t in report.trials if t.accepted]
        assert accepted
        assert all(t.parameter != "baseline" for t in accepted)

    def test_overhead_charged_per_trial(self, tiny_model, tiny_dataset):
        estimator = _slow_estimator(tiny_model, tiny_dataset)
        estimator.train_steps(1)
        tuner = HillClimbTuner(
            estimator,
            discover_parameters(estimator.current_pipeline_config()),
            QualityController(estimator),
            trial_steps=4,
            overhead_us_per_trial=12_345.0,
        )
        report = tuner.tune()
        events = [
            e
            for e in estimator.session.log.events
            if e.name == "TPUPointOptimizerPostProcess"
        ]
        assert len(events) == len(report.trials)
        assert all(e.duration_us == 12_345.0 for e in events)


class TestOptimizerOptions:
    def test_validation(self):
        with pytest.raises(OptimizerError):
            OptimizerOptions(trial_steps=0)
        with pytest.raises(OptimizerError):
            OptimizerOptions(max_tuning_fraction=0.0)


class TestOptimizerRun:
    def test_full_run_completes_plan(self, tiny_model, tiny_dataset):
        estimator = _slow_estimator(tiny_model, tiny_dataset)
        result = TPUPointOptimizer(
            estimator, OptimizerOptions(detection_chunk_steps=5, trial_steps=3)
        ).run()
        assert estimator.session.finished
        assert estimator.session.global_step == estimator.plan.train_steps
        assert result.summary.wall_us > 0

    def test_naive_workload_gets_tuned(self, tiny_model, tiny_dataset):
        estimator = _slow_estimator(tiny_model, tiny_dataset)
        result = TPUPointOptimizer(
            estimator, OptimizerOptions(detection_chunk_steps=5, trial_steps=3)
        ).run()
        assert result.detector_triggered_at_step is not None
        assert result.tuned
        assert result.improvement > 1.0

    def test_optimized_beats_untouched_naive_run(self, tiny_model, tiny_dataset):
        baseline = _slow_estimator(tiny_model, tiny_dataset).train()
        estimator = _slow_estimator(tiny_model, tiny_dataset)
        result = TPUPointOptimizer(
            estimator, OptimizerOptions(detection_chunk_steps=5, trial_steps=3)
        ).run()
        assert result.summary.wall_us < baseline.wall_us

    def test_instrumentation_checkpoint_written(self, tiny_model, tiny_dataset):
        estimator = _slow_estimator(tiny_model, tiny_dataset)
        result = TPUPointOptimizer(
            estimator, OptimizerOptions(detection_chunk_steps=5, trial_steps=3)
        ).run()
        if result.tuning is not None:
            assert result.instrumentation.checkpoint_steps
