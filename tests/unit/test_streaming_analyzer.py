"""Streaming phase analysis: online PCA + mini-batch k-means + serve wiring."""

import numpy as np
import pytest

from repro.core.analyzer import TPUPointAnalyzer
from repro.core.analyzer.streaming import (
    MiniBatchKMeans,
    StreamingAnalyzer,
    StreamingConfig,
)
from repro.core.profiler.record import ProfileRecord, StepStats
from repro.core.profiler.serialize import record_checksum
from repro.errors import AnalyzerError
from repro.faults import FaultPlan, RecordTransit
from repro.runtime.events import DeviceKind, StepKind
from repro.serve import (
    FleetService,
    FleetServiceOptions,
    LiveJobAnalysis,
    ShardedFleet,
    ShardedFleetOptions,
)


def _step(number, ops, duration_us=100.0, idle_us=20.0, mxu_flops=1e6):
    step = StepStats(step=number)
    for name in ops:
        step.observe(name, DeviceKind.TPU, 10.0)
    step.kind = StepKind.TRAIN
    step.start_us = number * duration_us
    step.end_us = (number + 1) * duration_us
    step.tpu_idle_us = idle_us
    step.mxu_flops = mxu_flops
    return step


def _record(index, steps):
    record = ProfileRecord(index=index, window_start_us=0.0, window_end_us=1.0)
    for step in steps:
        record.steps[step.step] = step
    return record


_PHASE_OPS = (
    ["matmul", "fusion", "relu"],
    ["conv", "pool", "softmax"],
    ["save", "embed", "gather"],
)


def _phased_records(block=8, phases=3, steps_per_record=4, scale=1):
    """Phase-contiguous stream: ``phases`` blocks of ``block * scale`` steps."""
    steps = []
    number = 0
    for phase in range(phases):
        for _ in range(block * scale):
            steps.append(_step(number, _PHASE_OPS[phase % len(_PHASE_OPS)]))
            number += 1
    return [
        _record(i, steps[i * steps_per_record : (i + 1) * steps_per_record])
        for i in range((len(steps) + steps_per_record - 1) // steps_per_record)
    ]


def _fold_all(analyzer, records):
    for record in records:
        analyzer.fold_record(record)
    analyzer.finish()
    return analyzer


def _same_partition(left, right):
    """Label sequences equal up to a renaming of the label alphabet."""
    mapping = {}
    for a, b in zip(left.tolist(), right.tolist()):
        if mapping.setdefault(a, b) != b:
            return False
    return len(set(mapping.values())) == len(mapping)


class TestStreamingConfig:
    def test_validation(self):
        with pytest.raises(AnalyzerError):
            StreamingConfig(mode="batch")
        with pytest.raises(AnalyzerError):
            StreamingConfig(max_pca_dims=0)
        with pytest.raises(AnalyzerError):
            StreamingConfig(k=0)
        with pytest.raises(AnalyzerError):
            StreamingConfig(minibatch_clusters=-1)

    def test_empty_analyzer_refuses_analysis(self):
        with pytest.raises(AnalyzerError):
            StreamingAnalyzer().analyze()


class TestMiniBatchKMeans:
    def test_deterministic_across_replays(self):
        rows = np.arange(24, dtype=float).reshape(8, 3) % 5
        first, second = MiniBatchKMeans(k=3), MiniBatchKMeans(k=3)
        for clusterer in (first, second):
            clusterer.fold(rows[:4])
            clusterer.fold(rows[4:])
        assert np.array_equal(first.assign(rows), second.assign(rows))
        assert first.num_centers == second.num_centers

    def test_centers_pad_as_vocabulary_grows(self):
        clusterer = MiniBatchKMeans(k=4)
        clusterer.fold(np.ones((2, 2)))
        clusterer.fold(np.ones((2, 5)))  # vocabulary grew mid-stream
        labels = clusterer.assign(np.ones((3, 5)))
        assert labels.shape == (3,)
        assert clusterer.state_bytes() > 0

    def test_invalid_k_rejected(self):
        with pytest.raises(AnalyzerError):
            MiniBatchKMeans(k=0)


class TestExactEquivalence:
    def test_labels_bit_identical_to_batch(self):
        records = _phased_records()
        batch = TPUPointAnalyzer(records).kmeans_phases()
        streaming = _fold_all(StreamingAnalyzer(), records).analyze()
        assert np.array_equal(streaming.labels, batch.labels)
        assert streaming.params["k"] == batch.params["k"]
        assert streaming.method == "kmeans-streaming-exact"

    def test_explicit_k_matches_batch(self):
        records = _phased_records()
        batch = TPUPointAnalyzer(records).kmeans_phases(k=2)
        streaming = _fold_all(
            StreamingAnalyzer(StreamingConfig(k=2)), records
        ).analyze()
        assert np.array_equal(streaming.labels, batch.labels)

    def test_analysis_is_non_destructive(self):
        records = _phased_records()
        analyzer = _fold_all(StreamingAnalyzer(), records)
        first = analyzer.analyze()
        second = analyzer.analyze()
        assert np.array_equal(first.labels, second.labels)
        # folding can continue after an analysis
        analyzer.fold_record(_record(len(records), [_step(999, _PHASE_OPS[0])]))
        analyzer.finish()
        assert analyzer.analyze().labels.shape[0] == first.labels.shape[0] + 1

    def test_phases_and_boundaries_tile_the_stream(self):
        records = _phased_records()
        analysis = _fold_all(StreamingAnalyzer(), records).analyze()
        total = analysis.labels.shape[0]
        assert sum(phase.num_steps for phase in analysis.phases) == total
        assert analysis.boundaries[0].start_position == 0
        assert analysis.boundaries[-1].end_position == total - 1
        position = 0
        for boundary in analysis.boundaries:
            assert boundary.start_position == position
            labels = analysis.labels[
                boundary.start_position : boundary.end_position + 1
            ]
            assert set(labels.tolist()) == {boundary.phase_id}
            position = boundary.end_position + 1
        # phase tables carry the operator attribution
        top = analysis.phases[0].top_operators(3, DeviceKind.TPU)
        assert top and all(stats.device is DeviceKind.TPU for stats in top)


class TestSketchMode:
    def test_deterministic(self):
        records = _phased_records()
        config = StreamingConfig(mode="sketch")
        first = _fold_all(StreamingAnalyzer(config), records).analyze()
        second = _fold_all(StreamingAnalyzer(config), records).analyze()
        assert np.array_equal(first.labels, second.labels)
        assert first.params == second.params

    def test_explicit_k_partition_matches_batch(self):
        records = _phased_records()
        batch = TPUPointAnalyzer(records).kmeans_phases(k=3)
        sketch = _fold_all(
            StreamingAnalyzer(StreamingConfig(mode="sketch", k=3)), records
        ).analyze()
        assert _same_partition(sketch.labels, batch.labels)
        assert sketch.method == "kmeans-streaming-sketch"


class TestStateFlatness:
    def test_state_is_flat_across_run_lengths(self):
        """4x the steps of the same phases => identical retained state."""
        small = _fold_all(StreamingAnalyzer(), _phased_records(scale=1))
        large = _fold_all(StreamingAnalyzer(), _phased_records(scale=4))
        assert large.steps_folded == 4 * small.steps_folded
        assert large.num_signatures == small.num_signatures
        assert large.num_runs == small.num_runs
        # The signature table, moments, and runs are byte-identical; only
        # the (k-bounded) mini-batch centroid set may differ, so the
        # total stays far below linear growth.
        assert large.state_bytes() < 1.5 * small.state_bytes()

    def test_provisional_labels_cover_every_step(self):
        analyzer = _fold_all(StreamingAnalyzer(), _phased_records())
        labels = analyzer.provisional_labels()
        assert labels.shape[0] == analyzer.steps_folded


class TestServeWiring:
    def test_live_job_answers_full_phase_analysis(self):
        live = LiveJobAnalysis()
        records = _phased_records()
        for record in records:
            live.ingest(record)
        live.finish()
        analysis = live.phase_analysis()
        batch = TPUPointAnalyzer(records).kmeans_phases()
        assert np.array_equal(analysis.labels, batch.labels)
        assert analysis.num_phases == batch.num_phases

    def test_service_phase_analysis_query(self):
        service = FleetService()
        service.register("bert-mrpc", job_id="t0")
        records = _phased_records()
        for record in records:
            service.submit("t0", record, checksum=record_checksum(record))
        service.pump()
        service.complete("t0")
        analysis = service.phase_analysis("t0")
        assert np.array_equal(
            analysis.labels, TPUPointAnalyzer(records).kmeans_phases().labels
        )

    def test_binary_sink_round_trips_records(self):
        service = FleetService()
        service.register("bert-mrpc", job_id="t0")
        sink = service.sink("t0")
        records = _phased_records()
        for record in records:
            sink(record)
        service.pump()
        service.complete("t0")
        assert service.metrics.records_quarantined == 0
        assert service.analysis("t0").steps_seen == sum(
            len(record.steps) for record in records
        )

    def test_binary_wire_corruption_is_quarantined(self):
        plan = FaultPlan.from_dict({"faults": [{"kind": "corrupt", "nth": [2]}]})
        service = FleetService()
        service.register("bert-mrpc", job_id="t0")
        sink = service.sink("t0", transit=RecordTransit(plan))
        records = _phased_records()
        for record in records:
            sink(record)
        service.pump()
        quarantined = service.quarantined("t0")
        assert len(quarantined) == 1
        assert quarantined[0].reason.startswith("binary frame refused")
        assert quarantined[0].record.index == records[1].index

    def test_binary_wire_truncation_is_quarantined(self):
        plan = FaultPlan.from_dict(
            {"faults": [{"kind": "truncate", "target": "ingest", "nth": [1]}]}
        )
        service = FleetService()
        service.register("bert-mrpc", job_id="t0")
        sink = service.sink("t0", transit=RecordTransit(plan))
        for record in _phased_records():
            sink(record)
        service.pump()
        assert service.metrics.records_quarantined == 1

    def test_json_wire_format_still_available(self):
        service = FleetService(options=FleetServiceOptions(wire_format="json"))
        service.register("bert-mrpc", job_id="t0")
        sink = service.sink("t0")
        records = _phased_records()
        for record in records:
            sink(record)
        service.pump()
        service.complete("t0")
        assert service.metrics.records_quarantined == 0
        assert np.array_equal(
            service.phase_analysis("t0").labels,
            TPUPointAnalyzer(records).kmeans_phases().labels,
        )

    def test_sharded_phase_analysis_matches_single_service(self):
        records = _phased_records()
        single = FleetService()
        single.register("bert-mrpc", job_id="t0")
        fleet = ShardedFleet(ShardedFleetOptions(shards=3))
        fleet.register("bert-mrpc", job_id="t0")
        for record in records:
            single.submit("t0", record, checksum=record_checksum(record))
            fleet.submit("t0", record, checksum=record_checksum(record))
        single.pump()
        fleet.pump()
        assert np.array_equal(
            fleet.phase_analysis("t0").labels, single.phase_analysis("t0").labels
        )
        fleet.close()

    def test_resize_replays_binary_frame_refusals(self):
        plan = FaultPlan.from_dict({"faults": [{"kind": "corrupt", "nth": [2]}]})
        fleet = ShardedFleet(ShardedFleetOptions(shards=2))
        fleet.register("bert-mrpc", job_id="t0")
        sink = fleet.sink("t0", transit=RecordTransit(plan))
        records = _phased_records()
        for record in records:
            sink(record)
        fleet.pump()
        assert fleet.metrics.records_quarantined == 1
        before = fleet.job_snapshot("t0")
        labels = fleet.phase_analysis("t0").labels
        fleet.resize(4)
        assert fleet.metrics.records_quarantined == 1
        assert fleet.job_snapshot("t0") == before
        assert np.array_equal(fleet.phase_analysis("t0").labels, labels)
        fleet.close()
