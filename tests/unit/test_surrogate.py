"""The learned performance surrogate and its guided search strategy."""

import json

import numpy as np
import pytest

from repro.core.optimizer.knowledge import KnowledgeEntry, TuningKnowledgeBase
from repro.core.optimizer.parameters import discover_parameters
from repro.core.optimizer.strategies import SurrogateStrategy
from repro.core.optimizer.surrogate import (
    FEATURE_SCHEMA_VERSION,
    MIN_TRAINING_PAIRS,
    SIGNATURE_BUCKETS,
    RidgeModel,
    StumpModel,
    SurrogateModel,
    TrainingPair,
    build_surrogate,
    dedup_pairs,
    feature_vector,
    load_corpus,
    mine_knowledge,
)
from repro.errors import OptimizerError, StorageError
from repro.host.pipeline import PipelineConfig
from repro.models.naive import naive_pipeline_config
from repro.parallel import WorkerPool

from tests.unit.test_strategies import SyntheticEvaluator

_SIG = frozenset({"fusion", "InfeedDequeueTuple", "Reshape"})


def _pair(throughput=2.0, sig=_SIG, **knobs):
    config = {"prefetch_depth": 4, "num_parallel_calls": 8, **knobs}
    return TrainingPair(signature=sig, config=config, throughput=throughput)


def _synthetic_pairs(n=12, sig=_SIG):
    """Deterministic pairs whose throughput grows with the knobs."""
    pairs = []
    for i in range(n):
        calls = 2 ** (i % 5 + 1)
        prefetch = (i % 4) + 1
        pairs.append(
            TrainingPair(
                signature=sig,
                config={"num_parallel_calls": calls, "prefetch_depth": prefetch},
                throughput=1.0 + 0.3 * calls + 0.2 * prefetch,
            )
        )
    return pairs


class TestFeatureVector:
    def test_shape_and_schema(self):
        features = feature_vector(_SIG, PipelineConfig())
        assert features.shape == (6 + SIGNATURE_BUCKETS,)
        assert FEATURE_SCHEMA_VERSION == 1

    def test_accepts_config_and_dict(self):
        config = PipelineConfig(num_parallel_calls=16, prefetch_depth=4)
        as_dict = {"num_parallel_calls": 16, "prefetch_depth": 4}
        np.testing.assert_array_equal(
            feature_vector(_SIG, config), feature_vector(_SIG, as_dict)
        )

    def test_partial_dict_uses_defaults(self):
        defaults = PipelineConfig()
        np.testing.assert_array_equal(
            feature_vector(_SIG, {}), feature_vector(_SIG, defaults)
        )

    def test_knobs_are_log_scaled(self):
        doubled = feature_vector(_SIG, {"num_parallel_calls": 8})
        quadrupled = feature_vector(_SIG, {"num_parallel_calls": 32})
        assert quadrupled[1] - doubled[1] == pytest.approx(2.0)

    def test_signature_sets_presence_buckets(self):
        empty = feature_vector(frozenset({"x"}), {})
        assert empty[6:].sum() == 1.0
        several = feature_vector(_SIG, {})
        assert 1.0 <= several[6:].sum() <= len(_SIG)


class TestTrainingPair:
    def test_validation(self):
        with pytest.raises(OptimizerError):
            TrainingPair(signature=frozenset(), config={}, throughput=1.0)
        with pytest.raises(OptimizerError):
            TrainingPair(signature=_SIG, config={}, throughput=0.0)

    def test_document_round_trip(self):
        pair = _pair(source="kb:test")
        again = TrainingPair.from_document(pair.to_document())
        assert again == pair

    def test_malformed_document_raises(self):
        with pytest.raises(StorageError):
            TrainingPair.from_document({"signature": ["a"]})
        with pytest.raises(StorageError):
            TrainingPair.from_document(
                {"signature": [], "config": {}, "throughput": 2.0}
            )

    def test_dedup_keeps_fastest_collision(self):
        slow, fast = _pair(throughput=1.0), _pair(throughput=3.0)
        kept = dedup_pairs([slow, fast, slow])
        assert kept == [fast]

    def test_dedup_distinguishes_knobs_and_signatures(self):
        pairs = [
            _pair(prefetch_depth=2),
            _pair(prefetch_depth=4),
            _pair(sig=frozenset({"other"})),
        ]
        assert len(dedup_pairs(pairs)) == 3


class TestMining:
    def test_empty_knowledge_base_yields_nothing(self):
        assert mine_knowledge(TuningKnowledgeBase()) == []

    def test_entries_without_observations_yield_nothing(self):
        kb = TuningKnowledgeBase()
        kb.record(
            KnowledgeEntry(
                signature=_SIG, config={"prefetch_depth": 8},
                improvement=1.5, trials=4,
            )
        )
        assert mine_knowledge(kb) == []

    def test_observations_become_pairs(self):
        kb = TuningKnowledgeBase()
        kb.record(
            KnowledgeEntry(
                signature=_SIG,
                config={"prefetch_depth": 8},
                improvement=1.5,
                trials=2,
                workload="resnet",
                observations=(
                    {"config": {"prefetch_depth": 2}, "throughput": 1.0},
                    {"config": {"prefetch_depth": 8}, "throughput": 1.5},
                ),
            )
        )
        pairs = mine_knowledge(kb)
        assert len(pairs) == 2
        assert all(pair.signature == _SIG for pair in pairs)
        assert all(pair.source == "kb:resnet" for pair in pairs)

    def test_corrupt_observations_skipped_not_raised(self):
        kb = TuningKnowledgeBase()
        kb.record(
            KnowledgeEntry(
                signature=_SIG,
                config={"prefetch_depth": 8},
                improvement=1.5,
                trials=2,
                observations=(
                    {"config": {"prefetch_depth": 2}, "throughput": 1.0},
                    {"config": {}, "throughput": -3.0},  # invalid throughput
                    {"throughput": 2.0},  # missing config
                    {"config": {"prefetch_depth": 4}, "throughput": "fast"},
                ),
            )
        )
        pairs = mine_knowledge(kb)
        assert len(pairs) == 1
        assert pairs[0].throughput == 1.0

    def test_corrupt_store_degrades_to_empty(self, tmp_path):
        (tmp_path / "tuning_knowledge.json").write_text(
            "{broken", encoding="utf-8"
        )
        kb = TuningKnowledgeBase.open(tmp_path)
        assert mine_knowledge(kb) == []

    def test_fingerprint_collisions_keep_fastest(self):
        kb = TuningKnowledgeBase()
        kb.record(
            KnowledgeEntry(
                signature=_SIG,
                config={"prefetch_depth": 8},
                improvement=1.5,
                trials=2,
                observations=(
                    {"config": {"prefetch_depth": 8}, "throughput": 1.1},
                    {"config": {"prefetch_depth": 8}, "throughput": 1.9},
                ),
            )
        )
        pairs = mine_knowledge(kb)
        assert len(pairs) == 1
        assert pairs[0].throughput == 1.9


class TestCorpus:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "corpus.json"
        rows = [p.to_document() for p in _synthetic_pairs(4)]
        path.write_text(json.dumps({"pairs": rows}), encoding="utf-8")
        assert len(load_corpus(path)) == 4

    def test_missing_file_degrades_to_empty(self, tmp_path):
        assert load_corpus(tmp_path / "absent.json") == []

    def test_unparsable_file_degrades_to_empty(self, tmp_path):
        path = tmp_path / "corpus.json"
        path.write_text("[1, 2", encoding="utf-8")
        assert load_corpus(path) == []
        path.write_text("[1, 2]", encoding="utf-8")  # parses, wrong shape
        assert load_corpus(path) == []

    def test_malformed_rows_skipped(self, tmp_path):
        path = tmp_path / "corpus.json"
        rows = [_pair().to_document(), {"signature": []}, 7]
        path.write_text(json.dumps({"pairs": rows}), encoding="utf-8")
        assert len(load_corpus(path)) == 1


class TestRegressors:
    def _matrix(self, pairs):
        features = np.array(
            [feature_vector(p.signature, p.config) for p in pairs]
        )
        targets = np.log(np.array([p.throughput for p in pairs]))
        return features, targets

    @pytest.mark.parametrize("model_cls", [RidgeModel, StumpModel])
    def test_fit_predict_deterministic(self, model_cls):
        features, targets = self._matrix(_synthetic_pairs())
        a, b = model_cls(), model_cls()
        a.fit(features, targets)
        b.fit(features, targets)
        np.testing.assert_array_equal(a.predict(features), b.predict(features))
        assert a.to_document() == b.to_document()

    @pytest.mark.parametrize("model_cls", [RidgeModel, StumpModel])
    def test_learns_monotone_trend(self, model_cls):
        features, targets = self._matrix(_synthetic_pairs(16))
        model = model_cls()
        model.fit(features, targets)
        slow = feature_vector(_SIG, {"num_parallel_calls": 2, "prefetch_depth": 1})
        fast = feature_vector(_SIG, {"num_parallel_calls": 32, "prefetch_depth": 4})
        predictions = model.predict(np.stack([slow, fast]))
        assert predictions[1] > predictions[0]

    @pytest.mark.parametrize("model_cls", [RidgeModel, StumpModel])
    def test_unfitted_predict_raises(self, model_cls):
        with pytest.raises(OptimizerError):
            model_cls().predict(np.zeros((1, 6 + SIGNATURE_BUCKETS)))


class TestSurrogateModel:
    def test_unknown_kind_rejected(self):
        with pytest.raises(OptimizerError):
            SurrogateModel(kind="forest")

    def test_not_ready_below_min_pairs(self):
        model = SurrogateModel()
        model.add_pairs(_synthetic_pairs(MIN_TRAINING_PAIRS - 1))
        assert model.refit() is False
        assert not model.ready
        # The cold fallback preserves submission order.
        configs = [PipelineConfig(), PipelineConfig(prefetch_depth=8)]
        assert model.rank(_SIG, configs) == [0, 1]

    def test_rank_orders_by_predicted_throughput(self):
        model = build_surrogate(extra_pairs=_synthetic_pairs(16))
        assert model.ready
        slow = PipelineConfig(num_parallel_calls=2, prefetch_depth=1)
        fast = PipelineConfig(num_parallel_calls=32, prefetch_depth=4)
        assert model.rank(_SIG, [slow, fast]) == [1, 0]

    def test_rank_breaks_ties_by_index(self):
        model = build_surrogate(extra_pairs=_synthetic_pairs(16))
        config = PipelineConfig(num_parallel_calls=8)
        assert model.rank(_SIG, [config, config, config]) == [0, 1, 2]

    def test_observe_folds_trial_into_training_set(self):
        model = SurrogateModel()
        model.observe(_SIG, PipelineConfig(), 2.5)
        assert len(model.pairs) == 1
        assert model.pairs[0].source == "trial"

    def test_pair_order_does_not_change_predictions(self):
        pairs = _synthetic_pairs(10)
        forward = build_surrogate(extra_pairs=pairs)
        backward = build_surrogate(extra_pairs=list(reversed(pairs)))
        config = PipelineConfig(num_parallel_calls=16)
        assert forward.predict(_SIG, config) == backward.predict(_SIG, config)
        assert forward.training_digest() == backward.training_digest()

    def test_dump_shape(self):
        model = build_surrogate(extra_pairs=_synthetic_pairs(8))
        document = model.to_document()
        assert document["feature_schema"] == FEATURE_SCHEMA_VERSION
        assert document["ready"] is True
        assert document["model"]["kind"] == "ridge"
        json.dumps(document)  # must be serializable as-is

    def test_stumps_variant(self):
        model = build_surrogate(extra_pairs=_synthetic_pairs(16), kind="stumps")
        assert model.ready
        assert model.to_document()["model"]["kind"] == "stumps"


class TestBuildSurrogate:
    def test_empty_inputs_degrade_to_cold(self, tmp_path):
        model = build_surrogate(
            knowledge=TuningKnowledgeBase(), corpus=tmp_path / "absent.json"
        )
        assert not model.ready
        assert model.rank(_SIG, [PipelineConfig()]) == [0]

    def test_merges_all_sources(self, tmp_path):
        kb = TuningKnowledgeBase()
        kb.record(
            KnowledgeEntry(
                signature=_SIG,
                config={"prefetch_depth": 8},
                improvement=1.5,
                trials=2,
                observations=(
                    {"config": {"prefetch_depth": 2}, "throughput": 1.0},
                ),
            )
        )
        corpus = tmp_path / "corpus.json"
        corpus.write_text(
            json.dumps({"pairs": [p.to_document() for p in _synthetic_pairs(6)]}),
            encoding="utf-8",
        )
        model = build_surrogate(
            knowledge=kb, corpus=corpus, extra_pairs=[_pair(sig=frozenset({"z"}))]
        )
        assert len(model.pairs) == 8
        assert model.ready


class TestSurrogateStrategy:
    def _search(self, strategy, pool=None, seed=11):
        start = naive_pipeline_config()
        evaluator = SyntheticEvaluator(pool=pool)
        outcome = strategy.search(
            discover_parameters(start), start, evaluator, seed
        )
        return outcome, evaluator

    def _warm_model(self):
        # Mirror the synthetic evaluator's cost model so the surrogate's
        # guidance is genuinely informative rather than noise.
        pairs = []
        for calls in (2, 8, 32):
            for prefetch in (1, 4):
                speed = 1.0 + 0.30 * calls + 0.20 * prefetch
                pairs.append(
                    TrainingPair(
                        signature=_SIG,
                        config={
                            "num_parallel_calls": calls,
                            "prefetch_depth": prefetch,
                        },
                        throughput=speed,
                    )
                )
        return build_surrogate(extra_pairs=pairs)

    def test_cold_model_measures_every_survivor(self):
        strategy = SurrogateStrategy(population=4, trial_steps=2)
        outcome, evaluator = self._search(strategy)
        rung0 = [t for t in outcome.trials if t.key.startswith("surrogate:r0:")]
        assert len(rung0) == 4  # nothing pruned without a ready model
        assert outcome.improvement > 1.0

    def test_warm_model_prunes_trials(self):
        cold = SurrogateStrategy(population=8, trial_steps=2)
        cold_outcome, _ = self._search(cold)
        warm = SurrogateStrategy(
            population=8, trial_steps=2, model=self._warm_model(), signature=_SIG
        )
        warm_outcome, _ = self._search(warm)
        assert len(warm_outcome.trials) < len(cold_outcome.trials)
        assert warm_outcome.best_throughput >= cold_outcome.best_throughput * 0.99

    def test_rung0_always_measures_start_config(self):
        start = naive_pipeline_config()
        strategy = SurrogateStrategy(
            population=8, trial_steps=2, model=self._warm_model(), signature=_SIG
        )
        outcome, _ = self._search(strategy)
        assert outcome.trials_to_config(start) is not None
        assert outcome.baseline_throughput > 0.0

    def test_priors_join_population(self):
        prior = {"num_parallel_calls": 32, "prefetch_depth": 4}
        strategy = SurrogateStrategy(
            population=4, trial_steps=2, priors=(tuple(prior.items()),)
        )
        outcome, _ = self._search(strategy)
        expected = naive_pipeline_config().with_updates(**prior)
        assert outcome.trials_to_config(expected) is not None

    def test_invalid_priors_skipped(self):
        strategy = SurrogateStrategy(
            population=4,
            trial_steps=2,
            priors=(
                (("no_such_knob", 3),),
                (("prefetch_depth", -7),),  # fails validation
            ),
        )
        outcome, _ = self._search(strategy)
        assert outcome.improvement > 1.0

    def test_identical_across_worker_counts_with_online_refit(self):
        observed = []
        for workers in (1, 2, 4):
            strategy = SurrogateStrategy(
                population=8,
                trial_steps=2,
                model=self._warm_model(),
                signature=_SIG,
            )
            with WorkerPool(workers) as pool:
                outcome, _ = self._search(strategy, pool=pool)
            observed.append(
                [(t.key, t.config, t.steps, t.elapsed_us) for t in outcome.trials]
                + [outcome.best_config, outcome.best_throughput]
            )
        assert observed[0] == observed[1] == observed[2]

    def test_repeat_runs_bit_identical(self):
        dumps = []
        for _ in range(2):
            strategy = SurrogateStrategy(
                population=8,
                trial_steps=2,
                model=self._warm_model(),
                signature=_SIG,
            )
            outcome, _ = self._search(strategy)
            dumps.append(
                (json.dumps(strategy.model.to_document(), sort_keys=True),
                 [t.key for t in outcome.trials])
            )
        assert dumps[0] == dumps[1]
