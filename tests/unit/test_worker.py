"""Workers: event emission for TPU and host work."""

import numpy as np
import pytest

from repro.host.pipeline import BatchCost
from repro.host.stages import StageCost, StageKind
from repro.runtime.events import DeviceKind, EventLog
from repro.runtime.master import compile_graph
from repro.runtime.worker import HostWorker, TpuWorker
from repro.tpu.device import TpuDevice
from repro.tpu.specs import TPU_V2
from repro.graph import ops as opdefs
from repro.graph.builder import GraphBuilder
from repro.graph.shapes import TensorShape


def _program():
    b = GraphBuilder()
    x = b.infeed(TensorShape((8, 64)))
    w = b.const(TensorShape((64, 64)))
    h = b.matmul(x, w, 8, 64, 64)
    b.outfeed(h)
    return compile_graph(b.build(), TPU_V2)


def test_tpu_worker_logs_every_op():
    log = EventLog()
    worker = TpuWorker(TpuDevice("v2"), log)
    execution = worker.execute_step(_program(), step=3, start_us=100.0, infeed_ready_us=0.0)
    assert len(log.events) == len(execution.executions)
    assert all(e.device is DeviceKind.TPU and e.step == 3 for e in log.events)
    assert log.events[0].start_us == 100.0


def _batch_cost():
    stages = (
        StageCost("decode", StageKind.CPU, 300.0, (("DecodeAndCropJpeg", 1.0),)),
        StageCost(
            "transfer",
            StageKind.TRANSFER,
            200.0,
            (("TransferBufferToInfeedLocked", 1.0), ("InfeedEnqueueTuple", 1.0)),
        ),
    )
    return BatchCost(stages, total_wall_us=500.0, transfer_wall_us=200.0)


def test_host_worker_batch_events_end_at_ready_time():
    log = EventLog()
    HostWorker(log).emit_batch_production(_batch_cost(), step=1, ready_at_us=10_000.0)
    assert log.events[-1].end_us == pytest.approx(10_000.0)
    assert log.events[0].start_us == pytest.approx(10_000.0 - 500.0)
    # Events are laid out serially.
    for first, second in zip(log.events, log.events[1:]):
        assert second.start_us == pytest.approx(first.end_us)


def test_backpressure_charged_to_locked_infeed_op():
    log = EventLog()
    HostWorker(log).emit_batch_production(
        _batch_cost(), step=1, ready_at_us=10_000.0, backpressure_us=400.0
    )
    locked = next(e for e in log.events if e.name == "TransferBufferToInfeedLocked")
    plain = next(e for e in log.events if e.name == "InfeedEnqueueTuple")
    assert locked.duration_us == pytest.approx(100.0 + 400.0)
    assert plain.duration_us == pytest.approx(100.0)
    assert log.events[-1].end_us == pytest.approx(10_000.0)


def test_emit_op():
    log = EventLog()
    HostWorker(log).emit_op("SaveV2", 7, 50.0, 25.0)
    event = log.events[0]
    assert (event.name, event.step, event.start_us, event.duration_us) == (
        "SaveV2",
        7,
        50.0,
        25.0,
    )
    assert event.device is DeviceKind.HOST
