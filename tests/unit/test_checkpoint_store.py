"""Checkpoint store semantics."""

import pytest

from repro.errors import CheckpointError, ConfigurationError
from repro.storage.bucket import Bucket
from repro.storage.checkpoints import Checkpoint, CheckpointStore


@pytest.fixture
def store():
    return CheckpointStore(Bucket("ckpts"))


def _save(store, *steps):
    for step in steps:
        store.save(Checkpoint(step=step, saved_at_us=float(step), num_bytes=1e6))


def test_checkpoint_validation():
    with pytest.raises(ConfigurationError):
        Checkpoint(step=-1, saved_at_us=0.0, num_bytes=1.0)
    with pytest.raises(ConfigurationError):
        Checkpoint(step=0, saved_at_us=0.0, num_bytes=-1.0)


def test_object_name_matches_tensorflow_convention():
    assert Checkpoint(100, 0.0, 1.0).object_name == "model.ckpt-100"


def test_save_persists_to_bucket(store):
    _save(store, 10)
    assert store.bucket.exists("checkpoints/model.ckpt-10")
    assert len(store) == 1


def test_steps_must_increase(store):
    _save(store, 10)
    with pytest.raises(CheckpointError):
        _save(store, 10)
    with pytest.raises(CheckpointError):
        _save(store, 5)


def test_latest(store):
    _save(store, 10, 20, 30)
    assert store.latest().step == 30


def test_latest_empty_raises(store):
    with pytest.raises(CheckpointError):
        store.latest()


@pytest.mark.parametrize(
    "query, expected",
    [(0, 10), (10, 10), (14, 10), (15, 10), (16, 20), (20, 20), (99, 30), (30, 30)],
)
def test_nearest_prefers_earlier_on_ties(store, query, expected):
    _save(store, 10, 20, 30)
    assert store.nearest(query).step == expected


def test_nearest_before(store):
    _save(store, 10, 20, 30)
    assert store.nearest_before(25).step == 20
    assert store.nearest_before(10).step == 10
    with pytest.raises(CheckpointError):
        store.nearest_before(9)


def test_nearest_empty_raises(store):
    with pytest.raises(CheckpointError):
        store.nearest(5)


def test_restore_time_positive(store):
    _save(store, 10)
    assert store.restore_time_us(store.latest()) > 0.0
