"""Tensor shapes and FLOP accounting."""

import pytest

from repro.errors import GraphError
from repro.graph.shapes import (
    TensorShape,
    attention_flops,
    conv2d_flops,
    dtype_bytes,
    matmul_flops,
)


def test_dtype_bytes():
    assert dtype_bytes("float32") == 4
    assert dtype_bytes("bfloat16") == 2
    with pytest.raises(GraphError):
        dtype_bytes("complex128")


def test_shape_element_and_byte_counts():
    shape = TensorShape((2, 3, 4))
    assert shape.num_elements == 24
    assert shape.num_bytes == 96.0
    assert shape.rank == 3


def test_scalar_shape():
    scalar = TensorShape(())
    assert scalar.num_elements == 1
    assert scalar.rank == 0


def test_invalid_dims_rejected():
    with pytest.raises(GraphError):
        TensorShape((0, 2))
    with pytest.raises(GraphError):
        TensorShape((1,), dtype="nope")


def test_with_batch():
    assert TensorShape((3,)).with_batch(8).dims == (8, 3)
    with pytest.raises(GraphError):
        TensorShape((3,)).with_batch(0)


def test_shape_str():
    assert str(TensorShape((2, 3), "int32")) == "int32[2,3]"


def test_matmul_flops():
    assert matmul_flops(2, 3, 4) == 48.0
    assert matmul_flops(2, 3, 4, batch=10) == 480.0
    with pytest.raises(GraphError):
        matmul_flops(0, 1, 1)


def test_conv2d_flops():
    # 1x1 conv degenerates to a per-pixel matmul.
    assert conv2d_flops(1, 4, 4, 8, 16, 1, 1) == 2 * 16 * 8 * 16
    with pytest.raises(GraphError):
        conv2d_flops(1, 0, 1, 1, 1, 1, 1)


def test_attention_flops_positive_and_scales():
    small = attention_flops(1, 64, 128, 4)
    large = attention_flops(1, 128, 128, 4)
    assert 0 < small < large
    with pytest.raises(GraphError):
        attention_flops(0, 1, 1, 1)
