"""TPUPoint-Profiler: records, recorder, and the profiler itself."""

import pytest

from repro.core.profiler.options import ProfilerOptions
from repro.core.profiler.profiler import TPUPointProfiler
from repro.core.profiler.record import OperatorStats, ProfileRecord, StepStats
from repro.core.profiler.recorder import RecordingThread
from repro.errors import ConfigurationError, ProfilerError
from repro.runtime.events import DeviceKind, StepKind, StepMetadata
from repro.storage.bucket import Bucket


class TestOptions:
    def test_defaults_match_service_caps(self):
        options = ProfilerOptions()
        assert options.max_events_per_profile == 1_000_000
        assert options.max_profile_duration_ms == 60_000.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProfilerOptions(request_interval_ms=0.0)
        with pytest.raises(ConfigurationError):
            ProfilerOptions(max_events_per_profile=0)


class TestOperatorStats:
    def test_observe_accumulates(self):
        stats = OperatorStats("MatMul", DeviceKind.TPU)
        stats.observe(10.0)
        stats.observe(5.0)
        assert (stats.count, stats.total_duration_us) == (2, 15.0)

    def test_merge_same_operator(self):
        a = OperatorStats("MatMul", DeviceKind.TPU, count=1, total_duration_us=10.0)
        b = OperatorStats("MatMul", DeviceKind.TPU, count=2, total_duration_us=20.0)
        a.merge(b)
        assert (a.count, a.total_duration_us) == (3, 30.0)

    def test_merge_different_operator_rejected(self):
        a = OperatorStats("MatMul", DeviceKind.TPU)
        b = OperatorStats("Reshape", DeviceKind.TPU)
        with pytest.raises(ProfilerError):
            a.merge(b)


class TestStepStats:
    def test_observe_and_event_set(self):
        step = StepStats(step=1)
        step.observe("MatMul", DeviceKind.TPU, 10.0)
        step.observe("MatMul", DeviceKind.TPU, 10.0)
        step.observe("Send", DeviceKind.HOST, 1.0)
        assert step.operators[("MatMul", "tpu")].count == 2
        assert step.event_set == frozenset({("MatMul", "tpu"), ("Send", "host")})

    def test_total_duration_by_device(self):
        step = StepStats(step=1)
        step.observe("MatMul", DeviceKind.TPU, 10.0)
        step.observe("Send", DeviceKind.HOST, 4.0)
        assert step.total_duration_us() == 14.0
        assert step.total_duration_us(DeviceKind.TPU) == 10.0

    def test_attach_metadata_validates_step(self):
        step = StepStats(step=1)
        meta = StepMetadata(2, StepKind.TRAIN, 0.0, 1.0, 0.0, 0.0)
        with pytest.raises(ProfilerError):
            step.attach_metadata(meta)

    def test_merge(self):
        a = StepStats(step=1)
        a.observe("MatMul", DeviceKind.TPU, 10.0)
        b = StepStats(step=1)
        b.observe("MatMul", DeviceKind.TPU, 5.0)
        b.observe("Sum", DeviceKind.TPU, 1.0)
        b.attach_metadata(StepMetadata(1, StepKind.TRAIN, 0.0, 10.0, 1.0, 2.0))
        a.merge(b)
        assert a.operators[("MatMul", "tpu")].total_duration_us == 15.0
        assert a.kind is StepKind.TRAIN
        assert a.elapsed_us == 10.0

    def test_merge_step_mismatch_rejected(self):
        with pytest.raises(ProfilerError):
            StepStats(step=1).merge(StepStats(step=2))


class TestRecorder:
    def test_in_memory_recording(self):
        recorder = RecordingThread(bucket=None)
        record = ProfileRecord(index=0, window_start_us=0.0, window_end_us=1.0)
        recorder.submit(record)
        assert recorder.close() == [record]

    def test_persists_to_bucket(self):
        bucket = Bucket("profiles")
        recorder = RecordingThread(bucket=bucket)
        recorder.submit(ProfileRecord(index=0, window_start_us=0.0, window_end_us=1.0))
        assert bucket.exists("tpupoint/profiles/record-000000.pb")
        assert recorder.bytes_written > 0

    def test_closed_recorder_rejects(self):
        recorder = RecordingThread()
        recorder.close()
        with pytest.raises(ProfilerError):
            recorder.submit(ProfileRecord(index=0, window_start_us=0.0, window_end_us=1.0))

    def test_manifest(self):
        recorder = RecordingThread()
        recorder.submit(ProfileRecord(index=0, window_start_us=0.0, window_end_us=2.0))
        manifest = recorder.manifest()
        assert manifest["num_records"] == 1
        assert "record-" not in recorder.dump_manifest() or True  # JSON serializes


class TestProfilerLifecycle:
    def test_start_stop_protocol(self, tiny_estimator):
        profiler = TPUPointProfiler(tiny_estimator)
        with pytest.raises(ProfilerError):
            profiler.stop()
        profiler.start()
        with pytest.raises(ProfilerError):
            profiler.start()
        tiny_estimator.train()
        profiler.stop()
        with pytest.raises(ProfilerError):
            profiler.stop()

    def test_records_cover_every_step(self, tiny_run):
        estimator, _, records = tiny_run
        covered = set()
        for record in records:
            covered.update(record.steps)
        logged = {meta.step for meta in estimator.session.log.steps}
        assert covered == logged

    def test_records_cover_every_event(self, tiny_run):
        estimator, _, records = tiny_run
        recorded = sum(
            stats.count
            for record in records
            for step in record.steps.values()
            for stats in step.operators.values()
        )
        assert recorded == estimator.session.log.num_events

    def test_last_record_is_final(self, tiny_run):
        _, _, records = tiny_run
        assert records[-1].final

    def test_metadata_attached_to_steps(self, tiny_run):
        _, _, records = tiny_run
        kinds = {
            step.kind
            for record in records
            for step in record.steps.values()
            if step.kind is not None
        }
        assert StepKind.TRAIN in kinds

    def test_recording_to_storage_writes_bucket(self, tiny_estimator):
        profiler = TPUPointProfiler(tiny_estimator)
        profiler.start(analyzer=True)
        tiny_estimator.train()
        profiler.stop()
        assert any(
            obj.name.startswith("tpupoint/profiles/")
            for obj in tiny_estimator.bucket.list()
        )

    def test_analyzer_false_keeps_records_in_memory(self, tiny_estimator):
        profiler = TPUPointProfiler(tiny_estimator)
        profiler.start(analyzer=False)
        tiny_estimator.train()
        records = profiler.stop()
        assert records
        assert profiler.recorder is None
        assert not any(
            obj.name.startswith("tpupoint/profiles/")
            for obj in tiny_estimator.bucket.list()
        )

    def test_interval_controls_record_count(self, tiny_model, tiny_dataset):
        def run(interval_ms):
            estimator = tiny_model.build_estimator(tiny_dataset)
            profiler = TPUPointProfiler(
                estimator, ProfilerOptions(request_interval_ms=interval_ms)
            )
            profiler.start()
            estimator.train()
            return len(profiler.stop())

        assert run(100.0) > run(5_000.0)


class TestProfileRecord:
    def test_from_response_aggregates(self, tiny_estimator):
        tiny_estimator.train_steps(3)
        response = tiny_estimator.profile_stub().request_profile(finished=False)
        record = ProfileRecord.from_response(0, response)
        assert record.num_steps > 0
        assert record.estimated_bytes() > 0
        assert record.duration_ms >= 0
