"""The blocked shared distance kernel and its pass accounting."""

import numpy as np
import pytest

from repro.core.analyzer.distance import (
    NeighborGraph,
    block_rows,
    build_neighbor_graph,
    distance_passes,
    kth_neighbor_distances,
    pairwise_distances,
    pairwise_sq_distances,
    reset_pass_counter,
)
from repro.errors import AnalyzerMemoryError, ClusteringError


def naive_sq(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The O(n^2 d) broadcast the kernel replaced — the reference."""
    return ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)


@pytest.fixture
def matrix(rng) -> np.ndarray:
    return rng.normal(size=(37, 5)) * 10.0


class TestPairwise:
    def test_matches_naive_broadcast(self, matrix):
        got = pairwise_sq_distances(matrix)
        assert np.allclose(got, naive_sq(matrix, matrix), atol=1e-8)

    def test_cross_distances_match(self, matrix, rng):
        other = rng.normal(size=(11, 5))
        got = pairwise_sq_distances(matrix, other)
        assert got.shape == (37, 11)
        assert np.allclose(got, naive_sq(matrix, other), atol=1e-8)

    def test_small_block_same_answer(self, matrix):
        # A budget that forces many tiny blocks must not change values.
        budget = 5 * matrix.shape[0] * 24  # ~5 rows per block
        got = pairwise_sq_distances(matrix, memory_budget_bytes=budget)
        assert np.allclose(got, naive_sq(matrix, matrix), atol=1e-8)

    def test_distances_are_sqrt(self, matrix):
        assert np.allclose(
            pairwise_distances(matrix) ** 2, pairwise_sq_distances(matrix), atol=1e-8
        )

    def test_self_pass_counted_cross_not(self, matrix):
        reset_pass_counter()
        pairwise_sq_distances(matrix)
        assert distance_passes() == 1
        pairwise_sq_distances(matrix, matrix[:4])
        assert distance_passes() == 1  # cross-distances are not a full pass

    def test_rejects_bad_shapes(self, matrix):
        with pytest.raises(ClusteringError):
            pairwise_sq_distances(matrix[0])
        with pytest.raises(ClusteringError):
            pairwise_sq_distances(matrix, matrix[:, :2])


class TestBlockRows:
    def test_default_budget_gives_many_rows(self):
        assert block_rows(100, None) > 1

    def test_explicit_budget_too_small_raises(self):
        with pytest.raises(AnalyzerMemoryError):
            block_rows(1000, 10.0)

    def test_no_budget_never_raises(self):
        assert block_rows(10**9, None) == 1


class TestKthNeighbor:
    def test_matches_sorted_reference(self, matrix):
        k = 4
        full = np.sqrt(naive_sq(matrix, matrix))
        reference = np.sort(full, axis=1)[:, k]
        assert np.allclose(kth_neighbor_distances(matrix, k), reference, atol=1e-8)

    def test_k_clamps_to_n_minus_one(self, matrix):
        n = matrix.shape[0]
        capped = kth_neighbor_distances(matrix, n + 50)
        reference = np.sort(np.sqrt(naive_sq(matrix, matrix)), axis=1)[:, n - 1]
        assert np.allclose(capped, reference, atol=1e-8)


class TestNeighborGraph:
    def test_explicit_eps_matches_bruteforce(self, matrix):
        eps = 8.0
        graph = build_neighbor_graph(matrix, eps)
        full = np.sqrt(naive_sq(matrix, matrix))
        for i in range(matrix.shape[0]):
            expected = np.flatnonzero(full[i] <= eps)
            assert np.array_equal(graph.neighbors(i), expected)
        assert np.array_equal(graph.counts, (full <= eps).sum(axis=1))

    def test_auto_eps_matches_default_eps(self, matrix):
        from repro.core.analyzer.dbscan import default_eps

        graph = build_neighbor_graph(matrix)
        assert graph.eps == default_eps(matrix)

    def test_auto_eps_graph_is_exact(self, matrix):
        # The radius-cap machinery is an optimization, not an approximation.
        graph = build_neighbor_graph(matrix)
        exact = build_neighbor_graph(matrix, graph.eps)
        assert np.array_equal(graph.indptr, exact.indptr)
        assert np.array_equal(graph.indices, exact.indices)

    def test_one_pass_per_build(self, matrix):
        reset_pass_counter()
        build_neighbor_graph(matrix)
        assert distance_passes() == 1
        build_neighbor_graph(matrix, 3.0)
        assert distance_passes() == 2

    def test_adjacency_budget_enforced(self, matrix):
        # Enough for the transient block but not the accumulated edges.
        tight = matrix.shape[0] * 24 + 64
        with pytest.raises(AnalyzerMemoryError):
            build_neighbor_graph(matrix, 1e9, memory_budget_bytes=tight)

    def test_csr_accessors(self):
        graph = NeighborGraph(
            eps=1.0,
            indptr=np.array([0, 2, 3], dtype=np.int64),
            indices=np.array([0, 1, 1], dtype=np.int64),
        )
        assert graph.num_points == 2
        assert graph.counts.tolist() == [2, 1]
        assert graph.neighbors(0).tolist() == [0, 1]
        assert graph.memory_bytes() == graph.indptr.nbytes + graph.indices.nbytes
