"""Online linear scan and Equation 1."""

import pytest

from repro.core.analyzer.ols import (
    DEFAULT_SIMILARITY_THRESHOLD,
    OnlineLinearScan,
    ols_labels,
    step_similarity,
    sweep_thresholds,
)
from repro.core.profiler.record import StepStats
from repro.errors import AnalyzerError
from repro.runtime.events import DeviceKind


def _step(number, names):
    step = StepStats(step=number)
    for name in names:
        step.observe(name, DeviceKind.TPU, 1.0)
    return step


class TestEquationOne:
    def test_identical_sets(self):
        a = frozenset({1, 2, 3})
        assert step_similarity(a, a) == 1.0

    def test_disjoint_sets(self):
        assert step_similarity(frozenset({1}), frozenset({2})) == 0.0

    def test_subset_is_fully_similar(self):
        # min() in the denominator: a subset matches perfectly.
        small = frozenset({1, 2})
        large = frozenset({1, 2, 3, 4})
        assert step_similarity(small, large) == 1.0

    def test_partial_overlap(self):
        a = frozenset({1, 2, 3})
        b = frozenset({2, 3, 4, 5})
        assert step_similarity(a, b) == pytest.approx(2 / 3)

    def test_symmetry(self):
        a = frozenset({1, 2, 3})
        b = frozenset({3, 4})
        assert step_similarity(a, b) == step_similarity(b, a)

    def test_empty_sets(self):
        assert step_similarity(frozenset(), frozenset()) == 1.0
        assert step_similarity(frozenset(), frozenset({1})) == 0.0


class TestScanner:
    def test_default_threshold_is_70_percent(self):
        assert DEFAULT_SIMILARITY_THRESHOLD == 0.70

    def test_similar_steps_merge(self):
        scanner = OnlineLinearScan(threshold=0.7)
        for i in range(5):
            scanner.observe(_step(i, ["a", "b", "c"]))
        assert scanner.num_phases == 1
        assert scanner.labels == [0] * 5

    def test_dissimilar_step_opens_phase(self):
        scanner = OnlineLinearScan(threshold=0.7)
        scanner.observe(_step(0, ["a", "b", "c"]))
        scanner.observe(_step(1, ["x", "y", "z"]))
        scanner.observe(_step(2, ["x", "y", "z"]))
        assert scanner.labels == [0, 1, 1]

    def test_threshold_zero_merges_everything(self):
        steps = [_step(0, ["a"]), _step(1, ["b"]), _step(2, ["c"])]
        assert ols_labels(steps, threshold=0.0).tolist() == [0, 0, 0]

    def test_threshold_one_requires_identical_sets(self):
        steps = [_step(0, ["a", "b"]), _step(1, ["a", "b", "c"]), _step(2, ["a", "b", "c"])]
        # Subset similarity is 1.0, so even at 100% the first pair merges.
        assert ols_labels(steps, threshold=1.0).tolist() == [0, 0, 0]
        steps = [_step(0, ["a", "b"]), _step(1, ["a", "c"])]
        assert ols_labels(steps, threshold=1.0).tolist() == [0, 1]

    def test_labels_contiguous_non_decreasing(self):
        steps = [_step(i, ["a"] if i % 2 else ["b"]) for i in range(6)]
        labels = ols_labels(steps, threshold=0.9)
        assert all(b - a in (0, 1) for a, b in zip(labels, labels[1:]))

    def test_invalid_threshold(self):
        with pytest.raises(AnalyzerError):
            OnlineLinearScan(threshold=1.5)

    def test_empty_steps_rejected(self):
        with pytest.raises(AnalyzerError):
            ols_labels([])

    def test_sweep_phase_count_non_decreasing_in_threshold(self):
        steps = []
        base = ["a", "b", "c", "d", "e"]
        for i in range(20):
            names = list(base)
            if i % 5 == 0:
                names = base[:3] + [f"rare{i}", f"rare{i+1}"]
            steps.append(_step(i, names))
        sweep = sweep_thresholds(steps, [0.0, 0.4, 0.6, 0.8, 1.0])
        counts = [sweep[t] for t in sorted(sweep)]
        assert all(a <= b for a, b in zip(counts, counts[1:]))
        assert counts[0] == 1
