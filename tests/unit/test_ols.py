"""Online linear scan and Equation 1."""

import pytest

from repro.core.analyzer.ols import (
    DEFAULT_SIMILARITY_THRESHOLD,
    OnlineLinearScan,
    ols_labels,
    step_similarity,
    sweep_thresholds,
)
from repro.core.profiler.record import StepStats
from repro.errors import AnalyzerError
from repro.runtime.events import DeviceKind


def _step(number, names):
    step = StepStats(step=number)
    for name in names:
        step.observe(name, DeviceKind.TPU, 1.0)
    return step


class TestEquationOne:
    def test_identical_sets(self):
        a = frozenset({1, 2, 3})
        assert step_similarity(a, a) == 1.0

    def test_disjoint_sets(self):
        assert step_similarity(frozenset({1}), frozenset({2})) == 0.0

    def test_subset_is_fully_similar(self):
        # min() in the denominator: a subset matches perfectly.
        small = frozenset({1, 2})
        large = frozenset({1, 2, 3, 4})
        assert step_similarity(small, large) == 1.0

    def test_partial_overlap(self):
        a = frozenset({1, 2, 3})
        b = frozenset({2, 3, 4, 5})
        assert step_similarity(a, b) == pytest.approx(2 / 3)

    def test_symmetry(self):
        a = frozenset({1, 2, 3})
        b = frozenset({3, 4})
        assert step_similarity(a, b) == step_similarity(b, a)

    def test_empty_sets(self):
        assert step_similarity(frozenset(), frozenset()) == 1.0
        assert step_similarity(frozenset(), frozenset({1})) == 0.0


class TestScanner:
    def test_default_threshold_is_70_percent(self):
        assert DEFAULT_SIMILARITY_THRESHOLD == 0.70

    def test_similar_steps_merge(self):
        scanner = OnlineLinearScan(threshold=0.7)
        for i in range(5):
            scanner.observe(_step(i, ["a", "b", "c"]))
        assert scanner.num_phases == 1
        assert scanner.labels == [0] * 5

    def test_dissimilar_step_opens_phase(self):
        scanner = OnlineLinearScan(threshold=0.7)
        scanner.observe(_step(0, ["a", "b", "c"]))
        scanner.observe(_step(1, ["x", "y", "z"]))
        scanner.observe(_step(2, ["x", "y", "z"]))
        assert scanner.labels == [0, 1, 1]

    def test_threshold_zero_merges_everything(self):
        steps = [_step(0, ["a"]), _step(1, ["b"]), _step(2, ["c"])]
        assert ols_labels(steps, threshold=0.0).tolist() == [0, 0, 0]

    def test_threshold_one_requires_identical_sets(self):
        steps = [_step(0, ["a", "b"]), _step(1, ["a", "b", "c"]), _step(2, ["a", "b", "c"])]
        # Subset similarity is 1.0, so even at 100% the first pair merges.
        assert ols_labels(steps, threshold=1.0).tolist() == [0, 0, 0]
        steps = [_step(0, ["a", "b"]), _step(1, ["a", "c"])]
        assert ols_labels(steps, threshold=1.0).tolist() == [0, 1]

    def test_labels_contiguous_non_decreasing(self):
        steps = [_step(i, ["a"] if i % 2 else ["b"]) for i in range(6)]
        labels = ols_labels(steps, threshold=0.9)
        assert all(b - a in (0, 1) for a, b in zip(labels, labels[1:]))

    def test_invalid_threshold(self):
        with pytest.raises(AnalyzerError):
            OnlineLinearScan(threshold=1.5)

    def test_empty_steps_rejected(self):
        with pytest.raises(AnalyzerError):
            ols_labels([])

    def test_sweep_phase_count_non_decreasing_in_threshold(self):
        steps = []
        base = ["a", "b", "c", "d", "e"]
        for i in range(20):
            names = list(base)
            if i % 5 == 0:
                names = base[:3] + [f"rare{i}", f"rare{i+1}"]
            steps.append(_step(i, names))
        sweep = sweep_thresholds(steps, [0.0, 0.4, 0.6, 0.8, 1.0])
        counts = [sweep[t] for t in sorted(sweep)]
        assert all(a <= b for a, b in zip(counts, counts[1:]))
        assert counts[0] == 1


class TestLosslessFaultsPreservePhases:
    """Property: a lossless fault plan never changes live phase labels.

    Errors and timeouts are retried against an unmoved service cursor,
    and empty/truncated/delayed responses only defer events — so for
    *any* seeded plan built from retryable fault kinds, the online
    linear scan must label every step exactly as a fault-free run does.
    """

    @staticmethod
    def _phased_log(num_steps=12, flip_at=6):
        from repro.runtime.events import EventLog, StepKind, StepMetadata, TraceEvent

        log = EventLog()
        for i in range(num_steps):
            names = ("matmul", "fusion", "relu") if i < flip_at else ("conv", "pool", "softmax")
            for j, name in enumerate(names):
                log.append_event(
                    TraceEvent(
                        name,
                        DeviceKind.TPU,
                        step=i,
                        start_us=i * 1000.0 + j * 100.0,
                        duration_us=50.0,
                    )
                )
            log.append_step(
                StepMetadata(
                    step=i,
                    kind=StepKind.TRAIN,
                    start_us=i * 1000.0,
                    end_us=i * 1000.0 + 500.0,
                    tpu_idle_us=0.0,
                    mxu_flops=1.0,
                )
            )
        return log

    @staticmethod
    def _drive(stub):
        """Pull records to the final response; returns (steps, labels)."""
        from repro.core.profiler.record import ProfileRecord
        from repro.core.profiler.streaming import StepStream
        from repro.errors import CircuitOpenError, ProfileServiceError

        scanner = OnlineLinearScan(threshold=0.7)
        stream = StepStream()
        released = []
        index = 0
        final = False
        for _ in range(500):
            try:
                response = stub.request_profile(max_events=16, finished=True)
            except CircuitOpenError:
                breaker = getattr(stub, "breaker", None)
                if breaker is not None:
                    breaker.force_probe()
                continue
            except ProfileServiceError as error:
                if not getattr(error, "retryable", False):
                    raise
                continue
            record = ProfileRecord.from_response(index, response)
            index += 1
            for step in stream.submit(record):
                scanner.observe(step)
                released.append(step.step)
            if response.final:
                final = True
                break
        assert final, "drive loop never reached the final response"
        for step in stream.flush():
            scanner.observe(step)
            released.append(step.step)
        return released, list(scanner.labels)

    def test_lossless_plans_preserve_labels(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.faults import (
            FaultKind,
            FaultPlan,
            FaultSpec,
            FaultTarget,
            FaultyProfileService,
            LOSSLESS_KINDS,
        )
        from repro.runtime.resilience import (
            CircuitBreaker,
            ResilientProfileStub,
            RetryPolicy,
        )
        from repro.runtime.rpc import ProfileService, ProfileStub

        kinds = sorted(LOSSLESS_KINDS, key=lambda kind: kind.value)

        @st.composite
        def lossless_spec(draw):
            kind = draw(st.sampled_from(kinds))
            schedule = draw(st.sampled_from(["probability", "every_nth", "nth"]))
            kwargs = {}
            if schedule == "probability":
                kwargs["probability"] = draw(
                    st.floats(0.05, 0.9, allow_nan=False, allow_infinity=False)
                )
                kwargs["last_request"] = draw(st.integers(1, 60))
            elif schedule == "every_nth":
                kwargs["every_nth"] = draw(st.integers(1, 6))
                kwargs["last_request"] = draw(st.integers(1, 60))
            else:
                kwargs["nth"] = tuple(
                    sorted(draw(st.sets(st.integers(1, 40), min_size=1, max_size=5)))
                )
            if kind is FaultKind.DELAY:
                kwargs["delay_ms"] = draw(
                    st.floats(10.0, 3000.0, allow_nan=False, allow_infinity=False)
                )
            if kind is FaultKind.TRUNCATE:
                kwargs["truncate_events"] = draw(st.integers(1, 8))
            return FaultSpec(kind=kind, target=FaultTarget.PROFILE, **kwargs)

        clean_steps, clean_labels = self._drive(
            ProfileStub(ProfileService(self._phased_log()))
        )
        assert clean_steps, "the reference run must release steps"

        @settings(max_examples=40, deadline=None)
        @given(
            specs=st.lists(lossless_spec(), min_size=1, max_size=3),
            seed=st.integers(0, 2**32 - 1),
        )
        def check(specs, seed):
            plan = FaultPlan(seed=seed, specs=tuple(specs))
            assert plan.lossless
            stub = ResilientProfileStub(
                FaultyProfileService(ProfileService(self._phased_log()), plan),
                policy=RetryPolicy(max_attempts=6),
                breaker=CircuitBreaker(failure_threshold=8, cooldown_requests=2),
                seed=seed,
            )
            faulty_steps, faulty_labels = self._drive(stub)
            assert faulty_steps == clean_steps
            assert faulty_labels == clean_labels

        check()
