"""Portability: custom accelerator specs through the whole toolchain."""

import pytest

from repro import units
from repro.core.api import TPUPoint
from repro.costs import run_cost
from repro.errors import ConfigurationError
from repro.tpu.specs import TPU_V2, TpuChipSpec, chip_spec


@pytest.fixture
def npu():
    return TpuChipSpec(
        generation="npu-1",
        mxu_count=1,
        mxu_dim=256,
        peak_flops=15e12,
        hbm_bytes=units.gib(8.0),
        hbm_bandwidth=300e9,
        clock_hz=800e6,
        tdp_watts=120.0,
        infeed_bandwidth=5e9,
    )


def test_chip_spec_passthrough(npu):
    assert chip_spec(npu) is npu
    assert chip_spec(TPU_V2) is TPU_V2


def test_estimator_accepts_custom_spec(tiny_model, tiny_dataset, npu):
    estimator = tiny_model.build_estimator(tiny_dataset, generation=npu)
    assert estimator.spec is npu
    summary = estimator.train()
    assert summary.peak_flops == npu.peak_flops


def test_slower_accelerator_runs_longer(tiny_model, tiny_dataset, npu):
    v2 = tiny_model.build_estimator(tiny_dataset, generation="v2").train()
    custom = tiny_model.build_estimator(tiny_dataset, generation=npu).train()
    assert custom.wall_us > v2.wall_us  # a third of the peak FLOPS


def test_full_toolchain_on_custom_spec(tiny_model, tiny_dataset, npu):
    estimator = tiny_model.build_estimator(tiny_dataset, generation=npu)
    tpupoint = TPUPoint(estimator)
    tpupoint.Start(analyzer=True)
    summary = estimator.train()
    tpupoint.Stop()
    result = tpupoint.analyzer().ols_phases()
    assert result.num_phases >= 1
    cost = run_cost(summary, npu, hourly_usd=1.75)
    assert cost.tpu_dollars > 0


def test_custom_spec_requires_explicit_price(tiny_model, tiny_dataset, npu):
    summary = tiny_model.build_estimator(tiny_dataset, generation=npu).train()
    with pytest.raises(ConfigurationError):
        run_cost(summary, npu)


def test_v3_penalty_not_applied_to_custom_specs(tiny_model, tiny_dataset, npu):
    from repro.runtime.master import compile_graph

    graph = tiny_model.build_train_graph(32, tiny_dataset)
    program = compile_graph(graph, npu)
    compute = next(w for w in program.tpu_schedule if w.uses_mxu)
    # The fill penalty is a v3-specific calibration, not a generic tax.
    graph_v2 = tiny_model.build_train_graph(32, tiny_dataset)
    program_v2 = compile_graph(graph_v2, chip_spec("v2"))
    compute_v2 = next(w for w in program_v2.tpu_schedule if w.uses_mxu)
    assert compute.efficiency == pytest.approx(compute_v2.efficiency)
