"""Phases, coverage, and top-operator tables."""

import numpy as np
import pytest

from repro.core.analyzer.coverage import coverage
from repro.core.analyzer.operators import (
    appearance_totals,
    top_operators_of_longest_phase,
)
from repro.core.analyzer.phases import Phase, build_phases, longest_phase
from repro.core.profiler.record import StepStats
from repro.errors import AnalyzerError
from repro.runtime.events import DeviceKind, StepKind, StepMetadata


def _step(number, ops, elapsed=10.0, idle=2.0):
    step = StepStats(step=number)
    for name, device, duration in ops:
        step.observe(name, device, duration)
    step.attach_metadata(
        StepMetadata(
            number,
            StepKind.TRAIN,
            number * elapsed,
            number * elapsed + elapsed,
            idle,
            1.0,
        )
    )
    return step


def _steps(count=6):
    return [
        _step(
            i,
            [
                ("MatMul", DeviceKind.TPU, 5.0),
                ("Reshape", DeviceKind.TPU, 1.0),
                ("Send", DeviceKind.HOST, 2.0),
            ],
        )
        for i in range(count)
    ]


class TestPhase:
    def test_empty_phase_rejected(self):
        with pytest.raises(AnalyzerError):
            Phase(phase_id=0, steps=[])

    def test_durations_and_bounds(self):
        phase = Phase(0, _steps(3))
        assert phase.num_steps == 3
        assert phase.total_duration_us == pytest.approx(30.0)
        assert phase.start_us == 0.0
        assert phase.end_us == 30.0
        assert phase.idle_fraction == pytest.approx(0.2)

    def test_operator_totals_aggregate(self):
        phase = Phase(0, _steps(4))
        totals = {s.name: s for s in phase.operator_totals()}
        assert totals["MatMul"].total_duration_us == 20.0
        assert totals["MatMul"].count == 4

    def test_top_operators_sorted_and_filtered(self):
        phase = Phase(0, _steps(2))
        tpu_top = phase.top_operators(5, DeviceKind.TPU)
        assert [s.name for s in tpu_top] == ["MatMul", "Reshape"]
        host_top = phase.top_operators(5, DeviceKind.HOST)
        assert [s.name for s in host_top] == ["Send"]


class TestBuildPhases:
    def test_groups_by_label(self):
        steps = _steps(6)
        phases = build_phases(steps, np.array([0, 0, 1, 1, 1, 0]))
        assert len(phases) == 2
        sizes = sorted(p.num_steps for p in phases)
        assert sizes == [3, 3]

    def test_sorted_by_duration(self):
        steps = _steps(6)
        phases = build_phases(steps, [0, 1, 1, 1, 1, 1])
        assert phases[0].num_steps == 5

    def test_noise_label_becomes_phase(self):
        phases = build_phases(_steps(3), [-1, 0, 0])
        assert {p.phase_id for p in phases} == {-1, 0}

    def test_label_count_mismatch(self):
        with pytest.raises(AnalyzerError):
            build_phases(_steps(3), [0, 1])

    def test_longest_phase(self):
        phases = build_phases(_steps(5), [0, 0, 0, 1, 1])
        assert longest_phase(phases).phase_id == 0
        with pytest.raises(AnalyzerError):
            longest_phase([])


class TestCoverage:
    def test_fractions_sum_to_one(self):
        phases = build_phases(_steps(6), [0, 0, 0, 1, 1, 2])
        report = coverage(phases)
        assert sum(report.fractions) == pytest.approx(1.0)
        assert report.top(3) == pytest.approx(1.0)

    def test_top_n_with_more_phases(self):
        phases = build_phases(_steps(8), [0, 0, 0, 0, 1, 2, 3, 4])
        report = coverage(phases)
        assert report.top(1) == pytest.approx(0.5)
        assert report.top(3) == pytest.approx(0.75)

    def test_custom_total(self):
        phases = build_phases(_steps(2), [0, 0])
        report = coverage(phases, total_duration_us=40.0)
        assert report.top(1) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(AnalyzerError):
            coverage([])


class TestTopOperatorTables:
    def test_table2_cell_structure(self):
        phases = build_phases(_steps(4), [0, 0, 0, 1])
        cell = top_operators_of_longest_phase(phases, k=5)
        assert cell[DeviceKind.TPU].operators == ("MatMul", "Reshape")
        assert cell[DeviceKind.HOST].operators == ("Send",)
        assert cell[DeviceKind.TPU].durations_us[0] >= cell[DeviceKind.TPU].durations_us[1]

    def test_appearance_totals(self):
        phases = build_phases(_steps(4), [0, 0, 0, 1])
        cell = top_operators_of_longest_phase(phases)
        totals = appearance_totals([cell, cell, cell])
        assert totals[DeviceKind.TPU]["MatMul"] == 3
        assert totals[DeviceKind.HOST]["Send"] == 3
