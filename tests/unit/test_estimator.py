"""TPUEstimator front end."""

import pytest

from repro.errors import SimulationError
from repro.host.pipeline import PipelineConfig
from repro.tpu.specs import TPU_V2, TPU_V3


def test_compile_is_cached(tiny_estimator):
    assert tiny_estimator.compile() is tiny_estimator.compile()


def test_session_is_lazy_and_cached(tiny_estimator):
    session = tiny_estimator.session
    assert session is tiny_estimator.session
    assert not session.initialized


def test_generation_selects_spec(tiny_model, tiny_dataset):
    assert tiny_model.build_estimator(tiny_dataset, generation="v2").spec is TPU_V2
    assert tiny_model.build_estimator(tiny_dataset, generation="v3").spec is TPU_V3


def test_finalize_before_training_rejected(tiny_estimator):
    with pytest.raises(SimulationError):
        tiny_estimator.finalize()


def test_train_steps_initializes_lazily(tiny_estimator):
    executed = tiny_estimator.train_steps(5)
    assert executed == 5
    assert tiny_estimator.session.initialized
    assert tiny_estimator.session.global_step == 5


def test_pipeline_config_roundtrip(tiny_estimator):
    new_config = PipelineConfig(num_parallel_calls=32)
    tiny_estimator.update_pipeline_config(new_config)
    assert tiny_estimator.current_pipeline_config() == new_config


def test_profile_stub_serves_session_events(tiny_estimator):
    tiny_estimator.train_steps(5)
    stub = tiny_estimator.profile_stub()
    response = stub.request_profile(finished=False)
    assert response.num_events > 0


def test_dataset_shards_uploaded_to_bucket(tiny_estimator):
    tiny_estimator.session  # forces pipeline creation
    assert len(tiny_estimator.bucket.list()) > 0


def test_v3_run_is_faster_but_not_twice(tiny_model, tiny_dataset):
    v2 = tiny_model.build_estimator(tiny_dataset, generation="v2").train()
    v3 = tiny_model.build_estimator(tiny_dataset, generation="v3").train()
    assert v3.wall_us < v2.wall_us
    assert v3.wall_us > v2.wall_us / 2  # fill penalty + fixed overheads
