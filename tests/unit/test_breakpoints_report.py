"""Profiler breakpoints, chrome-trace counters, and the report module."""

import pytest

from repro.core.analyzer import TPUPointAnalyzer
from repro.core.analyzer.visualize import chrome_trace
from repro.core.profiler import ProfilerOptions, TPUPointProfiler
from repro.errors import ConfigurationError
from repro.report import build_report, write_report


class TestBreakpoints:
    def test_breakpoint_stops_profiling_early(self, tiny_model, tiny_dataset):
        estimator = tiny_model.build_estimator(tiny_dataset)
        profiler = TPUPointProfiler(
            estimator,
            ProfilerOptions(request_interval_ms=200.0, breakpoint_step=20),
        )
        profiler.start(analyzer=True)
        estimator.train()  # runs all 40 steps regardless
        records = profiler.stop()
        assert profiler.breakpoint_hit
        max_step = max(step for record in records for step in record.steps)
        logged_max = max(meta.step for meta in estimator.session.log.steps)
        # Profiling ended around the breakpoint, well before the run did.
        assert max_step < logged_max
        assert estimator.session.global_step == estimator.plan.train_steps

    def test_breakpoint_beyond_run_profiles_everything(self, tiny_model, tiny_dataset):
        estimator = tiny_model.build_estimator(tiny_dataset)
        profiler = TPUPointProfiler(
            estimator, ProfilerOptions(breakpoint_step=10_000)
        )
        profiler.start(analyzer=True)
        estimator.train()
        records = profiler.stop()
        assert not profiler.breakpoint_hit
        covered = {step for record in records for step in record.steps}
        assert covered == {meta.step for meta in estimator.session.log.steps}

    def test_breakpoint_validation(self):
        with pytest.raises(ConfigurationError):
            ProfilerOptions(breakpoint_step=0)

    def test_breakpoint_records_still_analyzable(self, tiny_model, tiny_dataset):
        estimator = tiny_model.build_estimator(tiny_dataset)
        profiler = TPUPointProfiler(
            estimator, ProfilerOptions(request_interval_ms=200.0, breakpoint_step=20)
        )
        profiler.start(analyzer=True)
        estimator.train()
        records = profiler.stop()
        result = TPUPointAnalyzer(records).ols_phases()
        assert result.num_phases >= 1


class TestChromeCounters:
    def test_counter_events_present(self, tiny_run):
        _, _, records = tiny_run
        analyzer = TPUPointAnalyzer(records)
        result = analyzer.ols_phases()
        trace = chrome_trace(records, result.phases)
        counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
        assert counters
        names = {e["name"] for e in counters}
        assert names == {"TPU idle %", "MXU GFLOP/s"}
        for event in counters:
            (value,) = event["args"].values()
            assert value >= 0.0

    def test_counters_cover_train_steps(self, tiny_run):
        estimator, _, records = tiny_run
        analyzer = TPUPointAnalyzer(records)
        trace = chrome_trace(records, analyzer.ols_phases().phases)
        idle_counters = [
            e for e in trace["traceEvents"] if e.get("name") == "TPU idle %"
        ]
        assert len(idle_counters) == len(estimator.session.log.steps)


class TestReport:
    def test_report_structure(self, tiny_run):
        estimator, summary, records = tiny_run
        analyzer = TPUPointAnalyzer(records)
        report = build_report(
            "Tiny-TinySet",
            summary,
            analyzer,
            methods=("ols",),
            checkpoint_store=estimator.checkpoint_store,
        )
        assert report.startswith("# TPUPoint characterization: Tiny-TinySet")
        assert "## Run summary" in report
        assert "## Phases — ols" in report
        assert "## Dominant-phase operators" in report
        assert "## Checkpoint associations" in report
        assert "model.ckpt-" in report

    def test_report_multiple_methods(self, tiny_run):
        estimator, summary, records = tiny_run
        report = build_report(
            "t", summary, TPUPointAnalyzer(records), methods=("ols", "kmeans")
        )
        assert "## Phases — ols" in report
        assert "## Phases — kmeans" in report

    def test_write_report(self, tiny_run, tmp_path):
        _, summary, records = tiny_run
        report = build_report("t", summary, TPUPointAnalyzer(records))
        path = write_report(tmp_path / "sub" / "report.md", report)
        assert path.read_text() == report


class TestNewCliCommands:
    def test_profile_save_and_analyze(self, capsys, tmp_path):
        from repro.cli import main as cli_main

        records_dir = tmp_path / "recs"
        assert cli_main(["profile", "bert-mrpc", "--save-records", str(records_dir)]) == 0
        capsys.readouterr()
        assert cli_main(["analyze", str(records_dir), "--method", "ols"]) == 0
        out = capsys.readouterr().out
        assert "top-3 phase coverage" in out

    def test_report_command(self, capsys, tmp_path):
        from repro.cli import main as cli_main

        path = tmp_path / "r.md"
        assert cli_main(["report", "bert-mrpc", "--out", str(path)]) == 0
        assert path.exists()
        assert "# TPUPoint characterization" in path.read_text()

    def test_profile_with_breakpoint(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["profile", "bert-mrpc", "--breakpoint", "50"]) == 0
        out = capsys.readouterr().out
        assert "phases" in out
