"""TPUPoint-Analyzer orchestration, exports, checkpoint association."""

import json

import pytest

from repro.core.analyzer.analyzer import AnalyzerMemoryError, TPUPointAnalyzer
from repro.core.analyzer.checkpoints import associate_checkpoints, fast_forward_cost_us
from repro.core.analyzer.visualize import chrome_trace
from repro.errors import AnalyzerError


@pytest.fixture
def analyzer(tiny_run):
    _, _, records = tiny_run
    return TPUPointAnalyzer(records)


class TestOrchestration:
    def test_requires_records(self):
        with pytest.raises(AnalyzerError):
            TPUPointAnalyzer([])

    def test_steps_merged_in_order(self, analyzer):
        steps = analyzer.steps
        assert [s.step for s in steps] == sorted(s.step for s in steps)

    def test_ols_three_phase_structure(self, analyzer):
        result = analyzer.ols_phases(0.7)
        # init + training body + shutdown
        assert result.num_phases == 3
        assert result.coverage().top(3) == pytest.approx(1.0)

    def test_kmeans_with_explicit_k(self, analyzer):
        result = analyzer.kmeans_phases(k=3)
        assert result.num_phases == 3
        assert result.method == "kmeans"
        assert "inertia" in result.params

    def test_kmeans_elbow_choice_in_range(self, analyzer):
        k = analyzer.choose_k(range(1, 10))
        assert 1 <= k <= 9

    def test_dbscan_phases(self, analyzer):
        result = analyzer.dbscan_phases(min_samples=5)
        assert result.num_phases >= 1
        assert 0.0 <= result.params["noise_ratio"] <= 1.0

    def test_dispatch(self, analyzer):
        assert analyzer.analyze("ols").method == "ols"
        assert analyzer.analyze("kmeans", k=2).method == "kmeans"
        assert analyzer.analyze("dbscan", min_samples=5).method == "dbscan"
        with pytest.raises(AnalyzerError):
            analyzer.analyze("spectral")

    def test_labels_cover_all_steps(self, analyzer):
        result = analyzer.ols_phases()
        assert len(result.labels) == len(analyzer.steps)
        assert sum(p.num_steps for p in result.phases) == len(analyzer.steps)

    def test_memory_budget_blocks_clustering_not_ols(self, tiny_run):
        _, _, records = tiny_run
        tight = TPUPointAnalyzer(records, memory_budget_bytes=10.0)
        with pytest.raises(AnalyzerMemoryError):
            tight.kmeans_phases(k=2)
        with pytest.raises(AnalyzerMemoryError):
            tight.dbscan_phases()
        # OLS holds only two steps of state and never hits the budget.
        assert tight.ols_phases().num_phases >= 1

    def test_pca_dimension_cap(self, tiny_run):
        _, _, records = tiny_run
        analyzer = TPUPointAnalyzer(records, max_pca_dims=3)
        assert analyzer.reduced_matrix().shape[1] <= 3


class TestExports:
    def test_chrome_trace_structure(self, analyzer):
        result = analyzer.ols_phases()
        trace = chrome_trace(analyzer.records, result.phases)
        events = trace["traceEvents"]
        names = {e.get("name") for e in events}
        assert "thread_name" in names  # metadata rows
        phase_events = [e for e in events if str(e.get("name", "")).startswith("phase")]
        profile_events = [e for e in events if str(e.get("name", "")).startswith("profile")]
        assert len(phase_events) == result.num_phases
        assert len(profile_events) == len(analyzer.records)
        assert all(e["ph"] == "X" for e in phase_events)

    def test_export_writes_files(self, analyzer, tmp_path):
        result = analyzer.ols_phases()
        paths = analyzer.export(tmp_path, result)
        trace = json.loads((tmp_path / "ols_trace.json").read_text())
        assert "traceEvents" in trace
        phases_csv = (tmp_path / "ols_phases.csv").read_text().splitlines()
        assert phases_csv[0].startswith("phase_id,")
        assert len(phases_csv) == 1 + result.num_phases
        operators_csv = (tmp_path / "ols_operators.csv").read_text().splitlines()
        assert len(operators_csv) > result.num_phases
        assert set(paths) == {"trace", "phases", "operators"}


class TestCheckpointAssociation:
    def test_every_phase_gets_a_checkpoint(self, tiny_run):
        estimator, _, records = tiny_run
        analyzer = TPUPointAnalyzer(records)
        result = analyzer.ols_phases()
        associations = associate_checkpoints(
            result.phases, estimator.checkpoint_store, analyzer.steps
        )
        assert set(associations) == {p.phase_id for p in result.phases}

    def test_training_phase_checkpoint_is_exact(self, tiny_run):
        estimator, _, records = tiny_run
        analyzer = TPUPointAnalyzer(records)
        result = analyzer.ols_phases()
        body = max(result.phases, key=lambda p: p.num_steps)
        association = associate_checkpoints(
            result.phases, estimator.checkpoint_store, analyzer.steps
        )[body.phase_id]
        # A checkpoint lands inside the training body (saved at step 15/30/40).
        assert association.exact

    def test_fast_forward_cost(self, tiny_run):
        estimator, _, records = tiny_run
        analyzer = TPUPointAnalyzer(records)
        result = analyzer.ols_phases()
        associations = associate_checkpoints(
            result.phases, estimator.checkpoint_store, analyzer.steps
        )
        any_assoc = next(iter(associations.values()))
        assert fast_forward_cost_us(any_assoc, estimator.checkpoint_store) > 0.0
