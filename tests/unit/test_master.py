"""Master compilation: fold → partition → fuse → lower."""

import pytest

from repro.graph import ops as opdefs
from repro.graph.builder import GraphBuilder
from repro.graph.shapes import TensorShape
from repro.runtime.master import compile_graph
from repro.tpu.device import TpuOpCategory
from repro.tpu.specs import TPU_V2, TPU_V3


def _train_like_graph():
    b = GraphBuilder("train")
    x = b.infeed(TensorShape((32, 64)))
    w = b.const(TensorShape((64, 64)))
    h = b.matmul(x, w, 32, 64, 64)
    h = b.elementwise(opdefs.RELU, h)
    h = b.reshape(h, TensorShape((64, 32)))
    b.outfeed(h)
    return b.build()


def test_compile_produces_schedule():
    program = compile_graph(_train_like_graph(), TPU_V2)
    names = [w.name for w in program.tpu_schedule]
    assert "InfeedDequeueTuple" in names
    assert "OutfeedEnqueueTuple" in names
    assert "Reshape" in names
    assert "fusion" in names  # matmul+relu chain fused


def test_schedule_excludes_constants():
    program = compile_graph(_train_like_graph(), TPU_V2)
    assert all(w.name != "Const" for w in program.tpu_schedule)


def test_infeed_outfeed_categories():
    program = compile_graph(_train_like_graph(), TPU_V2)
    categories = {w.name: w.category for w in program.tpu_schedule}
    assert categories["InfeedDequeueTuple"] is TpuOpCategory.INFEED
    assert categories["OutfeedEnqueueTuple"] is TpuOpCategory.OUTFEED


def test_mxu_flops_per_step_preserved():
    graph = _train_like_graph()
    expected = 2 * 32 * 64 * 64
    program = compile_graph(graph, TPU_V2)
    assert program.mxu_flops_per_step == pytest.approx(expected)


def test_explicit_efficiency_attribute_wins():
    b = GraphBuilder()
    x = b.infeed(TensorShape((32, 128)))
    w = b.const(TensorShape((128, 128)))
    mm = b.matmul(x, w, 128, 128, 128)
    mm.attrs["mxu_efficiency"] = 0.2
    b.outfeed(mm)
    program = compile_graph(b.build(), TPU_V2)
    compute = next(w for w in program.tpu_schedule if w.uses_mxu)
    assert compute.efficiency == pytest.approx(0.2)


def test_v3_fill_penalty_reduces_efficiency():
    def schedule_for(spec):
        b = GraphBuilder()
        x = b.infeed(TensorShape((32, 128)))
        w = b.const(TensorShape((128, 128)))
        b.matmul(x, w, 128, 128, 128)
        return compile_graph(b.build(), spec)

    eff_v2 = next(w for w in schedule_for(TPU_V2).tpu_schedule if w.uses_mxu).efficiency
    eff_v3 = next(w for w in schedule_for(TPU_V3).tpu_schedule if w.uses_mxu).efficiency
    assert eff_v3 < eff_v2


def test_compile_time_scales_with_graph_size():
    small = compile_graph(_train_like_graph(), TPU_V2).compile_time_us
    b = GraphBuilder()
    x = b.infeed(TensorShape((8, 8)))
    for _ in range(50):
        x = b.elementwise(opdefs.MUL, x)
    b.outfeed(x)
    large = compile_graph(b.build(), TPU_V2).compile_time_us
    assert large > small


def test_op_names_deduplicated_in_order():
    program = compile_graph(_train_like_graph(), TPU_V2)
    names = program.op_names()
    assert len(names) == len(set(names))
    assert names[0] == "InfeedDequeueTuple"


def test_host_partition_empty_for_pure_tpu_graph():
    program = compile_graph(_train_like_graph(), TPU_V2)
    assert program.host_ops == []
