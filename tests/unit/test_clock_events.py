"""Simulation clock and event log."""

import pytest

from repro.errors import SimulationError
from repro.runtime.clock import SimClock
from repro.runtime.events import DeviceKind, EventLog, StepKind, StepMetadata, TraceEvent


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now_us == 0.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(10.0) == 10.0
        assert clock.now_us == 10.0

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-1.0)

    def test_advance_to(self):
        clock = SimClock(5.0)
        clock.advance_to(8.0)
        assert clock.now_us == 8.0
        with pytest.raises(SimulationError):
            clock.advance_to(7.0)


def _event(name="op", step=0, start=0.0, dur=1.0, device=DeviceKind.TPU):
    return TraceEvent(name=name, device=device, step=step, start_us=start, duration_us=dur)


def _meta(step=0, kind=StepKind.TRAIN, start=0.0, end=10.0, idle=2.0, flops=1e9):
    return StepMetadata(
        step=step, kind=kind, start_us=start, end_us=end, tpu_idle_us=idle, mxu_flops=flops
    )


class TestEvents:
    def test_event_end(self):
        assert _event(start=3.0, dur=4.0).end_us == 7.0

    def test_metadata_derived_metrics(self):
        meta = _meta(start=0.0, end=10.0, idle=2.0)
        assert meta.elapsed_us == 10.0
        assert meta.idle_fraction == pytest.approx(0.2)

    def test_idle_fraction_capped(self):
        assert _meta(end=1.0, idle=100.0).idle_fraction == 1.0


class TestEventLog:
    def test_append_and_counters(self):
        log = EventLog()
        log.append_event(_event())
        assert log.num_events == 1
        assert log.last_time_us == 1.0

    def test_steps_must_be_ordered(self):
        log = EventLog()
        log.append_step(_meta(step=1))
        with pytest.raises(SimulationError):
            log.append_step(_meta(step=1))

    def test_events_since_cursor(self):
        log = EventLog()
        for i in range(5):
            log.append_event(_event(step=i))
        events, cursor = log.events_since(0, limit=3)
        assert len(events) == 3 and cursor == 3
        events, cursor = log.events_since(cursor)
        assert len(events) == 2 and cursor == 5

    def test_invalid_cursor(self):
        with pytest.raises(SimulationError):
            EventLog().events_since(1)

    def test_steps_between_overlap_semantics(self):
        log = EventLog()
        log.append_step(_meta(step=0, start=0.0, end=10.0))
        log.append_step(_meta(step=1, start=10.0, end=20.0))
        inside = log.steps_between(5.0, 15.0)
        assert [m.step for m in inside] == [0, 1]
        assert log.steps_between(20.0, 30.0) == []
