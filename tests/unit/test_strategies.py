"""The pluggable search-strategy engine (offline autotune trials)."""

import pytest

from repro.core.optimizer.parameters import discover_parameters
from repro.core.optimizer.strategies import (
    STRATEGIES,
    CandidateTrial,
    HillClimbStrategy,
    SearchOutcome,
    SimulatedAnnealingStrategy,
    SuccessiveHalvingStrategy,
    SurrogateStrategy,
    build_strategy,
)
from repro.errors import OptimizerError
from repro.host.pipeline import PipelineConfig
from repro.models.naive import naive_pipeline_config
from repro.parallel import WorkerPool, task_rng


class SyntheticEvaluator:
    """A pure-function workload: faster with more parallelism, no noise.

    Elapsed time per step falls with every knob the strategies can turn
    up, so every strategy should find an improvement over the naive
    configuration; a tiny per-trial jitter drawn from the trial key's
    substream keeps measurements realistic yet fully deterministic.
    """

    def __init__(self, seed: int = 7, pool: WorkerPool | None = None):
        self.seed = seed
        self.pool = pool or WorkerPool(1)
        self.calls = 0

    def _elapsed_per_step(self, config: PipelineConfig, key: str) -> float:
        speed = (
            1.0
            + 0.30 * config.num_parallel_calls
            + 0.20 * config.prefetch_depth
            + 0.25 * config.infeed_threads
            + 0.10 * config.num_parallel_reads
            + (2.0 if config.vectorized_preprocess else 0.0)
        )
        jitter = 1.0 + 0.01 * float(task_rng(self.seed, f"synthetic:{key}").random())
        return 1e6 / speed * jitter

    def _run(self, request):
        key, config, steps = request
        return CandidateTrial(
            key=key,
            config=config,
            steps=steps,
            elapsed_us=self._elapsed_per_step(config, key) * steps,
        )

    def evaluate(self, requests):
        self.calls += len(requests)
        return self.pool.map(self._run, list(requests))


def _search(strategy, start=None, seed=11, pool=None):
    start = start or naive_pipeline_config()
    evaluator = SyntheticEvaluator(pool=pool)
    return strategy.search(discover_parameters(start), start, evaluator, seed)


class TestCandidateTrial:
    def test_throughput(self):
        trial = CandidateTrial("t", PipelineConfig(), steps=4, elapsed_us=2e6)
        assert trial.throughput == pytest.approx(2.0)

    def test_degenerate_measurements_rejected(self):
        with pytest.raises(OptimizerError):
            CandidateTrial("t", PipelineConfig(), steps=0, elapsed_us=1.0)
        with pytest.raises(OptimizerError):
            CandidateTrial("t", PipelineConfig(), steps=4, elapsed_us=0.0)
        with pytest.raises(OptimizerError):
            CandidateTrial("t", PipelineConfig(), steps=4, elapsed_us=-5.0)


class TestSearchOutcome:
    def test_trials_to_config(self):
        a, b = PipelineConfig(), PipelineConfig(prefetch_depth=8)
        outcome = SearchOutcome(
            strategy="x",
            initial_config=a,
            best_config=b,
            baseline_throughput=1.0,
            best_throughput=2.0,
            trials=[
                CandidateTrial("1", a, 2, 1e6),
                CandidateTrial("2", b, 2, 5e5),
            ],
        )
        assert outcome.trials_to_config(a) == 1
        assert outcome.trials_to_config(b) == 2
        assert outcome.trials_to_best == 2
        assert outcome.trials_to_config(PipelineConfig(prefetch_depth=16)) is None
        assert outcome.improvement == pytest.approx(2.0)
        assert outcome.steps_consumed == 4


class TestRegistry:
    def test_all_strategies_registered(self):
        assert set(STRATEGIES) == {"hill-climb", "annealing", "racing", "surrogate"}

    def test_build_by_name(self):
        assert isinstance(build_strategy("hill-climb"), HillClimbStrategy)
        assert isinstance(build_strategy("annealing"), SimulatedAnnealingStrategy)
        assert isinstance(build_strategy("racing"), SuccessiveHalvingStrategy)
        assert isinstance(build_strategy("surrogate"), SurrogateStrategy)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(OptimizerError, match="unknown search strategy"):
            build_strategy("grid")

    def test_unknown_option_rejected(self):
        with pytest.raises(OptimizerError, match="does not accept"):
            build_strategy("racing", temperature=3.0)

    def test_options_forwarded(self):
        strategy = build_strategy("racing", population=4, trial_steps=2)
        assert strategy.population == 4
        assert strategy.trial_steps == 2


class TestValidation:
    def test_hill_climb(self):
        with pytest.raises(OptimizerError):
            HillClimbStrategy(trial_steps=0)
        with pytest.raises(OptimizerError):
            HillClimbStrategy(min_improvement=0.5)

    def test_annealing(self):
        with pytest.raises(OptimizerError):
            SimulatedAnnealingStrategy(rounds=0)
        with pytest.raises(OptimizerError):
            SimulatedAnnealingStrategy(cooling=1.0)
        with pytest.raises(OptimizerError):
            SimulatedAnnealingStrategy(initial_temperature=0.0)

    def test_racing(self):
        with pytest.raises(OptimizerError):
            SuccessiveHalvingStrategy(population=1)
        with pytest.raises(OptimizerError):
            SuccessiveHalvingStrategy(eta=1)

    def test_surrogate(self):
        with pytest.raises(OptimizerError):
            SurrogateStrategy(population=1)
        with pytest.raises(OptimizerError):
            SurrogateStrategy(measure_fraction=0.0)
        with pytest.raises(OptimizerError):
            SurrogateStrategy(measure_fraction=1.5)
        with pytest.raises(OptimizerError):
            SurrogateStrategy(min_measure=0)


class TestSearchBehaviour:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_improves_naive_config(self, name):
        outcome = _search(build_strategy(name))
        assert outcome.improvement > 1.0
        assert outcome.best_config != naive_pipeline_config()
        assert outcome.trials, "every search must log its trials"
        assert outcome.strategy == name

    def test_racing_first_trial_is_start_config(self):
        start = naive_pipeline_config()
        outcome = _search(SuccessiveHalvingStrategy(population=4, trial_steps=2), start)
        assert outcome.trials[0].config == start
        assert outcome.trials_to_config(start) == 1

    def test_racing_rungs_shrink_population(self):
        outcome = _search(SuccessiveHalvingStrategy(population=4, eta=2, trial_steps=2))
        rung0 = [t for t in outcome.trials if t.key.startswith("race:r0:")]
        rung1 = [t for t in outcome.trials if t.key.startswith("race:r1:")]
        assert len(rung0) == 4
        assert len(rung1) == 2
        # Deeper rungs measure longer.
        assert rung1[0].steps == rung0[0].steps * 2

    def test_annealing_rounds_batched(self):
        strategy = SimulatedAnnealingStrategy(rounds=3, batch=2, trial_steps=2)
        outcome = _search(strategy)
        # One baseline plus rounds x batch proposals.
        assert len(outcome.trials) == 1 + 3 * 2

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_identical_across_worker_counts(self, name):
        observed = []
        for workers in (1, 2, 4):
            with WorkerPool(workers) as pool:
                outcome = _search(build_strategy(name), pool=pool)
            observed.append(
                [(t.key, t.config, t.steps, t.elapsed_us) for t in outcome.trials]
                + [outcome.best_config, outcome.best_throughput]
            )
        assert observed[0] == observed[1] == observed[2]
