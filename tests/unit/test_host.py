"""Host VM, stages, and input pipeline."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.host.pipeline import InputPipeline, PipelineConfig
from repro.host.stages import StageCost, StageKind, StageSpec
from repro.host.vm import HostVM, HostVmSpec
from repro.storage.bucket import Bucket


class TestHostVM:
    def test_vcpus(self):
        assert HostVmSpec().vcpus == 32

    def test_parallelism_monotone_then_saturates(self):
        vm = HostVM()
        values = [vm.effective_parallelism(n) for n in (1, 2, 4, 8, 16, 32, 64)]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] == values[-2]  # beyond vCPUs adds nothing

    def test_parallelism_sublinear(self):
        vm = HostVM()
        assert vm.effective_parallelism(16) < 16.0
        assert vm.effective_parallelism(16) > 8.0

    def test_smt_contributes_less_than_cores(self):
        vm = HostVM()
        core_gain = vm.effective_parallelism(16) - vm.effective_parallelism(15)
        smt_gain = vm.effective_parallelism(17) - vm.effective_parallelism(16)
        assert smt_gain < core_gain

    def test_parallel_time(self):
        vm = HostVM()
        assert vm.parallel_time_us(1000.0, 1) == pytest.approx(1000.0)
        assert vm.parallel_time_us(1000.0, 8) < 1000.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HostVM().effective_parallelism(0)
        with pytest.raises(ConfigurationError):
            HostVM().parallel_time_us(-1.0, 1)
        with pytest.raises(ConfigurationError):
            HostVmSpec(physical_cores=0)


class TestStages:
    def test_stage_validation(self):
        with pytest.raises(ConfigurationError):
            StageSpec("s", StageKind.CPU, cpu_us_per_example=-1.0)
        with pytest.raises(ConfigurationError):
            StageSpec("s", StageKind.CPU, ops=(("x", 0.0),))

    def test_op_durations_split_by_weight(self):
        cost = StageCost("s", StageKind.CPU, wall_us=100.0, ops=(("a", 3.0), ("b", 1.0)))
        durations = dict(cost.op_durations())
        assert durations["a"] == pytest.approx(75.0)
        assert durations["b"] == pytest.approx(25.0)

    def test_op_durations_default_to_stage_name(self):
        cost = StageCost("decode", StageKind.CPU, wall_us=10.0, ops=())
        assert cost.op_durations() == [("decode", 10.0)]


def _pipeline(config=None, decode_us=100.0):
    stages = (
        StageSpec("read", StageKind.READ, ops=(("Send", 1.0),)),
        StageSpec("decode", StageKind.CPU, cpu_us_per_example=decode_us),
        StageSpec("batch", StageKind.BATCH, cpu_us_per_example=0.5, parallelizable=False),
        StageSpec("transfer", StageKind.TRANSFER),
    )
    return InputPipeline(
        vm=HostVM(),
        bucket=Bucket("b"),
        stages=stages,
        config=config or PipelineConfig(),
        bytes_per_example_storage=10_000.0,
        bytes_per_example_device=40_000.0,
    )


class TestPipeline:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(num_parallel_calls=0)
        with pytest.raises(ConfigurationError):
            PipelineConfig(prefetch_depth=-1)
        with pytest.raises(ConfigurationError):
            PipelineConfig(jitter=-0.1)

    def test_with_updates_returns_new_config(self):
        config = PipelineConfig()
        updated = config.with_updates(num_parallel_calls=16)
        assert updated.num_parallel_calls == 16
        assert config.num_parallel_calls == 8

    def test_batch_cost_structure(self, rng):
        cost = _pipeline().batch_cost(64, rng)
        assert len(cost.stages) == 4
        assert cost.total_wall_us == pytest.approx(sum(s.wall_us for s in cost.stages))
        assert 0.0 < cost.transfer_wall_us < cost.total_wall_us
        assert cost.produce_wall_us == cost.total_wall_us - cost.transfer_wall_us

    def test_more_threads_is_faster(self, rng):
        slow = _pipeline(PipelineConfig(num_parallel_calls=1, jitter=0.0))
        fast = _pipeline(PipelineConfig(num_parallel_calls=16, jitter=0.0))
        assert fast.batch_cost(64, rng).total_wall_us < slow.batch_cost(64, rng).total_wall_us

    def test_more_parallel_reads_is_faster(self, rng):
        slow = _pipeline(PipelineConfig(num_parallel_reads=1, jitter=0.0))
        fast = _pipeline(PipelineConfig(num_parallel_reads=16, jitter=0.0))
        assert fast.batch_cost(64, rng).total_wall_us < slow.batch_cost(64, rng).total_wall_us

    def test_vectorized_preprocess_is_faster(self, rng):
        plain = _pipeline(PipelineConfig(jitter=0.0))
        vectorized = _pipeline(PipelineConfig(jitter=0.0, vectorized_preprocess=True))
        assert (
            vectorized.batch_cost(64, rng).total_wall_us
            < plain.batch_cost(64, rng).total_wall_us
        )

    def test_batch_stage_not_parallelized(self, rng):
        # Non-parallelizable stage cost is independent of thread count.
        one = _pipeline(PipelineConfig(num_parallel_calls=1, jitter=0.0)).batch_cost(64, rng)
        many = _pipeline(PipelineConfig(num_parallel_calls=32, jitter=0.0)).batch_cost(64, rng)
        batch_one = next(s for s in one.stages if s.name == "batch")
        batch_many = next(s for s in many.stages if s.name == "batch")
        assert batch_one.wall_us == pytest.approx(batch_many.wall_us)

    def test_shuffle_buffer_costs_cpu(self, rng):
        off = _pipeline(PipelineConfig(shuffle_buffer=0, jitter=0.0)).batch_cost(64, rng)
        on = _pipeline(PipelineConfig(shuffle_buffer=65536, jitter=0.0)).batch_cost(64, rng)
        assert on.total_wall_us > off.total_wall_us

    def test_jitter_zero_is_deterministic(self):
        pipe = _pipeline(PipelineConfig(jitter=0.0))
        a = pipe.batch_cost(64, np.random.default_rng(1)).total_wall_us
        b = pipe.batch_cost(64, np.random.default_rng(2)).total_wall_us
        assert a == b

    def test_mean_batch_wall_is_jitter_free(self):
        pipe = _pipeline(PipelineConfig(jitter=0.5))
        assert pipe.mean_batch_wall_us(64) == pytest.approx(
            _pipeline(PipelineConfig(jitter=0.0)).mean_batch_wall_us(64)
        )

    def test_invalid_batch_size(self, rng):
        with pytest.raises(ConfigurationError):
            _pipeline().batch_cost(0, rng)

    def test_requires_stages(self):
        with pytest.raises(ConfigurationError):
            InputPipeline(
                vm=HostVM(),
                bucket=Bucket("b"),
                stages=(),
                config=PipelineConfig(),
                bytes_per_example_storage=1.0,
                bytes_per_example_device=1.0,
            )
