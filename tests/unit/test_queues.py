"""Infeed/outfeed transfer queues."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.tpu.queues import TransferQueue


def test_capacity_must_be_positive():
    with pytest.raises(ConfigurationError):
        TransferQueue(capacity=0)


def test_fifo_order():
    queue = TransferQueue(capacity=4)
    queue.push(10.0, 1.0)
    queue.push(20.0, 2.0)
    _, first = queue.pop(0.0)
    _, second = queue.pop(0.0)
    assert (first.num_bytes, second.num_bytes) == (1.0, 2.0)


def test_pop_waits_for_ready_item():
    queue = TransferQueue(capacity=2)
    queue.push(100.0, 1.0)
    obtained_at, _ = queue.pop(ask_at_us=30.0)
    assert obtained_at == 100.0
    assert queue.total_stall_us == 70.0


def test_pop_immediate_when_ready():
    queue = TransferQueue(capacity=2)
    queue.push(5.0, 1.0)
    obtained_at, _ = queue.pop(ask_at_us=50.0)
    assert obtained_at == 50.0
    assert queue.total_stall_us == 0.0


def test_full_queue_rejects_push():
    queue = TransferQueue(capacity=1)
    queue.push(1.0, 1.0)
    assert queue.full
    with pytest.raises(SimulationError):
        queue.push(2.0, 1.0)


def test_pop_empty_rejected():
    with pytest.raises(SimulationError):
        TransferQueue(capacity=1).pop(0.0)


def test_non_monotonic_ready_times_rejected():
    queue = TransferQueue(capacity=3)
    queue.push(10.0, 1.0)
    with pytest.raises(SimulationError):
        queue.push(5.0, 1.0)


def test_negative_bytes_rejected():
    queue = TransferQueue(capacity=1)
    with pytest.raises(ConfigurationError):
        queue.push(1.0, -1.0)


def test_counters_and_reset():
    queue = TransferQueue(capacity=2)
    queue.push(1.0, 1.0)
    queue.pop(0.0)
    assert (queue.total_pushed, queue.total_popped) == (1, 1)
    queue.reset()
    assert (queue.total_pushed, queue.total_popped, len(queue)) == (0, 0, 0)
