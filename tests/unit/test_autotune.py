"""The offline autotune engine: warm starts, rollbacks, fleet priors."""

import pytest

from repro.core.optimizer import (
    AutotuneOptions,
    KnowledgeEntry,
    TuningKnowledgeBase,
    autotune,
    detect_phase_signature,
)
from repro.errors import OptimizerError, ServeError
from repro.models.naive import naive_pipeline_config
from repro.serve import FleetService, FleetServiceOptions
from repro.workloads.runner import attach_record_sink


def _slow_factory(tiny_model, tiny_dataset):
    """Fresh throttled estimators per config (offline-trial contract)."""
    from dataclasses import replace

    heavy = replace(tiny_dataset, decode_cpu_us=400.0, preprocess_cpu_us=200.0)
    return lambda config: tiny_model.build_estimator(heavy, pipeline_config=config)


_INITIAL = naive_pipeline_config().with_updates(jitter=0.0)
_QUICK = {"population": 4, "trial_steps": 3}
_OPTIONS = AutotuneOptions(strategy="racing", detection_steps=10, workload="tiny")


class TestOptions:
    def test_validation(self):
        with pytest.raises(OptimizerError):
            AutotuneOptions(detection_steps=0)
        with pytest.raises(OptimizerError):
            AutotuneOptions(signature_top_k=0)
        with pytest.raises(OptimizerError):
            AutotuneOptions(knowledge_threshold=1.5)


class TestDetection:
    def test_signature_from_short_window(self, tiny_model, tiny_dataset):
        factory = _slow_factory(tiny_model, tiny_dataset)
        signature = detect_phase_signature(factory, _INITIAL, _OPTIONS)
        assert signature
        assert all(isinstance(name, str) for name in signature)

    def test_signature_deterministic(self, tiny_model, tiny_dataset):
        factory = _slow_factory(tiny_model, tiny_dataset)
        first = detect_phase_signature(factory, _INITIAL, _OPTIONS)
        second = detect_phase_signature(factory, _INITIAL, _OPTIONS)
        assert first == second


class TestAutotune:
    def test_cold_search_improves_and_records(self, tiny_model, tiny_dataset, tmp_path):
        factory = _slow_factory(tiny_model, tiny_dataset)
        kb = TuningKnowledgeBase.open(tmp_path)
        result = autotune(
            factory, _INITIAL, _OPTIONS, knowledge=kb, strategy_options=_QUICK
        )
        assert not result.warm_started
        assert result.improvement > 1.0
        assert result.knowledge_recorded
        assert len(kb) == 1
        assert len(TuningKnowledgeBase.open(tmp_path)) == 1

    def test_warm_start_finds_best_first(self, tiny_model, tiny_dataset, tmp_path):
        factory = _slow_factory(tiny_model, tiny_dataset)
        kb = TuningKnowledgeBase.open(tmp_path)
        cold = autotune(
            factory, _INITIAL, _OPTIONS, knowledge=kb, strategy_options=_QUICK
        )
        warm = autotune(
            factory, _INITIAL, _OPTIONS,
            knowledge=TuningKnowledgeBase.open(tmp_path),
            strategy_options=_QUICK,
        )
        assert warm.warm_started and not warm.rolled_back
        assert warm.warm_similarity == 1.0
        # The cold search's winner is the warm search's very first trial.
        assert warm.outcome.trials_to_config(cold.best_config) == 1
        assert warm.outcome.trials_to_config(cold.best_config) < (
            cold.outcome.trials_to_config(cold.best_config)
        )

    def test_invalid_stored_config_rolls_back_to_cold(
        self, tiny_model, tiny_dataset, tmp_path
    ):
        factory = _slow_factory(tiny_model, tiny_dataset)
        kb = TuningKnowledgeBase.open(tmp_path)
        signature = detect_phase_signature(factory, _INITIAL, _OPTIONS)
        kb.record(
            KnowledgeEntry(
                signature=signature,
                config={"num_parallel_calls": -7},  # no longer validates
                improvement=9.9,
                trials=3,
            )
        )
        result = autotune(
            factory, _INITIAL, _OPTIONS, knowledge=kb, strategy_options=_QUICK
        )
        assert not result.warm_started
        assert result.rolled_back
        assert result.improvement > 1.0  # the cold search still ran

    def test_regressing_warm_start_rolls_back_to_defaults(
        self, tiny_model, tiny_dataset, tmp_path
    ):
        factory = _slow_factory(tiny_model, tiny_dataset)
        # Defaults are already well tuned here; the stored "prior" makes
        # the pipeline slower, and the frozen hill climb cannot escape it.
        initial = _INITIAL.with_updates(
            num_parallel_calls=8, prefetch_depth=4, infeed_threads=4
        )
        kb = TuningKnowledgeBase.open(tmp_path)
        signature = detect_phase_signature(factory, initial, _OPTIONS)
        kb.record(
            KnowledgeEntry(
                signature=signature,
                config={"num_parallel_calls": 1, "prefetch_depth": 0,
                        "infeed_threads": 1},
                improvement=2.0,
                trials=3,
            )
        )
        options = AutotuneOptions(
            strategy="hill-climb", detection_steps=10, workload="tiny"
        )
        result = autotune(
            factory, initial, options, knowledge=kb,
            strategy_options={"trial_steps": 3, "min_improvement": 100.0},
        )
        assert result.warm_started
        assert result.rolled_back
        assert result.best_config == initial
        # A rolled-back result is never recorded over the stored entry.
        assert not result.knowledge_recorded

    def test_no_knowledge_runs_cold(self, tiny_model, tiny_dataset):
        factory = _slow_factory(tiny_model, tiny_dataset)
        result = autotune(factory, _INITIAL, _OPTIONS, strategy_options=_QUICK)
        assert not result.warm_started
        assert result.warm_similarity is None
        assert not result.knowledge_recorded
        assert result.improvement > 1.0


class TestFleetTuningPriors:
    def _service_with_job(self, tiny_model, tiny_dataset):
        from dataclasses import replace

        from repro.core.profiler import ProfilerOptions

        heavy = replace(tiny_dataset, decode_cpu_us=400.0, preprocess_cpu_us=200.0)
        estimator = tiny_model.build_estimator(heavy, pipeline_config=_INITIAL)
        service = FleetService(options=FleetServiceOptions())
        info = service.register("tiny")
        profiler = attach_record_sink(
            estimator,
            service.sink(info.job_id),
            options=ProfilerOptions(
                request_interval_ms=200.0, record_to_storage=False
            ),
        )
        estimator.train()
        profiler.stop()
        service.pump()
        return service, info

    def test_requires_attached_knowledge(self, tiny_model, tiny_dataset):
        service, info = self._service_with_job(tiny_model, tiny_dataset)
        with pytest.raises(ServeError, match="knowledge"):
            service.tuning_priors(info.job_id)

    def test_priors_match_recorded_search(self, tiny_model, tiny_dataset, tmp_path):
        factory = _slow_factory(tiny_model, tiny_dataset)
        kb = TuningKnowledgeBase.open(tmp_path)
        tuned = autotune(
            factory, _INITIAL, _OPTIONS, knowledge=kb, strategy_options=_QUICK
        )
        service, info = self._service_with_job(tiny_model, tiny_dataset)
        service.attach_knowledge(kb)
        priors = service.tuning_priors(info.job_id, threshold=0.5)
        assert priors, "the tuned workload's phases must match its own entry"
        best = priors[0]
        assert best.job_id == info.job_id
        assert best.improvement == pytest.approx(tuned.improvement)
        assert best.workload == "tiny"
        # The prior's config is exactly what the search stored.
        stored = kb.entries[0].config
        assert best.config == stored

    def test_unrelated_kb_yields_no_priors(self, tiny_model, tiny_dataset):
        service, info = self._service_with_job(tiny_model, tiny_dataset)
        kb = TuningKnowledgeBase()
        kb.record(
            KnowledgeEntry(
                signature=frozenset({"NoSuchOpA", "NoSuchOpB", "NoSuchOpC"}),
                config={"prefetch_depth": 8},
                improvement=1.4,
                trials=5,
            )
        )
        service.attach_knowledge(kb)
        assert service.tuning_priors(info.job_id) == []

    def test_surrogate_pairs_requires_attached_knowledge(
        self, tiny_model, tiny_dataset
    ):
        service, info = self._service_with_job(tiny_model, tiny_dataset)
        with pytest.raises(ServeError, match="knowledge"):
            service.surrogate_pairs(info.job_id)

    def test_surrogate_pairs_from_recorded_search(
        self, tiny_model, tiny_dataset, tmp_path
    ):
        factory = _slow_factory(tiny_model, tiny_dataset)
        kb = TuningKnowledgeBase.open(tmp_path)
        tuned = autotune(
            factory, _INITIAL, _OPTIONS, knowledge=kb, strategy_options=_QUICK
        )
        service, info = self._service_with_job(tiny_model, tiny_dataset)
        service.attach_knowledge(kb)
        pairs = service.surrogate_pairs(info.job_id, threshold=0.5)
        assert pairs, "the tuned workload's trials must surface as pairs"
        assert all(pair.signature == tuned.signature for pair in pairs)
        assert all(pair.source == "fleet:tiny" for pair in pairs)
        assert all(pair.throughput > 0 for pair in pairs)
        # Deterministic: a second query returns the identical rows.
        assert pairs == service.surrogate_pairs(info.job_id, threshold=0.5)

    def test_surrogate_pairs_empty_without_matches(
        self, tiny_model, tiny_dataset
    ):
        service, info = self._service_with_job(tiny_model, tiny_dataset)
        service.attach_knowledge(TuningKnowledgeBase())
        assert service.surrogate_pairs(info.job_id) == []


class TestSurrogateAutotune:
    def test_records_observations(self, tiny_model, tiny_dataset, tmp_path):
        factory = _slow_factory(tiny_model, tiny_dataset)
        kb = TuningKnowledgeBase.open(tmp_path)
        result = autotune(
            factory, _INITIAL, _OPTIONS, knowledge=kb, strategy_options=_QUICK
        )
        assert result.knowledge_recorded
        entry = kb.entries[0]
        assert len(entry.observations) == len(result.trials)
        for row in entry.observations:
            assert set(row) == {"config", "throughput"}
            assert row["throughput"] > 0

    def test_surrogate_strategy_cold_run(self, tiny_model, tiny_dataset):
        factory = _slow_factory(tiny_model, tiny_dataset)
        options = AutotuneOptions(
            strategy="surrogate", detection_steps=10, workload="tiny"
        )
        result = autotune(
            factory, _INITIAL, options, strategy_options=_QUICK
        )
        assert result.improvement > 1.0
        assert result.surrogate is not None
        # No knowledge, no corpus: the model starts cold and learns
        # online from the run's own trials.
        assert result.surrogate.to_document()["observations"] == len(
            result.trials
        )

    def test_surrogate_warm_run_prunes_trials(
        self, tiny_model, tiny_dataset, tmp_path
    ):
        factory = _slow_factory(tiny_model, tiny_dataset)
        kb = TuningKnowledgeBase.open(tmp_path)
        cold_options = AutotuneOptions(
            strategy="surrogate", detection_steps=10, workload="tiny"
        )
        # Population 8 so the cold run measures enough unique configs to
        # make the warm model ready (MIN_TRAINING_PAIRS) from trial one.
        wide = {"population": 8, "trial_steps": 3}
        cold = autotune(
            factory, _INITIAL, cold_options, knowledge=kb,
            strategy_options=wide,
        )
        warm = autotune(
            factory, _INITIAL, cold_options,
            knowledge=TuningKnowledgeBase.open(tmp_path),
            strategy_options=wide,
        )
        assert warm.surrogate is not None and warm.surrogate.ready
        assert len(warm.trials) < len(cold.trials)
        assert warm.outcome.best_throughput >= (
            cold.outcome.best_throughput * 0.99
        )

    def test_surrogate_never_returns_guard_rejected_config(
        self, tiny_model, tiny_dataset, tmp_path
    ):
        factory = _slow_factory(tiny_model, tiny_dataset)
        signature = detect_phase_signature(
            factory, _INITIAL,
            AutotuneOptions(strategy="surrogate", detection_steps=10),
        )
        kb = TuningKnowledgeBase.open(tmp_path)
        # A poisoned prior: claims a huge improvement for a config that
        # no longer validates. The engine must roll back, not crash.
        kb.record(
            KnowledgeEntry(
                signature=signature,
                config={"num_parallel_calls": -7},
                improvement=9.9,
                trials=3,
            )
        )
        options = AutotuneOptions(
            strategy="surrogate", detection_steps=10, workload="tiny"
        )
        result = autotune(
            factory, _INITIAL, options, knowledge=kb, strategy_options=_QUICK
        )
        assert result.rolled_back
        assert result.improvement > 1.0
