"""MXU timing model."""

import pytest

from repro.errors import ConfigurationError
from repro.tpu.mxu import MatmulShape, MxuModel
from repro.tpu.specs import TPU_V2, TPU_V3


@pytest.fixture
def mxu():
    return MxuModel(TPU_V2)


def test_matmul_flops():
    shape = MatmulShape(m=128, k=128, n=128)
    assert shape.flops == 2 * 128**3


def test_batched_matmul_flops_scale_with_batch():
    single = MatmulShape(m=64, k=64, n=64)
    batched = MatmulShape(m=64, k=64, n=64, batch=8)
    assert batched.flops == 8 * single.flops


def test_invalid_shape_rejected():
    with pytest.raises(ConfigurationError):
        MatmulShape(m=0, k=1, n=1)


def test_aligned_shape_reaches_full_efficiency(mxu):
    assert mxu.shape_efficiency(MatmulShape(128, 128, 128)) == pytest.approx(1.0)


def test_ragged_shape_loses_efficiency(mxu):
    ragged = mxu.shape_efficiency(MatmulShape(129, 128, 128))
    assert ragged < 0.6  # 129 needs 2 passes of 128 lanes


def test_efficiency_floor(mxu):
    assert mxu.shape_efficiency(MatmulShape(1, 1, 1)) >= 0.01


def test_matmul_time_scales_inversely_with_efficiency(mxu):
    fast = mxu.matmul_time_us(MatmulShape(128, 128, 128, batch=64))
    slow = mxu.matmul_time_us(MatmulShape(129, 128, 128, batch=64))
    assert slow > fast


def test_compute_time_at_peak(mxu):
    # 45 TFLOP at full efficiency on a 45 TFLOPS chip = 1 second.
    assert mxu.compute_time_us(45e12, efficiency=1.0) == pytest.approx(1e6)


def test_compute_time_validates_inputs(mxu):
    with pytest.raises(ConfigurationError):
        mxu.compute_time_us(-1.0)
    with pytest.raises(ConfigurationError):
        mxu.compute_time_us(1.0, efficiency=0.0)
    with pytest.raises(ConfigurationError):
        mxu.compute_time_us(1.0, efficiency=1.5)


def test_utilization_definition(mxu):
    # Half the peak's worth of FLOPs in one second = 50%.
    assert mxu.utilization(22.5e12, 1e6) == pytest.approx(0.5)


def test_utilization_capped_at_one(mxu):
    assert mxu.utilization(1e15, 1e6) == 1.0


def test_utilization_zero_elapsed(mxu):
    assert mxu.utilization(1e12, 0.0) == 0.0


def test_v3_faster_than_v2_for_same_shape():
    shape = MatmulShape(128, 768, 768, batch=32)
    assert MxuModel(TPU_V3).matmul_time_us(shape) < MxuModel(TPU_V2).matmul_time_us(shape)
