"""Phase transition matrices and bucket-quota failure injection."""

import numpy as np
import pytest

from repro.core.analyzer.analyzer import AnalysisResult
from repro.core.analyzer.phases import build_phases
from repro.core.profiler.record import StepStats
from repro.errors import StorageError
from repro.runtime.events import DeviceKind, StepKind, StepMetadata
from repro.storage.bucket import Bucket
from repro.storage.checkpoints import Checkpoint, CheckpointStore
from repro.storage.objects import StorageObject


def _result(labels):
    steps = []
    for i in range(len(labels)):
        step = StepStats(step=i)
        step.observe("op", DeviceKind.TPU, 1.0)
        step.attach_metadata(
            StepMetadata(i, StepKind.TRAIN, i * 10.0, i * 10.0 + 10.0, 0.0, 0.0)
        )
        steps.append(step)
    labels = np.asarray(labels)
    return AnalysisResult(
        method="test", params={}, labels=labels, phases=build_phases(steps, labels)
    )


class TestTransitionMatrix:
    def test_contiguous_labels_band_diagonal(self):
        result = _result([0, 0, 0, 1, 1, 2])
        phase_ids, matrix = result.transition_matrix()
        assert phase_ids == [0, 1, 2]
        assert matrix[0, 0] == 2 and matrix[0, 1] == 1
        assert matrix[1, 1] == 1 and matrix[1, 2] == 1
        # No backward transitions for contiguous phases.
        assert np.tril(matrix, k=-1).sum() == 0

    def test_total_transitions(self):
        result = _result([0, 1, 0, 1, 0])
        _, matrix = result.transition_matrix()
        assert matrix.sum() == 4  # n - 1 transitions

    def test_recurrence_zero_for_contiguous(self):
        assert _result([0, 0, 1, 1, 2]).recurrence_fraction() == 0.0

    def test_recurrence_for_alternating_phases(self):
        # train/eval alternation: 0,1,0,1 — both re-entries after first visit.
        result = _result([0, 0, 1, 0, 1, 0])
        assert result.recurrence_fraction() > 0.5

    def test_single_phase_no_transitions(self):
        assert _result([0, 0, 0]).recurrence_fraction() == 0.0

    def test_real_run_ols_never_recurs(self, bert_mrpc_analyzer):
        result = bert_mrpc_analyzer.ols_phases()
        assert result.recurrence_fraction() == 0.0

    def test_real_run_kmeans_matrix_consistent(self, bert_mrpc_analyzer):
        result = bert_mrpc_analyzer.kmeans_phases(k=4)
        phase_ids, matrix = result.transition_matrix()
        assert matrix.sum() == len(result.labels) - 1
        assert len(phase_ids) == len(set(result.labels.tolist()))


class TestBucketQuota:
    def test_quota_blocks_overflow(self):
        bucket = Bucket("small", quota_bytes=1000.0)
        bucket.put(StorageObject("a", 800.0))
        with pytest.raises(StorageError):
            bucket.put(StorageObject("b", 300.0))
        assert not bucket.exists("b")

    def test_overwrite_counts_once(self):
        bucket = Bucket("small", quota_bytes=1000.0)
        bucket.put(StorageObject("a", 800.0))
        bucket.put(StorageObject("a", 900.0))  # replace, not add
        assert bucket.used_bytes() == 900.0

    def test_unlimited_by_default(self):
        bucket = Bucket("big")
        bucket.put(StorageObject("a", 1e15))

    def test_checkpoint_save_fails_loudly_on_full_bucket(self):
        bucket = Bucket("full", quota_bytes=100.0)
        store = CheckpointStore(bucket)
        with pytest.raises(StorageError):
            store.save(Checkpoint(step=1, saved_at_us=0.0, num_bytes=1e6))
        # The failed save leaves no phantom checkpoint behind.
        assert len(store) == 0

    def test_session_surfaces_checkpoint_quota_failure(self, tiny_model, tiny_dataset):
        estimator = tiny_model.build_estimator(tiny_dataset)
        session = estimator.session
        # Shrink the quota below one checkpoint after shards are uploaded.
        session.initialize()
        estimator.bucket.quota_bytes = estimator.bucket.used_bytes() + 1.0
        with pytest.raises(StorageError):
            session.run_steps(estimator.plan.train_steps)
