"""HBM capacity/bandwidth model."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.tpu.hbm import HbmModel
from repro.tpu.specs import TPU_V2, TPU_V3


@pytest.fixture
def hbm():
    return HbmModel(TPU_V2)


def test_transfer_time_at_bandwidth(hbm):
    # 600 GB at 600 GB/s = 1 second.
    assert hbm.transfer_time_us(600e9) == pytest.approx(1e6)


def test_streams_multiply_traffic(hbm):
    assert hbm.transfer_time_us(1e9, streams=2) == pytest.approx(
        2 * hbm.transfer_time_us(1e9)
    )


def test_transfer_validates(hbm):
    with pytest.raises(ConfigurationError):
        hbm.transfer_time_us(-1.0)
    with pytest.raises(ConfigurationError):
        hbm.transfer_time_us(1.0, streams=0)


def test_allocation_tracking(hbm):
    hbm.allocate(1e9)
    assert hbm.allocated_bytes == 1e9
    assert hbm.free_bytes == TPU_V2.hbm_bytes - 1e9
    hbm.release(1e9)
    assert hbm.allocated_bytes == 0.0


def test_out_of_memory(hbm):
    hbm.allocate(TPU_V2.hbm_bytes)
    with pytest.raises(SimulationError):
        hbm.allocate(1.0)


def test_over_release_rejected(hbm):
    hbm.allocate(100.0)
    with pytest.raises(SimulationError):
        hbm.release(200.0)


def test_reset_clears_allocations(hbm):
    hbm.allocate(5e9)
    hbm.reset()
    assert hbm.allocated_bytes == 0.0


def test_v3_transfers_faster():
    assert HbmModel(TPU_V3).transfer_time_us(1e9) < HbmModel(TPU_V2).transfer_time_us(1e9)
