"""The binary record codec: blocks, frames, journals, record stores."""

import numpy as np
import pytest

from repro.core.profiler import codec
from repro.core.profiler.journal import (
    RecordJournal,
    detect_journal_format,
    recover_journal,
)
from repro.core.profiler.record import OperatorStats, ProfileRecord, StepStats
from repro.core.profiler.serialize import (
    load_records,
    record_checksum,
    save_records,
)
from repro.errors import CodecError, JournalError, ProfilerError
from repro.faults.inject import corrupt_frame, truncate_frame
from repro.runtime.events import DeviceKind, StepKind


def _step(number, ops=(), duration_us=100.0, kind=StepKind.TRAIN):
    step = StepStats(step=number, kind=kind)
    step.start_us = number * duration_us
    step.end_us = (number + 1) * duration_us
    step.tpu_idle_us = 12.5
    step.mxu_flops = 3e9
    for name, device, op_duration in ops:
        step.operators[(name, device.value)] = OperatorStats(
            name=name, device=device, count=4, total_duration_us=op_duration
        )
    return step


def _record(index, steps=(), **kwargs):
    record = ProfileRecord(
        index=index,
        window_start_us=index * 1e6,
        window_end_us=(index + 1) * 1e6,
        **kwargs,
    )
    for step in steps:
        record.steps[step.step] = step
    return record


def _typical_record(index=0):
    return _record(
        index,
        [
            _step(
                2 * index,
                [
                    ("MatMul", DeviceKind.TPU, 55.0),
                    ("InfeedDequeueTuple", DeviceKind.TPU, 20.0),
                    ("RunGraph", DeviceKind.HOST, 30.0),
                ],
            ),
            _step(2 * index + 1, [("fusion", DeviceKind.TPU, 80.0)]),
        ],
    )


def _assert_identical(left: ProfileRecord, right: ProfileRecord) -> None:
    """Bit-exact equality, proven through the canonical JSON checksum."""
    assert record_checksum(left) == record_checksum(right)
    assert list(left.steps) == list(right.steps)  # insertion order survives
    for number in left.steps:
        assert list(left.steps[number].operators) == list(
            right.steps[number].operators
        )


class TestPayloadRoundTrip:
    def test_typical_record(self):
        record = _typical_record()
        _assert_identical(record, codec.decode_payload(codec.encode_payload(record)))

    def test_empty_step_map(self):
        record = _record(7, [], truncated=True, final=True)
        rebuilt = codec.decode_payload(codec.encode_payload(record))
        assert rebuilt.steps == {}
        assert rebuilt.truncated and rebuilt.final
        _assert_identical(record, rebuilt)

    def test_host_only_operators(self):
        record = _record(
            1, [_step(0, [("SaveV2", DeviceKind.HOST, 11.0)], kind=None)]
        )
        rebuilt = codec.decode_payload(codec.encode_payload(record))
        stats = rebuilt.steps[0].operators[("SaveV2", DeviceKind.HOST.value)]
        assert stats.device is DeviceKind.HOST
        assert rebuilt.steps[0].kind is None
        _assert_identical(record, rebuilt)

    def test_zero_duration_operators(self):
        record = _record(2, [_step(0, [("Noop", DeviceKind.TPU, 0.0)])])
        rebuilt = codec.decode_payload(codec.encode_payload(record))
        assert (
            rebuilt.steps[0].operators[("Noop", DeviceKind.TPU.value)].total_duration_us
            == 0.0
        )
        _assert_identical(record, rebuilt)

    def test_trailing_bytes_rejected(self):
        payload = codec.encode_payload(_typical_record())
        with pytest.raises(CodecError):
            codec.decode_payload(payload + b"\x00")


class TestFrames:
    def test_frame_round_trip(self):
        record = _typical_record(3)
        _assert_identical(record, codec.decode_frame(codec.encode_frame(9, record)))

    def test_missing_magic_rejected(self):
        frame = codec.encode_frame(0, _typical_record())
        with pytest.raises(CodecError):
            codec.decode_frame(frame[1:])

    def test_single_bit_corruption_is_always_caught(self):
        frame = codec.encode_frame(0, _typical_record())
        rng = np.random.default_rng(5)
        for _ in range(16):
            mangled = corrupt_frame(frame, rng)
            assert mangled != frame
            with pytest.raises(CodecError):
                codec.decode_frame(mangled)

    def test_truncated_frame_is_caught(self):
        frame = codec.encode_frame(0, _typical_record())
        cut = truncate_frame(frame)
        assert len(cut) < len(frame)
        with pytest.raises(CodecError):
            codec.decode_frame(cut)

    def test_stub_of_refused_frame_keeps_header_fields(self):
        record = _typical_record(11)
        frame = codec.encode_frame(4, record)
        stub = codec.frame_stub(corrupt_frame(frame, np.random.default_rng(0)))
        assert stub.index == record.index
        assert stub.window_start_us == record.window_start_us
        assert stub.window_end_us == record.window_end_us
        assert stub.steps == {}

    def test_stub_of_unreadable_frame_is_unattributable(self):
        assert codec.frame_stub(b"TP").index == -1


class TestBinaryJournal:
    def _write(self, path, count=4):
        journal = RecordJournal(path)  # binary is the default
        records = [_typical_record(i) for i in range(count)]
        for record in records:
            journal.append(record)
        journal.close()
        return records

    def test_round_trip_and_detection(self, tmp_path):
        path = tmp_path / "run.journal"
        records = self._write(path)
        assert detect_journal_format(path) == "binary"
        recovery = recover_journal(path)
        assert recovery.journal_format == "binary"
        assert recovery.lossless
        assert recovery.bytes_total == path.stat().st_size > 0
        for original, recovered in zip(records, recovery.records):
            _assert_identical(original, recovered)

    def test_torn_tail_mid_block_keeps_full_blocks(self, tmp_path):
        path = tmp_path / "run.journal"
        self._write(path, count=4)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 10])  # cut the last block's payload
        recovery = recover_journal(path)
        assert recovery.torn_tail
        assert recovery.corrupt_entries == 0
        assert [record.index for record in recovery.records] == [0, 1, 2]
        # strict mode tolerates a torn tail — it is the expected crash shape
        assert recover_journal(path, strict=True).torn_tail

    def test_mid_file_corruption_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "run.journal"
        self._write(path, count=4)
        raw = bytearray(path.read_bytes())
        # Flip one payload bit of block 1 (past its 36-byte header).
        offset = len(codec.MAGIC)
        first = codec.read_block(memoryview(bytes(raw)), offset)
        raw[first.next_offset + codec.BLOCK_HEADER_BYTES + 3] ^= 0x10
        path.write_bytes(bytes(raw))
        recovery = recover_journal(path)
        assert recovery.corrupt_entries == 1
        assert not recovery.torn_tail
        assert [record.index for record in recovery.records] == [0, 2, 3]
        with pytest.raises(JournalError):
            recover_journal(path, strict=True)

    def test_garbage_file_is_a_clean_error(self, tmp_path):
        path = tmp_path / "garbage"
        path.write_bytes(b"\x7fELF\x02\x01\x01\x00 not a journal")
        with pytest.raises(JournalError):
            recover_journal(path)

    def test_unsupported_codec_version_is_named(self, tmp_path):
        path = tmp_path / "future.journal"
        path.write_bytes(codec.MAGIC_PREFIX + bytes([codec.CODEC_VERSION + 1]))
        with pytest.raises(JournalError, match="version"):
            recover_journal(path)

    def test_json_journals_still_recover(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RecordJournal(path, format="json")
        records = [_typical_record(i) for i in range(3)]
        for record in records:
            journal.append(record)
        journal.close()
        assert detect_journal_format(path) == "json"
        recovery = recover_journal(path)
        assert recovery.journal_format == "json"
        assert recovery.lossless
        for original, recovered in zip(records, recovery.records):
            _assert_identical(original, recovered)

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(JournalError):
            RecordJournal(tmp_path / "x", format="msgpack")


class TestBinaryRecordStore:
    def test_round_trip(self, tmp_path):
        records = [_typical_record(i) for i in range(3)]
        save_records(records, tmp_path / "store", format="binary")
        assert (tmp_path / "store" / "records.bin").exists()
        loaded = load_records(tmp_path / "store")
        for original, recovered in zip(records, loaded):
            _assert_identical(original, recovered)

    def test_format_assertion(self, tmp_path):
        save_records([_typical_record()], tmp_path / "store", format="binary")
        load_records(tmp_path / "store", format="binary")
        with pytest.raises(ProfilerError):
            load_records(tmp_path / "store", format="json")

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ProfilerError):
            save_records([], tmp_path / "store", format="protobuf")
