"""SimPoint-style BIC for k selection."""

import numpy as np
import pytest

from repro.core.analyzer.bic import bic_score, choose_k_bic
from repro.core.analyzer.kmeans import kmeans, sweep_k
from repro.errors import AnalyzerError


def _blobs(rng, centers, per=40, scale=0.4):
    return np.vstack([rng.normal(loc=c, scale=scale, size=(per, 2)) for c in centers])


def test_bic_prefers_true_cluster_count(rng):
    data = _blobs(rng, [(0, 0), (12, 0), (0, 12)])
    results = sweep_k(data, range(1, 8), rng)
    assert choose_k_bic(data, results) == 3


def test_bic_single_blob_prefers_small_k(rng):
    data = rng.normal(size=(80, 2))
    results = sweep_k(data, range(1, 8), rng)
    assert choose_k_bic(data, results) <= 2


def test_bic_score_finite_for_valid_k(rng):
    data = _blobs(rng, [(0, 0), (10, 10)])
    result = kmeans(data, 2, rng)
    assert np.isfinite(bic_score(data, result))


def test_bic_degenerate_k_equals_n(rng):
    data = rng.normal(size=(5, 2))
    result = kmeans(data, 5, rng)
    assert bic_score(data, result) == float("-inf")


def test_bic_penalizes_overfitting(rng):
    data = _blobs(rng, [(0, 0), (12, 0)])
    results = sweep_k(data, range(1, 11), rng)
    scores = {k: bic_score(data, r) for k, r in results.items()}
    # More clusters than structure costs BIC.
    assert scores[2] > scores[8]


def test_choose_k_bic_empty_rejected():
    with pytest.raises(AnalyzerError):
        choose_k_bic(np.zeros((3, 2)), {})


def test_analyzer_criterion_dispatch(bert_mrpc_analyzer):
    k_elbow = bert_mrpc_analyzer.choose_k(range(1, 8), criterion="elbow")
    k_bic = bert_mrpc_analyzer.choose_k(range(1, 8), criterion="bic")
    assert 1 <= k_elbow <= 7
    assert 1 <= k_bic <= 7
    with pytest.raises(AnalyzerError):
        bert_mrpc_analyzer.choose_k(criterion="aic")
