"""Profile-record serialization round trips."""

import json

import pytest

from repro.core.analyzer import TPUPointAnalyzer
from repro.core.profiler.serialize import (
    SCHEMA_VERSION,
    load_records,
    record_from_dict,
    record_to_dict,
    save_records,
)
from repro.errors import ProfilerError


def _signatures(records):
    """A deep, order-insensitive view for equality checks."""
    return [
        (
            record.index,
            record.window_start_us,
            record.window_end_us,
            record.truncated,
            record.final,
            {
                step: sorted(
                    (k, s.count, s.total_duration_us)
                    for k, s in stats.operators.items()
                )
                for step, stats in record.steps.items()
            },
            {step: (stats.kind, stats.start_us, stats.end_us) for step, stats in record.steps.items()},
        )
        for record in records
    ]


class TestDictRoundTrip:
    def test_round_trip_preserves_everything(self, tiny_run):
        _, _, records = tiny_run
        rebuilt = [record_from_dict(record_to_dict(r)) for r in records]
        assert _signatures(rebuilt) == _signatures(records)

    def test_dict_is_json_serializable(self, tiny_run):
        _, _, records = tiny_run
        json.dumps(record_to_dict(records[0]))

    def test_schema_version_enforced(self, tiny_run):
        _, _, records = tiny_run
        payload = record_to_dict(records[0])
        payload["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ProfilerError):
            record_from_dict(payload)


class TestDiskRoundTrip:
    def test_save_and_load(self, tiny_run, tmp_path):
        _, _, records = tiny_run
        directory = save_records(records, tmp_path / "recs")
        assert (directory / "manifest.json").exists()
        loaded = load_records(directory)
        assert _signatures(loaded) == _signatures(records)

    def test_loaded_records_analyze_identically(self, tiny_run, tmp_path):
        _, _, records = tiny_run
        save_records(records, tmp_path / "recs")
        original = TPUPointAnalyzer(records).ols_phases()
        reloaded = TPUPointAnalyzer(load_records(tmp_path / "recs")).ols_phases()
        assert reloaded.num_phases == original.num_phases
        assert reloaded.coverage().top(3) == pytest.approx(original.coverage().top(3))

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ProfilerError):
            load_records(tmp_path)

    def test_api_save_records(self, tiny_estimator, tmp_path):
        from repro.core.api import TPUPoint

        tpupoint = TPUPoint(tiny_estimator)
        tpupoint.Start()
        tiny_estimator.train()
        tpupoint.Stop()
        directory = tpupoint.save_records(tmp_path / "api-recs")
        assert len(load_records(directory)) == len(tpupoint.records)
