"""Energy and dollar-cost accounting."""

import pytest

from repro.costs import (
    HOST_HOURLY_USD,
    TPU_HOURLY_USD,
    RunCost,
    run_cost,
    savings,
)
from repro.errors import ConfigurationError
from repro.runtime.session import SessionSummary
from repro.tpu.specs import TpuGeneration


def _summary(wall_s=3600.0, busy_s=1800.0):
    return SessionSummary(
        wall_us=wall_s * 1e6,
        tpu_busy_us=busy_s * 1e6,
        mxu_flops=1e15,
        peak_flops=45e12,
        steps_executed=100,
        events_recorded=1000,
    )


def test_one_hour_billing_matches_list_price():
    cost = run_cost(_summary(wall_s=3600.0), "v2")
    assert cost.tpu_dollars == pytest.approx(TPU_HOURLY_USD[TpuGeneration.V2])
    assert cost.host_dollars == pytest.approx(HOST_HOURLY_USD)


def test_idle_dollars_proportional_to_idle_time():
    cost = run_cost(_summary(wall_s=3600.0, busy_s=1800.0), "v2")
    assert cost.idle_seconds == pytest.approx(1800.0)
    assert cost.idle_dollars == pytest.approx(cost.tpu_dollars / 2)
    assert cost.idle_dollar_fraction == pytest.approx(0.5)


def test_energy_includes_idle_floor():
    fully_busy = run_cost(_summary(busy_s=3600.0), "v2")
    half_busy = run_cost(_summary(busy_s=1800.0), "v2")
    # Idle halves draw a fraction of TDP, not zero.
    assert half_busy.tpu_energy_joules < fully_busy.tpu_energy_joules
    assert half_busy.tpu_energy_joules > fully_busy.tpu_energy_joules / 2


def test_v3_costs_more_per_hour():
    v2 = run_cost(_summary(), "v2")
    v3 = run_cost(_summary(), "v3")
    assert v3.tpu_dollars > v2.tpu_dollars


def test_totals():
    cost = run_cost(_summary(), "v2")
    assert cost.total_dollars == pytest.approx(cost.tpu_dollars + cost.host_dollars)
    assert cost.total_energy_joules == pytest.approx(
        cost.tpu_energy_joules + cost.host_energy_joules
    )


def test_format_readable():
    text = run_cost(_summary(), "v2").format()
    assert "TPU bill" in text
    assert "paid for idle time" in text


def test_savings():
    before = run_cost(_summary(wall_s=3600.0, busy_s=1800.0), "v2")
    after = run_cost(_summary(wall_s=3000.0, busy_s=1800.0), "v2")
    saved = savings(before, after)
    assert saved["dollars"] > 0
    assert saved["joules"] > 0
    assert saved["idle_dollars"] > 0


def test_validation():
    with pytest.raises(ConfigurationError):
        run_cost(_summary(), "v2", idle_power_fraction=2.0)
    with pytest.raises(ConfigurationError):
        run_cost(_summary(), "v2", host_power_watts=-1.0)


def test_end_to_end_on_real_run(tiny_estimator):
    summary = tiny_estimator.train()
    cost = run_cost(summary, tiny_estimator.spec.generation, spec=tiny_estimator.spec)
    assert cost.total_dollars > 0
    assert 0.0 <= cost.idle_dollar_fraction <= 1.0
    assert isinstance(cost, RunCost)
