"""Experiment-sweep driver."""

import pytest

from repro.errors import ConfigurationError
from repro.host.pipeline import PipelineConfig
from repro.models.naive import naive_pipeline_config
from repro.sweeps import METRICS, sweep


@pytest.fixture(scope="module")
def small_sweep():
    return sweep(
        ["bert-mrpc", "dcgan-mnist"],
        generations=("v2", "v3"),
    )


class TestSweepExecution:
    def test_grid_size(self, small_sweep):
        assert len(small_sweep) == 4  # 2 workloads x 2 generations

    def test_cell_lookup(self, small_sweep):
        cell = small_sweep.cell("bert-mrpc", "v3")
        assert cell.generation == "v3"
        assert cell.run.summary.wall_us > 0

    def test_missing_cell_raises(self, small_sweep):
        with pytest.raises(ConfigurationError):
            small_sweep.cell("resnet-imagenet", "v2")

    def test_metrics_extractors(self, small_sweep):
        cell = small_sweep.cells[0]
        for name in METRICS:
            assert cell.metric(name) >= 0.0
        with pytest.raises(ConfigurationError):
            cell.metric("nonsense")

    def test_column_and_mean(self, small_sweep):
        idle = small_sweep.column("idle_fraction")
        assert len(idle) == 4
        assert small_sweep.mean("idle_fraction", generation="v3") > small_sweep.mean(
            "idle_fraction", generation="v2"
        )

    def test_mean_empty_filter_raises(self, small_sweep):
        with pytest.raises(ConfigurationError):
            small_sweep.mean("idle_fraction", generation="v99")


class TestSweepRendering:
    def test_table(self, small_sweep):
        table = small_sweep.table()
        assert "bert-mrpc" in table
        assert "idle_fraction" in table
        assert len(table.splitlines()) == 5  # header + 4 cells

    def test_csv_export(self, small_sweep, tmp_path):
        path = small_sweep.to_csv(tmp_path / "sweep.csv")
        lines = path.read_text().splitlines()
        assert lines[0].startswith("workload,generation,config")
        assert len(lines) == 5


class TestConfigAxis:
    def test_config_labels(self):
        result = sweep(
            ["dcgan-mnist"],
            configs={"default": None, "naive": naive_pipeline_config()},
        )
        assert len(result) == 2
        default = result.cell("dcgan-mnist", "v2", "default")
        naive = result.cell("dcgan-mnist", "v2", "naive")
        assert naive.run.wall_seconds > default.run.wall_seconds

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sweep([])
        with pytest.raises(ConfigurationError):
            sweep(["bert-mrpc"], generations=())

    def test_seed_override_changes_run(self):
        a = sweep(["dcgan-mnist"], seed=1).cells[0].run
        b = sweep(["dcgan-mnist"], seed=2).cells[0].run
        assert a.summary.wall_us != b.summary.wall_us

    def test_explicit_config_object(self):
        result = sweep(
            ["dcgan-mnist"],
            configs={"wide": PipelineConfig(num_parallel_calls=32)},
        )
        assert result.cells[0].config_label == "wide"
