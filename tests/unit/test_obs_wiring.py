"""Instrumentation wiring: toolchain spans/metrics from real subsystem runs.

The default tracer and registry are process-global and shared with other
tests, so every assertion here works on *deltas* — spans recorded after
a marker index, counter values captured before and after an action.
"""

import pytest

from repro import obs
from repro.core.analyzer import TPUPointAnalyzer
from repro.core.profiler import ProfilerOptions, TPUPointProfiler
from repro.serve import FleetService, FleetServiceOptions
from repro.serve.metrics import ServiceMetrics


def _spans_after(marker):
    return obs.default_tracer().spans()[marker:]


@pytest.fixture
def span_marker():
    return len(obs.default_tracer().spans())


class TestProfilerWiring:
    def test_overhead_fraction_and_request_counters(self, tiny_estimator, span_marker):
        gauge = obs.gauge("repro_profiler_overhead_fraction").labels()
        requests = obs.counter("repro_profiler_requests_total").labels()
        kept = obs.counter("repro_profiler_records_kept_total").labels()
        requests_before, kept_before = requests.value, kept.value

        profiler = TPUPointProfiler(
            tiny_estimator, ProfilerOptions(request_interval_ms=200.0)
        )
        profiler.start(analyzer=True)
        tiny_estimator.train()
        records = profiler.stop()

        assert requests.value > requests_before
        assert kept.value - kept_before == len(records)
        # The overhead fraction is a real measurement in (0, 1].
        assert 0.0 < gauge.value <= 1.0
        assert any(s.name == "profiler.stop" for s in _spans_after(span_marker))

    def test_request_latency_histogram_grows(self, tiny_estimator):
        histogram = obs.histogram("repro_profiler_request_seconds").labels()
        before = histogram.count
        profiler = TPUPointProfiler(
            tiny_estimator, ProfilerOptions(request_interval_ms=200.0)
        )
        profiler.start(analyzer=True)
        tiny_estimator.train()
        profiler.stop()
        assert histogram.count > before


class TestAnalyzerWiring:
    def test_kmeans_sweep_emits_nested_fit_spans(self, tiny_run, span_marker):
        _, _, records = tiny_run
        analyzer = TPUPointAnalyzer(records)
        analyzer.kmeans_sweep(range(1, 5))
        spans = _spans_after(span_marker)
        sweep = next(s for s in spans if s.name == "analyzer.kmeans_sweep")
        fits = [s for s in spans if s.name == "analyzer.kmeans_fit"]
        assert len(fits) == 4
        assert all(fit.parent_id == sweep.span_id for fit in fits)
        assert sorted(fit.attributes["k"] for fit in fits) == [1, 2, 3, 4]
        assert sweep.attributes["k_count"] == 4

    def test_per_algorithm_duration_histograms(self, tiny_run):
        _, _, records = tiny_run
        family = obs.histogram(
            "repro_analyzer_duration_seconds", labels=("algorithm",)
        )
        before = {
            algo: family.labels(algorithm=algo).count for algo in ("ols", "kmeans")
        }
        analyzer = TPUPointAnalyzer(records)
        analyzer.analyze("ols")
        analyzer.analyze("kmeans", k=2)
        for algo in ("ols", "kmeans"):
            assert family.labels(algorithm=algo).count == before[algo] + 1

    def test_ols_phase_span_attributes(self, tiny_run, span_marker):
        _, _, records = tiny_run
        TPUPointAnalyzer(records).ols_phases()
        spans = _spans_after(span_marker)
        ols = next(s for s in spans if s.name == "analyzer.ols_phases")
        assert ols.attributes["phases"] >= 1
        merge = next(s for s in spans if s.name == "analyzer.merge_records")
        assert merge.parent_id == ols.span_id  # lazy merge nests under the caller


class TestServiceMetricsOnRegistry:
    def test_attribute_api_preserved(self):
        metrics = ServiceMetrics()
        metrics.jobs_registered += 2
        metrics.records_submitted += 10
        metrics.record_drop("job/0", 3)
        assert metrics.jobs_registered == 2
        assert metrics.records_dropped == 3
        assert metrics.dropped_by_job == {"job/0": 3}
        assert metrics.drop_fraction == pytest.approx(3 / 10)
        with metrics.time_query():
            pass
        assert metrics.queries_served == 1
        assert metrics.query_seconds_total >= 0.0
        assert metrics.query_seconds_max >= 0.0
        assert metrics.mean_query_seconds >= 0.0
        assert metrics.format()

    def test_instances_do_not_share_counts(self):
        first, second = ServiceMetrics(), ServiceMetrics()
        first.jobs_registered += 5
        assert second.jobs_registered == 0

    def test_eviction_folds_per_job_drops(self):
        service = FleetService(options=FleetServiceOptions(queue_capacity=64))
        info = service.register("tiny")
        service.metrics.record_drop(info.job_id, 4)
        assert service.metrics.dropped_by_job == {info.job_id: 4}
        service.evict(info.job_id)
        # The per-job key is gone; the count lives on in the bounded total.
        assert service.metrics.dropped_by_job == {}
        assert service.metrics.evicted_drops == 4
        assert service.metrics.records_dropped == 4
        assert service.metrics.jobs_evicted == 1

    def test_exposition_matches_to_dict(self):
        metrics = ServiceMetrics()
        metrics.jobs_registered += 3
        metrics.records_submitted += 7
        metrics.records_ingested += 6
        metrics.record_drop("a/0", 1)
        metrics.steps_assembled += 12
        snap = metrics.to_dict()
        samples = obs.parse_prometheus(metrics.registry.render())
        jobs = dict(
            (labels["event"], value)
            for labels, value in samples["repro_serve_jobs_total"]
        )
        records = dict(
            (labels["event"], value)
            for labels, value in samples["repro_serve_records_total"]
        )
        assert jobs["registered"] == snap["jobs_registered"]
        assert records["submitted"] == snap["records_submitted"]
        assert records["ingested"] == snap["records_ingested"]
        assert records["dropped"] == snap["records_dropped"]
        assert samples["repro_serve_steps_assembled_total"][0][1] == snap[
            "steps_assembled"
        ]
        assert samples["repro_serve_job_dropped_records_total"] == [
            ({"job": "a/0"}, 1.0)
        ]

    def test_format_derives_from_to_dict(self):
        metrics = ServiceMetrics()
        metrics.jobs_registered += 1
        lines = metrics.format()
        assert any("1/0/0" in line for line in lines)
        assert any("evicted-job dropped records" in line for line in lines)

    def test_fresh_service_exposes_zero_samples(self):
        samples = obs.parse_prometheus(ServiceMetrics().registry.render())
        assert ({"event": "registered"}, 0.0) in samples["repro_serve_jobs_total"]
        assert ({"event": "dropped"}, 0.0) in samples["repro_serve_records_total"]


class TestCliObsFlags:
    def test_profile_dumps_trace_and_metrics(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        trace_path = tmp_path / "toolchain.json"
        metrics_path = tmp_path / "toolchain.prom"
        assert (
            cli_main(
                [
                    "profile",
                    "dcgan-mnist",
                    "--trace-out",
                    str(trace_path),
                    "--metrics-out",
                    str(metrics_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wrote toolchain trace" in out
        assert "wrote toolchain metrics" in out

        events = obs.load_trace(trace_path)
        names = {e["name"] for e in events if e.get("ph") == "X"}
        assert "profiler.stop" in names
        samples = obs.parse_prometheus(metrics_path.read_text())
        assert "repro_profiler_overhead_fraction" in samples
        assert "repro_analyzer_duration_seconds_bucket" in samples

        assert cli_main(["obs", str(trace_path), str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "chrome://tracing" in out

    def test_obs_command_rejects_garbage(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        bad = tmp_path / "bad.prom"
        bad.write_text("{{{ not exposition\n")
        assert cli_main(["obs", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err
