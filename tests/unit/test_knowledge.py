"""The tuning knowledge base, its JSON store, and phase fingerprints."""

import json
import os

import pytest

from repro.core.optimizer.detector import CriticalPhaseDetector
from repro.core.optimizer.knowledge import (
    MAX_OBSERVATIONS,
    KnowledgeEntry,
    TuningKnowledgeBase,
)
from repro.core.profiler.record import StepStats
from repro.errors import ConfigurationError, OptimizerError, StorageError
from repro.host.pipeline import PipelineConfig
from repro.runtime.events import DeviceKind
from repro.storage import JsonDocumentStore

_SIG = frozenset({"fusion", "InfeedDequeueTuple", "Reshape"})


def _entry(signature=_SIG, improvement=1.5, **knobs):
    config = {"prefetch_depth": 8, "num_parallel_calls": 16, **knobs}
    return KnowledgeEntry(
        signature=signature, config=config, improvement=improvement, trials=9,
        workload="test-workload",
    )


class TestJsonDocumentStore:
    def test_round_trip(self, tmp_path):
        store = JsonDocumentStore(tmp_path / "kb")
        path = store.save("doc", {"a": 1, "nested": {"b": [1, 2]}})
        assert path.exists()
        assert store.load("doc") == {"a": 1, "nested": {"b": [1, 2]}}
        assert store.names() == ["doc"]
        assert store.exists("doc")

    def test_missing_document_is_none(self, tmp_path):
        assert JsonDocumentStore(tmp_path).load("absent") is None

    def test_corrupt_document_raises(self, tmp_path):
        store = JsonDocumentStore(tmp_path)
        store.path("bad").write_text("{not json", encoding="utf-8")
        with pytest.raises(StorageError, match="unreadable"):
            store.load("bad")

    def test_non_object_document_raises(self, tmp_path):
        store = JsonDocumentStore(tmp_path)
        store.path("list").write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(StorageError, match="not a JSON object"):
            store.load("list")

    def test_invalid_names_rejected(self, tmp_path):
        store = JsonDocumentStore(tmp_path)
        for name in ("", "a/b", ".hidden"):
            with pytest.raises(StorageError):
                store.path(name)

    def test_save_leaves_no_tmp_files(self, tmp_path):
        store = JsonDocumentStore(tmp_path)
        store.save("doc", {"a": 1})
        assert not list(tmp_path.glob("*.tmp"))

    def test_delete(self, tmp_path):
        store = JsonDocumentStore(tmp_path)
        store.save("doc", {})
        assert store.delete("doc") is True
        assert store.delete("doc") is False

    def test_unserializable_document_raises(self, tmp_path):
        with pytest.raises(StorageError, match="JSON-serializable"):
            JsonDocumentStore(tmp_path).save("doc", {"x": object()})


class TestKnowledgeEntry:
    def test_document_round_trip(self):
        entry = _entry()
        again = KnowledgeEntry.from_document(entry.to_document())
        assert again == entry

    def test_validation(self):
        with pytest.raises(OptimizerError):
            _entry(signature=frozenset())
        with pytest.raises(OptimizerError):
            KnowledgeEntry(signature=_SIG, config={}, improvement=1.0, trials=0)

    def test_malformed_document_raises(self):
        with pytest.raises(StorageError):
            KnowledgeEntry.from_document({"signature": ["a"]})

    def test_apply_to_preserves_untouched_knobs(self):
        base = PipelineConfig(jitter=0.0, shuffle_buffer=999)
        applied = _entry().apply_to(base)
        assert applied.prefetch_depth == 8
        assert applied.num_parallel_calls == 16
        assert applied.jitter == 0.0
        assert applied.shuffle_buffer == 999

    def test_unknown_knob_raises_configuration_error(self):
        entry = _entry(warp_factor=9)
        with pytest.raises(ConfigurationError, match="unknown knobs"):
            entry.pipeline_config()

    def test_invalid_value_raises_configuration_error(self):
        entry = _entry(num_parallel_calls=-3)
        with pytest.raises(ConfigurationError):
            entry.pipeline_config()


class TestTuningKnowledgeBase:
    def test_open_empty(self, tmp_path):
        kb = TuningKnowledgeBase.open(tmp_path)
        assert len(kb) == 0

    def test_record_save_reopen(self, tmp_path):
        kb = TuningKnowledgeBase.open(tmp_path)
        kb.record(_entry())
        kb.save()
        again = TuningKnowledgeBase.open(tmp_path)
        assert len(again) == 1
        assert again.entries[0].config["prefetch_depth"] == 8

    def test_lookup_exact_hit(self):
        kb = TuningKnowledgeBase()
        kb.record(_entry())
        match = kb.lookup(_SIG)
        assert match is not None
        assert match.similarity == 1.0
        assert match.config.prefetch_depth == 8

    def test_lookup_below_threshold_misses(self):
        kb = TuningKnowledgeBase()
        kb.record(_entry())
        assert kb.lookup(frozenset({"conv", "pool", "softmax"})) is None

    def test_lookup_partial_overlap(self):
        kb = TuningKnowledgeBase()
        kb.record(_entry())
        # 2 of min(3, 3) shared operators = 0.67 < 0.70 default threshold.
        probe = frozenset({"fusion", "InfeedDequeueTuple", "conv"})
        assert kb.lookup(probe) is None
        assert kb.lookup(probe, threshold=0.5) is not None

    def test_lookup_prefers_higher_similarity(self):
        kb = TuningKnowledgeBase()
        near = frozenset({"fusion", "InfeedDequeueTuple", "conv"})  # 2/3 overlap
        kb.record(_entry(signature=near, prefetch_depth=2))
        kb.record(_entry(signature=_SIG, prefetch_depth=4))
        match = kb.lookup(_SIG, threshold=0.5)
        assert match.similarity == 1.0
        assert match.entry.config["prefetch_depth"] == 4

    def test_lookup_tie_prefers_larger_improvement(self):
        kb = TuningKnowledgeBase()
        kb.record(_entry(signature=frozenset({"a", "b"}), improvement=1.2))
        kb.record(_entry(signature=frozenset({"a", "c"}), improvement=2.0))
        # Probe overlaps both signatures equally.
        match = kb.lookup(frozenset({"a"}), threshold=0.9)
        assert match.entry.improvement == 2.0

    def test_empty_signature_lookup_rejected(self):
        with pytest.raises(OptimizerError):
            TuningKnowledgeBase().lookup(frozenset())

    def test_record_merge_keeps_better_improvement(self):
        kb = TuningKnowledgeBase()
        kb.record(_entry(improvement=1.5, prefetch_depth=4))
        kb.record(_entry(improvement=1.2, prefetch_depth=1))
        assert len(kb) == 1
        assert kb.entries[0].config["prefetch_depth"] == 4
        kb.record(_entry(improvement=2.0, prefetch_depth=16))
        assert len(kb) == 1
        assert kb.entries[0].config["prefetch_depth"] == 16

    def test_corrupt_store_degrades_to_empty(self, tmp_path):
        (tmp_path / "tuning_knowledge.json").write_text("{torn", encoding="utf-8")
        kb = TuningKnowledgeBase.open(tmp_path)
        assert len(kb) == 0
        # And the base remains writable afterwards.
        kb.record(_entry())
        kb.save()
        assert len(TuningKnowledgeBase.open(tmp_path)) == 1

    def test_malformed_entries_skipped_not_fatal(self, tmp_path):
        document = {
            "version": 1,
            "entries": [_entry().to_document(), {"signature": []}],
        }
        (tmp_path / "tuning_knowledge.json").write_text(
            json.dumps(document), encoding="utf-8"
        )
        kb = TuningKnowledgeBase.open(tmp_path)
        assert len(kb) == 1


class TestObservations:
    _ROWS = (
        {"config": {"prefetch_depth": 2}, "throughput": 1.0},
        {"config": {"prefetch_depth": 8}, "throughput": 1.6},
    )

    def test_round_trip(self, tmp_path):
        kb = TuningKnowledgeBase.open(tmp_path)
        kb.record(
            KnowledgeEntry(
                signature=_SIG, config={"prefetch_depth": 8},
                improvement=1.6, trials=2, observations=self._ROWS,
            )
        )
        kb.save()
        again = TuningKnowledgeBase.open(tmp_path)
        assert again.entries[0].observations == self._ROWS

    def test_pre_observation_entries_load_empty(self):
        document = _entry().to_document()
        del document["observations"]
        entry = KnowledgeEntry.from_document(document)
        assert entry.observations == ()

    def test_malformed_rows_dropped_individually(self):
        document = _entry().to_document()
        document["observations"] = [
            dict(self._ROWS[0]),
            {"throughput": 2.0},  # missing config
            {"config": {"prefetch_depth": 4}, "throughput": "fast"},
        ]
        entry = KnowledgeEntry.from_document(document)
        assert entry.observations == (self._ROWS[0],)

    def test_capped_at_max(self):
        rows = tuple(
            {"config": {"prefetch_depth": i}, "throughput": 1.0 + i}
            for i in range(MAX_OBSERVATIONS + 10)
        )
        entry = KnowledgeEntry(
            signature=_SIG, config={}, improvement=1.1, trials=1,
            observations=rows,
        )
        assert len(entry.observations) == MAX_OBSERVATIONS

    def test_merge_pools_observations(self):
        kb = TuningKnowledgeBase()
        kb.record(
            KnowledgeEntry(
                signature=_SIG, config={"prefetch_depth": 2},
                improvement=1.2, trials=1, observations=(self._ROWS[0],),
            )
        )
        kb.record(
            KnowledgeEntry(
                signature=_SIG, config={"prefetch_depth": 8},
                improvement=1.6, trials=1,
                observations=(self._ROWS[0], self._ROWS[1]),
            )
        )
        entry = kb.entries[0]
        assert entry.improvement == 1.6  # winner by improvement
        assert len(entry.observations) == 2  # pooled, deduplicated


_ROOT = hasattr(os, "geteuid") and os.geteuid() == 0
_needs_permissions = pytest.mark.skipif(
    _ROOT, reason="root bypasses file permissions; chmod cannot deny access"
)


class TestReadOnlyDegradation:
    def test_writable_probe(self, tmp_path):
        assert TuningKnowledgeBase.open(tmp_path).writable()
        assert not TuningKnowledgeBase().writable()

    @_needs_permissions
    def test_read_only_directory_not_writable(self, tmp_path):
        kb = TuningKnowledgeBase.open(tmp_path)
        kb.record(_entry())
        kb.save()
        tmp_path.chmod(0o555)
        try:
            again = TuningKnowledgeBase.open(tmp_path)
            assert len(again) == 1  # priors still load
            assert not again.writable()
        finally:
            tmp_path.chmod(0o755)

    @_needs_permissions
    def test_save_failure_degrades_to_persist_error(self, tmp_path):
        kb = TuningKnowledgeBase.open(tmp_path)
        kb.record(_entry())
        tmp_path.chmod(0o555)
        try:
            assert kb.save() is None  # no raise
            assert kb.persist_error is not None
        finally:
            tmp_path.chmod(0o755)
        assert kb.save() is not None
        assert kb.persist_error is None

    @_needs_permissions
    def test_uncreatable_directory_degrades_to_memory(self, tmp_path):
        parent = tmp_path / "ro"
        parent.mkdir()
        parent.chmod(0o555)
        try:
            kb = TuningKnowledgeBase.open(parent / "kb")
            assert kb.store is None
            assert kb.persist_error is not None
            assert not kb.writable()
            kb.record(_entry())  # in-memory base keeps working
            assert kb.save() is None
        finally:
            parent.chmod(0o755)


def _step(number, ops, duration_us=100.0):
    step = StepStats(step=number)
    for rank, name in enumerate(ops):
        step.observe(name, DeviceKind.TPU, duration_us / (rank + 1))
    step.start_us = number * duration_us
    step.end_us = (number + 1) * duration_us
    return step


class TestPhaseSignature:
    def test_no_steps_rejected(self):
        with pytest.raises(OptimizerError):
            CriticalPhaseDetector().phase_signature()
        detector = CriticalPhaseDetector()
        detector.observe(_step(0, ["matmul"]))
        with pytest.raises(OptimizerError):
            detector.phase_signature(top_k=0)

    def test_signature_is_top_operators(self):
        detector = CriticalPhaseDetector()
        for i in range(4):
            detector.observe(_step(i, ["matmul", "fusion", "relu", "softmax"]))
        assert detector.phase_signature(top_k=2) == frozenset({"matmul", "fusion"})

    def test_dominant_phase_wins_when_not_critical(self):
        detector = CriticalPhaseDetector(time_fraction=0.9, pattern_hits_required=5)
        # Phase A holds ~37% of the time, phase B ~63%: neither clears the
        # 90% dominance bar, so execution never reads as critical — the
        # signature must still come from B, the longest-running phase.
        for i in range(3):
            detector.observe(_step(i, ["setup", "init", "alloc"], duration_us=400.0))
        for i in range(3, 7):
            detector.observe(_step(i, ["matmul", "fusion", "relu"], duration_us=500.0))
        assert not detector.critical
        assert "matmul" in detector.phase_signature(top_k=3)
        assert "setup" not in detector.phase_signature(top_k=3)
