"""Workload registry and run specs."""

import pytest

from repro.errors import ConfigurationError
from repro.models.naive import NaiveVariant, naive_pipeline_config
from repro.models.registry import (
    OPTIMIZER_WORKLOADS,
    PAPER_WORKLOADS,
    SMALL_DATASET_WORKLOADS,
    all_workloads,
    model,
    workload,
)
from repro.workloads.spec import WorkloadSpec


def test_nine_paper_workloads():
    assert len(PAPER_WORKLOADS) == 9
    assert len(all_workloads()) == 9


def test_workload_resolution():
    entry = workload("bert-mrpc")
    assert entry.model.name == "BERT"
    assert entry.dataset.name == "MRPC"
    assert entry.display_name == "BERT-MRPC"


def test_workload_half_dataset():
    entry = workload("qanet-squad-half")
    assert entry.dataset.name == "SQuAD-half"


def test_naive_prefix():
    entry = workload("naive-qanet-squad")
    assert isinstance(entry.model, NaiveVariant)
    assert entry.model.name == "NaiveQANet"
    assert entry.model.default_pipeline_config() == naive_pipeline_config()


def test_naive_preserves_compute(tiny_dataset):
    base = model("dcgan")
    naive = model("naive-dcgan")
    from repro.datasets.registry import dataset

    spec = dataset("mnist")
    assert (
        naive.build_train_graph(64, spec).total_flops()
        == base.build_train_graph(64, spec).total_flops()
    )


def test_naive_config_is_untuned():
    config = naive_pipeline_config()
    assert config.prefetch_depth == 0
    assert config.num_parallel_calls == 1
    assert config.num_parallel_reads == 1


def test_unknown_model_and_malformed_keys():
    with pytest.raises(ConfigurationError):
        model("transformer")
    with pytest.raises(ConfigurationError):
        workload("justonename")


def test_small_dataset_workloads_resolve():
    for key in SMALL_DATASET_WORKLOADS:
        workload(key)


def test_optimizer_workloads_are_long_running():
    assert set(OPTIMIZER_WORKLOADS) == {"qanet-squad", "retinanet-coco"}


class TestWorkloadSpec:
    def test_display_name_includes_generation(self):
        spec = WorkloadSpec("bert-cola", generation="v3")
        assert "TPUv3" in spec.display_name

    def test_with_generation(self):
        spec = WorkloadSpec("bert-cola", seed=42)
        other = spec.with_generation("v3")
        assert other.generation == "v3"
        assert other.seed == 42
        assert other.key == spec.key
