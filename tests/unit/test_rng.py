"""Deterministic RNG streams."""

from repro.rng import DEFAULT_SEED, RngFactory, stream


def test_same_key_same_sequence():
    a = stream("pipeline")
    b = stream("pipeline")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_keys_different_sequences():
    assert stream("a").random() != stream("b").random()


def test_different_seeds_different_sequences():
    assert stream("k", 1).random() != stream("k", 2).random()


def test_factory_streams_are_reproducible():
    factory = RngFactory(seed=7)
    assert factory.stream("x").random() == RngFactory(seed=7).stream("x").random()


def test_factory_child_namespaces():
    factory = RngFactory(seed=7)
    child = factory.child("sub")
    assert child.stream("x").random() != factory.stream("x").random()
    # Child derivation itself is deterministic.
    assert child.stream("x").random() == RngFactory(seed=7).child("sub").stream("x").random()


def test_default_seed_is_stable():
    assert DEFAULT_SEED == 0x54505550


def test_adding_consumers_does_not_shift_existing_streams():
    before = stream("existing").random()
    stream("brand-new-consumer")  # deriving a new stream must not matter
    assert stream("existing").random() == before
