"""The deterministic worker pool behind the analyzer's sweeps."""

import numpy as np
import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.parallel import MAX_WORKERS, WorkerPool, resolve_pool, task_rng


class TestWorkerPool:
    def test_serial_map_preserves_order(self):
        pool = WorkerPool(1)
        assert pool.is_serial
        assert pool.map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]

    def test_parallel_map_preserves_submission_order(self):
        import time

        with WorkerPool(4) as pool:
            assert not pool.is_serial

            def slow_when_small(x):
                time.sleep(0.002 * (5 - x))  # later items finish first
                return x * 10

            assert pool.map(slow_when_small, [1, 2, 3, 4]) == [10, 20, 30, 40]

    def test_empty_map(self):
        assert WorkerPool(3).map(lambda x: x, []) == []

    def test_starmap(self):
        assert WorkerPool(1).starmap(lambda a, b: a + b, [(1, 2), (3, 4)]) == [3, 7]

    def test_exception_propagates(self):
        def boom(x):
            raise ValueError(f"task {x}")

        with pytest.raises(ValueError, match="task"):
            WorkerPool(1).map(boom, [1])
        with WorkerPool(2) as pool:
            with pytest.raises(ValueError, match="task"):
                pool.map(boom, [1, 2, 3])

    def test_shutdown_idempotent(self):
        pool = WorkerPool(2)
        pool.map(lambda x: x, [1])
        pool.shutdown()
        pool.shutdown()
        # A fresh executor is created on next use.
        assert pool.map(lambda x: x + 1, [1]) == [2]

    def test_worker_bounds(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(-1)
        with pytest.raises(ConfigurationError):
            WorkerPool(MAX_WORKERS + 1)
        assert WorkerPool(0).workers == 1  # 0 means "no parallelism"

    def test_queue_depth_returns_to_zero(self):
        depth = obs.gauge("repro_parallel_queue_depth").labels()
        before = depth.value
        WorkerPool(1, label="test").map(lambda x: x, [1, 2, 3])
        assert depth.value == before


class TestResolvePool:
    def test_none_gives_serial(self):
        assert resolve_pool(None).is_serial

    def test_int_gives_width(self):
        assert resolve_pool(3).workers == 3

    def test_pool_passes_through(self):
        pool = WorkerPool(2)
        assert resolve_pool(pool) is pool


class TestTaskRng:
    def test_same_key_same_stream(self):
        a = task_rng(7, "analyzer.kmeans/k=3/init=1").normal(size=8)
        b = task_rng(7, "analyzer.kmeans/k=3/init=1").normal(size=8)
        assert np.array_equal(a, b)

    def test_different_keys_differ(self):
        a = task_rng(7, "analyzer.kmeans/k=3/init=0").normal(size=8)
        b = task_rng(7, "analyzer.kmeans/k=3/init=1").normal(size=8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = task_rng(7, "analyzer.kmeans/k=3/init=0").normal(size=8)
        b = task_rng(8, "analyzer.kmeans/k=3/init=0").normal(size=8)
        assert not np.array_equal(a, b)
