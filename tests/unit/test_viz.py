"""SVG chart backend and figure generation."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import ConfigurationError
from repro.viz.figures import FIGURES, FigureData, generate_figures
from repro.viz.svg import PALETTE, SvgCanvas, bar_chart, line_chart


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestCanvas:
    def test_render_is_valid_svg(self):
        canvas = SvgCanvas(100, 50)
        canvas.rect(0, 0, 10, 10, "#fff")
        canvas.line(0, 0, 10, 10)
        canvas.circle(5, 5, 2, "#000")
        canvas.polyline([(0, 0), (5, 5)], "#000")
        canvas.text(1, 1, "hi & bye <tag>")
        root = _parse(canvas.render())
        assert root.tag.endswith("svg")
        assert root.get("width") == "100"

    def test_text_is_escaped(self):
        canvas = SvgCanvas(10, 10)
        canvas.text(0, 0, "<script>")
        assert "<script>" not in canvas.render()
        _parse(canvas.render())


class TestBarChart:
    def test_structure(self):
        svg = bar_chart(
            "t", ["a", "b"], {"s1": [1.0, 2.0], "s2": [2.0, 1.0]}, percent=False
        )
        root = _parse(svg)
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        # Background + 4 bars + 2 legend swatches.
        assert len(rects) == 7

    def test_percent_axis(self):
        svg = bar_chart("t", ["a"], {"s": [0.5]}, percent=True)
        assert "%" in svg

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bar_chart("t", [], {"s": []})
        with pytest.raises(ConfigurationError):
            bar_chart("t", ["a"], {"s": [1.0, 2.0]})


class TestLineChart:
    def test_structure(self):
        svg = line_chart("t", [1.0, 2.0, 3.0], {"s1": [1, 2, 3], "s2": [3, 2, 1]})
        root = _parse(svg)
        polylines = [e for e in root.iter() if e.tag.endswith("polyline")]
        assert len(polylines) == 2
        circles = [e for e in root.iter() if e.tag.endswith("circle")]
        assert len(circles) == 6

    def test_log_scale(self):
        svg = line_chart("t", [1.0, 2.0], {"s": [1.0, 1000.0]}, log_y=True, ylabel="y")
        assert "(log)" in svg

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            line_chart("t", [], {})

    def test_palette_distinct(self):
        assert len(set(PALETTE)) == len(PALETTE)


class TestFigureGeneration:
    @pytest.fixture(scope="class")
    def figure_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("figs")
        written = generate_figures(
            out,
            workloads=("bert-mrpc", "dcgan-mnist"),
            names=("fig06", "fig07", "fig10", "fig11"),
        )
        return out, written

    def test_requested_figures_written(self, figure_dir):
        _, written = figure_dir
        assert set(written) == {"fig06", "fig07", "fig10", "fig11"}

    def test_outputs_are_valid_svg(self, figure_dir):
        _, written = figure_dir
        for path in written.values():
            root = ET.parse(path).getroot()
            assert root.tag.endswith("svg")

    def test_figures_registry_covers_key_plots(self):
        assert {"fig04", "fig05", "fig06", "fig07", "fig10", "fig11", "fig14"} <= set(
            FIGURES
        )

    def test_figure_data_caches(self):
        data = FigureData(("bert-mrpc",))
        assert data.run("bert-mrpc") is data.run("bert-mrpc")
        assert data.analyzer("bert-mrpc") is data.analyzer("bert-mrpc")


class TestTimeline:
    def test_figure3_structure(self, tiny_run):
        import xml.etree.ElementTree as ET

        from repro.core.analyzer import TPUPointAnalyzer
        from repro.viz.timeline import phase_timeline_svg

        _, _, records = tiny_run
        analyzer = TPUPointAnalyzer(records)
        phases = analyzer.ols_phases().phases
        svg = phase_timeline_svg(records, phases)
        root = ET.fromstring(svg)
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        # Background + one span per record + one per phase.
        assert len(rects) >= 1 + len(records) + len(phases)
        assert "Profile Breakdown" in svg
        assert "Phase Breakdown" in svg

    def test_timeline_validation(self):
        from repro.errors import ConfigurationError
        from repro.viz.timeline import phase_timeline_svg

        with pytest.raises(ConfigurationError):
            phase_timeline_svg([], [])
