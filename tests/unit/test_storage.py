"""Buckets, objects, and shards."""

import pytest

from repro.errors import ConfigurationError, StorageError
from repro.storage.bucket import Bucket
from repro.storage.objects import DatasetShard, StorageObject, shard_dataset


def test_object_validation():
    with pytest.raises(ConfigurationError):
        StorageObject("", 1.0)
    with pytest.raises(ConfigurationError):
        StorageObject("x", -1.0)


def test_shard_bytes_per_example():
    shard = DatasetShard("s", num_bytes=1000.0, num_examples=10)
    assert shard.bytes_per_example == 100.0
    assert DatasetShard("e", num_bytes=10.0, num_examples=0).bytes_per_example == 0.0


def test_shard_dataset_conserves_examples():
    shards = shard_dataset("data", total_bytes=1e9, total_examples=1003, num_shards=10)
    assert len(shards) == 10
    assert sum(s.num_examples for s in shards) == 1003
    assert sum(s.num_bytes for s in shards) == pytest.approx(1e9)


def test_shard_names_are_tfrecord_style():
    shards = shard_dataset("data", 1e6, 100, 3)
    assert shards[0].name == "data-00000-of-00003"


def test_shard_dataset_rejects_zero_shards():
    with pytest.raises(ConfigurationError):
        shard_dataset("d", 1.0, 1, 0)


@pytest.fixture
def bucket():
    return Bucket("test", read_bandwidth=100e6, write_bandwidth=50e6, request_latency_us=1000.0)


def test_put_get_roundtrip(bucket):
    obj = StorageObject("a/b", 1e6)
    write_us = bucket.put(obj)
    assert write_us == pytest.approx(1000.0 + 1e6 / 50e6 * 1e6)
    assert bucket.get("a/b") is obj
    assert bucket.exists("a/b")


def test_get_missing_raises(bucket):
    with pytest.raises(StorageError):
        bucket.get("nope")


def test_delete(bucket):
    bucket.put(StorageObject("x", 1.0))
    bucket.delete("x")
    assert not bucket.exists("x")
    with pytest.raises(StorageError):
        bucket.delete("x")


def test_list_prefix_sorted(bucket):
    for name in ("b/2", "a/1", "b/1"):
        bucket.put(StorageObject(name, 1.0))
    assert [o.name for o in bucket.list("b/")] == ["b/1", "b/2"]
    assert len(bucket.list()) == 3


def test_read_time_and_stats(bucket):
    bucket.put(StorageObject("x", 100e6))
    read_us = bucket.read_time_us("x")
    assert read_us == pytest.approx(1000.0 + 1e6)
    assert bucket.stats.reads == 1
    assert bucket.stats.bytes_read == 100e6


def test_read_bytes_time(bucket):
    assert bucket.read_bytes_time_us(100e6) == pytest.approx(1000.0 + 1e6)
    with pytest.raises(ConfigurationError):
        bucket.read_bytes_time_us(-1.0)


def test_invalid_bucket_config():
    with pytest.raises(ConfigurationError):
        Bucket("b", read_bandwidth=0.0)
