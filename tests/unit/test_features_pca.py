"""Analyzer stage 1: step aggregation, features, PCA."""

import numpy as np
import pytest

from repro.core.analyzer.features import (
    build_features,
    global_step_numbers,
    merge_records,
)
from repro.core.analyzer.pca import PCA
from repro.core.profiler.record import ProfileRecord, StepStats
from repro.errors import AnalyzerError
from repro.runtime.events import DeviceKind, StepKind, StepMetadata


def _record(index, steps):
    record = ProfileRecord(index=index, window_start_us=0.0, window_end_us=1.0)
    for step in steps:
        record.steps[step.step] = step
    return record


def _step(number, ops, kind=StepKind.TRAIN):
    step = StepStats(step=number)
    for name, duration in ops:
        step.observe(name, DeviceKind.TPU, duration)
    step.attach_metadata(
        StepMetadata(number, kind, number * 10.0, number * 10.0 + 5.0, 1.0, 1.0)
    )
    return step


class TestMergeRecords:
    def test_merges_split_steps(self):
        first = _record(0, [_step(1, [("MatMul", 10.0)])])
        second = _record(1, [_step(1, [("MatMul", 5.0)]), _step(2, [("Sum", 1.0)])])
        merged = merge_records([first, second])
        assert [s.step for s in merged] == [1, 2]
        assert merged[0].operators[("MatMul", "tpu")].total_duration_us == 15.0

    def test_ordering(self):
        records = [_record(0, [_step(5, [("a", 1.0)]), _step(2, [("a", 1.0)])])]
        assert [s.step for s in merge_records(records)] == [2, 5]


class TestGlobalSteps:
    def test_train_steps_counted(self):
        steps = [
            _step(0, [("x", 1.0)], kind=StepKind.INIT),
            _step(1, [("x", 1.0)], kind=StepKind.TRAIN),
            _step(2, [("x", 1.0)], kind=StepKind.TRAIN),
            _step(3, [("x", 1.0)], kind=StepKind.EVAL),
            _step(4, [("x", 1.0)], kind=StepKind.TRAIN),
        ]
        mapping = global_step_numbers(steps)
        assert mapping == {0: 0, 1: 1, 2: 2, 3: 2, 4: 3}


class TestFeatures:
    def test_matrix_shapes(self):
        steps = [_step(1, [("a", 1.0), ("b", 2.0)]), _step(2, [("a", 3.0)])]
        features = build_features(steps)
        assert features.durations.shape == (2, 2)
        assert features.counts.shape == (2, 2)
        assert features.num_steps == 2
        assert features.num_operators == 2

    def test_values_placed_correctly(self):
        steps = [_step(1, [("a", 1.0)]), _step(2, [("b", 2.0)])]
        features = build_features(steps)
        col_a = features.vocabulary.index(("a", "tpu"))
        col_b = features.vocabulary.index(("b", "tpu"))
        assert features.durations[0, col_a] == 1.0
        assert features.durations[0, col_b] == 0.0
        assert features.durations[1, col_b] == 2.0

    def test_combined_standardized(self):
        steps = [_step(i, [("a", float(i))]) for i in range(1, 6)]
        combined = build_features(steps).combined(standardize=True)
        assert combined.mean(axis=0) == pytest.approx(np.zeros(combined.shape[1]), abs=1e-9)

    def test_empty_rejected(self):
        with pytest.raises(AnalyzerError):
            build_features([])

    def test_memory_bytes_positive(self):
        features = build_features([_step(1, [("a", 1.0)])])
        assert features.memory_bytes() > 0


class TestPCA:
    def test_reduces_dimensionality(self, rng):
        data = rng.normal(size=(50, 20))
        reduced = PCA(max_components=5).fit_transform(data)
        assert reduced.shape == (50, 5)

    def test_keeps_at_most_rank(self, rng):
        data = rng.normal(size=(4, 20))
        reduced = PCA(max_components=100).fit_transform(data)
        assert reduced.shape[1] <= 4

    def test_variance_ordered_descending(self, rng):
        data = rng.normal(size=(100, 10)) * np.arange(1, 11)
        pca = PCA(max_components=10).fit(data)
        variance = pca.explained_variance_
        assert all(a >= b for a, b in zip(variance, variance[1:]))

    def test_variance_ratio_sums_to_one(self, rng):
        pca = PCA(max_components=10).fit(rng.normal(size=(30, 10)))
        assert pca.explained_variance_ratio().sum() == pytest.approx(1.0)

    def test_transform_before_fit_rejected(self):
        with pytest.raises(AnalyzerError):
            PCA().transform(np.zeros((2, 2)))

    def test_projection_preserves_distances_at_full_rank(self, rng):
        data = rng.normal(size=(20, 5))
        reduced = PCA(max_components=5).fit_transform(data)
        original = np.linalg.norm(data[0] - data[1])
        projected = np.linalg.norm(reduced[0] - reduced[1])
        assert projected == pytest.approx(original, rel=1e-6)

    def test_invalid_inputs(self):
        with pytest.raises(AnalyzerError):
            PCA(max_components=0)
        with pytest.raises(AnalyzerError):
            PCA().fit(np.zeros((0, 3)))
