"""Training-session behaviour."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.host.pipeline import PipelineConfig
from repro.runtime.events import DeviceKind, StepKind
from repro.runtime.session import SessionPlan


class TestSessionPlan:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SessionPlan(train_steps=0, batch_size=1)
        with pytest.raises(ConfigurationError):
            SessionPlan(train_steps=1, batch_size=1, eval_every=5, eval_steps=0)
        with pytest.raises(ConfigurationError):
            SessionPlan(train_steps=1, batch_size=1, incidental_scale=-1.0)


class TestLifecycle:
    def test_run_completes_plan(self, tiny_estimator):
        summary = tiny_estimator.train()
        assert tiny_estimator.session.finished
        assert tiny_estimator.session.global_step == tiny_estimator.plan.train_steps
        assert summary.wall_us > 0

    def test_double_initialize_rejected(self, tiny_estimator):
        session = tiny_estimator.session
        session.initialize()
        with pytest.raises(SimulationError):
            session.initialize()

    def test_run_steps_before_initialize_rejected(self, tiny_estimator):
        with pytest.raises(SimulationError):
            tiny_estimator.session.run_steps(1)

    def test_finalize_requires_all_steps(self, tiny_estimator):
        session = tiny_estimator.session
        session.initialize()
        session.run_steps(1)
        with pytest.raises(SimulationError):
            session.finalize()

    def test_partial_then_resume(self, tiny_estimator):
        assert tiny_estimator.train_steps(10) == 10
        summary = tiny_estimator.train()
        assert summary.steps_executed > 0
        assert tiny_estimator.session.finished

    def test_run_steps_caps_at_plan(self, tiny_estimator):
        executed = tiny_estimator.train_steps(10_000)
        assert executed == tiny_estimator.plan.train_steps


class TestEventsAndSteps:
    def test_step_metadata_kinds(self, tiny_estimator):
        tiny_estimator.train()
        kinds = [m.kind for m in tiny_estimator.session.log.steps]
        assert kinds[0] is StepKind.INIT
        assert kinds[-1] is StepKind.SHUTDOWN
        assert kinds.count(StepKind.TRAIN) == tiny_estimator.plan.train_steps

    def test_checkpoints_written_on_cadence(self, tiny_estimator):
        tiny_estimator.train()
        steps = [c.step for c in tiny_estimator.checkpoint_store.checkpoints]
        assert steps == [15, 30, 40]  # every 15 of 40, plus the final save

    def test_checkpoints_have_no_step_metadata(self, tiny_estimator):
        tiny_estimator.train()
        kinds = {m.kind for m in tiny_estimator.session.log.steps}
        assert StepKind.CHECKPOINT not in kinds

    def test_save_events_attributed_to_last_step(self, tiny_estimator):
        tiny_estimator.train()
        log = tiny_estimator.session.log
        save_events = [e for e in log.events if e.name == "SaveV2"]
        assert len(save_events) == 3
        step_numbers = {m.step for m in log.steps}
        assert all(e.step in step_numbers for e in save_events)

    def test_loop_boundary_emits_rungraph(self, tiny_estimator):
        tiny_estimator.train()
        names = [e.name for e in tiny_estimator.session.log.events]
        assert names.count("RunGraph") == 4  # 40 steps / iterations_per_loop 10

    def test_monotone_step_metadata(self, tiny_estimator):
        tiny_estimator.train()
        steps = tiny_estimator.session.log.steps
        assert all(b.step > a.step for a, b in zip(steps, steps[1:]))
        assert all(b.start_us >= a.start_us for a, b in zip(steps, steps[1:]))

    def test_host_and_tpu_events_present(self, tiny_estimator):
        tiny_estimator.train()
        devices = {e.device for e in tiny_estimator.session.log.events}
        assert devices == {DeviceKind.HOST, DeviceKind.TPU}


class TestTimingModel:
    def test_prefetch_zero_serializes(self, tiny_model, tiny_dataset):
        overlapped = tiny_model.build_estimator(
            tiny_dataset, pipeline_config=PipelineConfig(prefetch_depth=2, jitter=0.0)
        ).train()
        serial = tiny_model.build_estimator(
            tiny_dataset, pipeline_config=PipelineConfig(prefetch_depth=0, jitter=0.0)
        ).train()
        assert serial.wall_us > overlapped.wall_us
        assert serial.tpu_idle_fraction > overlapped.tpu_idle_fraction

    def test_summary_consistency(self, tiny_estimator):
        summary = tiny_estimator.train()
        assert 0.0 <= summary.tpu_idle_fraction <= 1.0
        assert 0.0 <= summary.mxu_utilization <= 1.0
        assert summary.tpu_busy_us <= summary.wall_us

    def test_checkpoint_now(self, tiny_estimator):
        session = tiny_estimator.session
        session.initialize()
        session.run_steps(7)
        session.checkpoint_now()
        assert session.checkpoint_store.latest().step == 7
        # Idempotent at the same step.
        session.checkpoint_now()
        assert len(session.checkpoint_store) == 1

    def test_checkpoint_now_requires_live_session(self, tiny_estimator):
        with pytest.raises(SimulationError):
            tiny_estimator.session.checkpoint_now()


class TestStepHooks:
    def test_hooks_fire_per_step(self, tiny_estimator):
        seen = []
        tiny_estimator.add_step_hook(lambda session, meta: seen.append(meta.step))
        tiny_estimator.train()
        assert len(seen) == len(tiny_estimator.session.log.steps)
        assert seen == sorted(seen)


class TestDeterminism:
    def test_same_seed_same_timeline(self, tiny_model, tiny_dataset):
        a = tiny_model.build_estimator(tiny_dataset, rng=np.random.default_rng(9)).train()
        b = tiny_model.build_estimator(tiny_dataset, rng=np.random.default_rng(9)).train()
        assert a.wall_us == b.wall_us
        assert a.events_recorded == b.events_recorded

    def test_different_seed_different_timeline(self, tiny_model, tiny_dataset):
        a = tiny_model.build_estimator(tiny_dataset, rng=np.random.default_rng(1)).train()
        b = tiny_model.build_estimator(tiny_dataset, rng=np.random.default_rng(2)).train()
        assert a.wall_us != b.wall_us
