"""TPU generation specs."""

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.tpu.specs import TPU_V2, TPU_V3, TpuChipSpec, TpuGeneration, chip_spec


def test_v2_matches_paper_section_ii():
    assert TPU_V2.mxu_count == 2
    assert TPU_V2.peak_flops == 45e12
    assert TPU_V2.hbm_bytes == units.gib(16.0)


def test_v3_doubles_mxus_and_hbm():
    assert TPU_V3.mxu_count == 2 * TPU_V2.mxu_count
    assert TPU_V3.hbm_bytes == 2 * TPU_V2.hbm_bytes
    assert TPU_V3.peak_flops == 90e12


def test_peak_flops_per_mxu():
    assert TPU_V2.peak_flops_per_mxu == pytest.approx(22.5e12)


@pytest.mark.parametrize("name", ["v2", "V2", "tpuv2", "TPUv2"])
def test_chip_spec_accepts_string_forms(name):
    assert chip_spec(name) is TPU_V2


def test_chip_spec_accepts_enum():
    assert chip_spec(TpuGeneration.V3) is TPU_V3


def test_chip_spec_rejects_unknown():
    with pytest.raises(ConfigurationError):
        chip_spec("v4")


def test_generation_str():
    assert str(TpuGeneration.V2) == "TPUv2"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"mxu_count": 0},
        {"peak_flops": 0.0},
        {"hbm_bytes": -1.0},
        {"hbm_bandwidth": 0.0},
    ],
)
def test_invalid_specs_rejected(kwargs):
    base = dict(
        generation=TpuGeneration.V2,
        mxu_count=2,
        mxu_dim=128,
        peak_flops=45e12,
        hbm_bytes=units.gib(16),
        hbm_bandwidth=600e9,
        clock_hz=700e6,
        tdp_watts=225.0,
        infeed_bandwidth=5e9,
    )
    base.update(kwargs)
    with pytest.raises(ConfigurationError):
        TpuChipSpec(**base)
