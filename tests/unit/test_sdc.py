"""Silent-data-corruption injection, scrub, and fleet quarantine."""

import pytest

from repro.errors import ConfigurationError, ServeError
from repro.faults import FaultPlan, FaultSpec, FaultTarget, SdcSpec
from repro.serve import FleetService, ShardedFleet, ShardedFleetOptions
from repro.serve.shard.ledger import BADPUT_BUCKETS, GoodputLedger
from repro.tpu.device import TpuDevice, TpuOpCategory, TpuOpWork
from repro.tpu.sdc import (
    DEFAULT_SCRUB_STEPS,
    SdcFaultModel,
    SdcInjector,
    chip_name,
    run_scrub,
    scrub_cost_us,
    scrub_schedule,
)
from repro.tpu.specs import TPU_V2


def _spec(**overrides):
    payload = dict(model=SdcFaultModel.STUCK_AT, every_nth=1)
    payload.update(overrides)
    return SdcSpec(**payload)


def _schedule():
    return [
        TpuOpWork("InfeedDequeueTuple", TpuOpCategory.INFEED, num_bytes=1e6),
        TpuOpWork(
            "fusion", TpuOpCategory.COMPUTE, flops=1e12, efficiency=0.5, uses_mxu=True
        ),
        TpuOpWork("Reshape", TpuOpCategory.MEMORY, num_bytes=1e8),
        TpuOpWork("OutfeedEnqueueTuple", TpuOpCategory.OUTFEED, num_bytes=1e5),
    ]


def _run(device, steps=8):
    now = 0.0
    results = []
    for step in range(1, steps + 1):
        result = device.execute_step(step, _schedule(), start_us=now)
        results.append(result)
        now = result.end_us
    return results


class TestSdcSpec:
    def test_needs_a_schedule(self):
        with pytest.raises(ConfigurationError):
            SdcSpec(model=SdcFaultModel.BIT_FLIP)

    def test_validates_bounds(self):
        with pytest.raises(ConfigurationError):
            _spec(severity=0.0)
        with pytest.raises(ConfigurationError):
            _spec(severity=0.95)
        with pytest.raises(ConfigurationError):
            _spec(ops="host")
        with pytest.raises(ConfigurationError):
            _spec(probability=1.5)
        with pytest.raises(ConfigurationError):
            _spec(nth=(0,))
        with pytest.raises(ConfigurationError):
            _spec(first_step=4, last_step=2)
        with pytest.raises(ConfigurationError):
            _spec(model=SdcFaultModel.LOW_PRECISION, accumulator_bits=1)

    def test_never_corrupts_host_link_ops(self):
        spec = _spec(ops="all")
        for category in (TpuOpCategory.INFEED, TpuOpCategory.OUTFEED, TpuOpCategory.SYNC):
            assert not spec.applies_to(TpuOpWork("x", category))

    def test_ops_selectors(self):
        matmul = TpuOpWork("m", TpuOpCategory.COMPUTE, flops=1.0, uses_mxu=True)
        vector = TpuOpWork("v", TpuOpCategory.COMPUTE, flops=1.0, uses_mxu=False)
        hbm = TpuOpWork("h", TpuOpCategory.MEMORY, num_bytes=1.0)
        compute = _spec(ops="compute")
        memory = _spec(ops="memory")
        assert compute.applies_to(matmul) and not compute.applies_to(hbm)
        # SDC lives in the MXU datapath: vector-only compute is spared.
        assert not compute.applies_to(vector)
        assert memory.applies_to(hbm) and not memory.applies_to(matmul)

    def test_from_dict_rejects_unknowns_cleanly(self):
        with pytest.raises(ConfigurationError, match="unknown sdc model"):
            SdcSpec.from_dict({"model": "rowhammer", "every_nth": 1})
        with pytest.raises(ConfigurationError, match="unknown sdc spec fields: wat"):
            SdcSpec.from_dict({"model": "bit_flip", "every_nth": 1, "wat": 1})
        with pytest.raises(ConfigurationError, match="missing 'model'"):
            SdcSpec.from_dict({"every_nth": 1})
        with pytest.raises(ConfigurationError, match="'severity'"):
            SdcSpec.from_dict({"model": "bit_flip", "every_nth": 1, "severity": "hot"})

    def test_roundtrip(self):
        spec = SdcSpec(
            model=SdcFaultModel.LOW_PRECISION,
            chips=("chip-1",),
            ops="compute",
            every_nth=3,
            first_step=10,
            last_step=20,
            severity=0.5,
            accumulator_bits=8,
        )
        assert SdcSpec.from_dict(spec.to_dict()) == spec


class TestSdcInjector:
    def test_filters_specs_by_chip(self):
        specs = (_spec(chips=("chip-1",)), _spec(chips=()))
        chip0 = SdcInjector(specs, 7, "chip-0")
        chip1 = SdcInjector(specs, 7, "chip-1")
        chip0.begin_step()
        chip1.begin_step()
        op = TpuOpWork("m", TpuOpCategory.COMPUTE, flops=1.0, uses_mxu=True)
        assert chip0.corrupt(op) is not None  # the unrestricted spec
        assert chip1.corrupt(op) is not None
        assert len(chip0._specs) == 1
        assert len(chip1._specs) == 2

    def test_first_match_wins(self):
        specs = (
            SdcSpec(model=SdcFaultModel.BIT_FLIP, every_nth=1, severity=0.5),
            SdcSpec(model=SdcFaultModel.STUCK_AT, every_nth=1, severity=0.5),
        )
        injector = SdcInjector(specs, 7, "chip-0")
        injector.begin_step()
        op = TpuOpWork("m", TpuOpCategory.COMPUTE, flops=1.0, uses_mxu=True)
        effect = injector.corrupt(op)
        assert effect.model is SdcFaultModel.BIT_FLIP
        assert injector.injected == {"bit_flip": 1}

    def test_identical_log_across_repeat_runs(self):
        specs = (
            SdcSpec(model=SdcFaultModel.BIT_FLIP, probability=0.5),
            _spec(every_nth=3),
        )

        def run():
            injector = SdcInjector(specs, 99, "chip-2")
            device = TpuDevice(TPU_V2)
            device.attach_sdc(injector)
            _run(device, steps=12)
            return injector.log(), injector.injected

        assert run() == run()

    def test_probability_streams_are_per_spec(self):
        # Adding a spec must not shift another spec's seeded decisions.
        lone = SdcSpec(model=SdcFaultModel.BIT_FLIP, probability=0.5)
        extra = SdcSpec(
            model=SdcFaultModel.STUCK_AT, probability=0.5, chips=("chip-9",)
        )

        def decisions(specs):
            injector = SdcInjector(specs, 5, "chip-0")
            return [bool(injector.begin_step()) for _ in range(32)]

        assert decisions((lone,)) == decisions((lone, extra))


class TestDeviceEffects:
    def test_detached_device_computes_no_digest(self):
        results = _run(TpuDevice(TPU_V2))
        assert all(result.output_digest is None for result in results)

    def test_fleet_injectors_skip_digest_bookkeeping(self):
        # Fleet injectors corrupt without collecting; only the scrubber
        # pays for digests.
        device = TpuDevice(TPU_V2)
        device.attach_sdc(SdcInjector((_spec(),), 0, "chip-0"))
        assert all(r.output_digest is None for r in _run(device))

    def test_empty_digest_injector_changes_nothing_but_digests(self):
        bare = _run(TpuDevice(TPU_V2))
        device = TpuDevice(TPU_V2)
        device.attach_sdc(SdcInjector((), 0, "chip-0", digests=True))
        attached = _run(device)
        assert [r.end_us for r in attached] == [r.end_us for r in bare]
        assert [r.mxu_flops for r in attached] == [r.mxu_flops for r in bare]
        assert all(r.output_digest is not None for r in attached)

    def test_bit_flip_is_silent_in_time_loud_in_output(self):
        clean = TpuDevice(TPU_V2)
        clean.attach_sdc(SdcInjector((), 0, "chip-0", digests=True))
        clean_runs = _run(clean)
        bad = TpuDevice(TPU_V2)
        bad.attach_sdc(
            SdcInjector(
                (SdcSpec(model=SdcFaultModel.BIT_FLIP, every_nth=1, severity=0.25),),
                0,
                "chip-0",
                digests=True,
            )
        )
        bad_runs = _run(bad)
        # Timings identical, digests and achieved FLOPs not.
        assert [r.end_us for r in bad_runs] == [r.end_us for r in clean_runs]
        assert all(
            b.output_digest != c.output_digest
            for b, c in zip(bad_runs, clean_runs)
        )
        assert bad.total_mxu_flops < clean.total_mxu_flops
        assert bad.mxu_utilization() < clean.mxu_utilization()

    def test_stuck_at_slows_affected_ops(self):
        clean = TpuDevice(TPU_V2)
        clean_runs = _run(clean)
        bad = TpuDevice(TPU_V2)
        bad.attach_sdc(SdcInjector((_spec(severity=0.25),), 0, "chip-0"))
        bad_runs = _run(bad)
        assert bad_runs[-1].end_us > clean_runs[-1].end_us
        assert bad.mxu_utilization() < clean.mxu_utilization()

    def test_low_precision_pays_a_duration_tax(self):
        clean = TpuDevice(TPU_V2)
        clean_runs = _run(clean)
        bad = TpuDevice(TPU_V2)
        bad.attach_sdc(
            SdcInjector(
                (
                    SdcSpec(
                        model=SdcFaultModel.LOW_PRECISION,
                        every_nth=1,
                        severity=0.5,
                        accumulator_bits=8,
                    ),
                ),
                0,
                "chip-0",
            )
        )
        bad_runs = _run(bad)
        assert bad_runs[-1].end_us == pytest.approx(
            clean_runs[-1].end_us
            + 0.5 * sum(e.duration_us for r in clean_runs for e in r.executions
                        if e.category in (TpuOpCategory.COMPUTE, TpuOpCategory.MEMORY))
        )

    def test_injection_never_raises(self):
        device = TpuDevice(TPU_V2)
        device.attach_sdc(
            SdcInjector(
                (
                    SdcSpec(model=SdcFaultModel.BIT_FLIP, every_nth=1, severity=0.9),
                    _spec(every_nth=2, severity=0.9),
                ),
                123,
                "chip-0",
            )
        )
        results = _run(device, steps=16)
        assert len(results) == 16  # all steps completed, silently wrong


class TestScrub:
    def test_clean_fleet_scrubs_clean(self):
        report = run_scrub(3)
        assert [r.chip for r in report.results] == ["chip-0", "chip-1", "chip-2"]
        assert report.suspects() == []
        assert report.format()[-1] == "suspect chips : none"

    def test_flags_exactly_the_injected_chips(self):
        plan = FaultPlan(
            seed=7,
            sdc=(
                _spec(chips=("chip-1",), severity=0.4),
                SdcSpec(
                    model=SdcFaultModel.BIT_FLIP,
                    chips=("chip-2",),
                    every_nth=1,
                    severity=0.4,
                ),
            ),
        )
        report = run_scrub(4, plan=plan)
        assert report.suspects() == ["chip-1", "chip-2"]
        by_chip = {result.chip: result for result in report.results}
        # stuck_at is slower; bit_flip hides in identical wall time.
        assert by_chip["chip-1"].elapsed_delta_us > 0
        assert by_chip["chip-2"].elapsed_delta_us == 0
        assert by_chip["chip-2"].digest_mismatches > 0
        assert by_chip["chip-0"].injected == {}

    def test_scrub_is_deterministic(self):
        plan = FaultPlan(seed=7, sdc=(_spec(probability=0.3),))
        assert run_scrub(2, plan=plan).to_dict() == run_scrub(2, plan=plan).to_dict()

    def test_checkered_schedule_exercises_both_datapaths(self):
        schedule = scrub_schedule(TPU_V2)
        categories = {op.category for op in schedule}
        assert categories == {TpuOpCategory.COMPUTE, TpuOpCategory.MEMORY}
        assert all(op.uses_mxu for op in schedule if op.category is TpuOpCategory.COMPUTE)

    def test_scrub_cost_matches_a_real_pass(self):
        report = run_scrub(1, steps=DEFAULT_SCRUB_STEPS)
        assert scrub_cost_us("v2") == report.golden_elapsed_us
        assert scrub_cost_us("v2") == scrub_cost_us("v2")  # cached

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            run_scrub(0)
        with pytest.raises(ConfigurationError):
            run_scrub(2, steps=0)


class TestFaultPlanSdc:
    def test_device_target_reflects_sdc_section(self):
        plan = FaultPlan(sdc=(_spec(),))
        assert plan.targets(FaultTarget.DEVICE)
        assert not plan.lossless
        assert not FaultPlan().targets(FaultTarget.DEVICE)

    def test_device_faults_rejected_from_faults_section(self):
        from repro.faults import FaultKind

        with pytest.raises(ConfigurationError, match="sdc"):
            FaultSpec(kind=FaultKind.ERROR, target=FaultTarget.DEVICE, every_nth=1)

    def test_plan_roundtrip_with_sdc(self):
        plan = FaultPlan(
            seed=11,
            sdc=(_spec(chips=("chip-0",), first_step=5, last_step=9),),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_plan_from_dict_validates_sdc_section(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict({"sdc": "broken"})
        with pytest.raises(ConfigurationError, match="unknown sdc model"):
            FaultPlan.from_dict({"sdc": [{"model": "gamma_ray", "every_nth": 1}]})

    def test_sdc_injector_binds_chip(self):
        plan = FaultPlan(seed=3, sdc=(_spec(chips=("chip-1",)),))
        assert plan.sdc_injector("chip-0")._specs == ()
        assert len(plan.sdc_injector("chip-1")._specs) == 1


class TestFleetQuarantine:
    def _service_with_job(self):
        service = FleetService()
        info = service.register("wl")
        return service, info.job_id

    def test_assign_and_quarantine(self):
        service, job_id = self._service_with_job()
        service.assign_chip(job_id, "chip-0")
        assert service.chip_assignments() == {job_id: "chip-0"}
        assert service.quarantine_chip("chip-0") == [job_id]
        assert service.quarantine_chip("chip-0") == []  # idempotent
        assert service.quarantined_chips() == ["chip-0"]
        assert service.chip_quarantine_counts() == {"chip-0": 1}
        assert service.metrics.chips_quarantined == 1
        snapshot = service.job_snapshot(job_id)
        assert snapshot.chip == "chip-0" and snapshot.chip_quarantined
        assert "chip-0" in service.fleet_snapshot().quarantined_chips

    def test_quarantine_charges_one_scrub_pass_per_resident_job(self):
        service, job_id = self._service_with_job()
        ledger = GoodputLedger()
        service.attach_ledger(ledger)
        service.assign_chip(job_id, "chip-0")
        service.quarantine_chip("chip-0")
        service.quarantine_chip("chip-0")  # no double charge
        assert ledger.tenant(job_id).buckets["sdc_scrub"] == scrub_cost_us("v2")

    def test_sdc_scrub_is_a_badput_bucket(self):
        assert "sdc_scrub" in BADPUT_BUCKETS
        ledger = GoodputLedger()
        ledger.charge("job", "sdc_scrub", 10.0)
        assert ledger.tenant("job").badput_us == 10.0

    def test_rejects_unknown_job_and_empty_chip(self):
        service = FleetService()
        with pytest.raises(Exception):
            service.assign_chip("ghost", "chip-0")
        service.register("wl")
        with pytest.raises(ServeError):
            service.assign_chip("wl/0", "")

    def test_sharded_quarantine_is_shard_invariant(self):
        def build(shards):
            fleet = ShardedFleet(ShardedFleetOptions(shards=shards))
            for index in range(4):
                info = fleet.register("wl")
                fleet.assign_chip(info.job_id, chip_name(index % 2))
            return fleet

        fleets = [build(1), build(3)]
        try:
            outcomes = []
            for fleet in fleets:
                jobs = fleet.quarantine_chip("chip-1")
                outcomes.append(
                    (
                        jobs,
                        fleet.quarantined_chips(),
                        fleet.chip_quarantine_counts(),
                        fleet.metrics.chips_quarantined,
                        {
                            job: fleet.goodput(job).buckets.get("sdc_scrub", 0.0)
                            for job in fleet.chip_assignments()
                        },
                    )
                )
            assert outcomes[0] == outcomes[1]
            assert outcomes[0][0] == ["wl/1", "wl/3"]
            assert outcomes[0][3] == 1
        finally:
            for fleet in fleets:
                fleet.close()

    def test_resize_preserves_quarantine_without_recharging(self):
        fleet = ShardedFleet(ShardedFleetOptions(shards=1))
        try:
            info = fleet.register("wl")
            fleet.assign_chip(info.job_id, "chip-0")
            fleet.quarantine_chip("chip-0")
            before = fleet.goodput(info.job_id).buckets["sdc_scrub"]
            fleet.resize(3)
            assert fleet.goodput(info.job_id).buckets["sdc_scrub"] == before
            assert fleet.quarantined_chips() == ["chip-0"]
            snapshot = fleet.job_snapshot(info.job_id)
            assert snapshot.chip == "chip-0" and snapshot.chip_quarantined
        finally:
            fleet.close()
