"""The TPUPoint front-end API (Figure 2) and the CLI."""

from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.core.api import TPUPoint
from repro.errors import ProfilerError


class TestTPUPointApi:
    def test_figure2_flow(self, tiny_estimator):
        tpupoint = TPUPoint(tiny_estimator)
        tpupoint.Start(analyzer=True)
        tiny_estimator.train()
        records = tpupoint.Stop()
        assert records
        result = tpupoint.analyzer().ols_phases()
        assert result.num_phases >= 1

    def test_double_start_rejected(self, tiny_estimator):
        tpupoint = TPUPoint(tiny_estimator)
        tpupoint.Start()
        with pytest.raises(ProfilerError):
            tpupoint.Start()

    def test_stop_without_start_rejected(self, tiny_estimator):
        with pytest.raises(ProfilerError):
            TPUPoint(tiny_estimator).Stop()

    def test_records_require_stop(self, tiny_estimator):
        tpupoint = TPUPoint(tiny_estimator)
        tpupoint.Start()
        with pytest.raises(ProfilerError):
            tpupoint.records

    def test_analyzer_requires_analyzer_flag(self, tiny_estimator):
        tpupoint = TPUPoint(tiny_estimator)
        tpupoint.Start(analyzer=False)
        tiny_estimator.train()
        tpupoint.Stop()
        with pytest.raises(ProfilerError):
            tpupoint.analyzer()

    def test_pythonic_aliases(self, tiny_estimator):
        tpupoint = TPUPoint(tiny_estimator)
        tpupoint.start()
        tiny_estimator.train()
        assert tpupoint.stop()

    def test_optimize_runs_to_completion(self, tiny_model, tiny_dataset):
        from repro.models.naive import naive_pipeline_config

        estimator = tiny_model.build_estimator(
            tiny_dataset, pipeline_config=naive_pipeline_config()
        )
        result = TPUPoint(estimator).optimize()
        assert estimator.session.finished
        assert result.summary.steps_executed > 0


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bert-mrpc" in out
        assert "resnet-imagenet" in out

    def test_profile_writes_exports(self, capsys, tmp_path):
        code = cli_main(
            ["profile", "bert-mrpc", "--method", "ols", "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TPU idle time" in out
        assert "top-3 phase coverage" in out
        assert (tmp_path / "ols_trace.json").exists()
        assert (tmp_path / "ols_phases.csv").exists()

    def test_optimize_reports_speedup(self, capsys):
        assert cli_main(["optimize", "naive-dcgan-mnist"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "best config" in out or "tuning trials" in out

    def test_tune_cold_then_warm(self, capsys, tmp_path):
        argv = [
            "tune", "naive-dcgan-mnist",
            "--strategy", "racing",
            "--knowledge-dir", str(tmp_path),
            "--trial-steps", "3",
        ]
        assert cli_main(argv) == 0
        cold = capsys.readouterr().out
        assert "offline autotune (racing)" in cold
        assert "phase signature" in cold
        assert "0 entries" in cold and "(miss)" in cold
        assert "warm start      : no" in cold
        assert "recorded" in cold

        assert cli_main(argv) == 0
        warm = capsys.readouterr().out
        assert "1 entries" in warm
        assert "hit, similarity 1.00" in warm
        assert "warm start      : yes" in warm

    def test_tune_rejects_unknown_strategy(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["tune", "naive-dcgan-mnist", "--strategy", "grid"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_tune_surrogate_with_corpus(self, capsys, tmp_path):
        corpus = Path("benchmarks/corpus/surrogate_corpus.json")
        dump = tmp_path / "model.json"
        argv = [
            "tune", "naive-dcgan-mnist",
            "--strategy", "surrogate",
            "--surrogate-corpus", str(corpus),
            "--surrogate-out", str(dump),
            "--trial-steps", "3",
        ]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "offline autotune (surrogate)" in out
        assert "surrogate       : ridge" in out
        assert "fitted" in out
        assert dump.exists()
        import json

        document = json.loads(dump.read_text(encoding="utf-8"))
        assert document["ready"] is True
        assert document["model"]["kind"] == "ridge"

    def test_tune_surrogate_cold_without_corpus(self, capsys):
        argv = [
            "tune", "naive-dcgan-mnist",
            "--strategy", "surrogate",
            "--trial-steps", "3",
        ]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "offline autotune (surrogate)" in out
        # Too few pairs from one tiny run: the model reports cold.
        assert "surrogate       :" in out

    def test_tune_warns_on_unwritable_knowledge_dir(self, capsys, tmp_path):
        import os

        if hasattr(os, "geteuid") and os.geteuid() == 0:
            pytest.skip("root bypasses file permissions")
        parent = tmp_path / "ro"
        parent.mkdir()
        parent.chmod(0o555)
        try:
            argv = [
                "tune", "naive-dcgan-mnist",
                "--strategy", "racing",
                "--knowledge-dir", str(parent / "kb"),
                "--trial-steps", "3",
            ]
            assert cli_main(argv) == 0
            captured = capsys.readouterr()
            assert "read-only" in captured.err
            assert "nothing will be persisted" in captured.err
        finally:
            parent.chmod(0o755)


class TestCliErrorHygiene:
    """ReproError -> one-line stderr message, exit code 1, no traceback."""

    def test_unknown_workload(self, capsys):
        code = cli_main(["profile", "no-such-workload"])
        assert code == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err
        assert "Traceback" not in captured.out

    def test_missing_fault_plan(self, capsys, tmp_path):
        code = cli_main(
            ["profile", "bert-mrpc", "--faults", str(tmp_path / "nope.json")]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "fault plan" in err

    def test_recover_missing_journal(self, capsys, tmp_path):
        code = cli_main(["recover", str(tmp_path / "gone.jsonl")])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_invalid_threshold_combination(self, capsys):
        code = cli_main(
            ["profile", "bert-mrpc", "--method", "kmeans", "--threshold", "0.5"]
        )
        assert code == 1
        assert capsys.readouterr().err.startswith("error:")


class TestCliFaults:
    PLAN = str(
        Path(__file__).resolve().parents[2]
        / "examples"
        / "faults"
        / "flaky_master.json"
    )

    def test_profile_with_faults_then_recover(self, capsys, tmp_path):
        journal = tmp_path / "run.jsonl"
        code = cli_main(
            [
                "profile",
                "bert-mrpc",
                "--faults",
                self.PLAN,
                "--journal",
                str(journal),
                "--metrics-out",
                str(tmp_path / "metrics.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault plan" in out
        assert "injected faults     : error=" in out
        assert "client resilience   :" in out
        assert "recorder            : CRASHED mid-run" in out
        assert f"record journal      : {journal}" in out
        metrics_text = (tmp_path / "metrics.json").read_text()
        assert "repro_profiler_retries_total" in metrics_text
        assert "repro_faults_injected_total" in metrics_text

        code = cli_main(["recover", str(journal), "--out", str(tmp_path / "rec")])
        assert code == 0
        out = capsys.readouterr().out
        assert "torn tail       : yes" in out
        assert "phases (ols" in out
        assert (tmp_path / "rec" / "ols_trace.json").exists()

    def test_lossless_faults_preserve_phase_count(self, capsys, tmp_path):
        import json
        import re

        # Same plan minus the recorder crash: every remaining fault kind
        # is lossless, so the post-run phase count must match a clean run.
        plan = json.loads(Path(self.PLAN).read_text(encoding="utf-8"))
        plan["faults"] = [
            spec for spec in plan["faults"] if spec["kind"] != "crash"
        ]
        plan_path = tmp_path / "lossless.json"
        plan_path.write_text(json.dumps(plan), encoding="utf-8")

        def phase_count(argv):
            assert cli_main(argv) == 0
            out = capsys.readouterr().out
            match = re.search(r"phases \(ols.*\): (\d+)", out)
            assert match, out
            return int(match.group(1))

        clean = phase_count(["profile", "bert-mrpc"])
        faulty = phase_count(["profile", "bert-mrpc", "--faults", str(plan_path)])
        assert faulty == clean

    def test_recover_empty_journal(self, capsys, tmp_path):
        journal = tmp_path / "empty.jsonl"
        journal.write_text("")
        code = cli_main(["recover", str(journal)])
        assert code == 0
        out = capsys.readouterr().out
        assert "no intact records survived" in out

class TestCliObsDumps:
    """Every long-running command can dump the toolchain's own telemetry."""

    def test_tune_writes_obs_dumps(self, capsys, tmp_path):
        trace = tmp_path / "tune_trace.json"
        metrics = tmp_path / "tune_metrics.prom"
        code = cli_main(
            [
                "tune", "naive-dcgan-mnist",
                "--strategy", "racing",
                "--trial-steps", "3",
                "--trace-out", str(trace),
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "offline autotune" in out
        from repro import obs

        events = obs.load_trace(trace)
        assert any(e.get("name", "").startswith("optimizer.") for e in events)
        samples = obs.parse_prometheus(metrics.read_text(encoding="utf-8"))
        assert "repro_optimizer_strategy_trials_total" in samples
        assert "repro_optimizer_improvement_ratio" in samples

    def test_goodput_writes_obs_dumps(self, capsys, tmp_path):
        trace = tmp_path / "goodput_trace.json"
        metrics = tmp_path / "goodput_metrics.json"
        code = cli_main(
            [
                "goodput", "--jobs", "2",
                "--trace-out", str(trace),
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        from repro import obs

        assert obs.load_trace(trace)
        samples = obs.load_metrics(metrics)
        assert "repro_serve_goodput_us_total" in samples


class TestCliHealth:
    PLAN = str(
        Path(__file__).resolve().parents[2]
        / "examples"
        / "faults"
        / "health_burst.json"
    )
    BURST = [
        "--faults", PLAN,
        "--checkpoint-every", "48",
        "--checkpoint-bytes", "4e9",
    ]

    def test_health_dashboard_and_dump(self, capsys, tmp_path):
        out_path = tmp_path / "health.json"
        code = cli_main(["health", *self.BURST, "--out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "== fleet health @ tick" in out
        assert "-- shards --" in out
        assert "-- slo --" in out
        assert "-- alert timeline --" in out
        assert "CIRCUIT_FLAP" in out and "PHASE_DRIFT" in out
        from repro import obs

        payload = obs.load_health(out_path)
        assert payload["alerts"]["events"]

    def test_health_periodic_dashboard(self, capsys):
        assert cli_main(["health", "--jobs", "2", "--shards", "1", "--every", "4"]) == 0
        out = capsys.readouterr().out
        # At least one mid-run dashboard plus the final one.
        assert out.count("== fleet health @ tick") >= 2

    def test_alerts_timeline_is_shard_invariant(self, capsys, tmp_path):
        dumps = []
        for shards in ("1", "2"):
            out_path = tmp_path / f"alerts_{shards}.json"
            code = cli_main(
                ["alerts", *self.BURST, "--shards", shards, "--out", str(out_path)]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "== alert timeline (" in out
            assert "fired" in out and "resolved" in out
            dumps.append(out_path.read_text(encoding="utf-8"))
        assert dumps[0] == dumps[1]
        from repro import obs

        payload = obs.load_alerts(tmp_path / "alerts_1.json")
        assert {event["rule"] for event in payload["events"]} >= {
            "CIRCUIT_FLAP", "GOODPUT_BURN", "PHASE_DRIFT",
        }

    def test_alerts_ack(self, capsys):
        # A healthy run has nothing firing, so the ack count is zero —
        # the flag path still has to work.
        assert cli_main(["alerts", "--jobs", "2", "--ack", "CIRCUIT_FLAP"]) == 0
        out = capsys.readouterr().out
        assert "acked 0 firing alert(s) of rule CIRCUIT_FLAP" in out
        assert "-- still firing (0) --" in out

    def test_health_rejects_bad_jobs(self, capsys):
        assert cli_main(["health", "--jobs", "0"]) == 1
        assert "error:" in capsys.readouterr().err
