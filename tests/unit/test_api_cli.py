"""The TPUPoint front-end API (Figure 2) and the CLI."""

import pytest

from repro.cli import main as cli_main
from repro.core.api import TPUPoint
from repro.errors import ProfilerError


class TestTPUPointApi:
    def test_figure2_flow(self, tiny_estimator):
        tpupoint = TPUPoint(tiny_estimator)
        tpupoint.Start(analyzer=True)
        tiny_estimator.train()
        records = tpupoint.Stop()
        assert records
        result = tpupoint.analyzer().ols_phases()
        assert result.num_phases >= 1

    def test_double_start_rejected(self, tiny_estimator):
        tpupoint = TPUPoint(tiny_estimator)
        tpupoint.Start()
        with pytest.raises(ProfilerError):
            tpupoint.Start()

    def test_stop_without_start_rejected(self, tiny_estimator):
        with pytest.raises(ProfilerError):
            TPUPoint(tiny_estimator).Stop()

    def test_records_require_stop(self, tiny_estimator):
        tpupoint = TPUPoint(tiny_estimator)
        tpupoint.Start()
        with pytest.raises(ProfilerError):
            tpupoint.records

    def test_analyzer_requires_analyzer_flag(self, tiny_estimator):
        tpupoint = TPUPoint(tiny_estimator)
        tpupoint.Start(analyzer=False)
        tiny_estimator.train()
        tpupoint.Stop()
        with pytest.raises(ProfilerError):
            tpupoint.analyzer()

    def test_pythonic_aliases(self, tiny_estimator):
        tpupoint = TPUPoint(tiny_estimator)
        tpupoint.start()
        tiny_estimator.train()
        assert tpupoint.stop()

    def test_optimize_runs_to_completion(self, tiny_model, tiny_dataset):
        from repro.models.naive import naive_pipeline_config

        estimator = tiny_model.build_estimator(
            tiny_dataset, pipeline_config=naive_pipeline_config()
        )
        result = TPUPoint(estimator).optimize()
        assert estimator.session.finished
        assert result.summary.steps_executed > 0


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bert-mrpc" in out
        assert "resnet-imagenet" in out

    def test_profile_writes_exports(self, capsys, tmp_path):
        code = cli_main(
            ["profile", "bert-mrpc", "--method", "ols", "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TPU idle time" in out
        assert "top-3 phase coverage" in out
        assert (tmp_path / "ols_trace.json").exists()
        assert (tmp_path / "ols_phases.csv").exists()

    def test_optimize_reports_speedup(self, capsys):
        assert cli_main(["optimize", "naive-dcgan-mnist"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "best config" in out or "tuning trials" in out
