"""The content-hashed analysis memo cache."""

import numpy as np
import pytest

from repro.core.analyzer import TPUPointAnalyzer
from repro.core.analyzer.cache import AnalysisCache, matrix_key
from repro.errors import CacheError


@pytest.fixture
def matrix(rng) -> np.ndarray:
    return rng.normal(size=(12, 4))


class TestMatrixKey:
    def test_deterministic(self, matrix):
        assert matrix_key(matrix, "pca", max_dims=10) == matrix_key(
            matrix, "pca", max_dims=10
        )

    def test_sensitive_to_content(self, matrix):
        changed = matrix.copy()
        changed[0, 0] += 1e-9
        assert matrix_key(matrix, "pca") != matrix_key(changed, "pca")

    def test_sensitive_to_stage_params_dtype(self, matrix):
        base = matrix_key(matrix, "pca", max_dims=10)
        assert base != matrix_key(matrix, "kmeans_sweep", max_dims=10)
        assert base != matrix_key(matrix, "pca", max_dims=11)
        assert base != matrix_key(matrix.astype(np.float32), "pca", max_dims=10)


class TestMemoryTier:
    def test_miss_then_hit(self, matrix):
        cache = AnalysisCache()
        key = matrix_key(matrix, "pca")
        assert cache.get_array(key) is None
        assert cache.misses == 1
        cache.put_array(key, matrix)
        got = cache.get_array(key)
        assert np.array_equal(got, matrix)
        assert cache.hits == 1
        assert len(cache) == 1

    def test_tables(self):
        cache = AnalysisCache()
        assert cache.get_table("k") is None
        cache.put_table("k", {"3": 0.5})
        assert cache.get_table("k") == {"3": 0.5}


class TestDiskTier:
    def test_arrays_survive_across_instances(self, matrix, tmp_path):
        key = matrix_key(matrix, "pca")
        AnalysisCache(directory=tmp_path).put_array(key, matrix)
        fresh = AnalysisCache(directory=tmp_path)
        got = fresh.get_array(key)
        assert np.array_equal(got, matrix)
        assert fresh.hits == 1

    def test_tables_survive_across_instances(self, tmp_path):
        AnalysisCache(directory=tmp_path).put_table("sweep", {"5": 0.25})
        assert AnalysisCache(directory=tmp_path).get_table("sweep") == {"5": 0.25}

    def test_unreadable_entry_raises(self, tmp_path):
        (tmp_path / "deadbeef.npz").write_bytes(b"not an npz")
        with pytest.raises(CacheError):
            AnalysisCache(directory=tmp_path).get_array("deadbeef")

    def test_corrupt_table_raises(self, tmp_path):
        (tmp_path / "deadbeef.json").write_text("{broken", encoding="utf-8")
        with pytest.raises(CacheError):
            AnalysisCache(directory=tmp_path).get_table("deadbeef")


class TestAnalyzerIntegration:
    def test_repeat_analysis_hits_cache_and_matches(self, bert_mrpc_run, tmp_path):
        _, _, records = bert_mrpc_run
        first = TPUPointAnalyzer(records, cache=AnalysisCache(directory=tmp_path))
        cold_sweep = first.kmeans_sweep(range(1, 5))
        cold_dbscan = first.dbscan_sweep()
        cold_phases = first.kmeans_phases(k=3)

        # A fresh process over the same records: every stage short-circuits.
        second = TPUPointAnalyzer(records, cache=AnalysisCache(directory=tmp_path))
        assert second.kmeans_sweep(range(1, 5)) == cold_sweep
        assert second.dbscan_sweep() == cold_dbscan
        warm_phases = second.kmeans_phases(k=3)
        assert np.array_equal(warm_phases.labels, cold_phases.labels)
        assert second.cache.hits >= 3

    def test_uncached_analyzer_matches_cached(self, bert_mrpc_run, tmp_path):
        _, _, records = bert_mrpc_run
        plain = TPUPointAnalyzer(records)
        cached = TPUPointAnalyzer(records, cache=AnalysisCache(directory=tmp_path))
        assert plain.kmeans_sweep(range(1, 4)) == cached.kmeans_sweep(range(1, 4))
