"""Multi-chip TPU slices."""

import pytest

from repro.costs import TPU_HOURLY_USD, run_cost
from repro.errors import ConfigurationError
from repro.host.pipeline import PipelineConfig
from repro.tpu.slice import (
    TpuSliceSpec,
    ring_hops,
    scaling_efficiency,
    tpu_slice,
    tree_depth,
)
from repro.tpu.specs import TPU_V2, TpuGeneration


class TestSliceSpec:
    def test_constructor_and_name(self):
        board = tpu_slice("v2", 4)
        assert board.chip is TPU_V2
        assert board.num_chips == 4
        assert board.name == "v2-8"  # 2 cores per chip

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TpuSliceSpec(chip=TPU_V2, num_chips=0)
        with pytest.raises(ConfigurationError):
            TpuSliceSpec(chip=TPU_V2, num_chips=2, ici_bandwidth=0.0)

    def test_aggregate_scales_linearly(self):
        aggregate = tpu_slice("v2", 4).aggregate_chip_spec()
        assert aggregate.peak_flops == 4 * TPU_V2.peak_flops
        assert aggregate.hbm_bytes == 4 * TPU_V2.hbm_bytes
        assert aggregate.infeed_bandwidth == 4 * TPU_V2.infeed_bandwidth
        assert aggregate.generation is TpuGeneration.V2

    def test_all_reduce_cost(self):
        board = tpu_slice("v2", 4)
        assert board.all_reduce_us(0.0) > 0.0  # latency term remains
        assert tpu_slice("v2", 1).all_reduce_us(1e9) == 0.0
        small = board.all_reduce_us(1e6)
        large = board.all_reduce_us(1e9)
        assert large > small

    def test_all_reduce_grows_with_chips(self):
        byte_count = 100e6
        costs = [tpu_slice("v2", n).all_reduce_us(byte_count) for n in (2, 4, 8)]
        assert costs == sorted(costs)

    def test_helpers(self):
        assert ring_hops(4) == 6
        assert tree_depth(8) == 3
        assert tree_depth(1) == 0
        assert scaling_efficiency(100.0, 50.0, 2) == pytest.approx(1.0)
        assert scaling_efficiency(100.0, 50.0, 4) == pytest.approx(0.5)
        with pytest.raises(ConfigurationError):
            scaling_efficiency(1.0, 0.0, 2)


class TestSliceExecution:
    def test_single_chip_slice_matches_single_device(self, tiny_model, tiny_dataset):
        single = tiny_model.build_estimator(tiny_dataset, generation="v2").train()
        board = tiny_model.build_estimator(
            tiny_dataset, generation=tpu_slice("v2", 1)
        ).train()
        # A 1-chip slice differs only by the (zero-cost) all-reduce lowering.
        assert board.wall_us == pytest.approx(single.wall_us, rel=0.01)

    def test_two_chips_speed_up_compute_bound_workload(self, tiny_model, tiny_dataset):
        single = tiny_model.build_estimator(tiny_dataset, generation="v2").train()
        board = tiny_model.build_estimator(
            tiny_dataset, generation=tpu_slice("v2", 2)
        ).train()
        assert board.wall_us < single.wall_us

    def test_scaling_hits_the_host_wall(self, tiny_model, tiny_dataset):
        """More chips shift the bottleneck to the shared host pipeline."""
        from dataclasses import replace

        heavy = replace(tiny_dataset, decode_cpu_us=200.0, preprocess_cpu_us=100.0)
        config = PipelineConfig(jitter=0.0)
        results = {}
        for chips in (1, 4):
            spec = tpu_slice("v2", chips)
            summary = tiny_model.build_estimator(
                heavy, generation=spec, pipeline_config=config
            ).train()
            results[chips] = summary
        assert results[4].tpu_idle_fraction > results[1].tpu_idle_fraction
        assert results[4].mxu_utilization < results[1].mxu_utilization

    def test_toolchain_runs_on_slices(self, tiny_model, tiny_dataset):
        from repro.core.api import TPUPoint

        estimator = tiny_model.build_estimator(tiny_dataset, generation=tpu_slice("v2", 2))
        tpupoint = TPUPoint(estimator)
        tpupoint.Start(analyzer=True)
        estimator.train()
        tpupoint.Stop()
        assert tpupoint.analyzer().ols_phases().num_phases >= 1


class TestSliceCosts:
    def test_billing_scales_with_chips(self):
        from repro.runtime.session import SessionSummary

        summary = SessionSummary(
            wall_us=3600e6,
            tpu_busy_us=1800e6,
            mxu_flops=1e15,
            peak_flops=45e12,
            steps_executed=1,
            events_recorded=1,
        )
        one = run_cost(summary, tpu_slice("v2", 1))
        four = run_cost(summary, tpu_slice("v2", 4))
        assert one.tpu_dollars == pytest.approx(TPU_HOURLY_USD[TpuGeneration.V2])
        assert four.tpu_dollars == pytest.approx(4 * one.tpu_dollars)
        # Energy scales with the aggregate TDP too.
        assert four.tpu_energy_joules == pytest.approx(4 * one.tpu_energy_joules)
