"""Workload models: graph structure and defaults."""

import pytest

from repro.datasets.registry import dataset
from repro.graph.ops import Placement
from repro.models.bert import BertModel
from repro.models.dcgan import DcganModel
from repro.models.qanet import QanetModel
from repro.models.resnet import ResNetModel
from repro.models.retinanet import RetinaNetModel

MODELS_AND_DATA = [
    (BertModel(), "mrpc"),
    (DcganModel(), "mnist"),
    (QanetModel(), "squad"),
    (RetinaNetModel(), "coco"),
    (ResNetModel(), "imagenet"),
]


@pytest.mark.parametrize("model, ds", MODELS_AND_DATA, ids=[m.name for m, _ in MODELS_AND_DATA])
class TestEveryModel:
    def test_train_graph_is_valid(self, model, ds):
        spec = dataset(ds)
        batch = model.defaults(spec).batch_size
        graph = model.build_train_graph(batch, spec)
        graph.validate()
        assert len(graph) > 10

    def test_train_graph_has_io(self, model, ds):
        spec = dataset(ds)
        graph = model.build_train_graph(model.defaults(spec).batch_size, spec)
        assert graph.count_kind("InfeedDequeueTuple") >= 1
        assert graph.count_kind("OutfeedEnqueueTuple") >= 1

    def test_train_flops_exceed_eval_flops(self, model, ds):
        spec = dataset(ds)
        batch = model.defaults(spec).batch_size
        train = model.build_train_graph(batch, spec).total_flops()
        evaluation = model.build_eval_graph(batch, spec).total_flops()
        assert train > evaluation > 0

    def test_efficiency_calibration_stamped(self, model, ds):
        spec = dataset(ds)
        graph = model.build_train_graph(model.defaults(spec).batch_size, spec)
        mxu_ops = [op for op in graph if op.kind.uses_mxu]
        assert mxu_ops
        assert all("mxu_efficiency" in op.attrs for op in mxu_ops)

    def test_graph_is_tpu_resident(self, model, ds):
        spec = dataset(ds)
        graph = model.build_train_graph(model.defaults(spec).batch_size, spec)
        fixed_host = [
            op for op in graph if op.kind.placement is Placement.HOST
        ]
        assert fixed_host == []  # model compute lives on the accelerator

    def test_defaults_sane(self, model, ds):
        defaults = model.defaults(dataset(ds))
        assert defaults.batch_size > 0
        assert 0 < defaults.train_steps <= defaults.paper_train_steps

    def test_pipeline_stages_end_with_transfer(self, model, ds):
        stages = model.pipeline_stages(dataset(ds))
        assert stages[-1].name == "transfer"
        assert stages[0].name == "read"


def test_bert_batch_and_seq_match_table1():
    model = BertModel()
    assert model.seq_len == 128
    assert model.defaults(dataset("squad")).batch_size == 32


def test_dcgan_batch_matches_table1():
    assert DcganModel().defaults(dataset("cifar10")).batch_size == 1024


def test_resnet_paper_steps_match_table1():
    assert ResNetModel().defaults(dataset("imagenet")).paper_train_steps == 112_590


def test_retinanet_batch_matches_table1():
    assert RetinaNetModel().defaults(dataset("coco")).batch_size == 64


def test_resnet_compute_scales_with_image_size():
    model = ResNetModel()
    imagenet = model.build_train_graph(256, dataset("imagenet")).total_flops()
    cifar = model.build_train_graph(256, dataset("cifar10")).total_flops()
    assert imagenet > 20 * cifar  # Observation 6's mechanism


def test_qanet_host_costs_heavier_than_bert():
    squad = dataset("squad")
    qanet_stage = QanetModel().pipeline_stages(squad)[2]
    bert_stage = BertModel().pipeline_stages(squad)[2]
    assert qanet_stage.cpu_us_per_example > bert_stage.cpu_us_per_example


def test_half_dataset_tightens_cadence():
    model = RetinaNetModel()
    full = model.defaults(dataset("coco"))
    half = model.defaults(dataset("coco-half"))
    assert half.eval_every < full.eval_every
    assert half.checkpoint_every < full.checkpoint_every
