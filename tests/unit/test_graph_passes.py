"""Compiler passes: constant folding, partitioning, fusion."""

import pytest

from repro.graph import ops as opdefs
from repro.graph.builder import GraphBuilder
from repro.graph.constant_folding import fold_constants
from repro.graph.fusion import fuse
from repro.graph.graph import Graph
from repro.graph.ops import Operation, Placement
from repro.graph.partition import partition
from repro.graph.shapes import TensorShape


def test_fold_constant_subexpression():
    b = GraphBuilder()
    c1 = b.const(TensorShape((4, 4)))
    c2 = b.const(TensorShape((4, 4)))
    product = b.matmul(c1, c2, 4, 4, 4)
    b.elementwise(opdefs.RELU, product)
    g = b.build()
    report = fold_constants(g)
    # Both the matmul and (transitively) the relu fold to constants.
    assert report.folded == 2
    assert report.iterations >= 2
    assert all(op.kind is opdefs.CONST for op in g)


def test_fold_preserves_runtime_inputs():
    b = GraphBuilder()
    x = b.infeed(TensorShape((4, 4)))
    w = b.const(TensorShape((4, 4)))
    b.matmul(x, w, 4, 4, 4)
    g = b.build()
    report = fold_constants(g)
    assert report.folded == 0
    assert g.count_kind("MatMul") == 1


def test_fold_never_touches_transfer_ops():
    b = GraphBuilder()
    c = b.const(TensorShape((4,)))
    b.outfeed(c)
    g = b.build()
    fold_constants(g)
    assert g.count_kind("OutfeedEnqueueTuple") == 1


def _mixed_graph() -> Graph:
    g = Graph("mixed")
    g.add(Operation("decode", opdefs.DECODE_AND_CROP_JPEG, shape=TensorShape((8, 8))))
    g.add(
        Operation("cast", opdefs.CAST, inputs=("decode",), shape=TensorShape((8, 8)))
    )
    g.add(Operation("mm", opdefs.MATMUL, inputs=("cast",), shape=TensorShape((8, 8)), flops=8.0))
    g.add(Operation("out", opdefs.OUTFEED_DEQUEUE, inputs=("mm",)))
    return g


def test_partition_places_fixed_ops():
    result = partition(_mixed_graph())
    assert result.assignment["decode"] is Placement.HOST
    assert result.assignment["mm"] is Placement.TPU
    assert result.assignment["out"] is Placement.HOST


def test_partition_flexible_follows_tpu_consumer():
    # cast is EITHER; its consumer mm is TPU, so cast lands on the TPU.
    result = partition(_mixed_graph())
    assert result.assignment["cast"] is Placement.TPU


def test_partition_boundary_edges_carry_bytes():
    result = partition(_mixed_graph())
    assert len(result.infeed_edges) == 1  # decode(host) -> cast(tpu)
    assert result.infeed_edges[0].num_bytes == 8 * 8 * 4
    assert len(result.outfeed_edges) == 1  # mm(tpu) -> out(host)
    assert result.infeed_bytes > 0 and result.outfeed_bytes > 0


def test_fusion_merges_chain():
    b = GraphBuilder()
    x = b.infeed(TensorShape((8, 64)))
    w = b.const(TensorShape((64, 64)))
    h = b.matmul(x, w, 8, 64, 64)
    h = b.elementwise(opdefs.RELU, h)
    h = b.elementwise(opdefs.MUL, h)
    b.outfeed(h)
    g = b.build()
    report = fuse(g)
    assert report.fusions_created == 1
    assert report.ops_fused == 3
    assert g.count_kind("fusion") == 1
    # The fusion preserves total compute.
    fusion_op = next(op for op in g if op.kind is opdefs.FUSION)
    assert fusion_op.flops > 0
    assert fusion_op.attrs["mxu_flops"] == 2 * 8 * 64 * 64


def test_fusion_propagates_calibrated_efficiency():
    b = GraphBuilder()
    x = b.infeed(TensorShape((8, 64)))
    w = b.const(TensorShape((64, 64)))
    h = b.matmul(x, w, 8, 64, 64)
    h.attrs["mxu_efficiency"] = 0.33
    h = b.elementwise(opdefs.RELU, h)
    g = b.build()
    fuse(g)
    fusion_op = next(op for op in g if op.kind is opdefs.FUSION)
    assert fusion_op.attrs["mxu_efficiency"] == pytest.approx(0.33)


def test_fusion_stops_at_fan_out():
    b = GraphBuilder()
    x = b.infeed(TensorShape((8, 8)))
    relu = b.elementwise(opdefs.RELU, x)
    # Two consumers: the chain must not swallow relu.
    b.elementwise(opdefs.MUL, relu)
    b.elementwise(opdefs.TANH, relu)
    g = b.build()
    fuse(g)
    assert g.count_kind("Relu") == 1


def test_fusion_keeps_graph_valid():
    b = GraphBuilder()
    x = b.infeed(TensorShape((8, 64)))
    w = b.const(TensorShape((64, 64)))
    h = b.matmul(x, w, 8, 64, 64)
    h = b.elementwise(opdefs.RELU, h)
    out = b.outfeed(h)
    g = b.build()
    fuse(g)
    g.validate()
    # The outfeed now reads the fusion output.
    assert any(name.endswith(".fusion") for name in g.op(out.name).inputs)


def test_single_op_not_fused():
    b = GraphBuilder()
    x = b.infeed(TensorShape((8, 8)))
    b.elementwise(opdefs.RELU, x)
    g = b.build()
    report = fuse(g)
    assert report.fusions_created == 0
