"""The self-observability layer: span tracer, metrics registry, exposition."""

import json
import threading

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_SPAN, Tracer


class TestSpans:
    def test_basic_span_records_timing_and_attributes(self):
        tracer = Tracer()
        with tracer.trace("work", phase="setup") as span:
            span.set(items=3)
        spans = tracer.spans()
        assert len(spans) == 1
        assert spans[0].name == "work"
        assert spans[0].finished and spans[0].duration_us >= 0.0
        assert spans[0].attributes == {"phase": "setup", "items": 3}
        assert spans[0].parent_id is None

    def test_nested_spans_link_to_parent(self):
        tracer = Tracer()
        with tracer.trace("outer") as outer:
            with tracer.trace("middle") as middle:
                with tracer.trace("inner"):
                    assert tracer.active_depth() == 3
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["inner"].parent_id == middle.span_id
        assert by_name["middle"].parent_id == outer.span_id
        assert by_name["outer"].parent_id is None
        # Children finish (and are appended) before their parents.
        names = [s.name for s in tracer.spans()]
        assert names == ["inner", "middle", "outer"]

    def test_exception_closes_span_and_tags_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.trace("outer"):
                with tracer.trace("doomed"):
                    raise ValueError("boom")
        spans = {s.name: s for s in tracer.spans()}
        assert spans["doomed"].finished
        assert spans["doomed"].attributes["error"] == "ValueError"
        assert spans["outer"].attributes["error"] == "ValueError"
        # The stack unwound completely: a new span is again a root.
        with tracer.trace("fresh"):
            pass
        assert {s.name: s for s in tracer.spans()}["fresh"].parent_id is None

    def test_threads_keep_independent_stacks(self):
        tracer = Tracer()
        workers = 8
        barrier = threading.Barrier(workers)

        def worker(index):
            barrier.wait()
            for repeat in range(5):
                with tracer.trace(f"outer-{index}"):
                    with tracer.trace(f"inner-{index}", repeat=repeat):
                        pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        spans = tracer.spans()
        assert len(spans) == workers * 5 * 2
        assert len({s.span_id for s in spans}) == len(spans)  # ids unique
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.name.startswith("inner"):
                parent = by_id[span.parent_id]
                # Parent is the same thread's outer span, never another thread's.
                assert parent.thread_id == span.thread_id
                assert parent.name == f"outer-{span.name.split('-')[1]}"
            else:
                assert span.parent_id is None

    def test_disabled_tracer_yields_null_span(self):
        tracer = Tracer(enabled=False)
        with tracer.trace("ignored") as span:
            assert span is NULL_SPAN
            span.set(anything="goes")
        assert tracer.spans() == []

    def test_chrome_trace_round_trips_through_inspect(self, tmp_path):
        tracer = Tracer()
        with tracer.trace("sweep", steps=10):
            with tracer.trace("fit", k=2):
                pass
        path = tracer.write(tmp_path / "trace.json")
        events = obs.load_trace(path)
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"sweep", "fit"}
        fit = next(e for e in complete if e["name"] == "fit")
        sweep = next(e for e in complete if e["name"] == "sweep")
        assert fit["args"]["parent_id"] == sweep["args"]["span_id"]
        assert fit["args"]["k"] == 2
        # Containment holds, so chrome://tracing renders the nesting.
        assert sweep["ts"] <= fit["ts"]
        assert fit["ts"] + fit["dur"] <= sweep["ts"] + sweep["dur"] + 1e-6
        assert any(e["ph"] == "M" for e in events)  # process/thread names

    def test_non_json_attributes_export_as_strings(self, tmp_path):
        from repro.tpu.specs import TpuGeneration

        tracer = Tracer()
        with tracer.trace("run", generation=TpuGeneration.V2, where=tmp_path):
            pass
        events = obs.load_trace(tracer.write(tmp_path / "trace.json"))
        args = next(e for e in events if e["ph"] == "X")["args"]
        assert isinstance(args["generation"], str)
        assert isinstance(args["where"], str)

    def test_reset_clears_spans(self):
        tracer = Tracer()
        with tracer.trace("gone"):
            pass
        tracer.reset()
        assert tracer.spans() == []

    def test_bounded_storage_drops_oldest_and_counts(self):
        family = obs.default_registry().get("repro_obs_spans_dropped_total")
        before = (
            sum(child.value for child in family.children()) if family else 0.0
        )
        tracer = Tracer(max_spans=4)
        for index in range(6):
            with tracer.trace(f"span-{index}"):
                pass
        kept = [span.name for span in tracer.spans()]
        # The recent history is the diagnostic one: oldest two dropped.
        assert kept == ["span-2", "span-3", "span-4", "span-5"]
        assert tracer.dropped_spans == 2
        family = obs.default_registry().get("repro_obs_spans_dropped_total")
        after = sum(child.value for child in family.children())
        assert after - before == 2.0

    def test_reset_clears_drop_accounting(self):
        tracer = Tracer(max_spans=1)
        for _ in range(3):
            with tracer.trace("s"):
                pass
        assert tracer.dropped_spans == 2
        tracer.reset()
        assert tracer.dropped_spans == 0

    def test_max_spans_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)


class TestMetricsRegistry:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        child = registry.counter("repro_test_total", "help").labels()
        child.inc()
        child.inc(4)
        assert child.value == 5
        with pytest.raises(ObsError):
            child.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_test_gauge", "help").labels()
        gauge.set(2.5)
        gauge.inc()
        gauge.dec(0.5)
        assert gauge.value == pytest.approx(3.0)

    def test_labels_create_independent_children(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_test_total", "help", labels=("algo",))
        family.labels(algo="ols").inc(2)
        family.labels(algo="kmeans").inc(3)
        assert family.labels(algo="ols").value == 2
        assert family.labels(algo="kmeans").value == 3
        with pytest.raises(ObsError):
            family.labels(wrong="name")

    def test_registration_is_idempotent_but_type_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_test_total", "help")
        assert registry.counter("repro_test_total") is first
        with pytest.raises(ObsError):
            registry.gauge("repro_test_total")
        with pytest.raises(ObsError):
            registry.counter("repro_test_total", labels=("other",))
        with pytest.raises(ObsError):
            registry.counter("0bad name")

    def test_histogram_bucket_boundaries_are_inclusive(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_test_seconds", "help", buckets=(0.01, 0.1, 1.0)
        ).labels()
        for value in (0.005, 0.01, 0.0100001, 0.1, 0.5, 1.0, 2.0):
            histogram.observe(value)
        buckets = dict(
            (bound, count) for bound, count in histogram.cumulative_buckets()
        )
        # le is inclusive: 0.005 and exactly-0.01 land in the 0.01 bucket.
        assert buckets[0.01] == 2
        assert buckets[0.1] == 4  # + 0.0100001 and exactly-0.1
        assert buckets[1.0] == 6  # + 0.5 and exactly-1.0
        assert buckets[float("inf")] == 7  # 2.0 only in +Inf
        assert histogram.count == 7
        assert histogram.sum == pytest.approx(sum((0.005, 0.01, 0.0100001, 0.1, 0.5, 1.0, 2.0)))
        assert histogram.max == 2.0

    def test_histogram_rejects_unsorted_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ObsError):
            registry.histogram("repro_bad_seconds", buckets=(1.0, 0.1))

    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()
        child = registry.counter("repro_test_total").labels()
        workers, per_worker = 8, 500
        barrier = threading.Barrier(workers)

        def worker():
            barrier.wait()
            for _ in range(per_worker):
                child.inc()

        threads = [threading.Thread(target=worker) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert child.value == workers * per_worker


class TestExposition:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "Things.", labels=("kind",)).labels(
            kind="a"
        ).inc(3)
        registry.gauge("repro_x_fraction", "A share.").labels().set(0.25)
        registry.histogram(
            "repro_x_seconds", "Latency.", buckets=(0.1, 1.0)
        ).labels().observe(0.05)
        return registry

    def test_prometheus_text_parses_back(self):
        registry = self._populated()
        text = registry.render()
        assert "# TYPE repro_x_total counter" in text
        assert '# TYPE repro_x_seconds histogram' in text
        samples = obs.parse_prometheus(text)
        assert samples["repro_x_total"] == [({"kind": "a"}, 3.0)]
        assert samples["repro_x_fraction"] == [({}, 0.25)]
        bucket = dict(
            (labels["le"], value) for labels, value in samples["repro_x_seconds_bucket"]
        )
        assert bucket == {"0.1": 1.0, "1": 1.0, "+Inf": 1.0}
        assert samples["repro_x_seconds_count"] == [({}, 1.0)]

    def test_unlabeled_families_always_expose_a_sample(self):
        registry = MetricsRegistry()
        registry.gauge("repro_idle_fraction", "Never touched.")
        samples = obs.parse_prometheus(registry.render())
        assert samples["repro_idle_fraction"] == [({}, 0.0)]

    def test_json_snapshot(self, tmp_path):
        registry = self._populated()
        path = obs.write_metrics(tmp_path / "snap.json", [registry])
        payload = json.loads(path.read_text())
        assert payload["repro_x_total"]["type"] == "counter"
        assert payload["repro_x_total"]["samples"][0]["value"] == 3
        assert obs.load_metrics(path)["repro_x_fraction"] == [({}, 0.25)]

    def test_prom_file_via_write_metrics(self, tmp_path):
        registry = self._populated()
        path = obs.write_metrics(tmp_path / "snap.prom", [registry])
        assert obs.load_metrics(path)["repro_x_total"] == [({"kind": "a"}, 3.0)]

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", labels=("job",)).labels(
            job='we"ird\\job'
        ).inc()
        samples = obs.parse_prometheus(registry.render())
        [(labels, value)] = samples["repro_x_total"]
        assert value == 1.0
        # The parser must invert the writer's escaping, not just survive it.
        assert labels == {"job": 'we"ird\\job'}

    def test_label_escaping_round_trips_every_escape(self):
        # Newlines, quotes, lone backslashes, and the adversarial
        # backslash-before-n (which must NOT decode as a newline).
        hard = 'multi\nline "quoted" back\\slash tail\\n'
        registry = MetricsRegistry()
        registry.gauge("repro_y", labels=("name",)).labels(name=hard).set(2.0)
        samples = obs.parse_prometheus(registry.render())
        [(labels, value)] = samples["repro_y"]
        assert value == 2.0
        assert labels == {"name": hard}

    def test_malformed_exposition_rejected(self):
        with pytest.raises(ObsError):
            obs.parse_prometheus("this is { not exposition\n")

    def test_malformed_trace_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"nope": []}))
        with pytest.raises(ObsError):
            obs.load_trace(bad)
        bad.write_text(json.dumps({"traceEvents": [{"name": "x", "ph": "X"}]}))
        with pytest.raises(ObsError):
            obs.load_trace(bad)

    def test_reset_keeps_family_handles_alive(self):
        registry = MetricsRegistry()
        child = registry.counter("repro_x_total").labels()
        child.inc(7)
        registry.reset()
        assert child.value == 0
        child.inc()
        assert registry.counter("repro_x_total").labels().value == 1
