"""The fleet profiling service: registry, ingestion, live analysis, queries."""

import pytest

from repro.core.analyzer.ols import ols_labels
from repro.core.profiler.record import ProfileRecord, StepStats
from repro.errors import ServeError
from repro.runtime.events import DeviceKind, StepKind
from repro.serve import (
    FleetService,
    FleetServiceOptions,
    IngestQueue,
    JobRegistry,
    JobState,
    LiveJobAnalysis,
)


def _step(number, ops, duration_us=100.0, idle_us=20.0, mxu_flops=1e6):
    step = StepStats(step=number)
    for name in ops:
        step.observe(name, DeviceKind.TPU, 10.0)
    step.kind = StepKind.TRAIN
    step.start_us = number * duration_us
    step.end_us = (number + 1) * duration_us
    step.tpu_idle_us = idle_us
    step.mxu_flops = mxu_flops
    return step


def _record(index, steps):
    record = ProfileRecord(index=index, window_start_us=0.0, window_end_us=1.0)
    for step in steps:
        record.steps[step.step] = step
    return record


#: Two clearly distinct behaviours, so OLS opens a phase boundary.
_OPS_A = ["matmul", "fusion", "relu"]
_OPS_B = ["conv", "pool", "softmax"]


def _stream_of_records(num_steps=8, flip_at=4):
    """One record per step; behaviour flips halfway -> 2 phases."""
    return [
        _record(i, [_step(i, _OPS_A if i < flip_at else _OPS_B)])
        for i in range(num_steps)
    ]


class TestJobRegistry:
    def test_register_and_lookup(self):
        registry = JobRegistry()
        info = registry.register("bert-mrpc", generation="v3")
        assert info.job_id == "bert-mrpc/0"
        assert info.generation == "v3"
        assert info.peak_flops > 0
        assert info.state is JobState.REGISTERED
        assert registry.get(info.job_id) is info
        assert info.job_id in registry and len(registry) == 1

    def test_sequence_orders_jobs(self):
        registry = JobRegistry()
        first = registry.register("a")
        second = registry.register("b")
        assert [info.job_id for info in registry.jobs()] == [first.job_id, second.job_id]

    def test_duplicate_id_rejected(self):
        registry = JobRegistry()
        registry.register("a", job_id="j")
        with pytest.raises(ServeError):
            registry.register("b", job_id="j")

    def test_unknown_job_rejected(self):
        with pytest.raises(ServeError):
            JobRegistry().get("nope")

    def test_lifecycle_transitions(self):
        registry = JobRegistry()
        info = registry.register("a")
        registry.activate(info.job_id)
        assert info.state is JobState.ACTIVE
        registry.complete(info.job_id)
        assert info.state is JobState.COMPLETED
        registry.evict(info.job_id)
        assert info.state is JobState.EVICTED

    def test_invalid_transitions_rejected(self):
        registry = JobRegistry()
        info = registry.register("a")
        with pytest.raises(ServeError):  # registered -> completed skips active
            registry.complete(info.job_id)
        registry.activate(info.job_id)
        with pytest.raises(ServeError):  # active -> active
            registry.activate(info.job_id)
        registry.evict(info.job_id)
        with pytest.raises(ServeError):  # evicted is terminal
            registry.evict(info.job_id)

    def test_max_jobs_admission_control(self):
        registry = JobRegistry(max_jobs=1)
        info = registry.register("a")
        with pytest.raises(ServeError):
            registry.register("b")
        registry.activate(info.job_id)
        registry.evict(info.job_id)
        registry.register("b")  # eviction frees the slot


class TestIngestQueue:
    def test_capacity_validated(self):
        with pytest.raises(ServeError):
            IngestQueue(job_id="j", capacity=0)

    def test_fifo_within_capacity(self):
        queue = IngestQueue(job_id="j", capacity=4)
        records = _stream_of_records(3)
        for record in records:
            ack = queue.offer(record)
            assert ack.accepted and not ack.overloaded
        assert queue.depth == 3 and queue.remaining_capacity == 1
        assert [r.index for r in queue.drain()] == [0, 1, 2]
        assert queue.depth == 0

    def test_overflow_drops_oldest(self):
        queue = IngestQueue(job_id="j", capacity=2)
        records = _stream_of_records(3)
        queue.offer(records[0])
        queue.offer(records[1])
        ack = queue.offer(records[2])
        assert ack.overloaded and ack.dropped == 1
        assert queue.dropped == 1 and queue.submitted == 3
        assert [r.index for r in queue.drain()] == [1, 2]

    def test_bounded_drain(self):
        queue = IngestQueue(job_id="j", capacity=8)
        for record in _stream_of_records(5):
            queue.offer(record)
        assert len(list(queue.drain(max_records=2))) == 2
        assert queue.depth == 3


class TestLiveJobAnalysis:
    def test_incremental_fold_matches_offline_ols(self):
        analysis = LiveJobAnalysis(threshold=0.70, peak_flops=1e12)
        records = _stream_of_records(8, flip_at=4)
        for record in records:
            analysis.ingest(record)
        analysis.finish()
        steps = [_step(i, _OPS_A if i < 4 else _OPS_B) for i in range(8)]
        assert analysis.labels == ols_labels(steps, 0.70).tolist()
        assert analysis.num_phases == 2
        assert analysis.phase_labels == {i: (0 if i < 4 else 1) for i in range(8)}

    def test_aggregates_without_retaining_steps(self):
        analysis = LiveJobAnalysis(peak_flops=1e12)
        for record in _stream_of_records(8):
            analysis.ingest(record)
        analysis.finish()
        assert analysis.steps_seen == 8
        assert analysis.total_duration_us == pytest.approx(800.0)
        assert analysis.idle_fraction == pytest.approx(0.2)
        # 8 * 1e6 FLOP over 800 us against a 1e12 FLOP/s chip.
        assert analysis.mxu_utilization == pytest.approx((8e6 / 800e-6) / 1e12)
        assert analysis.coverage(3) == pytest.approx(1.0)

    def test_phase_table_accumulates_operators(self):
        analysis = LiveJobAnalysis()
        for record in _stream_of_records(6, flip_at=3):
            analysis.ingest(record)
        analysis.finish()
        longest = analysis.phases_by_duration()[0]
        tops = [stats.name for stats in longest.top_operators(2, DeviceKind.TPU)]
        assert len(tops) == 2 and set(tops) <= set(_OPS_A + _OPS_B)
        assert longest.first_step <= longest.last_step

    def test_withholds_newest_until_finish(self):
        analysis = LiveJobAnalysis()
        analysis.ingest(_record(0, [_step(0, _OPS_A)]))
        assert analysis.steps_seen == 0 and analysis.pending_steps == 1
        assert analysis.finish() == 1
        assert analysis.steps_seen == 1 and analysis.finished

    def test_ingest_after_finish_rejected(self):
        analysis = LiveJobAnalysis()
        analysis.finish()
        with pytest.raises(ServeError):
            analysis.ingest(_record(0, [_step(0, _OPS_A)]))


class TestFleetService:
    def _service(self, **options):
        return FleetService(options=FleetServiceOptions(**options))

    def test_submit_requires_registration(self):
        service = self._service()
        with pytest.raises(ServeError):
            service.submit("ghost", _record(0, [_step(0, _OPS_A)]))

    def test_first_record_activates(self):
        service = self._service()
        info = service.register("tiny")
        service.submit(info.job_id, _record(0, [_step(0, _OPS_A)]))
        assert info.state is JobState.ACTIVE

    def test_pump_assembles_and_counts(self):
        service = self._service()
        info = service.register("tiny")
        for record in _stream_of_records(5):
            service.submit(info.job_id, record)
        assert service.queue_depth(info.job_id) == 5
        assembled = service.pump()
        assert assembled == 4  # newest step withheld until complete()
        assert service.metrics.records_ingested == 5
        assert service.metrics.steps_assembled == 4
        service.complete(info.job_id)
        assert service.metrics.steps_assembled == 5

    def test_queue_overflow_observable_via_metrics(self):
        service = self._service(queue_capacity=2)
        info = service.register("tiny")
        for record in _stream_of_records(5):
            ack = service.submit(info.job_id, record)
        assert ack.overloaded
        assert service.metrics.records_dropped == 3
        assert service.metrics.dropped_by_job[info.job_id] == 3
        service.complete(info.job_id)
        snapshot = service.job_snapshot(info.job_id)
        assert snapshot.records_dropped == 3
        assert snapshot.records_submitted == 5
        # Only the two surviving records' steps were ever analyzed.
        assert snapshot.steps_seen == 2
        assert service.metrics.drop_fraction == pytest.approx(3 / 5)

    def test_drop_oldest_keeps_stream_consistent(self):
        # Shedding old records must never trip StepStream's revisit guard.
        service = self._service(queue_capacity=1)
        info = service.register("tiny")
        for record in _stream_of_records(6):
            service.submit(info.job_id, record)
            service.pump(info.job_id)
        service.complete(info.job_id)
        assert service.job_snapshot(info.job_id).steps_seen > 0

    def test_job_snapshot_fields(self):
        service = self._service()
        info = service.register("tiny", generation="v2")
        for record in _stream_of_records(8, flip_at=4):
            service.submit(info.job_id, record)
        service.pump()
        snapshot = service.job_snapshot(info.job_id)
        assert snapshot.state == "active"
        assert snapshot.steps_seen == 7 and snapshot.pending_steps == 1
        assert snapshot.num_phases == 2
        assert 0.0 < snapshot.idle_fraction < 1.0
        assert snapshot.phases[0].num_steps >= snapshot.phases[-1].num_steps
        assert snapshot.format()

    def test_fleet_rollup(self):
        service = self._service()
        first = service.register("a")
        second = service.register("b", generation="v3")
        for record in _stream_of_records(8):
            service.submit(first.job_id, record)
            service.submit(second.job_id, record)
        service.pump()
        service.complete(first.job_id)
        rollup = service.fleet_snapshot()
        assert rollup.num_jobs == 2
        assert rollup.completed_jobs == 1 and rollup.active_jobs == 1
        assert rollup.total_steps == 8 + 7
        assert 0.0 < rollup.idle_fraction < 1.0
        assert 0.0 < rollup.mxu_utilization <= 1.0
        assert sum(rollup.phase_histogram.values()) == 2
        assert rollup.format()

    def test_evict_discards_live_state(self):
        service = self._service()
        info = service.register("tiny")
        service.submit(info.job_id, _record(0, [_step(0, _OPS_A)]))
        service.evict(info.job_id)
        assert service.metrics.jobs_evicted == 1
        with pytest.raises(ServeError):
            service.submit(info.job_id, _record(1, [_step(1, _OPS_A)]))
        with pytest.raises(ServeError):
            service.job_snapshot(info.job_id)
        assert service.fleet_snapshot().num_jobs == 0

    def test_complete_without_records(self):
        service = self._service()
        info = service.register("idle-tenant")
        service.complete(info.job_id)
        assert info.state is JobState.COMPLETED
        assert service.job_snapshot(info.job_id).steps_seen == 0

    def test_sink_binds_job(self):
        service = self._service()
        info = service.register("tiny")
        sink = service.sink(info.job_id)
        sink(_record(0, [_step(0, _OPS_A)]))
        assert service.queue_depth(info.job_id) == 1
        with pytest.raises(ServeError):
            service.sink("ghost")

    def test_query_metrics_recorded(self):
        service = self._service()
        info = service.register("tiny")
        service.job_snapshot(info.job_id)
        service.fleet_snapshot()
        assert service.metrics.queries_served == 2
        assert service.metrics.query_seconds_total >= 0.0
        assert service.metrics.format()


class TestIngestQueueConcurrency:
    def test_offer_is_atomic_under_contention(self):
        import threading

        queue = IngestQueue(job_id="j", capacity=8)
        producers, per_producer = 8, 200
        barrier = threading.Barrier(producers)

        def produce(base):
            barrier.wait()
            for i in range(per_producer):
                queue.offer(_record(base + i, []))

        threads = [
            threading.Thread(target=produce, args=(t * per_producer,))
            for t in range(producers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Conservation: every offer either grew the queue or shed exactly
        # one record. A racy offer loses updates and breaks this.
        assert queue.submitted == producers * per_producer
        assert queue.depth <= queue.capacity
        assert queue.submitted - queue.dropped == queue.depth
        assert len(list(queue.drain())) == queue.capacity

    def test_offers_racing_a_drain(self):
        import threading

        queue = IngestQueue(job_id="j", capacity=16)
        producers, per_producer = 4, 300
        barrier = threading.Barrier(producers + 1)
        drained = []

        def produce(base):
            barrier.wait()
            for i in range(per_producer):
                queue.offer(_record(base + i, []))

        def drain():
            barrier.wait()
            while queue.submitted < producers * per_producer or queue.depth:
                drained.extend(queue.drain(max_records=8))

        threads = [
            threading.Thread(target=produce, args=(t * per_producer,))
            for t in range(producers)
        ]
        threads.append(threading.Thread(target=drain))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert queue.submitted == producers * per_producer
        assert queue.depth == 0
        assert len(drained) + queue.dropped == queue.submitted

    def test_offer_many_matches_offer_serially(self):
        one = IngestQueue(job_id="j", capacity=4)
        many = IngestQueue(job_id="j", capacity=4)
        records = _stream_of_records(7)
        single_acks = [one.offer(record) for record in records]
        batch_acks = many.offer_many(records)
        assert batch_acks == single_acks
        assert (many.submitted, many.dropped, many.depth) == (
            one.submitted, one.dropped, one.depth,
        )
        assert [r.index for r in many.drain()] == [r.index for r in one.drain()]

    def test_offer_many_is_atomic_under_contention(self):
        import threading

        queue = IngestQueue(job_id="j", capacity=64)
        producers, batches, batch_size = 8, 30, 5
        barrier = threading.Barrier(producers)

        def produce(base):
            barrier.wait()
            for b in range(batches):
                acks = queue.offer_many(
                    [_record(base + b * batch_size + i, []) for i in range(batch_size)]
                )
                assert len(acks) == batch_size
                assert all(ack.accepted for ack in acks)

        threads = [
            threading.Thread(target=produce, args=(t * batches * batch_size,))
            for t in range(producers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = producers * batches * batch_size
        assert queue.submitted == total
        assert queue.depth <= queue.capacity
        assert queue.submitted - queue.dropped == queue.depth
        assert len(list(queue.drain())) == min(queue.capacity, total)


class TestSubmitMany:
    def test_parity_with_submit_loop(self):
        from repro.core.profiler.serialize import record_checksum

        one, many = FleetService(), FleetService()
        one.register("bert-mrpc", job_id="t")
        many.register("bert-mrpc", job_id="t")
        records = _stream_of_records(6)
        checksums = [record_checksum(record) for record in records]
        checksums[2] = 7  # one corrupted record mid-batch
        single_acks = [
            one.submit("t", record, checksum=checksum)
            for record, checksum in zip(records, checksums)
        ]
        batch_acks = many.submit_many("t", records, checksums=checksums)
        assert [ack.accepted for ack in batch_acks] == [
            ack.accepted for ack in single_acks
        ]
        assert not batch_acks[2].accepted
        # accepted acks are bit-identical; refused acks differ only in
        # the advisory depth (reported after the batch enqueued)
        assert [a for a in batch_acks if a.accepted] == [
            a for a in single_acks if a.accepted
        ]
        assert many.metrics.to_dict() == one.metrics.to_dict()
        one.pump()
        many.pump()
        assert many.job_snapshot("t") == one.job_snapshot("t")

    def test_checksum_alignment_enforced(self):
        service = FleetService()
        service.register("bert-mrpc", job_id="t")
        with pytest.raises(ServeError):
            service.submit_many("t", _stream_of_records(3), checksums=[None])

    def test_all_refused_batch_never_activates(self):
        service = FleetService()
        info = service.register("bert-mrpc", job_id="t")
        acks = service.submit_many("t", _stream_of_records(2), checksums=[1, 2])
        assert not any(ack.accepted for ack in acks)
        assert info.state is JobState.REGISTERED
        assert service.metrics.records_quarantined == 2


class TestQuarantine:
    def test_checksum_mismatch_is_quarantined(self):
        from repro.core.profiler.serialize import record_checksum

        service = FleetService()
        info = service.register("bert-mrpc")
        record = _record(0, [_step(0, _OPS_A)])
        ack = service.submit(info.job_id, record, checksum=record_checksum(record) + 1)
        assert not ack.accepted and ack.dropped == 0
        assert service.metrics.records_quarantined == 1
        assert service.queue_depth(info.job_id) == 0
        # A refused record never activates the job.
        assert info.state is JobState.REGISTERED
        entries = service.quarantined(info.job_id)
        assert len(entries) == 1
        assert "checksum mismatch" in entries[0].reason

    def test_structurally_invalid_record_is_quarantined(self):
        service = FleetService()
        info = service.register("bert-mrpc")
        inverted = ProfileRecord(index=0, window_start_us=10.0, window_end_us=1.0)
        ack = service.submit(info.job_id, inverted)
        assert not ack.accepted
        assert "inverted window" in service.quarantined()[0].reason
        # A sound record afterwards is accepted and activates the job.
        assert service.submit(info.job_id, _record(0, [_step(0, _OPS_A)])).accepted
        assert info.state is JobState.ACTIVE

    def test_quarantine_evidence_is_bounded(self):
        service = FleetService(FleetServiceOptions(quarantine_capacity=2))
        info = service.register("bert-mrpc")
        for index in range(5):
            service.submit(
                info.job_id,
                ProfileRecord(index=index, window_start_us=1.0, window_end_us=0.0),
            )
        # The count is exact; the retained evidence is a ring buffer.
        assert service.metrics.records_quarantined == 5
        kept = service.quarantined(info.job_id)
        assert [entry.record.index for entry in kept] == [3, 4]

    def test_pump_quarantines_what_the_assembler_rejects(self):
        service = FleetService()
        info = service.register("bert-mrpc")
        service.submit(info.job_id, _record(0, [_step(0, _OPS_A), _step(1, _OPS_A)]))
        service.pump()
        # Step 0 was released; a record revisiting it is rejected by the
        # assembler, quarantined, and the drain loop keeps running.
        service.submit(info.job_id, _record(1, [_step(0, _OPS_B)]))
        service.pump()
        assert service.metrics.records_quarantined == 1
        assert "revisits" in service.quarantined(info.job_id)[0].reason
        service.submit(info.job_id, _record(2, [_step(2, _OPS_A)]))
        assert service.pump() >= 1  # healthy ingestion continues

    def test_validate_record_passes_sound_records(self):
        from repro.core.profiler.serialize import record_checksum
        from repro.serve import validate_record

        record = _record(0, [_step(0, _OPS_A)])
        assert validate_record(record) is None
        assert validate_record(record, checksum=record_checksum(record)) is None


class TestStalling:
    def _service(self, deadline=2):
        return FleetService(FleetServiceOptions(heartbeat_deadline=deadline))

    def test_silent_job_stalls_after_the_deadline(self):
        service = self._service(deadline=2)
        info = service.register("bert-mrpc")
        service.submit(info.job_id, _record(0, [_step(0, _OPS_A)]))
        service.pump()
        assert info.state is JobState.ACTIVE
        service.pump()  # second silent global pump crosses the deadline
        assert info.state is JobState.STALLED
        assert service.metrics.jobs_stalled == 1
        snapshot = service.fleet_snapshot()
        assert snapshot.stalled_jobs == 1
        assert "1 stalled" in "\n".join(snapshot.format())

    def test_accepted_record_resumes_a_stalled_job(self):
        service = self._service(deadline=1)
        info = service.register("bert-mrpc")
        service.submit(info.job_id, _record(0, [_step(0, _OPS_A)]))
        service.pump()
        assert info.state is JobState.STALLED
        ack = service.submit(info.job_id, _record(1, [_step(1, _OPS_A)]))
        assert ack.accepted
        assert info.state is JobState.ACTIVE
        assert service.metrics.jobs_resumed == 1

    def test_job_scoped_pumps_do_not_advance_the_heartbeat(self):
        service = self._service(deadline=1)
        info = service.register("bert-mrpc")
        service.submit(info.job_id, _record(0, [_step(0, _OPS_A)]))
        for _ in range(5):
            service.pump(info.job_id)
        assert info.state is JobState.ACTIVE

    def test_stalled_job_can_still_complete(self):
        service = self._service(deadline=1)
        info = service.register("bert-mrpc")
        service.submit(info.job_id, _record(0, [_step(0, _OPS_A)]))
        service.pump()
        assert info.state is JobState.STALLED
        service.complete(info.job_id)
        assert info.state is JobState.COMPLETED

    def test_no_deadline_means_no_stalls(self):
        service = FleetService()
        info = service.register("bert-mrpc")
        service.submit(info.job_id, _record(0, [_step(0, _OPS_A)]))
        for _ in range(10):
            service.pump()
        assert info.state is JobState.ACTIVE


class TestPhaseSimilarity:
    """Live phase-mix distances via the analyzer's shared kernel."""

    def _alternating_analysis(self):
        """A -> B -> A: the online scan splits one behaviour into two phases."""
        analysis = LiveJobAnalysis()
        records = [
            _record(i, [_step(i, _OPS_A if i // 3 % 2 == 0 else _OPS_B)])
            for i in range(9)
        ]
        for record in records:
            analysis.ingest(record)
        analysis.finish()
        return analysis

    def test_phase_vectors_are_normalized_mixes(self):
        analysis = self._alternating_analysis()
        ids, vectors = analysis.phase_vectors()
        assert len(ids) == 3
        assert vectors.shape[0] == 3
        # Each row is a duration-share distribution over the vocabulary.
        assert all(abs(row.sum() - 1.0) < 1e-9 for row in vectors)

    def test_identical_mixes_have_zero_distance(self):
        analysis = self._alternating_analysis()
        ids, distances = analysis.phase_distance_matrix()
        # Phases 0 and 2 are both _OPS_A; phase 1 is _OPS_B (disjoint).
        assert distances[0, 2] < 1e-9
        # Disjoint uniform mixes over 3 ops sit at sqrt(2/3) ~ 0.816.
        assert distances[0, 1] > 0.5

    def test_similar_pairs_flags_the_split_phase(self):
        analysis = self._alternating_analysis()
        pairs = analysis.similar_phase_pairs(threshold=0.25)
        assert [(a, b) for a, b, _ in pairs] == [(0, 2)]
        assert pairs[0][2] < 1e-9

    def test_negative_threshold_rejected(self):
        with pytest.raises(ServeError):
            self._alternating_analysis().similar_phase_pairs(threshold=-0.1)

    def test_service_query_surface(self):
        service = FleetService()
        info = service.register("bert-mrpc")
        for i in range(9):
            service.submit(
                info.job_id,
                _record(i, [_step(i, _OPS_A if i // 3 % 2 == 0 else _OPS_B)]),
            )
        service.pump()
        service.complete(info.job_id)
        pairs = service.similar_phases(info.job_id)
        assert [(a, b) for a, b, _ in pairs] == [(0, 2)]
        # A tighter-than-zero threshold still finds the exact duplicate.
        assert service.similar_phases(info.job_id, threshold=0.0) == pairs
