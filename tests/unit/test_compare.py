"""Run comparison tooling and representative steps."""

import pytest

from repro.compare import OperatorDelta, compare_runs
from repro.core.analyzer import TPUPointAnalyzer
from repro.core.profiler import ProfilerOptions, TPUPointProfiler
from repro.errors import AnalyzerError
from repro.host.pipeline import PipelineConfig
from repro.runtime.events import DeviceKind


def _profiled(tiny_model, tiny_dataset, generation="v2", config=None):
    estimator = tiny_model.build_estimator(
        tiny_dataset, generation=generation, pipeline_config=config
    )
    profiler = TPUPointProfiler(estimator, ProfilerOptions(request_interval_ms=300.0))
    profiler.start(analyzer=False)
    summary = estimator.train()
    return summary, profiler.stop()


class TestOperatorDelta:
    def test_ratio_and_delta(self):
        delta = OperatorDelta("x", DeviceKind.TPU, 10.0, 25.0)
        assert delta.ratio == pytest.approx(2.5)
        assert delta.delta_us == pytest.approx(15.0)

    def test_ratio_from_zero(self):
        assert OperatorDelta("x", DeviceKind.TPU, 0.0, 5.0).ratio == float("inf")
        assert OperatorDelta("x", DeviceKind.TPU, 0.0, 0.0).ratio == 1.0


class TestCompareRuns:
    def test_v2_vs_v3(self, tiny_model, tiny_dataset):
        summary_v2, records_v2 = _profiled(tiny_model, tiny_dataset, "v2")
        summary_v3, records_v3 = _profiled(tiny_model, tiny_dataset, "v3")
        comparison = compare_runs(
            "v2", summary_v2, records_v2, "v3", summary_v3, records_v3
        )
        assert comparison.speedup > 1.0  # v3 is faster
        assert comparison.idle_delta > 0.0  # and idles more (Observation 5)
        assert comparison.operator_deltas

    def test_same_run_compares_neutral(self, tiny_model, tiny_dataset):
        summary, records = _profiled(tiny_model, tiny_dataset)
        comparison = compare_runs("a", summary, records, "b", summary, records)
        assert comparison.speedup == pytest.approx(1.0)
        assert comparison.idle_delta == pytest.approx(0.0)
        assert all(d.ratio == pytest.approx(1.0) for d in comparison.operator_deltas)

    def test_biggest_movers_sorted_and_filtered(self, tiny_model, tiny_dataset):
        summary_a, records_a = _profiled(tiny_model, tiny_dataset)
        summary_b, records_b = _profiled(
            tiny_model, tiny_dataset, config=PipelineConfig(num_parallel_calls=1)
        )
        comparison = compare_runs("a", summary_a, records_a, "b", summary_b, records_b)
        movers = comparison.biggest_movers(3)
        assert len(movers) == 3
        deltas = [abs(m.delta_us) for m in movers]
        assert deltas == sorted(deltas, reverse=True)
        host_only = comparison.biggest_movers(5, device=DeviceKind.HOST)
        assert all(m.device is DeviceKind.HOST for m in host_only)

    def test_format_is_readable(self, tiny_model, tiny_dataset):
        summary, records = _profiled(tiny_model, tiny_dataset)
        text = compare_runs("a", summary, records, "b", summary, records).format()
        assert "speedup" in text
        assert "biggest operator movers" in text

    def test_requires_records(self, tiny_model, tiny_dataset):
        summary, records = _profiled(tiny_model, tiny_dataset)
        with pytest.raises(AnalyzerError):
            compare_runs("a", summary, [], "b", summary, records)


class TestRepresentativeStep:
    def test_representative_is_member_and_typical(self, tiny_run):
        _, _, records = tiny_run
        analyzer = TPUPointAnalyzer(records)
        result = analyzer.ols_phases()
        body = max(result.phases, key=lambda p: p.num_steps)
        representative = body.representative_step()
        assert representative in body.steps
        # The representative looks like a train step, not an outlier:
        # its duration sits within the phase's range.
        durations = [s.elapsed_us for s in body.steps]
        assert min(durations) <= representative.elapsed_us <= max(durations)

    def test_single_step_phase(self, tiny_run):
        _, _, records = tiny_run
        analyzer = TPUPointAnalyzer(records)
        result = analyzer.ols_phases()
        singleton = min(result.phases, key=lambda p: p.num_steps)
        assert singleton.representative_step() is singleton.steps[0]
