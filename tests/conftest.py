"""Shared fixtures.

The expensive artifacts (a profiled workload run and its analyzer) are
session-scoped: runs are deterministic, so sharing them across tests is
safe and keeps the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analyzer import TPUPointAnalyzer
from repro.core.api import TPUPoint
from repro.core.profiler import ProfilerOptions, TPUPointProfiler
from repro.datasets.base import DatasetKind, DatasetSpec
from repro.graph import ops as opdefs
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.shapes import TensorShape
from repro.models.base import WorkloadDefaults, WorkloadModel
from repro.runtime.session import SessionPlan
from repro.workloads.runner import build_estimator
from repro.workloads.spec import WorkloadSpec


class TinyModel(WorkloadModel):
    """A minimal workload: one matmul layer plus infeed/outfeed.

    Used wherever a test needs a real estimator without the cost of a
    full Table I model graph.
    """

    name = "Tiny"
    workload_type = "Test"

    def build_train_graph(self, batch_size: int, dataset: DatasetSpec) -> Graph:
        b = GraphBuilder(f"tiny-train-b{batch_size}")
        x = b.infeed(TensorShape((batch_size, 64)))
        w = b.const(TensorShape((64, 64)))
        h = b.matmul(x, w, batch_size, 64, 64)
        h = b.elementwise(opdefs.RELU, h)
        # A backward-pass matmul so training costs more than eval.
        w_grad = b.const(TensorShape((64, 64)))
        grad = b.matmul(h, w_grad, batch_size, 64, 64)
        out = b.elementwise(opdefs.SUM, grad)
        b.outfeed(out)
        return b.build()

    def build_eval_graph(self, batch_size: int, dataset: DatasetSpec) -> Graph:
        b = GraphBuilder(f"tiny-eval-b{batch_size}")
        x = b.infeed(TensorShape((batch_size, 64)))
        w = b.const(TensorShape((64, 64)))
        h = b.matmul(x, w, batch_size, 64, 64)
        b.outfeed(h)
        return b.build()

    def defaults(self, dataset: DatasetSpec) -> WorkloadDefaults:
        return WorkloadDefaults(
            batch_size=32,
            train_steps=40,
            paper_train_steps=40,
            iterations_per_loop=10,
            checkpoint_every=15,
            checkpoint_bytes=10e6,
        )


TINY_DATASET = DatasetSpec(
    name="TinySet",
    kind=DatasetKind.TEXT,
    total_bytes=10 * 1024 * 1024,
    num_examples=10_000,
    example_shape=(64,),
    device_bytes_per_example=64 * 4,
    decode_cpu_us=5.0,
    preprocess_cpu_us=5.0,
)


@pytest.fixture
def tiny_model() -> TinyModel:
    return TinyModel()


@pytest.fixture
def tiny_dataset() -> DatasetSpec:
    return TINY_DATASET


@pytest.fixture
def tiny_estimator(tiny_model, tiny_dataset):
    """A fresh, unexecuted estimator over the tiny workload."""
    return tiny_model.build_estimator(tiny_dataset)


@pytest.fixture
def tiny_run(tiny_model, tiny_dataset):
    """A completed tiny run with profiler records attached."""
    estimator = tiny_model.build_estimator(tiny_dataset)
    profiler = TPUPointProfiler(estimator, ProfilerOptions(request_interval_ms=200.0))
    profiler.start(analyzer=True)
    summary = estimator.train()
    records = profiler.stop()
    return estimator, summary, records


@pytest.fixture(scope="session")
def bert_mrpc_run():
    """A completed bert-mrpc run (shared; treat as read-only)."""
    estimator = build_estimator(WorkloadSpec("bert-mrpc"))
    tpupoint = TPUPoint(estimator)
    tpupoint.Start(analyzer=True)
    summary = estimator.train()
    tpupoint.Stop()
    return estimator, summary, tpupoint.records


@pytest.fixture(scope="session")
def bert_mrpc_analyzer(bert_mrpc_run) -> TPUPointAnalyzer:
    """An analyzer over the shared bert-mrpc records (read-only)."""
    _, _, records = bert_mrpc_run
    return TPUPointAnalyzer(records)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
