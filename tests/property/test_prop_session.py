"""Property tests: session and pipeline invariants over generated plans."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.host.pipeline import PipelineConfig
from repro.runtime.events import StepKind
from repro.runtime.session import SessionPlan
from tests.conftest import TINY_DATASET, TinyModel

plans = st.builds(
    SessionPlan,
    train_steps=st.integers(1, 25),
    batch_size=st.sampled_from([8, 32, 128]),
    iterations_per_loop=st.integers(1, 10),
    eval_every=st.sampled_from([0, 5, 9]),
    eval_steps=st.integers(1, 3),
    checkpoint_every=st.sampled_from([0, 4, 11]),
    checkpoint_bytes=st.just(5e6),
)

configs = st.builds(
    PipelineConfig,
    num_parallel_reads=st.integers(1, 16),
    num_parallel_calls=st.integers(1, 32),
    prefetch_depth=st.integers(0, 6),
    shuffle_buffer=st.sampled_from([0, 1024]),
    infeed_threads=st.integers(1, 8),
    jitter=st.sampled_from([0.0, 0.1]),
)


@settings(max_examples=15, deadline=None)
@given(plan=plans, config=configs, seed=st.integers(0, 2**31 - 1))
def test_any_plan_runs_to_completion_with_invariants(plan, config, seed):
    estimator = TinyModel().build_estimator(
        TINY_DATASET, plan=plan, pipeline_config=config,
        rng=np.random.default_rng(seed),
    )
    summary = estimator.train()
    session = estimator.session
    assert session.finished
    assert session.global_step == plan.train_steps

    steps = session.log.steps
    # Step indices strictly increase; intervals never overlap backwards.
    assert all(b.step > a.step for a, b in zip(steps, steps[1:]))
    assert all(b.start_us >= a.start_us - 1e-6 for a, b in zip(steps, steps[1:]))
    # Bookends.
    assert steps[0].kind is StepKind.INIT
    assert steps[-1].kind is StepKind.SHUTDOWN
    assert sum(1 for m in steps if m.kind is StepKind.TRAIN) == plan.train_steps
    # Accounting.
    assert summary.tpu_busy_us <= summary.wall_us + 1e-6
    assert 0.0 <= summary.tpu_idle_fraction <= 1.0
    assert 0.0 <= summary.mxu_utilization <= 1.0
    # A final checkpoint always exists and is tagged with the last step.
    assert estimator.checkpoint_store.latest().step == plan.train_steps


@settings(max_examples=15, deadline=None)
@given(
    threads=st.integers(1, 16),
    prefetch=st.integers(0, 4),
    seed=st.integers(0, 1000),
)
def test_more_parallelism_never_slows_the_run(threads, prefetch, seed):
    """Wall time is monotone non-increasing in pipeline parallelism."""
    from dataclasses import replace

    heavy = replace(TINY_DATASET, decode_cpu_us=150.0, preprocess_cpu_us=100.0)
    plan = SessionPlan(train_steps=12, batch_size=64, checkpoint_every=0)

    def wall(num_calls, depth):
        estimator = TinyModel().build_estimator(
            heavy,
            plan=plan,
            pipeline_config=PipelineConfig(
                num_parallel_calls=num_calls, prefetch_depth=depth, jitter=0.0
            ),
            rng=np.random.default_rng(seed),
        )
        return estimator.train().wall_us

    base = wall(threads, prefetch)
    more_threads = wall(min(threads * 2, 64), prefetch)
    more_prefetch = wall(threads, prefetch + 1)
    assert more_threads <= base * 1.0001
    assert more_prefetch <= base * 1.0001


@settings(max_examples=20, deadline=None)
@given(plan=plans, seed=st.integers(0, 2**31 - 1))
def test_runs_are_deterministic_in_seed(plan, seed):
    def run():
        estimator = TinyModel().build_estimator(
            TINY_DATASET, plan=plan, rng=np.random.default_rng(seed)
        )
        summary = estimator.train()
        return summary.wall_us, summary.events_recorded

    assert run() == run()
