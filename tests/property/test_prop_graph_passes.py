"""Property tests: compiler passes over randomly generated chain graphs."""

from hypothesis import given, settings, strategies as st

from repro.graph import ops as opdefs
from repro.graph.builder import GraphBuilder
from repro.graph.constant_folding import fold_constants
from repro.graph.fusion import fuse
from repro.graph.shapes import TensorShape

_FUSABLE = (opdefs.RELU, opdefs.MUL, opdefs.TANH, opdefs.SOFTMAX)
_NON_FUSABLE = (opdefs.RESHAPE_KIND,) if hasattr(opdefs, "RESHAPE_KIND") else ()


def _chain_graph(choices):
    """A linear graph: infeed -> random (fusable / layout) ops -> outfeed."""
    b = GraphBuilder()
    x = b.infeed(TensorShape((8, 64)))
    for choice in choices:
        if choice == len(_FUSABLE):  # a layout op breaks fusion chains
            x = b.reshape(x, TensorShape((64, 8)) if x.shape.dims == (8, 64) else TensorShape((8, 64)))
        else:
            x = b.elementwise(_FUSABLE[choice], x)
    b.outfeed(x)
    return b.build()


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, len(_FUSABLE)), min_size=0, max_size=20))
def test_fusion_preserves_total_flops_and_validity(choices):
    graph = _chain_graph(choices)
    before = graph.total_flops()
    fuse(graph)
    graph.validate()
    assert graph.total_flops() == before
    # Exactly one infeed and one outfeed survive.
    assert graph.count_kind("InfeedDequeueTuple") == 1
    assert graph.count_kind("OutfeedEnqueueTuple") == 1


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, len(_FUSABLE)), min_size=0, max_size=20))
def test_fusion_never_leaves_adjacent_fusable_chain(choices):
    """After the pass, no remaining fusable op has a single fusable consumer."""
    graph = _chain_graph(choices)
    fuse(graph)
    for op in graph:
        if not op.kind.fusable:
            continue
        consumers = graph.consumers(op.name)
        if len(consumers) == 1 and consumers[0].kind.fusable:
            raise AssertionError(f"unfused chain remains at {op.name}")


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, len(_FUSABLE)), min_size=0, max_size=20))
def test_folding_is_idempotent(choices):
    graph = _chain_graph(choices)
    fold_constants(graph)
    second = fold_constants(graph)
    assert second.folded == 0


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 12))
def test_folding_collapses_pure_constant_chains(depth):
    b = GraphBuilder()
    x = b.const(TensorShape((4, 4)))
    for _ in range(depth):
        x = b.elementwise(opdefs.MUL, x)
    graph = b.build()
    report = fold_constants(graph)
    assert report.folded == depth
    assert all(op.kind is opdefs.CONST for op in graph)
