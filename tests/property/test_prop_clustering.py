"""Properties of the from-scratch clustering algorithms."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.analyzer.dbscan import NOISE, dbscan
from repro.core.analyzer.elbow import find_elbow
from repro.core.analyzer.kmeans import kmeans
from repro.core.analyzer.pca import PCA

matrices = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(4, 24), st.integers(2, 6)),
    elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
)


@settings(max_examples=30, deadline=None)
@given(matrices, st.integers(1, 4))
def test_kmeans_labels_valid_and_inertia_nonnegative(matrix, k):
    result = kmeans(matrix, k, np.random.default_rng(0), n_init=1)
    assert result.labels.shape == (matrix.shape[0],)
    assert set(result.labels.tolist()) <= set(range(k))
    assert result.inertia >= 0.0
    assert result.centers.shape == (k, matrix.shape[1])


@settings(max_examples=20, deadline=None)
@given(matrices)
def test_kmeans_inertia_weakly_decreases_with_k(matrix):
    rng = np.random.default_rng(0)
    inertias = [kmeans(matrix, k, rng, n_init=3).inertia for k in (1, 2, 3)]
    # Best-of-restarts keeps the curve monotone up to numerical slack.
    assert inertias[0] >= inertias[1] - 1e-6
    assert inertias[1] >= inertias[2] - 1e-6


@settings(max_examples=30, deadline=None)
@given(matrices, st.floats(0.5, 50.0), st.integers(1, 8))
def test_dbscan_labels_partition_points(matrix, eps, min_samples):
    result = dbscan(matrix, eps, min_samples)
    assert result.labels.shape == (matrix.shape[0],)
    labels = set(result.labels.tolist())
    clusters = labels - {NOISE}
    # Cluster ids are consecutive from 0.
    assert clusters == set(range(len(clusters)))
    assert 0.0 <= result.noise_ratio <= 1.0


@settings(max_examples=30, deadline=None)
@given(matrices, st.floats(0.5, 50.0))
def test_dbscan_min_samples_one_has_no_noise(matrix, eps):
    # Every point is a core point of its own neighborhood.
    result = dbscan(matrix, eps, min_samples=1)
    assert result.noise_ratio == 0.0


@settings(max_examples=30, deadline=None)
@given(matrices)
def test_pca_output_shape_and_determinism(matrix):
    pca = PCA(max_components=3)
    reduced = pca.fit_transform(matrix)
    assert reduced.shape[0] == matrix.shape[0]
    assert reduced.shape[1] <= 3
    again = PCA(max_components=3).fit_transform(matrix)
    assert np.allclose(reduced, again)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=20,
    )
)
def test_elbow_returns_valid_index(ys):
    xs = [float(i) for i in range(len(ys))]
    index = find_elbow(xs, ys)
    assert 0 <= index < len(ys)
