"""Property tests: SDC injection invariants.

Two contracts keep the fault layer trustworthy:

1. An *inert* plan — empty, zero-rate, aimed at another chip, or
   scheduled past the end of the run — must leave the simulated run
   bit-identical to an unfaulted baseline. Digest bookkeeping may run,
   but timings, utilization, and phase structure cannot move.
2. Injection is a pure function of (plan, seed, chip): repeat runs see
   the same corrupted steps, the same effects, the same digests.
"""

from hypothesis import given, settings, strategies as st

from repro.core.analyzer import TPUPointAnalyzer
from repro.core.profiler import ProfilerOptions, TPUPointProfiler
from repro.faults import FaultPlan, SdcSpec
from repro.tpu.sdc import SdcFaultModel, SdcInjector, run_scrub
from tests.conftest import TINY_DATASET, TinyModel

MODELS = st.sampled_from(list(SdcFaultModel))

#: Specs that can never fire during a 40-step tiny run.
inert_specs = st.one_of(
    # Aimed at a chip the run does not place work on.
    st.builds(
        SdcSpec,
        model=MODELS,
        chips=st.just(("chip-elsewhere",)),
        every_nth=st.integers(1, 4),
    ),
    # Window opens after the run ends.
    st.builds(
        SdcSpec,
        model=MODELS,
        every_nth=st.integers(1, 4),
        first_step=st.integers(1_000, 2_000),
    ),
)

#: Specs that do fire — used for determinism properties only.
live_specs = st.builds(
    SdcSpec,
    model=MODELS,
    probability=st.floats(0.05, 1.0),
    severity=st.floats(0.05, 0.9),
    first_step=st.integers(1, 20),
)


def _profiled_run(plan=None):
    estimator = TinyModel().build_estimator(TINY_DATASET)
    if plan is not None:
        estimator.attach_sdc(plan.sdc_injector("chip-0"))
    profiler = TPUPointProfiler(estimator, ProfilerOptions(request_interval_ms=200.0))
    profiler.start(analyzer=True)
    summary = estimator.train()
    records = profiler.stop()
    return estimator, summary, records


def _fingerprint(estimator, summary, records):
    device = estimator.session.device
    return (
        [
            (m.step, m.start_us, m.end_us, m.tpu_idle_us, m.mxu_flops)
            for m in estimator.session.log.steps
        ],
        device.total_elapsed_us,
        device.mxu_utilization(),
        summary.wall_us,
        summary.mxu_utilization,
        list(TPUPointAnalyzer(records).ols_phases().labels),
    )


@settings(max_examples=8, deadline=None)
@given(specs=st.lists(inert_specs, max_size=3), seed=st.integers(0, 2**31 - 1))
def test_inert_plan_is_bit_identical_to_baseline(specs, seed):
    baseline = _fingerprint(*_profiled_run())
    plan = FaultPlan(seed=seed, sdc=tuple(specs))
    treated = _fingerprint(*_profiled_run(plan=plan))
    assert treated == baseline


@settings(max_examples=8, deadline=None)
@given(specs=st.lists(live_specs, min_size=1, max_size=3), seed=st.integers(0, 2**31 - 1))
def test_same_plan_and_seed_replays_identically(specs, seed):
    plan = FaultPlan(seed=seed, sdc=tuple(specs))

    def run():
        estimator, summary, _ = _profiled_run(plan=plan)
        injector = estimator.session.device.sdc
        return (
            injector.log(),
            dict(injector.injected),
            injector.events_total,
            estimator.session.device.total_elapsed_us,
            summary.mxu_utilization,
        )

    assert run() == run()


@settings(max_examples=10, deadline=None)
@given(specs=st.lists(live_specs, min_size=1, max_size=2), seed=st.integers(0, 2**31 - 1))
def test_injector_streams_are_independent_of_other_chips(specs, seed):
    """chip-0's decisions cannot depend on which other chips exist."""
    plan_small = FaultPlan(seed=seed, sdc=tuple(specs))
    widened = tuple(specs) + (
        SdcSpec(model=SdcFaultModel.BIT_FLIP, chips=("chip-7",), every_nth=1),
    )
    plan_large = FaultPlan(seed=seed, sdc=widened)

    def steps_hit(plan):
        injector = plan.sdc_injector("chip-0")
        hits = []
        for step in range(1, 41):
            hits.append(
                tuple(spec.model.value for spec, _, _ in injector.begin_step())
            )
        return hits

    assert steps_hit(plan_small) == steps_hit(plan_large)


@settings(max_examples=6, deadline=None)
@given(specs=st.lists(live_specs, min_size=1, max_size=2), seed=st.integers(0, 2**31 - 1))
def test_scrub_replays_identically(specs, seed):
    plan = FaultPlan(seed=seed, sdc=tuple(specs))
    first = run_scrub(3, plan=plan)
    second = run_scrub(3, plan=plan)
    assert first.to_dict() == second.to_dict()
    # The golden pass is plan-independent.
    assert first.golden_elapsed_us == run_scrub(1).golden_elapsed_us
