"""Sharding is routing, not semantics: results never depend on N.

Pins the tentpole invariants of the sharded fleet tier on arbitrary
tenant populations and record streams:

* the consistent-hash ring is a pure deterministic function of
  (tenant id, seed, shard count), and growing it strands as few
  tenants as consistent hashing promises;
* scatter-gather queries through a :class:`ShardedFleet` are
  bit-identical to one :class:`FleetService` at 1, 2, and 8 shards —
  shard topology can never leak into an answer;
* per-tenant goodput buckets always sum to the tenant's total charged
  wall time (every charge lands in exactly one bucket).
"""

from hypothesis import given, settings, strategies as st

from repro.core.profiler.record import ProfileRecord, StepStats
from repro.core.profiler.serialize import record_checksum
from repro.runtime.events import DeviceKind
from repro.serve import FleetService, HashRing, ShardedFleet, ShardedFleetOptions

_OP_SETS = (
    ("matmul", "fusion", "relu"),
    ("conv", "pool", "softmax"),
)

tenant_ids = st.lists(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
        min_size=1,
        max_size=8,
    ),
    min_size=1,
    max_size=6,
    unique=True,
)


def _record(index, mix, idle_us):
    record = ProfileRecord(index=index, window_start_us=0.0, window_end_us=1.0)
    step = StepStats(step=index)
    for name in _OP_SETS[mix]:
        step.observe(name, DeviceKind.TPU, 10.0)
    step.start_us = index * 100.0
    step.end_us = (index + 1) * 100.0
    step.tpu_idle_us = idle_us
    step.mxu_flops = 1e6
    record.steps[index] = step
    return record


#: Per-tenant streams: each element is (behaviour mix, idle microseconds).
streams = st.lists(
    st.tuples(st.integers(0, 1), st.floats(0.0, 100.0)),
    min_size=1,
    max_size=6,
)


@settings(max_examples=25, deadline=None)
@given(tenant_ids, st.integers(1, 8), st.integers(0, 2**32 - 1))
def test_routing_is_deterministic_and_in_range(tenants, shards, seed):
    one = HashRing(shards, seed=seed)
    two = HashRing(shards, seed=seed)
    for tenant in tenants:
        route = one.route(tenant)
        assert route == two.route(tenant)
        assert 0 <= route < shards


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 7), st.integers(0, 2**32 - 1))
def test_resize_strands_only_arc_claimed_tenants(shards, seed):
    ring = HashRing(shards, seed=seed)
    grown = ring.resized(shards + 1)
    for i in range(300):
        before, after = ring.route(f"t{i}"), grown.route(f"t{i}")
        # a tenant either stays put or moves to the newly added shard
        assert after == before or after == shards


@settings(max_examples=10, deadline=None)
@given(st.dictionaries(st.sampled_from("abcdef"), streams, min_size=1, max_size=4))
def test_scatter_gather_identical_at_any_shard_count(population):
    def drive(service):
        for tenant in population:
            service.register("bert-mrpc", job_id=tenant)
        for tenant, stream in population.items():
            for index, (mix, idle) in enumerate(stream):
                record = _record(index, mix, idle)
                service.submit(tenant, record, checksum=record_checksum(record))
        service.pump()
        for tenant in population:
            service.complete(tenant)

    single = FleetService()
    drive(single)
    reference = single.fleet_snapshot()
    for shards in (1, 2, 8):
        with ShardedFleet(ShardedFleetOptions(shards=shards)) as fleet:
            drive(fleet)
            assert fleet.fleet_snapshot() == reference
            for tenant in population:
                assert fleet.job_snapshot(tenant) == single.job_snapshot(tenant)
                assert fleet.similar_phases(tenant) == single.similar_phases(tenant)
            report = fleet.goodput_report()
            for row in report.tenants:
                assert abs(row.total_us - (row.goodput_us + row.badput_us)) < 1e-6
