"""Property tests: serialization round trips over generated records."""

from hypothesis import given, settings, strategies as st

from repro.core.profiler.record import OperatorStats, ProfileRecord, StepStats
from repro.core.profiler.serialize import record_from_dict, record_to_dict
from repro.runtime.events import DeviceKind, StepKind

op_names = st.sampled_from(
    ["MatMul", "fusion", "Reshape", "Send", "OutfeedDequeueTuple", "SaveV2"]
)
devices = st.sampled_from([DeviceKind.HOST, DeviceKind.TPU])
kinds = st.sampled_from(list(StepKind) + [None])


@st.composite
def step_stats(draw, step_number):
    step = StepStats(step=step_number)
    operators = draw(
        st.lists(st.tuples(op_names, devices), min_size=0, max_size=6, unique=True)
    )
    for name, device in operators:
        stats = OperatorStats(
            name=name,
            device=device,
            count=draw(st.integers(1, 1000)),
            total_duration_us=draw(st.floats(0.0, 1e9, allow_nan=False)),
        )
        step.operators[(name, device.value)] = stats
    kind = draw(kinds)
    if kind is not None:
        step.kind = kind
        step.start_us = draw(st.floats(0.0, 1e9, allow_nan=False))
        step.end_us = step.start_us + draw(st.floats(0.0, 1e6, allow_nan=False))
        step.tpu_idle_us = draw(st.floats(0.0, 1e6, allow_nan=False))
        step.mxu_flops = draw(st.floats(0.0, 1e15, allow_nan=False))
    return step


@st.composite
def profile_records(draw):
    record = ProfileRecord(
        index=draw(st.integers(0, 10_000)),
        window_start_us=draw(st.floats(0.0, 1e9, allow_nan=False)),
        window_end_us=draw(st.floats(0.0, 1e9, allow_nan=False)),
        truncated=draw(st.booleans()),
        final=draw(st.booleans()),
    )
    step_numbers = draw(st.lists(st.integers(0, 500), max_size=8, unique=True))
    for number in step_numbers:
        record.steps[number] = draw(step_stats(number))
    return record


@settings(max_examples=60, deadline=None)
@given(profile_records())
def test_round_trip_identity(record):
    rebuilt = record_from_dict(record_to_dict(record))
    assert rebuilt.index == record.index
    assert rebuilt.window_start_us == record.window_start_us
    assert rebuilt.window_end_us == record.window_end_us
    assert rebuilt.truncated == record.truncated
    assert rebuilt.final == record.final
    assert set(rebuilt.steps) == set(record.steps)
    for number, step in record.steps.items():
        other = rebuilt.steps[number]
        assert other.kind == step.kind
        assert other.start_us == step.start_us
        assert other.end_us == step.end_us
        assert set(other.operators) == set(step.operators)
        for key, stats in step.operators.items():
            rebuilt_stats = other.operators[key]
            assert rebuilt_stats.count == stats.count
            assert rebuilt_stats.total_duration_us == stats.total_duration_us
            assert rebuilt_stats.device is stats.device


@settings(max_examples=40, deadline=None)
@given(profile_records())
def test_serialized_form_is_pure_json(record):
    import json

    payload = record_to_dict(record)
    assert json.loads(json.dumps(payload)) == payload
