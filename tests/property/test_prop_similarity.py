"""Properties of Equation 1 (StepSimilarity) and OLS labeling."""

from hypothesis import given, strategies as st

from repro.core.analyzer.ols import OnlineLinearScan, step_similarity
from repro.core.profiler.record import StepStats
from repro.runtime.events import DeviceKind

event_sets = st.frozensets(st.integers(min_value=0, max_value=30), max_size=12)


@given(event_sets, event_sets)
def test_similarity_bounded(a, b):
    assert 0.0 <= step_similarity(a, b) <= 1.0


@given(event_sets, event_sets)
def test_similarity_symmetric(a, b):
    assert step_similarity(a, b) == step_similarity(b, a)


@given(event_sets)
def test_similarity_reflexive(a):
    assert step_similarity(a, a) == 1.0


@given(event_sets, event_sets)
def test_subset_similarity_is_one(a, b):
    union = a | b
    assert step_similarity(a, union) == 1.0 or len(a) == 0 != len(union)


@given(event_sets, event_sets)
def test_disjoint_nonempty_sets_similarity_zero(a, b):
    b_shifted = frozenset(x + 1000 for x in b)
    if a and b_shifted:
        assert step_similarity(a, b_shifted) == 0.0


def _steps_from_sets(sets):
    steps = []
    for i, names in enumerate(sets):
        step = StepStats(step=i)
        for name in names:
            step.observe(str(name), DeviceKind.TPU, 1.0)
        steps.append(step)
    return steps


@given(st.lists(event_sets.filter(lambda s: len(s) > 0), min_size=1, max_size=25),
       st.floats(min_value=0.0, max_value=1.0))
def test_ols_labels_contiguous_and_bounded(sets, threshold):
    scanner = OnlineLinearScan(threshold=threshold)
    labels = [scanner.observe(step) for step in _steps_from_sets(sets)]
    assert labels[0] == 0
    assert all(b - a in (0, 1) for a, b in zip(labels, labels[1:]))
    assert scanner.num_phases == labels[-1] + 1


@given(st.lists(event_sets.filter(lambda s: len(s) > 0), min_size=2, max_size=20))
def test_ols_phase_count_monotone_in_threshold(sets):
    steps = _steps_from_sets(sets)
    counts = []
    for threshold in (0.0, 0.25, 0.5, 0.75, 1.0):
        scanner = OnlineLinearScan(threshold=threshold)
        for step in steps:
            scanner.observe(step)
        counts.append(scanner.num_phases)
    assert all(a <= b for a, b in zip(counts, counts[1:]))
