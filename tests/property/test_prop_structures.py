"""Properties of core data structures: queues, shapes, graphs, coverage."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analyzer.coverage import coverage
from repro.core.analyzer.phases import build_phases
from repro.core.profiler.record import StepStats
from repro.graph import ops as opdefs
from repro.graph.graph import Graph
from repro.graph.ops import Operation
from repro.graph.shapes import TensorShape, matmul_flops
from repro.runtime.events import DeviceKind, StepKind, StepMetadata
from repro.storage.objects import shard_dataset
from repro.tpu.mxu import MatmulShape, MxuModel
from repro.tpu.queues import TransferQueue
from repro.tpu.specs import TPU_V2


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30))
def test_queue_fifo_and_nonnegative_stall(deltas):
    queue = TransferQueue(capacity=len(deltas))
    ready = 0.0
    for i, delta in enumerate(deltas):
        ready += delta
        queue.push(ready, float(i))
    ask = 0.0
    previous_bytes = -1.0
    while len(queue):
        obtained, item = queue.pop(ask)
        assert obtained >= ask  # time never runs backwards
        assert item.num_bytes == previous_bytes + 1.0  # FIFO
        previous_bytes = item.num_bytes
        ask = obtained
    assert queue.total_stall_us >= 0.0


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 512), st.integers(1, 512), st.integers(1, 512))
def test_mxu_efficiency_bounded_and_time_positive(m, k, n):
    mxu = MxuModel(TPU_V2)
    shape = MatmulShape(m, k, n)
    eff = mxu.shape_efficiency(shape)
    assert 0.01 <= eff <= 1.0
    assert mxu.matmul_time_us(shape) > 0.0


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 64), st.integers(1, 64), st.integers(1, 64), st.integers(1, 8))
def test_matmul_flops_formula(m, k, n, batch):
    assert matmul_flops(m, k, n, batch) == 2.0 * m * k * n * batch


@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=1.0, max_value=1e12),
    st.integers(0, 10_000),
    st.integers(1, 64),
)
def test_sharding_conserves_totals(total_bytes, examples, shards):
    pieces = shard_dataset("d", total_bytes, examples, shards)
    assert sum(p.num_examples for p in pieces) == examples
    assert abs(sum(p.num_bytes for p in pieces) - total_bytes) < 1e-6 * max(total_bytes, 1)
    assert len({p.name for p in pieces}) == len(pieces)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 4), min_size=2, max_size=40))
def test_random_chain_graph_topological_order(choices):
    graph = Graph()
    graph.add(Operation("n0", opdefs.CONST, shape=TensorShape((1,))))
    for i, back in enumerate(choices, start=1):
        # Each node reads a random earlier node: always a DAG.
        parent = f"n{max(0, i - 1 - back)}"
        graph.add(Operation(f"n{i}", opdefs.IDENTITY, inputs=(parent,)))
    order = graph.topological_order()
    positions = {op.name: i for i, op in enumerate(order)}
    for op in graph:
        for parent in op.inputs:
            assert positions[parent] < positions[op.name]


def _steps_with_durations(durations):
    steps = []
    for i, duration in enumerate(durations):
        step = StepStats(step=i)
        step.observe("op", DeviceKind.TPU, 1.0)
        step.attach_metadata(
            StepMetadata(i, StepKind.TRAIN, 0.0, float(duration), 0.0, 0.0)
        )
        steps.append(step)
    return steps


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=30),
    st.data(),
)
def test_coverage_invariants(durations, data):
    steps = _steps_with_durations(durations)
    labels = data.draw(
        st.lists(st.integers(0, 4), min_size=len(steps), max_size=len(steps))
    )
    phases = build_phases(steps, np.asarray(labels))
    report = coverage(phases)
    fractions = report.fractions
    # Descending, in [0,1], summing to 1, and top(n) monotone in n.
    assert all(a >= b for a, b in zip(fractions, fractions[1:]))
    assert all(0.0 <= f <= 1.0 for f in fractions)
    assert sum(fractions) == pytest.approx(1.0)
    tops = [report.top(n) for n in range(1, len(fractions) + 1)]
    assert all(a <= b + 1e-12 for a, b in zip(tops, tops[1:]))
