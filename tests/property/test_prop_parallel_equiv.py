"""The perf paths are pure optimizations: identical results, less work.

Pins the tentpole invariant of the parallel analyzer engine — the
blocked distance kernel, the shared DBSCAN neighbor graph, the memo
cache, and the worker-pool fan-out must all be *byte-identical* to the
serial reference on arbitrary step matrices, for every clustering
method. Any drift here means an "optimization" changed answers.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.analyzer.cache import AnalysisCache, matrix_key
from repro.core.analyzer.dbscan import dbscan, sweep_min_samples
from repro.core.analyzer.distance import (
    build_neighbor_graph,
    pairwise_sq_distances,
)
from repro.core.analyzer.kmeans import kmeans, sweep_k
from repro.core.analyzer.ols import OnlineLinearScan, ols_labels
from repro.core.profiler.record import StepStats
from repro.parallel import WorkerPool
from repro.runtime.events import DeviceKind

matrices = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(5, 20), st.integers(2, 5)),
    elements=st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
)


@settings(max_examples=15, deadline=None)
@given(matrices, st.integers(1, 4), st.integers(0, 3))
def test_kmeans_parallel_identical_to_serial(matrix, k, seed):
    serial = kmeans(matrix, k, seed=seed)
    with WorkerPool(3) as pool:
        parallel = kmeans(matrix, k, seed=seed, pool=pool)
    assert np.array_equal(serial.labels, parallel.labels)
    assert serial.inertia == parallel.inertia
    assert np.array_equal(serial.centers, parallel.centers)


@settings(max_examples=10, deadline=None)
@given(matrices, st.integers(0, 3))
def test_kmeans_sweep_parallel_identical_to_serial(matrix, seed):
    k_values = range(1, 5)
    serial = sweep_k(matrix, k_values, seed=seed)
    with WorkerPool(4) as pool:
        parallel = sweep_k(matrix, k_values, seed=seed, pool=pool)
    assert serial.keys() == parallel.keys()
    for k in serial:
        assert np.array_equal(serial[k].labels, parallel[k].labels)
        assert serial[k].inertia == parallel[k].inertia


@settings(max_examples=15, deadline=None)
@given(matrices)
def test_blocked_kernel_budget_invariant(matrix):
    # Tiny blocks, default blocks, and the naive broadcast all agree.
    naive = ((matrix[:, None, :] - matrix[None, :, :]) ** 2).sum(axis=2)
    tiny = pairwise_sq_distances(
        matrix, memory_budget_bytes=2 * matrix.shape[0] * 24
    )
    assert np.allclose(pairwise_sq_distances(matrix), naive, atol=1e-8)
    assert np.allclose(tiny, naive, atol=1e-8)


@settings(max_examples=15, deadline=None)
@given(matrices, st.integers(1, 8))
def test_dbscan_shared_graph_identical_to_per_call(matrix, min_samples):
    graph = build_neighbor_graph(matrix)
    values = [min_samples, min_samples + 2, min_samples + 7]
    shared = sweep_min_samples(matrix, values, graph=graph)
    for ms in values:
        fresh = dbscan(matrix, graph.eps, ms)  # rebuilds its own graph
        assert np.array_equal(shared[ms].labels, fresh.labels)
        assert shared[ms].eps == fresh.eps


@settings(max_examples=10, deadline=None)
@given(matrices, st.integers(1, 6))
def test_dbscan_sweep_parallel_identical_to_serial(matrix, min_samples):
    values = [min_samples, min_samples + 3]
    serial = sweep_min_samples(matrix, values)
    with WorkerPool(2) as pool:
        parallel = sweep_min_samples(matrix, values, pool=pool)
    for ms in values:
        assert np.array_equal(serial[ms].labels, parallel[ms].labels)


@settings(max_examples=15, deadline=None)
@given(matrices)
def test_cache_roundtrip_preserves_bytes(matrix):
    cache = AnalysisCache()
    key = matrix_key(matrix, "pca", max_dims=3)
    cache.put_array(key, matrix)
    got = cache.get_array(key)
    assert got.dtype == matrix.dtype
    assert np.array_equal(got, matrix, equal_nan=True)
    assert key == matrix_key(matrix.copy(), "pca", max_dims=3)


def _steps_from(matrix: np.ndarray) -> list[StepStats]:
    """Random step matrices → StepStats whose event sets follow the signs."""
    steps = []
    for i, row in enumerate(matrix):
        step = StepStats(step=i)
        for j, value in enumerate(row):
            if value > 0:
                step.observe(f"op{j}", DeviceKind.TPU, float(abs(value)))
        steps.append(step)
    return steps


@settings(max_examples=15, deadline=None)
@given(matrices, st.floats(0.0, 1.0))
def test_ols_streaming_identical_to_offline(matrix, threshold):
    steps = _steps_from(matrix)
    offline = ols_labels(steps, threshold)
    scanner = OnlineLinearScan(threshold=threshold)
    streamed = [scanner.observe(step) for step in steps]
    assert streamed == offline.tolist()
    assert np.array_equal(ols_labels(steps, threshold), offline)
