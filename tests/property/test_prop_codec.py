"""Property tests: the binary codec round-trips bit-exactly.

Reuses the record strategies of ``test_prop_serialize`` — whatever a
profiler can emit, the codec must carry. Bit-exactness is asserted
through :func:`record_checksum` (the CRC-32 over the canonical JSON
encoding), which also proves the binary path is checksum-*stable*
against the JSON path: a record that went to disk as columnar blocks
still verifies against a checksum stamped before encoding.
"""

from hypothesis import given, settings, strategies as st

from repro.core.profiler import codec
from repro.core.profiler.journal import RecordJournal, recover_journal
from repro.core.profiler.serialize import record_checksum, record_to_dict
from tests.property.test_prop_serialize import profile_records


@settings(max_examples=60, deadline=None)
@given(profile_records())
def test_payload_round_trip_is_bit_exact(record):
    rebuilt = codec.decode_payload(codec.encode_payload(record))
    assert record_checksum(rebuilt) == record_checksum(record)
    # checksum stability is not just value equality: the JSON views —
    # including dict iteration order — must be identical.
    assert record_to_dict(rebuilt) == record_to_dict(record)


@settings(max_examples=40, deadline=None)
@given(profile_records(), st.integers(0, 2**32 - 1))
def test_frame_round_trip_is_bit_exact(record, seq):
    rebuilt = codec.decode_frame(codec.encode_frame(seq, record))
    assert record_checksum(rebuilt) == record_checksum(record)


@settings(max_examples=25, deadline=None)
@given(records=st.lists(profile_records(), min_size=1, max_size=5))
def test_binary_journal_recovers_everything(records, tmp_path_factory):
    path = tmp_path_factory.mktemp("journal") / "run.journal"
    journal = RecordJournal(path)
    for record in records:
        journal.append(record)
    journal.close()
    recovery = recover_journal(path)
    assert recovery.journal_format == "binary"
    assert recovery.lossless
    assert recovery.entries_recovered == len(records)
    recovered = sorted(recovery.records, key=lambda r: (r.index, r.window_start_us))
    originals = sorted(records, key=lambda r: (r.index, r.window_start_us))
    assert [record_checksum(r) for r in recovered] == [
        record_checksum(r) for r in originals
    ]
