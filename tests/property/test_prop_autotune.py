"""Autotune invariants: worker-count determinism, KB hits preserve quality.

Two properties pin the offline engine's contracts:

1. **Worker counts never change answers.** Annealing and racing draw all
   randomness from the driver RNG and per-trial substreams, and the pool
   returns results in submission order — so the full trial sequence
   (keys, configs, measurements) and the chosen best must be
   bit-identical at 1, 2, and 4 workers, for any seed.
2. **A knowledge-base hit never buys speed with correctness.** Whatever
   valid knob combination a stored entry carries, applying it to a base
   configuration must leave the training run's output signature exactly
   where :class:`QualityController` pinned it — tuning knobs are
   performance-only by construction.
"""

from hypothesis import given, settings, strategies as st

from repro.core.optimizer.knowledge import KnowledgeEntry
from repro.core.optimizer.parameters import discover_parameters
from repro.core.optimizer.quality import OutputSignature, QualityController
from repro.core.optimizer.strategies import (
    CandidateTrial,
    build_strategy,
)
from repro.host.pipeline import PipelineConfig
from repro.models.naive import naive_pipeline_config
from repro.parallel import WorkerPool, task_rng
from tests.conftest import TINY_DATASET, TinyModel

_WORKER_WIDTHS = (1, 2, 4)


class PureEvaluator:
    """Deterministic stand-in workload for strategy-level properties.

    Throughput rises with every parallelism knob; a small jitter drawn
    from the trial key's named substream keeps it realistic while staying
    a pure function of (seed, key, config) — never of scheduling.
    """

    def __init__(self, seed: int, pool: WorkerPool):
        self.seed = seed
        self.pool = pool

    def _run(self, request):
        key, config, steps = request
        speed = (
            1.0
            + 0.30 * config.num_parallel_calls
            + 0.20 * config.prefetch_depth
            + 0.25 * config.infeed_threads
            + 0.10 * config.num_parallel_reads
            + (2.0 if config.vectorized_preprocess else 0.0)
        )
        jitter = 1.0 + 0.01 * float(task_rng(self.seed, f"pure:{key}").random())
        return CandidateTrial(
            key=key, config=config, steps=steps,
            elapsed_us=1e6 / speed * jitter * steps,
        )

    def evaluate(self, requests):
        return self.pool.map(self._run, list(requests))


def _trial_tuples(strategy_name, options, seed, workers):
    start = naive_pipeline_config()
    strategy = build_strategy(strategy_name, **options)
    with WorkerPool(workers) as pool:
        outcome = strategy.search(
            discover_parameters(start), start, PureEvaluator(seed, pool), seed
        )
    return (
        [(t.key, t.config, t.steps, t.elapsed_us) for t in outcome.trials],
        outcome.best_config,
        outcome.best_throughput,
    )


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_annealing_bit_identical_across_worker_counts(seed):
    options = {"rounds": 2, "batch": 3, "trial_steps": 2}
    observed = [
        _trial_tuples("annealing", options, seed, workers)
        for workers in _WORKER_WIDTHS
    ]
    assert observed[0] == observed[1] == observed[2]


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_racing_bit_identical_across_worker_counts(seed):
    options = {"population": 4, "trial_steps": 2}
    observed = [
        _trial_tuples("racing", options, seed, workers)
        for workers in _WORKER_WIDTHS
    ]
    assert observed[0] == observed[1] == observed[2]


stored_configs = st.fixed_dictionaries(
    {},
    optional={
        "num_parallel_reads": st.integers(1, 32),
        "num_parallel_calls": st.integers(1, 64),
        "prefetch_depth": st.integers(0, 16),
        "shuffle_buffer": st.integers(0, 262_144),
        "infeed_threads": st.integers(1, 16),
        "vectorized_preprocess": st.booleans(),
    },
).filter(bool)


@settings(max_examples=20, deadline=None)
@given(stored_configs)
def test_kb_hit_config_never_violates_quality(config):
    entry = KnowledgeEntry(
        signature=frozenset({"fusion", "InfeedDequeueTuple"}),
        config=config,
        improvement=1.5,
        trials=3,
    )
    model = TinyModel()
    base = PipelineConfig(jitter=0.0)
    reference = model.build_estimator(TINY_DATASET, pipeline_config=base)
    controller = QualityController(reference)
    candidate = model.build_estimator(
        TINY_DATASET, pipeline_config=entry.apply_to(base)
    )
    # The exact check EstimatorTrialEvaluator applies to every trial:
    # warm-start knobs must not move anything the controller pins.
    assert OutputSignature.of(candidate) == controller.reference
    controller.verify()
