"""Property test: streaming phase analysis equals batch under defaults.

The exact-mode :class:`StreamingAnalyzer` promises labels bit-identical
to ``TPUPointAnalyzer.kmeans_phases()`` for the default configuration,
on *any* stream-legal record sequence — arbitrary step behaviours,
arbitrary repetition structure, arbitrary partitioning of steps into
records. Hypothesis generates exactly that space.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.analyzer import TPUPointAnalyzer
from repro.core.analyzer.streaming import StreamingAnalyzer
from repro.core.profiler.record import ProfileRecord, StepStats
from repro.runtime.events import DeviceKind, StepKind

#: A small behaviour pool so signatures genuinely repeat — the regime
#: the streaming dedup is built for — while still exercising streams
#: where almost every step is distinct.
_BEHAVIOURS = (
    (("matmul", 40.0), ("fusion", 25.0), ("relu", 5.0)),
    (("conv", 60.0), ("pool", 10.0)),
    (("save", 80.0),),
    (("embed", 15.0), ("gather", 15.0), ("matmul", 30.0), ("send", 2.0)),
)


def _step(number, behaviour, multiplier):
    step = StepStats(step=number, kind=StepKind.TRAIN)
    step.start_us = number * 100.0
    step.end_us = (number + 1) * 100.0
    step.tpu_idle_us = 10.0
    step.mxu_flops = 1e6 * multiplier
    for name, duration in behaviour:
        step.observe(name, DeviceKind.TPU, duration * multiplier)
    return step


@st.composite
def record_streams(draw):
    """A stream-legal sequence: steps strictly increase across records."""
    num_steps = draw(st.integers(2, 28))
    choices = draw(
        st.lists(
            st.tuples(st.integers(0, len(_BEHAVIOURS) - 1), st.integers(1, 3)),
            min_size=num_steps,
            max_size=num_steps,
        )
    )
    steps = [
        _step(number, _BEHAVIOURS[behaviour], multiplier)
        for number, (behaviour, multiplier) in enumerate(choices)
    ]
    records = []
    cursor = 0
    while cursor < len(steps):
        size = draw(st.integers(1, 6))
        chunk = steps[cursor : cursor + size]
        record = ProfileRecord(
            index=len(records),
            window_start_us=chunk[0].start_us,
            window_end_us=chunk[-1].end_us,
        )
        for step in chunk:
            record.steps[step.step] = step
        records.append(record)
        cursor += size
    return records


@settings(max_examples=25, deadline=None)
@given(record_streams())
def test_streaming_labels_equal_batch_labels(records):
    batch = TPUPointAnalyzer(records).kmeans_phases()
    streaming = StreamingAnalyzer()
    for record in records:
        streaming.fold_record(record)
    streaming.finish()
    analysis = streaming.analyze()
    assert np.array_equal(analysis.labels, batch.labels)
    assert analysis.params["k"] == batch.params["k"]
    assert sum(phase.num_steps for phase in analysis.phases) == len(batch.labels)
