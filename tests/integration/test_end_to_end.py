"""End-to-end flows: run → profile → analyze → export."""

import pytest

from repro.core.analyzer import (
    TPUPointAnalyzer,
    associate_checkpoints,
    top_operators_of_longest_phase,
)
from repro.runtime.events import DeviceKind
from repro.workloads.runner import run_workload
from repro.workloads.spec import WorkloadSpec


class TestProfiledRun:
    def test_records_reconstruct_full_run(self, bert_mrpc_run):
        estimator, summary, records = bert_mrpc_run
        analyzer = TPUPointAnalyzer(records)
        # Every logged step appears in the merged analyzer view.
        assert len(analyzer.steps) == len(estimator.session.log.steps)
        # Total recorded operator time matches the raw event log.
        recorded = sum(
            stats.total_duration_us
            for step in analyzer.steps
            for stats in step.operators.values()
        )
        raw = sum(e.duration_us for e in estimator.session.log.events)
        assert recorded == pytest.approx(raw, rel=1e-9)

    def test_all_three_algorithms_agree_on_the_dominant_phase(self, bert_mrpc_analyzer):
        ols = bert_mrpc_analyzer.ols_phases()
        km = bert_mrpc_analyzer.kmeans_phases(k=3)
        db = bert_mrpc_analyzer.dbscan_phases(min_samples=5)
        # The dominant phase of each algorithm is the training body: its
        # top TPU operators coincide.
        tops = []
        for result in (ols, km, db):
            cell = top_operators_of_longest_phase(result.phases)
            tops.append(set(cell[DeviceKind.TPU].operators[:3]))
        assert tops[0] & tops[1] & tops[2]

    def test_dominant_phase_contains_data_exchange_ops(self, bert_mrpc_analyzer):
        result = bert_mrpc_analyzer.ols_phases()
        cell = top_operators_of_longest_phase(result.phases)
        tpu_names = set(cell[DeviceKind.TPU].operators)
        host_names = set(cell[DeviceKind.HOST].operators)
        # Observation 3: data preparation/exchange ops rank at the top.
        assert tpu_names & {"InfeedDequeueTuple", "OutfeedEnqueueTuple", "Reshape"}
        assert host_names & {"OutfeedDequeueTuple", "TransferBufferToInfeedLocked"}

    def test_checkpoint_association_enables_fast_forward(self, bert_mrpc_run):
        estimator, _, records = bert_mrpc_run
        analyzer = TPUPointAnalyzer(records)
        result = analyzer.ols_phases()
        associations = associate_checkpoints(
            result.phases, estimator.checkpoint_store, analyzer.steps
        )
        body = max(result.phases, key=lambda p: p.num_steps)
        assert associations[body.phase_id].distance_steps <= 40  # within a cadence


class TestDeterminism:
    def test_identical_specs_identical_results(self):
        a = run_workload(WorkloadSpec("dcgan-mnist", seed=5))
        b = run_workload(WorkloadSpec("dcgan-mnist", seed=5))
        assert a.summary.wall_us == b.summary.wall_us
        assert a.summary.events_recorded == b.summary.events_recorded
        assert a.idle_fraction == b.idle_fraction

    def test_generations_differ(self):
        v2 = run_workload(WorkloadSpec("dcgan-mnist", generation="v2"))
        v3 = run_workload(WorkloadSpec("dcgan-mnist", generation="v3"))
        assert v3.summary.wall_us < v2.summary.wall_us
        assert v3.mxu_utilization < v2.mxu_utilization


class TestProfilerFidelity:
    def test_profile_caps_respected(self, bert_mrpc_run):
        _, _, records = bert_mrpc_run
        for record in records:
            assert record.duration_ms <= 60_000.0
            events = sum(
                stats.count
                for step in record.steps.values()
                for stats in step.operators.values()
            )
            assert events <= 1_000_000

    def test_windows_contiguous_and_ordered(self, bert_mrpc_run):
        _, _, records = bert_mrpc_run
        for first, second in zip(records, records[1:]):
            assert second.window_start_us == pytest.approx(first.window_end_us)
