"""Paper-shape assertions: the qualitative results the evaluation reports.

These are coarse envelopes, not exact numbers — the benches in
``benchmarks/`` print the full series; here we pin the shapes so a code
change that breaks a headline observation fails loudly.
"""

import pytest

from repro.core.analyzer import TPUPointAnalyzer
from repro.core.api import TPUPoint
from repro.workloads.runner import build_estimator, run_workload
from repro.workloads.spec import WorkloadSpec


def _analyze(key, gen="v2"):
    estimator = build_estimator(WorkloadSpec(key, generation=gen))
    tpupoint = TPUPoint(estimator)
    tpupoint.Start(analyzer=True)
    estimator.train()
    tpupoint.Stop()
    return TPUPointAnalyzer(tpupoint.records)


class TestObservation1And2:
    """Few phases; the top 3 cover ≥95% of execution (Figures 6-7)."""

    @pytest.mark.parametrize("key", ["bert-cola", "dcgan-mnist"])
    def test_ols_70_gives_few_phases_with_high_coverage(self, key):
        analyzer = _analyze(key)
        result = analyzer.ols_phases(0.70)
        assert result.num_phases <= 6
        assert result.coverage().top(3) >= 0.95

    def test_phase_count_explodes_above_threshold(self):
        analyzer = _analyze("bert-cola")
        sweep = analyzer.ols_sweep([0.7, 1.0])
        assert sweep[1.0] > sweep[0.7]


class TestObservation3And4:
    """Idle time is significant; infeed/outfeed dominate (Figures 10-11)."""

    def test_idle_fraction_significant(self):
        run = run_workload(WorkloadSpec("dcgan-cifar10"))
        assert run.idle_fraction > 0.25

    def test_compute_bound_workload_low_idle(self):
        run = run_workload(WorkloadSpec("resnet-imagenet"))
        assert run.idle_fraction < 0.25


class TestObservation5:
    """Non-computational overhead grows with throughput (v2 → v3)."""

    @pytest.mark.parametrize("key", ["bert-cola", "dcgan-mnist", "qanet-squad"])
    def test_v3_idles_more_and_utilizes_less(self, key):
        v2 = run_workload(WorkloadSpec(key, generation="v2"))
        v3 = run_workload(WorkloadSpec(key, generation="v3"))
        assert v3.idle_fraction > v2.idle_fraction
        assert v3.mxu_utilization < v2.mxu_utilization


class TestObservation6:
    """Bottlenecks move when the dataset changes (Figures 12-13)."""

    def test_resnet_cifar10_collapses_utilization(self):
        imagenet = run_workload(WorkloadSpec("resnet-imagenet"))
        cifar = run_workload(WorkloadSpec("resnet-cifar10"))
        assert cifar.mxu_utilization < imagenet.mxu_utilization / 1.5
        assert cifar.idle_fraction > imagenet.idle_fraction

    def test_half_datasets_increase_idle(self):
        full = run_workload(WorkloadSpec("qanet-squad"))
        half = run_workload(WorkloadSpec("qanet-squad-half"))
        assert half.idle_fraction > full.idle_fraction


class TestOptimizerHeadline:
    """~1.12x from tuning defaults on v2 (Figure 14); naive runs improve
    dramatically (Figures 15-16)."""

    def test_default_workload_speedup_on_v2(self):
        baseline = run_workload(WorkloadSpec("retinanet-coco"))
        estimator = build_estimator(WorkloadSpec("retinanet-coco"))
        result = TPUPoint(estimator).optimize()
        speedup = baseline.summary.wall_us / result.summary.wall_us
        assert 1.02 < speedup < 1.35

    def test_naive_workload_idle_drops_and_mxu_rises(self):
        baseline = run_workload(WorkloadSpec("naive-retinanet-coco"))
        estimator = build_estimator(WorkloadSpec("naive-retinanet-coco"))
        result = TPUPoint(estimator).optimize()
        assert result.summary.tpu_idle_fraction < baseline.idle_fraction
        assert result.summary.mxu_utilization > baseline.mxu_utilization

    def test_short_workloads_gain_little(self):
        """BERT/DCGAN-class short runs show no notable change (Sec. VII-C)."""
        baseline = run_workload(WorkloadSpec("dcgan-mnist"))
        estimator = build_estimator(WorkloadSpec("dcgan-mnist"))
        result = TPUPoint(estimator).optimize()
        speedup = baseline.summary.wall_us / result.summary.wall_us
        assert 0.85 < speedup < 1.1
