"""The one-call evaluation driver."""

import csv

import pytest

from repro.evaluate import evaluate


@pytest.fixture(scope="module")
def evaluation(tmp_path_factory):
    out = tmp_path_factory.mktemp("eval")
    result = evaluate(
        out,
        workloads=("bert-mrpc", "dcgan-mnist"),
        run_optimizer=False,
        figures=True,
    )
    return result


def test_metrics_cover_the_grid(evaluation):
    assert set(evaluation.idle) == {
        ("bert-mrpc", "v2"),
        ("bert-mrpc", "v3"),
        ("dcgan-mnist", "v2"),
        ("dcgan-mnist", "v3"),
    }
    assert set(evaluation.mxu) == set(evaluation.idle)


def test_means(evaluation):
    assert 0.0 < evaluation.mean_idle("v2") < evaluation.mean_idle("v3") < 1.0
    assert evaluation.mean_mxu("v3") < evaluation.mean_mxu("v2")


def test_phase_structure_recorded(evaluation):
    assert evaluation.phase_counts == {"bert-mrpc": 3, "dcgan-mnist": 3}
    assert all(value >= 0.95 for value in evaluation.coverage_top3.values())


def test_artifacts_written(evaluation):
    assert (evaluation.out_dir / "SUMMARY.md").exists()
    summary = (evaluation.out_dir / "SUMMARY.md").read_text()
    assert "Paper" in summary and "38.9%" in summary
    with open(evaluation.out_dir / "metrics.csv", encoding="utf-8") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 4
    assert {row["workload"] for row in rows} == {"bert-mrpc", "dcgan-mnist"}
    for name, path in evaluation.figures.items():
        assert path.exists(), name


def test_optimizer_skipped_when_disabled(evaluation):
    assert evaluation.speedups == {}


def test_cli_evaluate(tmp_path, capsys):
    from repro.cli import main as cli_main

    code = cli_main(
        [
            "evaluate",
            "--out",
            str(tmp_path),
            "--workloads",
            "bert-mrpc",
            "--no-optimizer",
            "--no-figures",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "mean idle" in out
    assert (tmp_path / "SUMMARY.md").exists()
