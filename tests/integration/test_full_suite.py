"""Full-suite integration: every Table I workload through the whole
toolchain, asserting cross-cutting invariants rather than magnitudes.
"""

import pytest

from repro.core.analyzer import TPUPointAnalyzer
from repro.core.api import TPUPoint
from repro.models.registry import PAPER_WORKLOADS
from repro.workloads.runner import build_estimator
from repro.workloads.spec import WorkloadSpec


@pytest.fixture(scope="module")
def all_runs():
    runs = {}
    for key in PAPER_WORKLOADS:
        estimator = build_estimator(WorkloadSpec(key))
        tpupoint = TPUPoint(estimator)
        tpupoint.Start(analyzer=True)
        summary = estimator.train()
        tpupoint.Stop()
        runs[key] = (estimator, summary, TPUPointAnalyzer(tpupoint.records))
    return runs


@pytest.mark.parametrize("key", PAPER_WORKLOADS)
class TestEveryWorkload:
    def test_events_conserved_through_profiler(self, all_runs, key):
        estimator, _, analyzer = all_runs[key]
        recorded = sum(
            stats.count for step in analyzer.steps for stats in step.operators.values()
        )
        assert recorded == estimator.session.log.num_events

    def test_step_time_conserved(self, all_runs, key):
        estimator, summary, analyzer = all_runs[key]
        profiled = sum(step.elapsed_us for step in analyzer.steps)
        assert profiled <= summary.wall_us
        # Steps cover the bulk of the run (the rest is checkpoints/loops).
        assert profiled >= 0.5 * summary.wall_us

    def test_phases_partition_steps(self, all_runs, key):
        _, _, analyzer = all_runs[key]
        for method, kwargs in (
            ("ols", {}),
            ("kmeans", {"k": 4}),
            ("dbscan", {"min_samples": 10}),
        ):
            result = analyzer.analyze(method, **kwargs)
            assert sum(p.num_steps for p in result.phases) == len(analyzer.steps)
            assert result.coverage().top(len(result.phases)) == pytest.approx(1.0)

    def test_metrics_bounded(self, all_runs, key):
        _, summary, _ = all_runs[key]
        assert 0.0 <= summary.tpu_idle_fraction <= 1.0
        assert 0.0 < summary.mxu_utilization < 1.0

    def test_dominant_phase_is_training(self, all_runs, key):
        _, _, analyzer = all_runs[key]
        result = analyzer.ols_phases()
        dominant = result.phases[0]
        # The training body dwarfs init/shutdown.
        assert dominant.num_steps > 0.8 * len(analyzer.steps)

    def test_checkpoints_saved(self, all_runs, key):
        estimator, _, _ = all_runs[key]
        assert len(estimator.checkpoint_store) >= 1
        assert estimator.checkpoint_store.latest().step == estimator.plan.train_steps
