"""Fleet service end-to-end: live OLS parity, concurrent jobs, CLI."""

import pytest

from repro.cli import main as cli_main
from repro.core.analyzer import TPUPointAnalyzer
from repro.core.analyzer.ols import ols_labels
from repro.serve import FleetService, FleetServiceOptions, run_fleet
from repro.workloads.runner import run_workload
from repro.workloads.spec import WorkloadSpec


def _stream_through_service(records, workload, threshold=0.70):
    """Feed a recorded run through the service as a live stream."""
    service = FleetService(options=FleetServiceOptions(threshold=threshold))
    info = service.register(workload)
    for record in records:
        service.submit(info.job_id, record)
        service.pump(info.job_id)  # drain as we go, like the fleet loop
    service.complete(info.job_id)
    return service, info


class TestLiveOlsParity:
    """Streaming phase labels must equal offline ols_labels, per workload."""

    def _assert_parity(self, records, workload, threshold=0.70):
        service, info = _stream_through_service(records, workload, threshold)
        analysis = service.analysis(info.job_id)
        offline_steps = TPUPointAnalyzer(list(records)).steps
        offline = ols_labels(offline_steps, threshold)
        assert analysis.labels == offline.tolist()
        assert analysis.phase_labels == dict(
            zip([s.step for s in offline_steps], offline.tolist())
        )
        assert analysis.num_phases == int(offline.max()) + 1

    def test_parity_bert_mrpc(self, bert_mrpc_run):
        _, _, records = bert_mrpc_run
        self._assert_parity(records, "bert-mrpc")

    def test_parity_dcgan_mnist(self):
        records = []
        run_workload(WorkloadSpec("dcgan-mnist"), record_sink=records.append)
        self._assert_parity(records, "dcgan-mnist")

    def test_parity_at_nondefault_threshold(self, bert_mrpc_run):
        _, _, records = bert_mrpc_run
        self._assert_parity(records, "bert-mrpc", threshold=0.95)


class TestFleetRun:
    def test_four_concurrent_jobs(self):
        mid_flight = []

        def observe(service, round_index):
            if round_index == 2:
                mid_flight.append(service.fleet_snapshot())

        result = run_fleet(
            ["dcgan-mnist", "bert-mrpc", "dcgan-cifar10", "bert-cola"],
            chunk_steps=16,
            on_round=observe,
        )
        assert len(result.jobs) == 4
        assert result.rollup.completed_jobs == 4 and result.rollup.active_jobs == 0
        assert result.rollup.total_drops == 0
        for job in result.jobs:
            assert job.snapshot.state == "completed"
            assert job.snapshot.steps_seen == job.summary.steps_executed
            assert job.snapshot.num_phases >= 1
            assert job.snapshot.coverage_top3 > 0.95
            assert job.records
        assert 0.0 < result.rollup.idle_fraction < 1.0
        assert 0.0 < result.rollup.mxu_utilization < 1.0
        assert sum(result.rollup.phase_histogram.values()) == 4
        # Queries taken while runs were in flight saw genuinely partial state.
        assert mid_flight
        snap = mid_flight[0]
        assert snap.active_jobs == 4
        assert 0 < snap.total_steps < result.rollup.total_steps

    def test_fleet_matches_solo_runs(self):
        # Multi-tenancy must not perturb the jobs: each summary equals a
        # dedicated run of the same spec.
        result = run_fleet(["dcgan-mnist", "dcgan-cifar10"], chunk_steps=32)
        for job in result.jobs:
            solo = run_workload(job.spec)
            assert job.summary.wall_us == pytest.approx(solo.summary.wall_us)
            assert job.summary.steps_executed == solo.summary.steps_executed

    def test_live_matches_final_for_completed_fleet(self):
        result = run_fleet(["dcgan-mnist"], chunk_steps=64)
        job = result.jobs[0]
        offline_steps = TPUPointAnalyzer(list(job.records)).steps
        offline = ols_labels(offline_steps, 0.70)
        analysis = result.service.analysis(job.job_id)
        assert analysis.labels == offline.tolist()


class TestFleetCli:
    def test_fleet_command(self, capsys):
        assert (
            cli_main(
                ["fleet", "--jobs", "4", "--workloads", "dcgan-mnist", "bert-mrpc",
                 "--chunk", "32"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fleet rollup" in out
        assert "service metrics" in out
        assert out.count("[completed]") == 4

    def test_fleet_rejects_bad_jobs(self, capsys):
        assert cli_main(["fleet", "--jobs", "0"]) == 1
        assert "error" in capsys.readouterr().err

    def test_profile_threshold_flag(self, capsys):
        assert (
            cli_main(["profile", "dcgan-mnist", "--method", "ols", "--threshold", "0.3"])
            == 0
        )
        assert "params {'threshold': 0.3}" in capsys.readouterr().out

    def test_threshold_requires_ols(self, capsys):
        assert (
            cli_main(["profile", "dcgan-mnist", "--method", "kmeans", "--threshold", "0.5"])
            == 1
        )
        assert "--threshold applies only" in capsys.readouterr().err
