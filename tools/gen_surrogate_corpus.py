#!/usr/bin/env python
"""Regenerate the committed surrogate training corpus.

Sweeps a deterministic grid of pipeline configurations over a few naive
workloads, measures each on the simulated estimator, and writes the
``(phase fingerprint, config) -> throughput`` pairs to
``benchmarks/corpus/surrogate_corpus.json`` — the committed prior that
lets ``tpupoint tune --strategy surrogate`` rank candidates before the
tuning knowledge base has collected anything (docs/surrogate.md).

The sweep is seeded and ordered, so rerunning the tool on an unchanged
simulator reproduces the file byte-for-byte. Run from the repo root:

    PYTHONPATH=src python tools/gen_surrogate_corpus.py
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import PipelineConfig, WorkloadSpec, build_estimator  # noqa: E402
from repro.core.optimizer.autotune import (  # noqa: E402
    AutotuneOptions,
    EstimatorTrialEvaluator,
    detect_phase_signature,
)
from repro.core.optimizer.surrogate import (  # noqa: E402
    FEATURE_SCHEMA_VERSION,
    TrainingPair,
    dedup_pairs,
)

DEFAULT_OUT = Path(__file__).resolve().parent.parent / (
    "benchmarks/corpus/surrogate_corpus.json"
)

#: Workloads the corpus samples; naive variants leave the most headroom.
WORKLOADS = ("naive-dcgan-mnist", "naive-qanet-squad", "naive-bert-mrpc")

#: The deterministic configuration grid measured per workload.
GRID = tuple(
    {
        "num_parallel_calls": calls,
        "prefetch_depth": prefetch,
        "infeed_threads": threads,
        "vectorized_preprocess": vectorized,
    }
    for calls in (1, 4, 16)
    for prefetch in (0, 4)
    for threads in (1, 4)
    for vectorized in (False, True)
)

TRIAL_STEPS = 4


def _factory(spec: WorkloadSpec):
    return lambda cfg: build_estimator(dataclasses.replace(spec, pipeline_config=cfg))


def build_pairs() -> list[TrainingPair]:
    """Measure the full grid; returns deduplicated, sorted pairs."""
    pairs: list[TrainingPair] = []
    for key in WORKLOADS:
        spec = WorkloadSpec(key)
        factory = _factory(spec)
        probe = build_estimator(spec)
        initial = probe.pipeline_config or PipelineConfig()
        signature = detect_phase_signature(
            factory, initial, AutotuneOptions(detection_steps=20)
        )
        evaluator = EstimatorTrialEvaluator(factory, seed=0)
        requests = [
            (f"corpus:{key}:{i}", initial.with_updates(**knobs), TRIAL_STEPS)
            for i, knobs in enumerate(GRID)
        ]
        for trial in evaluator.evaluate(requests):
            config = {
                knob: getattr(trial.config, knob)
                for knob in (
                    "num_parallel_reads",
                    "num_parallel_calls",
                    "prefetch_depth",
                    "shuffle_buffer",
                    "infeed_threads",
                    "vectorized_preprocess",
                )
            }
            pairs.append(
                TrainingPair(
                    signature=signature,
                    config=config,
                    throughput=trial.throughput,
                    source=f"corpus:{key}",
                )
            )
        print(f"{key}: {len(GRID)} configs measured", file=sys.stderr)
    return sorted(dedup_pairs(pairs), key=lambda pair: pair.key())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"output path (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)
    pairs = build_pairs()
    document = {
        "version": 1,
        "feature_schema": FEATURE_SCHEMA_VERSION,
        "pairs": [pair.to_document() for pair in pairs],
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {len(pairs)} pairs to {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
