"""Check that relative markdown links in the repo's docs resolve.

Scans every tracked markdown page (docs/*.md plus the top-level guides),
extracts inline ``[text](target)`` links, and verifies that each
relative target exists on disk (anchors and external URLs are ignored).
Also asserts the docs index actually is an index: every page under
docs/ must be reachable from docs/index.md by following relative links.

Run from the repository root (CI's docs job does):

    python tools/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links only; reference-style links are not used in this repo.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")

_TOP_LEVEL_PAGES = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md")


def _markdown_pages(root: Path) -> list[Path]:
    pages = sorted((root / "docs").glob("*.md"))
    pages += [root / name for name in _TOP_LEVEL_PAGES if (root / name).exists()]
    return pages


def _relative_targets(page: Path) -> list[str]:
    targets = []
    for match in _LINK.finditer(page.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        targets.append(target.split("#", 1)[0])
    return targets


def check_links(root: Path) -> list[str]:
    """Return a list of human-readable problems (empty = all good)."""
    problems = []
    pages = _markdown_pages(root)
    for page in pages:
        for target in _relative_targets(page):
            resolved = (page.parent / target).resolve()
            if not resolved.exists():
                problems.append(
                    f"{page.relative_to(root)}: broken link -> {target}"
                )

    index = root / "docs" / "index.md"
    if not index.exists():
        problems.append("docs/index.md is missing")
        return problems

    # Reachability: walk relative links out of the index, transitively.
    reachable = {index.resolve()}
    frontier = [index]
    while frontier:
        page = frontier.pop()
        for target in _relative_targets(page):
            resolved = (page.parent / target).resolve()
            if resolved.suffix == ".md" and resolved.exists():
                if resolved not in reachable:
                    reachable.add(resolved)
                    frontier.append(resolved)
    for page in sorted((root / "docs").glob("*.md")):
        if page.resolve() not in reachable:
            problems.append(
                f"docs/{page.name} is not reachable from docs/index.md"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path.cwd()
    problems = check_links(root)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        pages = len(_markdown_pages(root))
        print(f"docs links OK ({pages} pages checked)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
