#!/usr/bin/env python
"""Fail when public optimizer/analyzer code is missing docstrings.

Walks ``src/repro/core/optimizer/`` and ``src/repro/core/analyzer/``
with ``ast`` and reports every public module, class, function, and
method (no leading underscore) that lacks a docstring. Dunder methods,
overrides of ``object`` protocol slots, and anything underscore-private
are exempt — the bar is "public surface documents itself", not
"docstring on every line".

Run from the repository root (CI's docs job does):

    python tools/check_docstrings.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Packages whose public surface must be documented.
CHECKED = ("src/repro/core/optimizer", "src/repro/core/analyzer")

#: Method names that never need their own docstring.
_EXEMPT_METHODS = {"__init__", "__post_init__"}


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_in(tree: ast.Module, path: str) -> list[str]:
    problems = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{path}: missing module docstring")

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _is_public(child.name) and ast.get_docstring(child) is None:
                    problems.append(
                        f"{path}: class {prefix}{child.name} missing docstring"
                    )
                visit(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if child.name in _EXEMPT_METHODS or child.name.startswith("__"):
                    continue
                if _is_public(child.name) and ast.get_docstring(child) is None:
                    problems.append(
                        f"{path}: def {prefix}{child.name} missing docstring"
                    )

    visit(tree, "")
    return problems


def check(root: Path) -> list[str]:
    """Return human-readable problems (empty = all documented)."""
    problems = []
    for package in CHECKED:
        for source in sorted((root / package).rglob("*.py")):
            relative = source.relative_to(root).as_posix()
            tree = ast.parse(source.read_text(encoding="utf-8"))
            problems.extend(_missing_in(tree, relative))
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else ROOT
    problems = check(root)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        checked = sum(
            len(list((root / package).rglob("*.py"))) for package in CHECKED
        )
        print(f"docstrings OK ({checked} files checked)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
