"""Legacy setup shim.

Allows `python setup.py develop` installs in offline environments where
pip's PEP-517 editable path is unavailable (it needs the `wheel` package).
All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
