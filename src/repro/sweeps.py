"""Experiment sweeps.

The paper's evaluation is a grid: workloads × TPU generations ×
configurations, each cell measured the same way. This module makes that
grid a first-class object — declare the axes, run the cells
deterministically, then render or export the metric table — so studies
like Figures 10-13 are a few lines instead of hand-written loops.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.errors import ConfigurationError
from repro.host.pipeline import PipelineConfig
from repro.workloads.runner import WorkloadRun, run_workload
from repro.workloads.spec import WorkloadSpec

#: Metric extractors available to tables and CSV exports.
METRICS: dict[str, Callable[[WorkloadRun], float]] = {
    "wall_seconds": lambda run: run.wall_seconds,
    "idle_fraction": lambda run: run.idle_fraction,
    "mxu_utilization": lambda run: run.mxu_utilization,
    "steps": lambda run: float(run.summary.steps_executed),
    "events": lambda run: float(run.summary.events_recorded),
}


@dataclass(frozen=True)
class SweepCell:
    """One grid cell: the spec that was run and its result."""

    workload: str
    generation: str
    config_label: str
    run: WorkloadRun

    def metric(self, name: str) -> float:
        try:
            return METRICS[name](self.run)
        except KeyError as exc:
            raise ConfigurationError(
                f"unknown metric {name!r}; known: {sorted(METRICS)}"
            ) from exc


@dataclass
class SweepResult:
    """All cells of one executed sweep."""

    cells: list[SweepCell] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.cells)

    def cell(self, workload: str, generation: str, config_label: str = "default") -> SweepCell:
        """Look up one cell; raises when the combination was not swept."""
        for candidate in self.cells:
            if (candidate.workload, candidate.generation, candidate.config_label) == (
                workload,
                generation,
                config_label,
            ):
                return candidate
        raise ConfigurationError(
            f"no cell ({workload}, {generation}, {config_label}) in this sweep"
        )

    def column(self, metric: str) -> dict[tuple[str, str, str], float]:
        """One metric across all cells, keyed by the cell coordinates."""
        return {
            (c.workload, c.generation, c.config_label): c.metric(metric)
            for c in self.cells
        }

    def mean(self, metric: str, generation: str | None = None) -> float:
        """Average of a metric, optionally restricted to one generation."""
        values = [
            cell.metric(metric)
            for cell in self.cells
            if generation is None or cell.generation == generation
        ]
        if not values:
            raise ConfigurationError("no cells match the filter")
        return sum(values) / len(values)

    def table(self, metrics: tuple[str, ...] = ("idle_fraction", "mxu_utilization")) -> str:
        """A formatted text table, one row per cell."""
        header = f"{'workload':20s} {'gen':>4s} {'config':>10s} " + " ".join(
            f"{m:>16s}" for m in metrics
        )
        rows = [header]
        for cell in self.cells:
            values = " ".join(f"{cell.metric(m):>16.4f}" for m in metrics)
            rows.append(
                f"{cell.workload:20s} {cell.generation:>4s} {cell.config_label:>10s} {values}"
            )
        return "\n".join(rows)

    def to_csv(self, path: str | Path, metrics: tuple[str, ...] | None = None) -> Path:
        """Export the sweep as CSV; returns the path written."""
        metrics = metrics or tuple(METRICS)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["workload", "generation", "config", *metrics])
            for cell in self.cells:
                writer.writerow(
                    [
                        cell.workload,
                        cell.generation,
                        cell.config_label,
                        *[cell.metric(m) for m in metrics],
                    ]
                )
        return path


def sweep(
    workloads: list[str] | tuple[str, ...],
    generations: tuple[str, ...] = ("v2",),
    configs: dict[str, PipelineConfig | None] | None = None,
    seed: int | None = None,
) -> SweepResult:
    """Run the full grid of (workload, generation, config) cells.

    ``configs`` maps a label to a pipeline configuration (None means the
    workload's own default). Cells run serially and deterministically in
    grid order.
    """
    if not workloads:
        raise ConfigurationError("sweep needs at least one workload")
    if not generations:
        raise ConfigurationError("sweep needs at least one generation")
    configs = configs or {"default": None}
    result = SweepResult()
    for key in workloads:
        for generation in generations:
            for label, config in configs.items():
                spec_kwargs = {"key": key, "generation": generation, "pipeline_config": config}
                if seed is not None:
                    spec_kwargs["seed"] = seed
                run = run_workload(WorkloadSpec(**spec_kwargs))
                result.cells.append(
                    SweepCell(
                        workload=key,
                        generation=generation,
                        config_label=label,
                        run=run,
                    )
                )
    return result
