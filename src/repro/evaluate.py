"""One-call reproduction of the paper's evaluation.

`evaluate()` runs the full study — every workload on both generations,
the three phase detectors with their sweeps, the optimizer experiments —
and writes a results directory: the per-figure series as text and CSV,
the regenerated SVG figures, and a Markdown summary keyed to the paper's
tables/figures. `tpupoint evaluate` exposes it on the command line.

The full set takes a minute or two; restrict ``workloads`` for a quick
pass.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.api import TPUPoint
from repro.viz.figures import DEFAULT_WORKLOADS, FigureData, generate_figures
from repro.workloads.runner import build_estimator
from repro.workloads.spec import WorkloadSpec

OPTIMIZER_KEYS = ("qanet-squad", "retinanet-coco")


@dataclass
class EvaluationResult:
    """Everything the evaluation produced, in memory and on disk."""

    out_dir: Path
    idle: dict[tuple[str, str], float] = field(default_factory=dict)
    mxu: dict[tuple[str, str], float] = field(default_factory=dict)
    phase_counts: dict[str, int] = field(default_factory=dict)
    coverage_top3: dict[str, float] = field(default_factory=dict)
    speedups: dict[str, float] = field(default_factory=dict)
    figures: dict[str, Path] = field(default_factory=dict)

    def mean_idle(self, generation: str) -> float:
        values = [v for (_, gen), v in self.idle.items() if gen == generation]
        return sum(values) / len(values)

    def mean_mxu(self, generation: str) -> float:
        values = [v for (_, gen), v in self.mxu.items() if gen == generation]
        return sum(values) / len(values)


def _write_metrics_csv(result: EvaluationResult) -> None:
    path = result.out_dir / "metrics.csv"
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["workload", "generation", "idle_fraction", "mxu_utilization",
             "ols_phases_70", "coverage_top3"]
        )
        for (key, generation), idle in sorted(result.idle.items()):
            writer.writerow(
                [
                    key,
                    generation,
                    f"{idle:.4f}",
                    f"{result.mxu[(key, generation)]:.4f}",
                    result.phase_counts.get(key, ""),
                    f"{result.coverage_top3.get(key, float('nan')):.4f}",
                ]
            )


def _write_summary(result: EvaluationResult, workloads) -> None:
    lines = [
        "# Evaluation summary (paper vs this run)",
        "",
        "| Quantity | Paper | This run |",
        "|---|---|---|",
        f"| mean TPU idle, v2 | 38.9% | {result.mean_idle('v2'):.1%} |",
        f"| mean TPU idle, v3 | 43.5% | {result.mean_idle('v3'):.1%} |",
        f"| mean MXU utilization, v2 | 22.7% | {result.mean_mxu('v2'):.1%} |",
        f"| mean MXU utilization, v3 | 11.3% | {result.mean_mxu('v3'):.1%} |",
    ]
    if result.speedups:
        mean_speedup = sum(result.speedups.values()) / len(result.speedups)
        lines.append(f"| optimizer speedup, v2 | ~1.12x | {mean_speedup:.3f}x |")
    covered = [result.coverage_top3[k] for k in workloads if k in result.coverage_top3]
    if covered:
        lines.append(
            f"| min top-3 phase coverage (OLS@70%) | >=95% | {min(covered):.1%} |"
        )
    lines += [
        "",
        "Artifacts: `metrics.csv` (per-cell numbers), `fig*.svg` (regenerated",
        "figures), and the per-workload phase counts below.",
        "",
        "| workload | OLS phases @70% | top-3 coverage |",
        "|---|---|---|",
    ]
    for key in workloads:
        if key in result.phase_counts:
            lines.append(
                f"| {key} | {result.phase_counts[key]} | "
                f"{result.coverage_top3[key]:.1%} |"
            )
    (result.out_dir / "SUMMARY.md").write_text("\n".join(lines), encoding="utf-8")


def evaluate(
    out_dir: str | Path,
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    run_optimizer: bool = True,
    figures: bool = True,
) -> EvaluationResult:
    """Run the paper's evaluation and write the results directory."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    result = EvaluationResult(out_dir=out_dir)
    data = FigureData(workloads)

    # Figures 10/11 (and 12/13 inputs): idle and MXU on both generations.
    for key in workloads:
        for generation in ("v2", "v3"):
            run = data.run(key, generation)
            result.idle[(key, generation)] = run.idle_fraction
            result.mxu[(key, generation)] = run.mxu_utilization

    # Figures 6/7: OLS phase structure at the default threshold.
    for key in workloads:
        analysis = data.analyzer(key).ols_phases(0.70)
        result.phase_counts[key] = analysis.num_phases
        result.coverage_top3[key] = analysis.coverage().top(3)

    # Figure 14: the optimizer on the long-running workloads.
    if run_optimizer:
        for key in OPTIMIZER_KEYS:
            if key not in workloads:
                continue
            baseline = data.run(key, "v2")
            estimator = build_estimator(WorkloadSpec(key, generation="v2"))
            optimized = TPUPoint(estimator).optimize()
            result.speedups[key] = baseline.summary.wall_us / optimized.summary.wall_us

    if figures:
        result.figures = generate_figures(
            out_dir, workloads=workloads,
            names=("fig03", "fig04", "fig05", "fig06", "fig07", "fig10", "fig11"),
        )

    _write_metrics_csv(result)
    _write_summary(result, workloads)
    return result
