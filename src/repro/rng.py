"""Deterministic random-number streams.

Every stochastic choice in the simulator flows through a named stream so
that runs are reproducible and independent subsystems do not perturb each
other's sequences. Streams are derived from a root seed plus a string key
using a stable hash, so adding a new consumer never shifts existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 0x54505550  # "TPUP"


def _derive_seed(root_seed: int, key: str) -> int:
    digest = hashlib.sha256(f"{root_seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def stream(key: str, root_seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Return a fresh, deterministic generator for the given stream key.

    Two calls with the same ``(key, root_seed)`` produce generators that
    yield identical sequences; different keys are statistically independent.
    """
    return np.random.default_rng(_derive_seed(root_seed, key))


class RngFactory:
    """Factory bound to one root seed, handing out named substreams.

    A simulation holds one factory and passes substreams to components:

    >>> rngs = RngFactory(seed=7)
    >>> a = rngs.stream("pipeline")
    >>> b = rngs.stream("pipeline")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int = DEFAULT_SEED):
        self.seed = int(seed)

    def stream(self, key: str) -> np.random.Generator:
        """Return a deterministic generator for ``key`` under this seed."""
        return stream(key, self.seed)

    def child(self, key: str) -> "RngFactory":
        """Derive a nested factory, namespacing all of its streams."""
        return RngFactory(_derive_seed(self.seed, key))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self.seed})"
