"""A tf.data-style input-pipeline DSL.

The programs TPUPoint-Optimizer analyzes are tf.data pipelines — chains
of ``interleave/shuffle/map/batch/prefetch`` calls whose arguments *are*
the adjustable parameters. This module provides that front end: declare
the pipeline the way user code does, then lower it to the simulator's
:class:`~repro.host.pipeline.InputPipeline` (stages + config). The
declaration order is preserved, so a map-after-batch pipeline really is
vectorized, and a missing ``prefetch`` really serializes the handoff —
the naive patterns of Section VII are expressible literally.

Example::

    pipeline = (
        Dataset.from_tfrecords(SQUAD)
        .interleave(cycle_length=4)
        .shuffle(1024)
        .map("parse", cost_us_per_example=18.0, num_parallel_calls=8)
        .batch(32)
        .prefetch(2)
        .build(vm, bucket)
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.datasets.base import DatasetSpec
from repro.errors import ConfigurationError
from repro.host.pipeline import InputPipeline, PipelineConfig
from repro.host.stages import StageKind, StageSpec
from repro.host.vm import HostVM
from repro.storage.bucket import Bucket

_DEFAULT_MAP_OPS = (("Cast", 0.5), ("Sub", 0.5))
_TRANSFER_OPS = (
    ("TransferBufferToInfeedLocked", 0.5),
    ("InfeedEnqueueTuple", 0.2),
    ("LinearizeX32", 0.2),
    ("LSRAv2", 0.1),
)


@dataclass(frozen=True)
class _MapOp:
    name: str
    cost_us_per_example: float
    num_parallel_calls: int
    ops: tuple[tuple[str, float], ...]
    after_batch: bool = False


@dataclass(frozen=True)
class Dataset:
    """An immutable pipeline declaration; every method returns a new one."""

    spec: DatasetSpec
    cycle_length: int = 1
    shuffle_buffer: int = 0
    maps: tuple[_MapOp, ...] = field(default_factory=tuple)
    batch_size: int | None = None
    prefetch_depth: int = 0
    infeed_threads: int = 2
    batched: bool = False  # tracks declaration order for map-after-batch

    # --- constructors ----------------------------------------------------

    @classmethod
    def from_tfrecords(cls, spec: DatasetSpec) -> "Dataset":
        """Start a pipeline over a dataset's TFRecord shards."""
        return cls(spec=spec)

    # --- transformations ------------------------------------------------------

    def interleave(self, cycle_length: int) -> "Dataset":
        """Read ``cycle_length`` shards concurrently."""
        if cycle_length <= 0:
            raise ConfigurationError("cycle_length must be positive")
        return replace(self, cycle_length=cycle_length)

    def shuffle(self, buffer_size: int) -> "Dataset":
        """Reservoir-shuffle with the given buffer."""
        if buffer_size < 0:
            raise ConfigurationError("buffer_size must be non-negative")
        return replace(self, shuffle_buffer=buffer_size)

    def map(
        self,
        name: str,
        cost_us_per_example: float,
        num_parallel_calls: int = 1,
        ops: tuple[tuple[str, float], ...] = _DEFAULT_MAP_OPS,
    ) -> "Dataset":
        """Apply a per-example function; placement relative to batch matters."""
        if cost_us_per_example < 0:
            raise ConfigurationError("cost_us_per_example must be non-negative")
        if num_parallel_calls <= 0:
            raise ConfigurationError("num_parallel_calls must be positive")
        new_map = _MapOp(
            name=name,
            cost_us_per_example=cost_us_per_example,
            num_parallel_calls=num_parallel_calls,
            ops=ops,
            after_batch=self.batched,
        )
        return replace(self, maps=(*self.maps, new_map))

    def batch(self, batch_size: int) -> "Dataset":
        """Assemble examples into batches."""
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if self.batched:
            raise ConfigurationError("batch() already applied")
        return replace(self, batch_size=batch_size, batched=True)

    def prefetch(self, depth: int) -> "Dataset":
        """Run the pipeline up to ``depth`` batches ahead of the consumer."""
        if depth < 0:
            raise ConfigurationError("prefetch depth must be non-negative")
        return replace(self, prefetch_depth=depth)

    def with_infeed_threads(self, threads: int) -> "Dataset":
        """Threads linearizing buffers for the infeed DMA."""
        if threads <= 0:
            raise ConfigurationError("threads must be positive")
        return replace(self, infeed_threads=threads)

    # --- lowering -----------------------------------------------------------------

    def to_config(self) -> PipelineConfig:
        """The tuning knobs this declaration implies."""
        parallel_calls = max((m.num_parallel_calls for m in self.maps), default=1)
        return PipelineConfig(
            num_parallel_reads=self.cycle_length,
            num_parallel_calls=parallel_calls,
            prefetch_depth=self.prefetch_depth,
            shuffle_buffer=self.shuffle_buffer,
            infeed_threads=self.infeed_threads,
            # Maps declared after batch() run vectorized (the map/batch swap).
            vectorized_preprocess=any(m.after_batch for m in self.maps),
        )

    def to_stages(self) -> tuple[StageSpec, ...]:
        """The simulator stages this declaration lowers to."""
        if self.batch_size is None:
            raise ConfigurationError("pipeline must call batch() before building")
        stages: list[StageSpec] = [
            StageSpec("read", StageKind.READ, ops=(("Send", 0.5), ("Recv", 0.5)))
        ]
        for index, map_op in enumerate(self.maps):
            stages.append(
                StageSpec(
                    map_op.name or f"map_{index}",
                    StageKind.CPU,
                    cpu_us_per_example=map_op.cost_us_per_example,
                    ops=map_op.ops,
                )
            )
        stages.append(
            StageSpec(
                "batch",
                StageKind.BATCH,
                cpu_us_per_example=0.5,
                parallelizable=False,
                ops=(("Cast", 1.0),),
            )
        )
        stages.append(StageSpec("transfer", StageKind.TRANSFER, ops=_TRANSFER_OPS))
        return tuple(stages)

    def build(self, vm: HostVM | None = None, bucket: Bucket | None = None) -> InputPipeline:
        """Lower the declaration to an executable input pipeline."""
        return InputPipeline(
            vm=vm or HostVM(),
            bucket=bucket or Bucket(f"{self.spec.name.lower()}-bucket"),
            stages=self.to_stages(),
            config=self.to_config(),
            bytes_per_example_storage=self.spec.storage_bytes_per_example,
            bytes_per_example_device=self.spec.device_bytes_per_example,
        )

    # --- introspection -------------------------------------------------------------

    def describe(self) -> str:
        """The pipeline as the user-code chain it represents."""
        parts = [f"Dataset.from_tfrecords({self.spec.name})"]
        if self.cycle_length > 1:
            parts.append(f".interleave(cycle_length={self.cycle_length})")
        if self.shuffle_buffer:
            parts.append(f".shuffle({self.shuffle_buffer})")
        emitted_batch = False
        for map_op in self.maps:
            if map_op.after_batch and not emitted_batch:
                parts.append(f".batch({self.batch_size})")
                emitted_batch = True
            parts.append(
                f".map({map_op.name!r}, num_parallel_calls={map_op.num_parallel_calls})"
            )
        if not emitted_batch and self.batch_size is not None:
            parts.append(f".batch({self.batch_size})")
        if self.prefetch_depth:
            parts.append(f".prefetch({self.prefetch_depth})")
        return "".join(parts)
