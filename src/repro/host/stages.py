"""Input-pipeline stage cost models.

A tf.data input pipeline is a chain of stages, each of which costs CPU
time per example (decode, preprocess), storage bandwidth (read), or link
bandwidth (infeed transfer). Workload models describe their pipelines as
a list of :class:`StageSpec`; the pipeline turns those into per-batch
costs and into the named host operators the profiler observes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


class StageKind(enum.Enum):
    """Which resource a pipeline stage consumes."""

    READ = "read"  # storage-bandwidth bound
    CPU = "cpu"  # host-CPU bound (decode / preprocess / shuffle)
    BATCH = "batch"  # host-CPU bound batch assembly
    TRANSFER = "transfer"  # host-to-TPU link bound (infeed)


@dataclass(frozen=True)
class StageSpec:
    """One stage of an input pipeline.

    Attributes:
        name: human-readable stage name ("decode", "preprocess", ...).
        kind: resource the stage consumes.
        cpu_us_per_example: serial CPU microseconds per example (CPU/BATCH).
        parallelizable: whether ``num_parallel_calls`` applies to the stage.
        ops: named host operators this stage emits, with relative weights;
            the pipeline splits the stage's measured duration across them.
    """

    name: str
    kind: StageKind
    cpu_us_per_example: float = 0.0
    parallelizable: bool = True
    ops: tuple[tuple[str, float], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.cpu_us_per_example < 0:
            raise ConfigurationError("cpu_us_per_example must be non-negative")
        if any(weight <= 0 for _, weight in self.ops):
            raise ConfigurationError("op weights must be positive")


@dataclass(frozen=True)
class StageCost:
    """A stage's realized cost for one batch."""

    name: str
    kind: StageKind
    wall_us: float
    ops: tuple[tuple[str, float], ...]

    def op_durations(self) -> list[tuple[str, float]]:
        """Split this stage's wall time across its named operators."""
        if not self.ops:
            return [(self.name, self.wall_us)]
        total_weight = sum(weight for _, weight in self.ops)
        return [
            (op_name, self.wall_us * weight / total_weight) for op_name, weight in self.ops
        ]
