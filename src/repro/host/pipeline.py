"""tf.data-style input pipeline model.

The pipeline converts a workload's stage specs plus tuning knobs into the
cost of producing one training batch: storage read time, parallel CPU time
for decode/preprocess, batch assembly, and the host-to-TPU infeed
transfer. These per-batch costs drive both the step timing (how long the
TPU waits for data) and the host-side operator events the profiler sees
(``TransferBufferToInfeedLocked``, ``DecodeAndCropJpeg``, ...).

The knobs in :class:`PipelineConfig` are exactly the "adjustable
parameters" TPUPoint-Optimizer discovers and tunes (Section VII-A):
buffer sizes, thread counts, and stage ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.host.stages import StageCost, StageKind, StageSpec
from repro.host.vm import HostVM
from repro.storage.bucket import Bucket

# Parallel reads from cloud storage scale bandwidth sub-linearly and
# saturate; this exponent and cap model GCS multi-stream behaviour.
_READ_SCALING_EXPONENT = 0.7
_READ_SCALING_CAP = 8.0

# Host link used by TransferBufferToInfeedLocked (PCIe-class), bytes/s.
_HOST_LINK_BANDWIDTH = 10e9


@dataclass(frozen=True)
class PipelineConfig:
    """Tunable input-pipeline parameters.

    Attributes:
        num_parallel_reads: concurrent storage read streams (interleave).
        num_parallel_calls: worker threads for parallelizable CPU stages.
        prefetch_depth: batches the pipeline may run ahead of the TPU;
            0 disables overlap entirely (fully serial host→TPU handoff).
        shuffle_buffer: shuffle-buffer size in examples (costs CPU).
        infeed_threads: threads linearizing buffers for the infeed DMA.
        vectorized_preprocess: reorder batching before per-example maps
            (the classic map/batch swap): the same work runs vectorized,
            trimming per-example overhead without changing outputs.
        jitter: lognormal sigma applied to each batch's cost.
    """

    num_parallel_reads: int = 4
    num_parallel_calls: int = 8
    prefetch_depth: int = 2
    shuffle_buffer: int = 1024
    infeed_threads: int = 2
    vectorized_preprocess: bool = False
    jitter: float = 0.06

    def __post_init__(self) -> None:
        if self.num_parallel_reads <= 0 or self.num_parallel_calls <= 0:
            raise ConfigurationError("parallelism knobs must be positive")
        if self.prefetch_depth < 0 or self.shuffle_buffer < 0:
            raise ConfigurationError("buffer sizes must be non-negative")
        if self.infeed_threads <= 0:
            raise ConfigurationError("infeed_threads must be positive")
        if self.jitter < 0:
            raise ConfigurationError("jitter must be non-negative")

    def with_updates(self, **kwargs) -> "PipelineConfig":
        """Return a copy with some knobs replaced (used by the tuner)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class BatchCost:
    """Realized cost of producing and transferring one batch."""

    stages: tuple[StageCost, ...]
    total_wall_us: float
    transfer_wall_us: float

    @property
    def produce_wall_us(self) -> float:
        """Host time to have the batch ready, excluding the infeed DMA."""
        return self.total_wall_us - self.transfer_wall_us

    def op_durations(self) -> list[tuple[str, float]]:
        """Flatten all stages into (host op name, duration) pairs."""
        durations: list[tuple[str, float]] = []
        for stage in self.stages:
            durations.extend(stage.op_durations())
        return durations


@dataclass
class InputPipeline:
    """A configured input pipeline feeding one training run.

    Attributes:
        vm: host VM executing the CPU stages.
        bucket: storage bucket holding the dataset.
        stages: ordered stage specs from the workload model.
        config: tuning knobs.
        bytes_per_example_storage: serialized example size in the bucket.
        bytes_per_example_device: example size as staged for the TPU.
    """

    vm: HostVM
    bucket: Bucket
    stages: tuple[StageSpec, ...]
    config: PipelineConfig
    bytes_per_example_storage: float
    bytes_per_example_device: float

    def __post_init__(self) -> None:
        if self.bytes_per_example_storage < 0 or self.bytes_per_example_device < 0:
            raise ConfigurationError("example sizes must be non-negative")
        if not self.stages:
            raise ConfigurationError("pipeline needs at least one stage")

    # --- stage costing ----------------------------------------------------

    def _read_wall_us(self, batch_size: int) -> float:
        scale = min(self.config.num_parallel_reads**_READ_SCALING_EXPONENT, _READ_SCALING_CAP)
        effective_bandwidth = self.bucket.read_bandwidth * scale
        batch_bytes = self.bytes_per_example_storage * batch_size
        latency = self.bucket.request_latency_us / max(self.config.num_parallel_reads, 1)
        # Amortize the per-request latency over the examples a request returns.
        amortized_latency = latency * batch_bytes / max(self.bucket.read_bandwidth, 1.0) * 1e-6
        return batch_bytes / effective_bandwidth * 1e6 + amortized_latency

    def _cpu_wall_us(self, spec: StageSpec, batch_size: int) -> float:
        serial_us = spec.cpu_us_per_example * batch_size
        if self.config.vectorized_preprocess and spec.parallelizable:
            serial_us *= 0.85  # batched maps amortize per-example overhead
        threads = self.config.num_parallel_calls if spec.parallelizable else 1
        return self.vm.parallel_time_us(serial_us, threads)

    def _transfer_wall_us(self, batch_size: int) -> float:
        batch_bytes = self.bytes_per_example_device * batch_size
        link_us = batch_bytes / _HOST_LINK_BANDWIDTH * 1e6
        # Linearizing the buffer for DMA costs CPU and overlaps the link.
        linearize_serial_us = batch_bytes / 4e9 * 1e6
        linearize_us = self.vm.parallel_time_us(
            linearize_serial_us, self.config.infeed_threads
        )
        return max(link_us, linearize_us)

    def _shuffle_wall_us(self, batch_size: int) -> float:
        if self.config.shuffle_buffer == 0:
            return 0.0
        # Maintaining the reservoir costs a small, size-dependent CPU fee.
        per_example_us = 0.05 * (1.0 + np.log2(1 + self.config.shuffle_buffer) / 16.0)
        return self.vm.parallel_time_us(per_example_us * batch_size, 1)

    # --- public API ---------------------------------------------------------

    def batch_cost(self, batch_size: int, rng: np.random.Generator) -> BatchCost:
        """Cost of producing one batch under the current configuration."""
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        jitter = float(rng.lognormal(mean=0.0, sigma=self.config.jitter)) if self.config.jitter else 1.0
        costs: list[StageCost] = []
        transfer_wall = 0.0
        for spec in self.stages:
            if spec.kind is StageKind.READ:
                wall = self._read_wall_us(batch_size) + self._shuffle_wall_us(batch_size)
            elif spec.kind is StageKind.TRANSFER:
                wall = self._transfer_wall_us(batch_size)
            else:
                wall = self._cpu_wall_us(spec, batch_size)
            wall *= jitter
            if spec.kind is StageKind.TRANSFER:
                transfer_wall += wall
            costs.append(StageCost(spec.name, spec.kind, wall, spec.ops))
        total = sum(stage.wall_us for stage in costs)
        return BatchCost(tuple(costs), total, transfer_wall)

    def mean_batch_wall_us(self, batch_size: int) -> float:
        """Jitter-free per-batch production cost (for planning/tuning)."""
        rng = np.random.default_rng(0)
        quiet = replace(self.config, jitter=0.0)
        pipeline = replace(self, config=quiet)
        return pipeline.batch_cost(batch_size, rng).total_wall_us
