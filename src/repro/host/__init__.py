"""Host-VM substrate: the Compute Engine VM and its input pipeline."""

from repro.host.data import Dataset
from repro.host.pipeline import BatchCost, InputPipeline, PipelineConfig
from repro.host.stages import StageCost, StageKind, StageSpec
from repro.host.vm import HostVM, HostVmSpec

__all__ = [
    "BatchCost",
    "Dataset",
    "HostVM",
    "HostVmSpec",
    "InputPipeline",
    "PipelineConfig",
    "StageCost",
    "StageKind",
    "StageSpec",
]
