"""Host virtual-machine model.

The paper's experiments ran each workload from a Compute Engine VM with a
16-core, 2-way-SMT Intel Skylake CPU and 104 GB of memory. The VM model
answers one question for the input pipeline: how much does spreading work
across ``n`` threads actually speed it up? Parallel efficiency falls off
with contention, and SMT threads contribute less than physical cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro import units


@dataclass(frozen=True)
class HostVmSpec:
    """Static description of the host VM."""

    physical_cores: int = 16
    smt_ways: int = 2
    memory_bytes: float = 104 * units.GIB
    smt_yield: float = 0.35  # extra throughput an SMT sibling contributes
    parallel_efficiency: float = 0.92  # per-doubling efficiency under contention

    def __post_init__(self) -> None:
        if self.physical_cores <= 0 or self.smt_ways <= 0:
            raise ConfigurationError("core counts must be positive")
        if not 0.0 <= self.smt_yield <= 1.0:
            raise ConfigurationError("smt_yield must be in [0, 1]")
        if not 0.0 < self.parallel_efficiency <= 1.0:
            raise ConfigurationError("parallel_efficiency must be in (0, 1]")

    @property
    def vcpus(self) -> int:
        """Logical CPU count exposed to the guest."""
        return self.physical_cores * self.smt_ways


class HostVM:
    """Executable view of a host VM: thread-scaling and CPU-time costing."""

    def __init__(self, spec: HostVmSpec | None = None):
        self.spec = spec or HostVmSpec()

    def effective_parallelism(self, num_threads: int) -> float:
        """Throughput multiplier achieved by ``num_threads`` workers.

        Scales sub-linearly (contention) up to the physical core count,
        then SMT siblings add ``smt_yield`` each, and threads beyond the
        vCPU count add nothing.
        """
        if num_threads <= 0:
            raise ConfigurationError("num_threads must be positive")
        spec = self.spec
        capped = min(num_threads, spec.vcpus)
        physical = min(capped, spec.physical_cores)
        smt_extra = max(0, capped - spec.physical_cores)
        raw = physical + smt_extra * spec.smt_yield
        # Contention: each doubling of workers only retains parallel_efficiency.
        if raw <= 1.0:
            return raw
        import math

        doublings = math.log2(raw)
        return raw * (spec.parallel_efficiency**doublings)

    def parallel_time_us(self, serial_cpu_us: float, num_threads: int) -> float:
        """Wall time to burn ``serial_cpu_us`` of CPU work on ``num_threads``."""
        if serial_cpu_us < 0:
            raise ConfigurationError("serial_cpu_us must be non-negative")
        return serial_cpu_us / self.effective_parallelism(num_threads)
