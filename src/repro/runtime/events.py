"""Trace events and the event log.

A running workload emits a stream of :class:`TraceEvent` records — one per
operator execution on either device — plus one :class:`StepMetadata`
record per training step carrying the device counters (idle time, MXU
FLOPs) that the real Cloud TPU attaches to profile responses. The
:class:`EventLog` buffers both with cursor-based reads so the profile
service can serve bounded windows without copying history.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SimulationError


class DeviceKind(enum.Enum):
    """Which processor an event ran on."""

    HOST = "host"
    TPU = "tpu"


class StepKind(enum.Enum):
    """Coarse role of a step in the training timeline."""

    INIT = "init"
    TRAIN = "train"
    EVAL = "eval"
    CHECKPOINT = "checkpoint"
    SHUTDOWN = "shutdown"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One operator execution."""

    name: str
    device: DeviceKind
    step: int
    start_us: float
    duration_us: float

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


@dataclass(frozen=True, slots=True)
class StepMetadata:
    """Per-step device counters reported alongside events."""

    step: int
    kind: StepKind
    start_us: float
    end_us: float
    tpu_idle_us: float
    mxu_flops: float

    @property
    def elapsed_us(self) -> float:
        return self.end_us - self.start_us

    @property
    def idle_fraction(self) -> float:
        if self.elapsed_us <= 0:
            return 0.0
        return min(self.tpu_idle_us / self.elapsed_us, 1.0)


@dataclass
class EventLog:
    """Append-only buffer of events and step metadata."""

    events: list[TraceEvent] = field(default_factory=list)
    steps: list[StepMetadata] = field(default_factory=list)

    def append_event(self, event: TraceEvent) -> None:
        """Record an operator execution."""
        self.events.append(event)

    def append_step(self, metadata: StepMetadata) -> None:
        """Record a completed step; steps must arrive in order."""
        if self.steps and metadata.step <= self.steps[-1].step:
            raise SimulationError(
                f"step metadata out of order: {metadata.step} after {self.steps[-1].step}"
            )
        self.steps.append(metadata)

    @property
    def num_events(self) -> int:
        return len(self.events)

    @property
    def last_time_us(self) -> float:
        """End time of the latest event recorded (0 when empty)."""
        if not self.events:
            return 0.0
        return self.events[-1].end_us

    def events_since(self, cursor: int, limit: int | None = None) -> tuple[list[TraceEvent], int]:
        """Events after ``cursor``; returns (events, new_cursor)."""
        if cursor < 0 or cursor > len(self.events):
            raise SimulationError(f"invalid event cursor {cursor}")
        end = len(self.events) if limit is None else min(len(self.events), cursor + limit)
        return self.events[cursor:end], end

    def steps_between(self, start_us: float, end_us: float) -> list[StepMetadata]:
        """Step metadata whose interval overlaps [start_us, end_us)."""
        return [
            meta
            for meta in self.steps
            if meta.end_us > start_us and meta.start_us < end_us
        ]
