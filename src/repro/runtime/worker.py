"""Workers: execute compiled programs and emit trace events.

The TensorFlow master hands subgraphs to workers, which run kernels and
manage communication (Section II-B). Here the :class:`TpuWorker` replays
a compiled TPU schedule on the device model, and the :class:`HostWorker`
lays the host-side pipeline and runtime operators onto the timeline. Both
append :class:`TraceEvent` records to the session's event log — the raw
material the profiler samples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.pipeline import BatchCost
from repro.runtime.events import DeviceKind, EventLog, TraceEvent
from repro.runtime.master import CompiledProgram
from repro.tpu.device import StepExecution, TpuDevice


@dataclass
class TpuWorker:
    """Executes the TPU side of a compiled program, step by step."""

    device: TpuDevice
    log: EventLog

    def execute_step(
        self,
        program: CompiledProgram,
        step: int,
        start_us: float,
        infeed_ready_us: float,
    ) -> StepExecution:
        """Run one step's TPU schedule and log its operator events."""
        execution = self.device.execute_step(
            step_number=step,
            schedule=program.tpu_schedule,
            start_us=start_us,
            infeed_ready_us=infeed_ready_us,
        )
        for op_execution in execution.executions:
            self.log.append_event(
                TraceEvent(
                    name=op_execution.name,
                    device=DeviceKind.TPU,
                    step=step,
                    start_us=op_execution.start_us,
                    duration_us=op_execution.duration_us,
                )
            )
        return execution


@dataclass
class HostWorker:
    """Emits host-side operator events for pipeline and runtime work."""

    log: EventLog

    def emit_batch_production(
        self, cost: BatchCost, step: int, ready_at_us: float, backpressure_us: float = 0.0
    ) -> None:
        """Log the host ops that produced one batch, ending at ``ready_at_us``.

        The batch's stage costs are laid out serially so that the final
        (transfer) op finishes exactly when the batch becomes available to
        the TPU. ``backpressure_us`` extends the transfer op: it is the
        time the producer spent blocked on a full infeed queue, which is
        precisely what makes ``TransferBufferToInfeedLocked`` a dominant
        host operator on TPU-bound workloads.
        """
        op_durations = cost.op_durations()
        total = sum(duration for _, duration in op_durations) + backpressure_us
        # Charge the blocked time to the locked infeed-DMA op itself; if a
        # pipeline has no such op, the final stage absorbs it.
        blocked_index = len(op_durations) - 1
        for index, (name, _) in enumerate(op_durations):
            if name == "TransferBufferToInfeedLocked":
                blocked_index = index
                break
        start = ready_at_us - total
        now = start
        for index, (name, duration) in enumerate(op_durations):
            if backpressure_us > 0 and index == blocked_index:
                duration += backpressure_us
            self.log.append_event(
                TraceEvent(
                    name=name,
                    device=DeviceKind.HOST,
                    step=step,
                    start_us=now,
                    duration_us=duration,
                )
            )
            now += duration

    def emit_op(self, name: str, step: int, start_us: float, duration_us: float) -> None:
        """Log a single host runtime operator."""
        self.log.append_event(
            TraceEvent(
                name=name,
                device=DeviceKind.HOST,
                step=step,
                start_us=start_us,
                duration_us=duration_us,
            )
        )
