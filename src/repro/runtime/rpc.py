"""gRPC-style profile service.

The real Cloud TPU exposes profiling through client→master gRPC calls;
each response may carry at most 1,000,000 events spanning at most
60,000 ms (Section III-A). This module reproduces that interface: the
:class:`ProfileService` sits between a running session's event log and
the TPUPoint profiler thread, serving bounded windows per request. The
profiler never touches the log directly — only request/response pairs —
so the boundary matches the paper's architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProfileServiceError
from repro.runtime.events import EventLog, StepMetadata, TraceEvent

MAX_EVENTS_PER_PROFILE = 1_000_000
MAX_PROFILE_DURATION_MS = 60_000.0


@dataclass(frozen=True)
class ProfileRequest:
    """A profile request issued by a client stub.

    Attributes:
        max_events: event cap for the response (clamped to the service cap).
        max_duration_ms: window cap in milliseconds (clamped likewise).
        deadline_ms: client-side deadline for this request. The plain
            service always answers instantly and ignores it; a faulty
            service (:class:`repro.faults.FaultyProfileService`) honours
            it when injecting delays, surfacing DEADLINE_EXCEEDED.
    """

    max_events: int = MAX_EVENTS_PER_PROFILE
    max_duration_ms: float = MAX_PROFILE_DURATION_MS
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.max_events <= 0:
            raise ProfileServiceError("max_events must be positive")
        if self.max_duration_ms <= 0:
            raise ProfileServiceError("max_duration_ms must be positive")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ProfileServiceError("deadline_ms must be positive when set")


@dataclass(frozen=True)
class ProfileResponse:
    """One served profile window.

    Attributes:
        events: operator executions inside the window, in order.
        step_metadata: per-step device counters overlapping the window.
        window_start_us / window_end_us: the window bounds.
        truncated: True when the event or duration cap cut the window short.
        final: True when the session is finished and the log is drained.
    """

    events: tuple[TraceEvent, ...]
    step_metadata: tuple[StepMetadata, ...]
    window_start_us: float
    window_end_us: float
    truncated: bool
    final: bool

    @property
    def num_events(self) -> int:
        return len(self.events)

    @property
    def duration_ms(self) -> float:
        return (self.window_end_us - self.window_start_us) / 1000.0


@dataclass
class ProfileService:
    """Serves sequential profile windows over one session's event log."""

    log: EventLog
    _cursor: int = 0
    _window_start_us: float = 0.0
    requests_served: int = field(default=0)

    def session_finished(self) -> bool:
        """Hook the session overrides; default assumes still running."""
        return False

    @property
    def window_start_us(self) -> float:
        """Where the next served window will begin."""
        return self._window_start_us

    def serve(self, request: ProfileRequest, finished: bool | None = None) -> ProfileResponse:
        """Serve the next profile window after the previous one.

        ``finished`` tells the service the training session has ended, so
        the response drains the remaining events and is marked final.
        """
        max_events = min(request.max_events, MAX_EVENTS_PER_PROFILE)
        max_duration_us = min(request.max_duration_ms, MAX_PROFILE_DURATION_MS) * 1000.0
        if finished is None:
            finished = self.session_finished()

        pending, _ = self.log.events_since(self._cursor)
        window_start = self._window_start_us
        window_limit = window_start + max_duration_us

        taken: list[TraceEvent] = []
        truncated = False
        for event in pending:
            if event.end_us > window_limit:
                truncated = True
                break
            if len(taken) >= max_events:
                truncated = True
                break
            taken.append(event)

        if taken:
            window_end = max(event.end_us for event in taken)
        elif truncated:
            window_end = window_limit
        else:
            window_end = max(window_start, self.log.last_time_us)

        self._cursor += len(taken)
        self._window_start_us = window_end
        self.requests_served += 1

        remaining = self.log.num_events - self._cursor
        return ProfileResponse(
            events=tuple(taken),
            step_metadata=tuple(self.log.steps_between(window_start, window_end)),
            window_start_us=window_start,
            window_end_us=window_end,
            truncated=truncated,
            final=finished and remaining == 0,
        )


class ProfileStub:
    """Client-side stub, mirroring a gRPC channel to the master."""

    def __init__(self, service: ProfileService):
        self._service = service

    @property
    def service(self) -> ProfileService:
        """The service (or service shim) behind this stub."""
        return self._service

    def request_profile(
        self,
        max_events: int = MAX_EVENTS_PER_PROFILE,
        max_duration_ms: float = MAX_PROFILE_DURATION_MS,
        finished: bool | None = None,
    ) -> ProfileResponse:
        """Issue one profile request and return the response."""
        return self._service.serve(
            ProfileRequest(max_events=max_events, max_duration_ms=max_duration_ms),
            finished=finished,
        )
