"""Training session: the simulated TensorFlow step loop.

The session stitches every substrate together: the host input pipeline
produces batches (with bounded-buffer backpressure controlled by the
prefetch depth), the TPU worker consumes them step by step, checkpoints
are written to storage on a cadence, and eval rounds interleave with
training. Every operator lands in the event log as a timed
:class:`TraceEvent`, and every step appends a :class:`StepMetadata`
record — exactly the stream the TPUPoint profiler samples.

Timing model for one training step ``i`` (prefetch depth ``B``):

* the producer may start batch ``i`` once it finished batch ``i-1`` *and*
  a queue slot is free (the TPU started consuming batch ``i-B``);
* the TPU asks for batch ``i`` when step ``i-1`` finished; the difference
  between asking and the batch being ready is infeed stall — TPU idle
  time attributed to the ``InfeedDequeueTuple`` operator;
* ``B = 0`` disables overlap entirely: the host starts producing only
  when the TPU asks (the fully naive pipeline).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.host.pipeline import InputPipeline
from repro.runtime.clock import SimClock
from repro.runtime.events import DeviceKind, EventLog, StepKind, StepMetadata, TraceEvent
from repro.runtime.master import CompiledProgram
from repro.runtime.worker import HostWorker, TpuWorker
from repro.storage.checkpoints import Checkpoint, CheckpointStore
from repro.tpu.device import TpuDevice

# Fixed host-runtime costs (microseconds).
_INIT_TPU_US = 1_500_000.0  # InitializeHostForDistributedTpu
_DISCONNECT_US = 500_000.0  # DisconnectHostFromDistributedTPUSystem
_RUN_GRAPH_US = 60_000.0  # per-loop session driver (summaries, global step)
_SEND_RECV_US = 1_200.0  # per-loop coordination messages
_OUTFEED_DEQUEUE_MIN_US = 150.0  # floor for the blocking dequeue op
_CHECKPOINT_SERIALIZE_US_PER_MB = 250.0

# Optional bookkeeping operators that appear in a step's event set with a
# fixed probability (see TrainingSession._emit_incidental_ops).
_INCIDENTAL_OPS: tuple[tuple[str, DeviceKind, float], ...] = (
    ("IteratorGetNext", DeviceKind.HOST, 0.030),
    ("Shape", DeviceKind.HOST, 0.012),
    ("StridedSlice", DeviceKind.HOST, 0.010),
    ("Identity", DeviceKind.HOST, 0.008),
    ("NoOp", DeviceKind.HOST, 0.008),
    ("Range", DeviceKind.HOST, 0.006),
    ("Copy", DeviceKind.TPU, 0.012),
    ("collective-permute", DeviceKind.TPU, 0.006),
)


@dataclass(frozen=True)
class SessionPlan:
    """What one training run should execute.

    Attributes:
        train_steps: number of training steps.
        batch_size: examples per step.
        iterations_per_loop: steps per host RunGraph loop.
        eval_every: run an eval round every N train steps (0 = never).
        eval_steps: eval iterations per eval round.
        checkpoint_every: save a checkpoint every N train steps
            (0 = only the final checkpoint).
        checkpoint_bytes: serialized model size.
        warm_start: restore the latest checkpoint during initialization.
        incidental_scale: multiplier on the per-step probability of
            incidental bookkeeping operators; heavy streaming input
            pipelines (large image datasets) churn their iterator state
            more, producing more step-to-step event-set variation.
    """

    train_steps: int
    batch_size: int
    iterations_per_loop: int = 100
    eval_every: int = 0
    eval_steps: int = 0
    checkpoint_every: int = 0
    checkpoint_bytes: float = 350e6
    warm_start: bool = False
    incidental_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.train_steps <= 0 or self.batch_size <= 0:
            raise ConfigurationError("train_steps and batch_size must be positive")
        if self.iterations_per_loop <= 0:
            raise ConfigurationError("iterations_per_loop must be positive")
        if self.eval_every < 0 or self.eval_steps < 0 or self.checkpoint_every < 0:
            raise ConfigurationError("cadence values must be non-negative")
        if self.eval_every and self.eval_steps <= 0:
            raise ConfigurationError("eval_every requires eval_steps > 0")
        if self.incidental_scale < 0:
            raise ConfigurationError("incidental_scale must be non-negative")


@dataclass(frozen=True)
class SessionSummary:
    """Aggregate outcome of a finished session."""

    wall_us: float
    tpu_busy_us: float
    mxu_flops: float
    peak_flops: float
    steps_executed: int
    events_recorded: int

    @property
    def tpu_idle_fraction(self) -> float:
        """Fraction of the whole run the TPU spent idle."""
        if self.wall_us <= 0:
            return 0.0
        return max(0.0, 1.0 - self.tpu_busy_us / self.wall_us)

    @property
    def mxu_utilization(self) -> float:
        """Achieved matrix FLOPs over the whole run against peak."""
        if self.wall_us <= 0:
            return 0.0
        achieved = self.mxu_flops / (self.wall_us / 1e6)
        return min(achieved / self.peak_flops, 1.0)


StepHook = Callable[["TrainingSession", StepMetadata], None]


class TrainingSession:
    """Simulated execution of one workload on one TPU instance."""

    def __init__(
        self,
        plan: SessionPlan,
        pipeline: InputPipeline,
        device: TpuDevice,
        train_program: CompiledProgram,
        checkpoint_store: CheckpointStore,
        rng: np.random.Generator,
        eval_program: CompiledProgram | None = None,
    ):
        self.plan = plan
        self.pipeline = pipeline
        self.device = device
        self.train_program = train_program
        self.eval_program = eval_program or train_program
        self.checkpoint_store = checkpoint_store
        self.rng = rng
        self.clock = SimClock()
        self.log = EventLog()
        self.tpu_worker = TpuWorker(device, self.log)
        self.host_worker = HostWorker(self.log)
        self._hooks: list[StepHook] = []

        # Execution state.
        self._initialized = False
        self._finalized = False
        self._global_step = 0  # train steps completed
        self._profile_step = 0  # monotonically increasing metadata index
        self._producer_free_us = 0.0  # when the host may start the next batch
        self._pop_times: deque[float] = deque()  # infeed queue slot frees
        self._outfeed_free_us = 0.0  # when the dequeue thread went back to waiting

    # --- public surface ---------------------------------------------------

    @property
    def global_step(self) -> int:
        """Training steps completed so far."""
        return self._global_step

    @property
    def initialized(self) -> bool:
        """Whether initialization has completed."""
        return self._initialized

    @property
    def finished(self) -> bool:
        """Whether the session ran to completion and was finalized."""
        return self._finalized

    def add_step_hook(self, hook: StepHook) -> None:
        """Register a callback invoked after every step's metadata lands."""
        self._hooks.append(hook)

    def checkpoint_now(self) -> None:
        """Force a checkpoint at the current global step.

        TPUPoint-Optimizer instruments the program to checkpoint before
        segments it is about to tune, enabling rollback/fast-forward.
        No-op when the current step is already checkpointed.
        """
        if not self._initialized or self._finalized:
            raise SimulationError("checkpoint_now requires a live session")
        last = self.checkpoint_store.checkpoints[-1].step if len(self.checkpoint_store) else -1
        if last != self._global_step:
            self._run_checkpoint()

    def run(self) -> SessionSummary:
        """Execute the whole plan and return the summary."""
        self.initialize()
        self.run_steps(self.plan.train_steps - self._global_step)
        return self.finalize()

    def summary(self) -> SessionSummary:
        """Aggregate metrics over everything executed so far."""
        return SessionSummary(
            wall_us=self.clock.now_us,
            tpu_busy_us=self.device.total_busy_us,
            mxu_flops=self.device.total_mxu_flops,
            peak_flops=self.device.spec.peak_flops,
            steps_executed=self._profile_step,
            events_recorded=self.log.num_events,
        )

    # --- lifecycle ---------------------------------------------------------

    def initialize(self) -> None:
        """TPU system init, program compilation, optional warm restore."""
        if self._initialized:
            raise SimulationError("session already initialized")
        start = self.clock.now_us
        now = start
        self.host_worker.emit_op("InitializeHostForDistributedTpu", 0, now, _INIT_TPU_US)
        now += _INIT_TPU_US
        self.host_worker.emit_op("StartProgram", 0, now, self.train_program.compile_time_us)
        now += self.train_program.compile_time_us
        if self.plan.warm_start and len(self.checkpoint_store):
            checkpoint = self.checkpoint_store.latest()
            restore_us = self.checkpoint_store.restore_time_us(checkpoint)
            self.host_worker.emit_op("RestoreV2", 0, now, restore_us)
            now += restore_us
            self._global_step = checkpoint.step
        self.clock.advance_to(now)
        self._record_step(StepKind.INIT, start, now, idle_us=now - start, mxu_flops=0.0)
        self._producer_free_us = now
        self._outfeed_free_us = now
        self._initialized = True

    def run_steps(self, count: int) -> int:
        """Run up to ``count`` training steps (plus cadenced eval/checkpoints).

        Returns the number of train steps actually executed, which may be
        less than requested when the plan's step budget runs out.
        """
        if not self._initialized:
            raise SimulationError("initialize() must run before run_steps()")
        if self._finalized:
            raise SimulationError("session already finalized")
        executed = 0
        while executed < count and self._global_step < self.plan.train_steps:
            self._run_train_step()
            executed += 1
            if (
                self.plan.checkpoint_every
                and self._global_step % self.plan.checkpoint_every == 0
                and self._global_step < self.plan.train_steps
            ):
                self._run_checkpoint()
            if (
                self.plan.eval_every
                and self._global_step % self.plan.eval_every == 0
                and self._global_step < self.plan.train_steps
            ):
                self._run_eval_round()
        return executed

    def finalize(self) -> SessionSummary:
        """Final checkpoint, disconnect, and summary."""
        if not self._initialized:
            raise SimulationError("initialize() must run before finalize()")
        if self._finalized:
            raise SimulationError("session already finalized")
        if self._global_step < self.plan.train_steps:
            raise SimulationError(
                f"cannot finalize at step {self._global_step} of {self.plan.train_steps}"
            )
        last_saved = self.checkpoint_store.checkpoints[-1].step if len(self.checkpoint_store) else -1
        if last_saved != self._global_step:
            self._run_checkpoint()
        start = self.clock.now_us
        self.host_worker.emit_op(
            "DisconnectHostFromDistributedTPUSystem", self._profile_step, start, _DISCONNECT_US
        )
        end = start + _DISCONNECT_US
        self.clock.advance_to(end)
        self._record_step(StepKind.SHUTDOWN, start, end, idle_us=end - start, mxu_flops=0.0)
        self._finalized = True
        return self.summary()

    # --- step execution ----------------------------------------------------------

    def _run_train_step(self) -> None:
        self._run_compute_step(self.train_program, StepKind.TRAIN)
        self._global_step += 1
        if self._global_step % self.plan.iterations_per_loop == 0:
            self._emit_loop_boundary()

    def _run_compute_step(self, program: CompiledProgram, kind: StepKind) -> None:
        step = self._profile_step
        ask_at = self.clock.now_us
        cost = self.pipeline.batch_cost(self.plan.batch_size, self.rng)

        # Bounded-buffer producer: wait for our turn and for a free slot.
        depth = self.pipeline.config.prefetch_depth
        if depth == 0:
            gate = max(self._producer_free_us, ask_at)
        elif len(self._pop_times) >= depth:
            gate = max(self._producer_free_us, self._pop_times[-depth])
        else:
            gate = self._producer_free_us
        backpressure = max(0.0, gate - self._producer_free_us)
        ready_at = gate + cost.total_wall_us
        self._producer_free_us = ready_at
        self.host_worker.emit_batch_production(cost, step, ready_at, backpressure)

        execution = self.tpu_worker.execute_step(
            program, step, start_us=ask_at, infeed_ready_us=ready_at
        )
        # The infeed pop frees a queue slot when the TPU starts consuming.
        self._pop_times.append(execution.start_us)
        if len(self._pop_times) > max(depth, 1) + 1:
            self._pop_times.popleft()

        # Host-side blocking dequeue of this step's results.
        outfeed_done = max(execution.end_us, self._outfeed_free_us) + _OUTFEED_DEQUEUE_MIN_US
        self.host_worker.emit_op(
            "OutfeedDequeueTuple",
            step,
            self._outfeed_free_us,
            outfeed_done - self._outfeed_free_us,
        )
        self._outfeed_free_us = outfeed_done

        self._emit_incidental_ops(step, execution.start_us)
        self.clock.advance_to(execution.end_us)
        self._record_step(
            kind,
            execution.start_us,
            execution.end_us,
            idle_us=execution.idle_us,
            mxu_flops=execution.mxu_flops,
        )

    def _run_eval_round(self) -> None:
        for _ in range(self.plan.eval_steps):
            self._run_compute_step(self.eval_program, StepKind.EVAL)
            self.host_worker.emit_op(
                "BuildPaddedOutput", self._profile_step - 1, self.clock.now_us, 800.0
            )

    def _run_checkpoint(self) -> None:
        """Save a checkpoint between steps.

        Checkpoints are host work: the TPU has no step number for them,
        so the SaveV2 event is attributed to the last executed TPU step
        (whose global step the checkpoint carries) and no step metadata
        is recorded — matching how Cloud TPU step numbers behave.
        """
        start = self.clock.now_us
        checkpoint = Checkpoint(
            step=self._global_step, saved_at_us=start, num_bytes=self.plan.checkpoint_bytes
        )
        write_us = self.checkpoint_store.save(checkpoint)
        serialize_us = self.plan.checkpoint_bytes / 1e6 * _CHECKPOINT_SERIALIZE_US_PER_MB
        duration = serialize_us + write_us
        self.host_worker.emit_op("SaveV2", max(self._profile_step - 1, 0), start, duration)
        end = start + duration
        self.clock.advance_to(end)
        # The producer keeps running ahead during the save, but the dequeue
        # thread idles until training resumes.
        self._outfeed_free_us = max(self._outfeed_free_us, end)

    def _emit_incidental_ops(self, step: int, start_us: float) -> None:
        """Small, irregular host/TPU bookkeeping ops within a step.

        Real profiles never show perfectly identical event sets step after
        step: iterator bookkeeping, shape queries, and occasional copies
        come and go. Each optional op appears with a fixed probability, so
        consecutive steps usually share most — but not all — of their
        event set. This is what gives the OLS StepSimilarity sweep its
        shape (few phases at the 70% threshold, many at 100%).
        """
        now = start_us
        for name, device, probability in _INCIDENTAL_OPS:
            scaled = min(probability * self.plan.incidental_scale, 0.5)
            if self.rng.random() >= scaled:
                continue
            duration = 20.0 + float(self.rng.random()) * 120.0
            if device is DeviceKind.HOST:
                self.host_worker.emit_op(name, step, now, duration)
            else:
                self.log.append_event(
                    TraceEvent(
                        name=name,
                        device=DeviceKind.TPU,
                        step=step,
                        start_us=now,
                        duration_us=duration,
                    )
                )
            now += duration

    def _emit_loop_boundary(self) -> None:
        """Host work at an iterations_per_loop boundary.

        The TPU sits idle while the host driver processes outfeed
        summaries and advances the training loop — a real source of TPU
        idle time that grows with loop frequency.
        """
        now = self.clock.now_us
        step = self._profile_step - 1
        self.host_worker.emit_op("RunGraph", step, now, _RUN_GRAPH_US)
        self.host_worker.emit_op("Send", step, now + _RUN_GRAPH_US, _SEND_RECV_US)
        self.host_worker.emit_op("Recv", step, now + _RUN_GRAPH_US + _SEND_RECV_US, _SEND_RECV_US)
        self.clock.advance(_RUN_GRAPH_US + 2 * _SEND_RECV_US)
        self._outfeed_free_us = max(self._outfeed_free_us, self.clock.now_us)

    # --- bookkeeping -------------------------------------------------------------

    def _record_step(
        self, kind: StepKind, start_us: float, end_us: float, idle_us: float, mxu_flops: float
    ) -> None:
        metadata = StepMetadata(
            step=self._profile_step,
            kind=kind,
            start_us=start_us,
            end_us=end_us,
            tpu_idle_us=idle_us,
            mxu_flops=mxu_flops,
        )
        self.log.append_step(metadata)
        self._profile_step += 1
        for hook in self._hooks:
            hook(self, metadata)
