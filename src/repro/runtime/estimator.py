"""TPUEstimator-like front end.

TPU training runs through TensorFlow's high-level ``TPUEstimator`` API
(Figure 2 of the paper). This mirror of that API owns device selection,
graph compilation, pipeline construction, and the training session, so
user code — and the TPUPoint toolchain — interacts with one object:

>>> estimator = TPUEstimator(model_graph, pipeline_factory, plan, "v2")
>>> summary = estimator.train()

The estimator exposes the hooks TPUPoint needs: the live session's event
log (through the profile service), step hooks, and a mutable pipeline
configuration for online tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import SimulationError
from repro.graph.graph import Graph
from repro.host.pipeline import InputPipeline, PipelineConfig
from repro.runtime.master import CompiledProgram, compile_graph
from repro.runtime.rpc import ProfileService, ProfileStub
from repro.runtime.session import SessionPlan, SessionSummary, StepHook, TrainingSession
from repro.storage.bucket import Bucket
from repro.storage.checkpoints import CheckpointStore
from repro.tpu.device import TpuDevice
from repro.tpu.slice import TpuSliceSpec
from repro.tpu.specs import TpuGeneration, chip_spec

PipelineFactory = Callable[[PipelineConfig, Bucket], InputPipeline]


@dataclass
class TPUEstimator:
    """High-level training driver for one workload on one TPU instance.

    Attributes:
        train_graph: per-step training graph (compiled once per run).
        pipeline_factory: builds the input pipeline for a config+bucket.
        plan: session plan (steps, batch size, cadences).
        generation: TPU generation to run on ("v2"/"v3").
        pipeline_config: initial input-pipeline tuning knobs.
        eval_graph: optional distinct eval-step graph.
        rng: deterministic generator for per-batch jitter.
    """

    train_graph: Graph
    pipeline_factory: PipelineFactory
    plan: SessionPlan
    generation: TpuGeneration | str = TpuGeneration.V2
    pipeline_config: PipelineConfig | None = None
    eval_graph: Graph | None = None
    rng: np.random.Generator | None = None

    def __post_init__(self) -> None:
        if isinstance(self.generation, TpuSliceSpec):
            self.slice_spec: TpuSliceSpec | None = self.generation
            self.spec = self.generation.aggregate_chip_spec()
        else:
            self.slice_spec = None
            self.spec = chip_spec(self.generation)
        self.bucket = Bucket("training-bucket")
        self.checkpoint_store = CheckpointStore(self.bucket)
        self._session: TrainingSession | None = None
        self._train_program: CompiledProgram | None = None
        self._eval_program: CompiledProgram | None = None
        self._sdc_injector = None

    # --- compilation -----------------------------------------------------

    def compile(self) -> CompiledProgram:
        """Compile (fold/partition/fuse/lower) the training graph once."""
        if self._train_program is None:
            target = self.slice_spec if self.slice_spec is not None else self.spec
            self._train_program = compile_graph(self.train_graph, target)
            if self.eval_graph is not None:
                self._eval_program = compile_graph(self.eval_graph, target)
        return self._train_program

    # --- session management ------------------------------------------------

    @property
    def session(self) -> TrainingSession:
        """The live training session; created lazily."""
        if self._session is None:
            program = self.compile()
            config = self.pipeline_config or PipelineConfig()
            pipeline = self.pipeline_factory(config, self.bucket)
            device = TpuDevice(self.spec)
            if self._sdc_injector is not None:
                device.attach_sdc(self._sdc_injector)
            rng = self.rng if self.rng is not None else np.random.default_rng(0)
            self._session = TrainingSession(
                plan=self.plan,
                pipeline=pipeline,
                device=device,
                train_program=program,
                checkpoint_store=self.checkpoint_store,
                rng=rng,
                eval_program=self._eval_program,
            )
        return self._session

    def attach_sdc(self, injector) -> None:
        """Wire a silent-data-corruption injector into the device.

        Takes effect on the (possibly future) session's device; attach
        before training starts so the whole run shares one injector
        state. Pass an :class:`~repro.tpu.sdc.SdcInjector` (duck-typed
        here to keep the runtime layer free of fault imports).
        """
        self._sdc_injector = injector
        if self._session is not None:
            self._session.device.attach_sdc(injector)

    def add_step_hook(self, hook: StepHook) -> None:
        """Register a per-step callback on the (possibly future) session."""
        self.session.add_step_hook(hook)

    def profile_service(self) -> ProfileService:
        """A fresh profile service over the live session's event log."""
        return ProfileService(self.session.log)

    def profile_stub(self) -> ProfileStub:
        """A gRPC-style stub over the live session's event log."""
        return ProfileStub(self.profile_service())

    # --- training ----------------------------------------------------------

    def train(self) -> SessionSummary:
        """Run the plan to completion (resumes a partially run session)."""
        session = self.session
        if not session.initialized:
            session.initialize()
        session.run_steps(self.plan.train_steps - session.global_step)
        return session.finalize()

    def train_steps(self, count: int) -> int:
        """Run a bounded number of steps (used by online tuning)."""
        session = self.session
        if not session.initialized:
            session.initialize()
        return session.run_steps(count)

    def finalize(self) -> SessionSummary:
        """Finish the run (final checkpoint + shutdown)."""
        session = self.session
        if not session.initialized:
            raise SimulationError("cannot finalize a session that never ran")
        return session.finalize()

    # --- online tuning surface ------------------------------------------------

    def update_pipeline_config(self, config: PipelineConfig) -> None:
        """Swap the live pipeline's tuning knobs (correctness-preserving)."""
        self.session.pipeline.config = config

    def current_pipeline_config(self) -> PipelineConfig:
        """The live pipeline's tuning knobs."""
        return self.session.pipeline.config
