"""Master: graph placement, optimization, and lowering.

The TensorFlow master receives the client's graph, applies optimizations
(constant folding), partitions it across devices, and hands executable
subgraphs to workers (Section II-B). On TPUs the XLA compiler additionally
fuses compute chains. :func:`compile_graph` runs that pipeline and lowers
the TPU partition into the per-step op schedule the device model executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.constant_folding import FoldingReport, fold_constants
from repro.graph.fusion import FusionReport, fuse
from repro.graph.graph import Graph
from repro.graph.ops import CostKind, Operation
from repro.graph.partition import PartitionResult, partition
from repro.tpu.device import TpuOpCategory, TpuOpWork
from repro.tpu.mxu import MatmulShape, MxuModel
from repro.tpu.slice import TpuSliceSpec
from repro.tpu.specs import TpuChipSpec, TpuGeneration

# Fraction of chip peak available to non-MXU (vector) compute.
_VPU_PEAK_FRACTION = 0.04
# Fixed kernel-launch overhead per TPU op.
_KERNEL_LAUNCH_US = 2.0
# Per-step RPC/DMA setup latency of the infeed path (network-attached TPU).
_INFEED_LATENCY_US = 5_000.0
# Per-step host synchronization latency of the outfeed path.
_OUTFEED_SYNC_US = 4_000.0
# TPUv3 doubles the MXU count; the extra units are harder to keep filled,
# so achieved efficiency per FLOP of peak drops (the paper's QANet/RetinaNet
# flop-utilization numbers imply well under peak scaling).
_V3_FILL_PENALTY = 0.62
# Master-side compile cost per graph node (contributes to the INIT phase).
_COMPILE_US_PER_OP = 250.0


@dataclass
class CompiledProgram:
    """A lowered, per-step executable program.

    Attributes:
        tpu_schedule: ordered TPU op work items executed each step.
        host_ops: host-placed graph operations (run by the host worker).
        partition: the host/TPU split with boundary edges.
        folding: what constant folding removed.
        fusion: what the XLA-style pass fused.
        compile_time_us: simulated master/XLA compilation time.
    """

    tpu_schedule: list[TpuOpWork]
    host_ops: list[Operation]
    partition: PartitionResult
    folding: FoldingReport
    fusion: FusionReport
    compile_time_us: float

    @property
    def mxu_flops_per_step(self) -> float:
        """MXU FLOPs one step executes (for utilization planning)."""
        return sum(work.flops for work in self.tpu_schedule if work.uses_mxu)

    def op_names(self) -> list[str]:
        """Distinct TPU operator names in schedule order."""
        return list(dict.fromkeys(work.name for work in self.tpu_schedule))


def _mxu_efficiency(op: Operation, mxu: MxuModel) -> float:
    """Achievable MXU efficiency for an op.

    An explicit ``mxu_efficiency`` attribute wins: workload models use it
    to calibrate achieved-vs-peak FLOPs to published utilization numbers
    (layout, HBM pressure, and per-core batch effects the pure shape
    model cannot see). Otherwise the systolic shape model decides, with a
    default for convolutions/fusions that map onto the MXU well.
    """
    if "mxu_efficiency" in op.attrs:
        return float(op.attrs["mxu_efficiency"])
    if all(key in op.attrs for key in ("m", "k", "n")):
        shape = MatmulShape(
            m=op.attrs["m"], k=op.attrs["k"], n=op.attrs["n"], batch=op.attrs.get("batch", 1)
        )
        return mxu.shape_efficiency(shape)
    return 0.55


def _lower_compute(op: Operation, spec: TpuChipSpec, mxu: MxuModel) -> TpuOpWork:
    if op.kind.uses_mxu:
        mxu_flops = float(op.attrs.get("mxu_flops", op.flops))
    else:
        mxu_flops = 0.0
    vector_flops = max(0.0, op.flops - mxu_flops)
    vector_us = vector_flops / (spec.peak_flops * _VPU_PEAK_FRACTION) * 1e6
    efficiency = _mxu_efficiency(op, mxu) if mxu_flops else 1.0
    if spec.generation is TpuGeneration.V3:
        efficiency *= _V3_FILL_PENALTY
    return TpuOpWork(
        name=op.kind.name,
        category=TpuOpCategory.COMPUTE,
        flops=mxu_flops,
        efficiency=efficiency,
        uses_mxu=mxu_flops > 0,
        fixed_us=_KERNEL_LAUNCH_US + vector_us,
    )


def _lower_memory(op: Operation) -> TpuOpWork:
    return TpuOpWork(
        name=op.kind.name,
        category=TpuOpCategory.MEMORY,
        num_bytes=op.output_bytes,
        fixed_us=_KERNEL_LAUNCH_US,
    )


def compile_graph(
    graph: Graph,
    spec: TpuChipSpec | TpuSliceSpec,
) -> CompiledProgram:
    """Optimize, partition, fuse, and lower a model graph.

    ``spec`` may be a single chip or a data-parallel :class:`TpuSliceSpec`;
    slices cost ops against the aggregate device (timing-equivalent to
    sharding the batch) and pay a ring all-reduce over the ICI for the
    gradient exchange.
    """
    slice_spec: TpuSliceSpec | None = None
    if isinstance(spec, TpuSliceSpec):
        slice_spec = spec
        spec = spec.aggregate_chip_spec()
    folding = fold_constants(graph)
    part = partition(graph)

    # Fuse only the TPU side, the way XLA does: build a TPU-only view,
    # fuse it, and keep the host ops untouched.
    tpu_graph = Graph(f"{graph.name}/tpu")
    tpu_names = {op.name for op in part.tpu_ops}
    for op in part.tpu_ops:
        kept_inputs = tuple(name for name in op.inputs if name in tpu_names)
        tpu_graph.add(
            Operation(
                name=op.name,
                kind=op.kind,
                inputs=kept_inputs,
                shape=op.shape,
                flops=op.flops,
                attrs=dict(op.attrs),
            )
        )
    fusion_report = fuse(tpu_graph)

    mxu = MxuModel(spec)
    schedule: list[TpuOpWork] = []
    for op in tpu_graph.topological_order():
        cost = op.kind.cost
        if cost is CostKind.CONSTANT:
            continue
        if cost is CostKind.COMPUTE:
            schedule.append(_lower_compute(op, spec, mxu))
        elif cost is CostKind.MEMORY:
            if op.kind.name == "all-reduce" and slice_spec is not None:
                schedule.append(
                    TpuOpWork(
                        name=op.kind.name,
                        category=TpuOpCategory.SYNC,
                        fixed_us=_KERNEL_LAUNCH_US
                        + slice_spec.all_reduce_us(op.output_bytes),
                    )
                )
            else:
                schedule.append(_lower_memory(op))
        elif cost is CostKind.TRANSFER:
            category = (
                TpuOpCategory.INFEED
                if op.kind.name in ("InfeedDequeueTuple", "Infeed")
                else TpuOpCategory.OUTFEED
            )
            latency = (
                _INFEED_LATENCY_US
                if category is TpuOpCategory.INFEED
                else _OUTFEED_SYNC_US
            )
            schedule.append(
                TpuOpWork(
                    name=op.kind.name,
                    category=category,
                    num_bytes=op.output_bytes,
                    fixed_us=latency,
                )
            )
        else:  # CONTROL or host-ish ops that leaked onto the TPU partition
            schedule.append(
                TpuOpWork(name=op.kind.name, category=TpuOpCategory.SYNC, fixed_us=_KERNEL_LAUNCH_US)
            )

    compile_time = _COMPILE_US_PER_OP * max(len(graph), 1)
    return CompiledProgram(
        tpu_schedule=schedule,
        host_ops=part.host_ops,
        partition=part,
        folding=folding,
        fusion=fusion_report,
        compile_time_us=compile_time,
    )
