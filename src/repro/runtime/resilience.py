"""Resilient profile client: retries, backoff, and a circuit breaker.

The paper's profiler talks to the TPU master over gRPC, and real Cloud
TPU profile requests fail: transport errors, deadline timeouts, empty
windows. :class:`ResilientProfileStub` keeps the profiling thread alive
through all of that — it retries retryable failures with capped
exponential backoff plus deterministic jitter (the backoff elapses on a
simulation clock, never wall time), applies a per-request deadline, and
trips a :class:`CircuitBreaker` after repeated failures so a sick master
degrades the profiling cadence instead of killing the training run.

Everything is deterministic: jitter comes from a seeded
:mod:`repro.rng` stream, and the breaker's cooldown is counted in
requests rather than seconds, so the same fault plan always produces the
same retry/trip/degradation sequence — and the same metric values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import obs
from repro import rng as rng_mod
from repro.errors import CircuitOpenError, ConfigurationError, ProfileServiceError
from repro.runtime.clock import SimClock
from repro.runtime.rpc import (
    MAX_EVENTS_PER_PROFILE,
    MAX_PROFILE_DURATION_MS,
    ProfileRequest,
    ProfileResponse,
    ProfileStub,
)

_RETRIES_TOTAL = obs.counter(
    "repro_profiler_retries_total",
    "Profile requests retried after a retryable failure.",
).labels()
_FAILURES_TOTAL = obs.counter(
    "repro_profiler_request_failures_total",
    "Failed profile request attempts, by fault kind.",
    labels=("kind",),
)
_BACKOFF_MS_TOTAL = obs.counter(
    "repro_profiler_backoff_ms_total",
    "Simulated milliseconds the profile client spent backing off.",
).labels()
_CIRCUIT_TRIPS_TOTAL = obs.counter(
    "repro_profiler_circuit_trips_total",
    "Times the profile client's circuit breaker opened.",
).labels()
_CIRCUIT_SKIPS_TOTAL = obs.counter(
    "repro_profiler_circuit_skips_total",
    "Profile requests skipped while the circuit breaker was open.",
).labels()
_WINDOWS_ABANDONED_TOTAL = obs.counter(
    "repro_profiler_windows_abandoned_total",
    "Profile windows abandoned after exhausting every retry attempt.",
).labels()
_CIRCUIT_STATE = obs.gauge(
    "repro_profiler_circuit_state",
    "State of the most recently active circuit breaker "
    "(0 closed, 1 half-open, 2 open).",
).labels()

_STATE_VALUES = {"closed": 0, "half_open": 1, "open": 2}


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff knobs for the resilient profile client."""

    max_attempts: int = 5
    base_backoff_ms: float = 50.0
    backoff_multiplier: float = 2.0
    max_backoff_ms: float = 1600.0
    jitter_fraction: float = 0.25
    deadline_ms: float | None = 1000.0

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ConfigurationError("max_attempts must be positive")
        if self.base_backoff_ms < 0 or self.max_backoff_ms < 0:
            raise ConfigurationError("backoff bounds must be non-negative")
        if self.max_backoff_ms < self.base_backoff_ms:
            raise ConfigurationError("max_backoff_ms must be >= base_backoff_ms")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ConfigurationError("jitter_fraction must be in [0, 1]")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ConfigurationError("deadline_ms must be positive when set")

    def backoff_ms(self, attempt: int, jitter: float) -> float:
        """Backoff before retry ``attempt`` (1-based), jitter in [0, 1)."""
        raw = min(
            self.base_backoff_ms * self.backoff_multiplier ** (attempt - 1),
            self.max_backoff_ms,
        )
        # Symmetric jitter: +/- jitter_fraction around the raw backoff.
        return raw * (1.0 + self.jitter_fraction * (2.0 * jitter - 1.0))


class BreakerState(enum.Enum):
    """Circuit breaker states (the classic three-state machine)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Opens after consecutive failures; cooldown is counted in requests.

    While OPEN, :meth:`allow` denies ``cooldown_requests`` calls (each
    denial is one skipped profile window — the degraded cadence), then
    moves to HALF_OPEN and lets one probe through. A successful probe
    closes the breaker; a failed one re-opens it.
    """

    def __init__(self, failure_threshold: int = 8, cooldown_requests: int = 4):
        if failure_threshold <= 0:
            raise ConfigurationError("failure_threshold must be positive")
        if cooldown_requests <= 0:
            raise ConfigurationError("cooldown_requests must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown_requests = cooldown_requests
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self.skips = 0
        self._cooldown_left = 0

    def allow(self) -> bool:
        """Whether the next request may be attempted."""
        if self.state is BreakerState.OPEN:
            if self._cooldown_left > 0:
                self._cooldown_left -= 1
                self.skips += 1
                return False
            self.state = BreakerState.HALF_OPEN
        return True

    def record_success(self) -> None:
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0

    def record_failure(self) -> bool:
        """Count one failure; returns True when this failure trips it open."""
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN or (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = BreakerState.OPEN
            self.trips += 1
            self._cooldown_left = self.cooldown_requests
            return True
        return False

    def force_probe(self) -> None:
        """Skip the rest of the cooldown (the final drain uses this)."""
        if self.state is BreakerState.OPEN:
            self._cooldown_left = 0


def client_from_config(config: dict) -> tuple[RetryPolicy, CircuitBreaker]:
    """Build the client policy pair from a fault plan's ``client`` block."""
    if not isinstance(config, dict):
        raise ConfigurationError("client policy must be an object")
    retry_keys = {
        "max_attempts", "base_backoff_ms", "backoff_multiplier",
        "max_backoff_ms", "jitter_fraction", "deadline_ms",
    }
    breaker_keys = {"breaker_threshold", "breaker_cooldown"}
    unknown = set(config) - retry_keys - breaker_keys
    if unknown:
        raise ConfigurationError(
            f"unknown client policy fields: {', '.join(sorted(unknown))}"
        )
    policy = RetryPolicy(**{key: config[key] for key in retry_keys if key in config})
    breaker = CircuitBreaker(
        failure_threshold=config.get("breaker_threshold", 8),
        cooldown_requests=config.get("breaker_cooldown", 4),
    )
    return policy, breaker


class ResilientProfileStub(ProfileStub):
    """A :class:`ProfileStub` that survives a misbehaving master."""

    def __init__(
        self,
        service,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        seed: int = 0,
        clock: SimClock | None = None,
    ):
        super().__init__(service)
        self.policy = policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self.clock = clock if clock is not None else SimClock()
        self._jitter_rng = rng_mod.stream("resilience:jitter", seed)
        self.retries = 0
        self.failures = 0
        self.windows_abandoned = 0
        self.backoff_ms_total = 0.0

    def request_profile(
        self,
        max_events: int = MAX_EVENTS_PER_PROFILE,
        max_duration_ms: float = MAX_PROFILE_DURATION_MS,
        finished: bool | None = None,
    ) -> ProfileResponse:
        """Issue one request, retrying retryable failures with backoff.

        Raises :class:`CircuitOpenError` when the breaker denies the
        request or opens mid-retry, and re-raises the last failure when
        every attempt is exhausted. In both cases the service's window
        cursor is untouched, so a later request recovers the same data —
        failures defer profile windows, they never lose them.
        """
        allowed = self.breaker.allow()
        _CIRCUIT_STATE.set(_STATE_VALUES[self.breaker.state.value])
        if not allowed:
            _CIRCUIT_SKIPS_TOTAL.inc()
            raise CircuitOpenError("profile circuit open; request skipped")
        attempt = 1
        while True:
            request = ProfileRequest(
                max_events=max_events,
                max_duration_ms=max_duration_ms,
                deadline_ms=self.policy.deadline_ms,
            )
            try:
                response = self._service.serve(request, finished=finished)
            except ProfileServiceError as error:
                if not getattr(error, "retryable", False):
                    raise
                self.failures += 1
                _FAILURES_TOTAL.labels(kind=str(getattr(error, "kind", "error"))).inc()
                if self.breaker.record_failure():
                    _CIRCUIT_TRIPS_TOTAL.inc()
                    _CIRCUIT_STATE.set(_STATE_VALUES[self.breaker.state.value])
                    raise CircuitOpenError(
                        f"profile circuit opened after "
                        f"{self.breaker.failure_threshold} consecutive failures"
                    ) from error
                if attempt >= self.policy.max_attempts:
                    self.windows_abandoned += 1
                    _WINDOWS_ABANDONED_TOTAL.inc()
                    raise
                backoff = self.policy.backoff_ms(attempt, float(self._jitter_rng.random()))
                self.backoff_ms_total += backoff
                _BACKOFF_MS_TOTAL.inc(backoff)
                self.clock.advance(backoff * 1000.0)
                self.retries += 1
                _RETRIES_TOTAL.inc()
                attempt += 1
                continue
            self.breaker.record_success()
            _CIRCUIT_STATE.set(_STATE_VALUES[self.breaker.state.value])
            return response

    def stats(self) -> dict:
        """Client-side resilience counters for this stub."""
        return {
            "retries": self.retries,
            "failures": self.failures,
            "windows_abandoned": self.windows_abandoned,
            "backoff_ms_total": self.backoff_ms_total,
            "circuit_trips": self.breaker.trips,
            "circuit_skips": self.breaker.skips,
        }
