"""Simulation clock.

A simple monotonic clock in microseconds. Components never read wall
time; everything is driven by the clock so runs are deterministic.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """Monotonic simulation time in microseconds."""

    def __init__(self, start_us: float = 0.0):
        self._now_us = float(start_us)

    @property
    def now_us(self) -> float:
        """Current simulation time."""
        return self._now_us

    def advance(self, delta_us: float) -> float:
        """Move time forward; negative deltas are rejected."""
        if delta_us < 0:
            raise SimulationError(f"cannot advance clock by {delta_us} us")
        self._now_us += delta_us
        return self._now_us

    def advance_to(self, time_us: float) -> float:
        """Jump to an absolute time at or after the current time."""
        if time_us < self._now_us:
            raise SimulationError(
                f"cannot move clock backwards from {self._now_us} to {time_us}"
            )
        self._now_us = time_us
        return self._now_us
