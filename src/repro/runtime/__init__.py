"""Execution substrate: clock, events, RPC, master, workers, sessions."""

from repro.runtime.clock import SimClock
from repro.runtime.estimator import TPUEstimator
from repro.runtime.events import DeviceKind, EventLog, StepKind, StepMetadata, TraceEvent
from repro.runtime.master import CompiledProgram, compile_graph
from repro.runtime.rpc import (
    MAX_EVENTS_PER_PROFILE,
    MAX_PROFILE_DURATION_MS,
    ProfileRequest,
    ProfileResponse,
    ProfileService,
    ProfileStub,
)
from repro.runtime.session import SessionPlan, SessionSummary, TrainingSession
from repro.runtime.worker import HostWorker, TpuWorker

__all__ = [
    "MAX_EVENTS_PER_PROFILE",
    "MAX_PROFILE_DURATION_MS",
    "CompiledProgram",
    "DeviceKind",
    "EventLog",
    "HostWorker",
    "ProfileRequest",
    "ProfileResponse",
    "ProfileService",
    "ProfileStub",
    "SessionPlan",
    "SessionSummary",
    "SimClock",
    "StepKind",
    "StepMetadata",
    "TPUEstimator",
    "TraceEvent",
    "TpuWorker",
    "TrainingSession",
]
