"""Unit helpers: bytes, durations, and FLOP quantities.

The simulation internally keeps time in **microseconds** (the unit used by
chrome://tracing and by TensorFlow profiles), sizes in **bytes**, and compute
in **FLOPs**. These helpers make literals in model definitions readable and
keep conversions in one place.
"""

from __future__ import annotations

# --- byte units (binary, as used in the paper's Table I) ------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

# --- time units (canonical unit: microseconds) -----------------------------

US = 1.0
MS = 1_000.0
SECOND = 1_000_000.0
MINUTE = 60 * SECOND
HOUR = 60 * MINUTE

# --- compute units ----------------------------------------------------------

KFLOP = 1e3
MFLOP = 1e6
GFLOP = 1e9
TFLOP = 1e12


def mib(value: float) -> float:
    """Convert mebibytes to bytes."""
    return value * MIB


def gib(value: float) -> float:
    """Convert gibibytes to bytes."""
    return value * GIB


def seconds(value: float) -> float:
    """Convert seconds to microseconds (the canonical simulation unit)."""
    return value * SECOND


def milliseconds(value: float) -> float:
    """Convert milliseconds to microseconds."""
    return value * MS


def minutes(value: float) -> float:
    """Convert minutes to microseconds."""
    return value * MINUTE


def us_to_seconds(value_us: float) -> float:
    """Convert microseconds back to seconds for reporting."""
    return value_us / SECOND


def us_to_ms(value_us: float) -> float:
    """Convert microseconds back to milliseconds for reporting."""
    return value_us / MS


def tflops(value: float) -> float:
    """Convert teraFLOP/s to FLOP/s."""
    return value * TFLOP


def format_bytes(num_bytes: float) -> str:
    """Render a byte count the way the paper's Table I does (MiB / GiB)."""
    if num_bytes >= GIB:
        return f"{num_bytes / GIB:.2f} GiB"
    if num_bytes >= MIB:
        return f"{num_bytes / MIB:.2f} MiB"
    if num_bytes >= KIB:
        return f"{num_bytes / KIB:.2f} KiB"
    return f"{num_bytes:.0f} B"


def format_duration(duration_us: float) -> str:
    """Render a duration with a sensible unit for logs and reports."""
    if duration_us >= MINUTE:
        return f"{duration_us / MINUTE:.2f} min"
    if duration_us >= SECOND:
        return f"{duration_us / SECOND:.2f} s"
    if duration_us >= MS:
        return f"{duration_us / MS:.2f} ms"
    return f"{duration_us:.1f} us"
