"""Run comparison tooling.

The paper's analysis repeatedly contrasts pairs of runs — TPUv2 against
TPUv3, full against reduced datasets, default against optimized
pipelines. This module makes those comparisons first-class: it aligns
two profiled runs' operator statistics and headline metrics and reports
the deltas, so "what changed between these runs?" is one call instead of
ad-hoc spreadsheet work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer.features import merge_records
from repro.core.profiler.record import ProfileRecord
from repro.errors import AnalyzerError
from repro.runtime.events import DeviceKind
from repro.runtime.session import SessionSummary


@dataclass(frozen=True)
class OperatorDelta:
    """One operator's time in each run and the ratio between them."""

    name: str
    device: DeviceKind
    duration_a_us: float
    duration_b_us: float

    @property
    def ratio(self) -> float:
        """B over A (>1 means the operator got more expensive)."""
        if self.duration_a_us <= 0.0:
            return float("inf") if self.duration_b_us > 0.0 else 1.0
        return self.duration_b_us / self.duration_a_us

    @property
    def delta_us(self) -> float:
        return self.duration_b_us - self.duration_a_us


@dataclass(frozen=True)
class RunComparison:
    """Aligned view of two runs ("A" is the reference, "B" the subject)."""

    label_a: str
    label_b: str
    summary_a: SessionSummary
    summary_b: SessionSummary
    operator_deltas: tuple[OperatorDelta, ...]

    @property
    def speedup(self) -> float:
        """Wall-time speedup of B relative to A (>1 means B is faster)."""
        if self.summary_b.wall_us <= 0:
            return float("inf")
        return self.summary_a.wall_us / self.summary_b.wall_us

    @property
    def idle_delta(self) -> float:
        """Idle-fraction change (B minus A)."""
        return self.summary_b.tpu_idle_fraction - self.summary_a.tpu_idle_fraction

    @property
    def mxu_delta(self) -> float:
        """MXU-utilization change (B minus A)."""
        return self.summary_b.mxu_utilization - self.summary_a.mxu_utilization

    def biggest_movers(self, n: int = 5, device: DeviceKind | None = None) -> list[OperatorDelta]:
        """Operators whose absolute time changed the most."""
        deltas = [
            d for d in self.operator_deltas if device is None or d.device is device
        ]
        return sorted(deltas, key=lambda d: -abs(d.delta_us))[:n]

    def format(self, top: int = 5) -> str:
        """A human-readable comparison block."""
        lines = [
            f"A = {self.label_a}, B = {self.label_b}",
            f"speedup (A/B wall): {self.speedup:.3f}x",
            f"idle: {self.summary_a.tpu_idle_fraction:.1%} -> "
            f"{self.summary_b.tpu_idle_fraction:.1%} ({self.idle_delta:+.1%})",
            f"MXU : {self.summary_a.mxu_utilization:.1%} -> "
            f"{self.summary_b.mxu_utilization:.1%} ({self.mxu_delta:+.1%})",
            "biggest operator movers (|delta time|):",
        ]
        for delta in self.biggest_movers(top):
            lines.append(
                f"  {delta.device.value:4s} {delta.name:32s} "
                f"{delta.duration_a_us / 1e6:9.2f}s -> {delta.duration_b_us / 1e6:9.2f}s "
                f"({delta.ratio:6.2f}x)"
            )
        return "\n".join(lines)


def _operator_totals(records: list[ProfileRecord]) -> dict[tuple[str, DeviceKind], float]:
    totals: dict[tuple[str, DeviceKind], float] = {}
    for step in merge_records(records):
        for stats in step.operators.values():
            key = (stats.name, stats.device)
            totals[key] = totals.get(key, 0.0) + stats.total_duration_us
    return totals


def compare_runs(
    label_a: str,
    summary_a: SessionSummary,
    records_a: list[ProfileRecord],
    label_b: str,
    summary_b: SessionSummary,
    records_b: list[ProfileRecord],
) -> RunComparison:
    """Align two profiled runs and compute per-operator deltas."""
    if not records_a or not records_b:
        raise AnalyzerError("both runs need profile records to compare")
    totals_a = _operator_totals(records_a)
    totals_b = _operator_totals(records_b)
    deltas = []
    for key in sorted(set(totals_a) | set(totals_b), key=lambda k: (k[1].value, k[0])):
        name, device = key
        deltas.append(
            OperatorDelta(
                name=name,
                device=device,
                duration_a_us=totals_a.get(key, 0.0),
                duration_b_us=totals_b.get(key, 0.0),
            )
        )
    return RunComparison(
        label_a=label_a,
        label_b=label_b,
        summary_a=summary_a,
        summary_b=summary_b,
        operator_deltas=tuple(deltas),
    )
