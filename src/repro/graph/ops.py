"""Operator vocabulary and graph node type.

The vocabulary mirrors the operator names TPUPoint observes in real
profiles (Table II of the paper): TPU-side compute ops (``MatMul``,
``Conv2D...``, later fused into ``fusion`` by the XLA pass), data-layout
ops (``Reshape``, ``Transpose``), infeed/outfeed, and host-side pipeline
ops (``DecodeAndCropJpeg``, ``TransferBufferToInfeedLocked``, ...).

Each op kind declares where it may be placed and how its cost is modelled,
which is all the partitioner and device models need.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.errors import GraphError
from repro.graph.shapes import TensorShape


class Placement(enum.Enum):
    """Where an operator may execute."""

    HOST = "host"
    TPU = "tpu"
    EITHER = "either"


class CostKind(enum.Enum):
    """How an operator's runtime cost is derived."""

    COMPUTE = "compute"  # FLOP-driven (MXU candidates)
    MEMORY = "memory"  # byte-driven (layout/copy ops)
    HOST_CPU = "host_cpu"  # host CPU time
    TRANSFER = "transfer"  # crosses the host-TPU link
    CONTROL = "control"  # negligible fixed cost
    CONSTANT = "constant"  # foldable literal


@dataclass(frozen=True)
class OpKind:
    """Static description of an operator type."""

    name: str
    placement: Placement
    cost: CostKind
    fusable: bool = False  # XLA may merge it into a fusion op
    uses_mxu: bool = False  # FLOPs run on the matrix units


_KINDS: dict[str, OpKind] = {}


def _register(kind: OpKind) -> OpKind:
    if kind.name in _KINDS:
        raise GraphError(f"duplicate op kind {kind.name!r}")
    _KINDS[kind.name] = kind
    return kind


def op_kind(name: str) -> OpKind:
    """Look up a registered operator kind by name."""
    try:
        return _KINDS[name]
    except KeyError as exc:
        raise GraphError(f"unknown op kind {name!r}") from exc


def registered_kinds() -> dict[str, OpKind]:
    """All registered operator kinds, keyed by name."""
    return dict(_KINDS)


# --- TPU compute ops (MXU) ----------------------------------------------------

MATMUL = _register(OpKind("MatMul", Placement.TPU, CostKind.COMPUTE, fusable=True, uses_mxu=True))
CONV2D = _register(OpKind("Conv2D", Placement.TPU, CostKind.COMPUTE, fusable=True, uses_mxu=True))
CONV2D_BACKPROP_FILTER = _register(
    OpKind("Conv2DBackpropFilter", Placement.TPU, CostKind.COMPUTE, fusable=True, uses_mxu=True)
)
CONV2D_BACKPROP_INPUT = _register(
    OpKind("Conv2DBackpropInput", Placement.TPU, CostKind.COMPUTE, fusable=True, uses_mxu=True)
)
FUSION = _register(OpKind("fusion", Placement.TPU, CostKind.COMPUTE, uses_mxu=True))

# --- TPU vector/element-wise ops (fusable, not MXU) ---------------------------

MUL = _register(OpKind("Mul", Placement.TPU, CostKind.COMPUTE, fusable=True))
L2LOSS = _register(OpKind("L2Loss", Placement.TPU, CostKind.COMPUTE, fusable=True))
BIAS_ADD_GRAD = _register(OpKind("BiasAddGrad", Placement.TPU, CostKind.COMPUTE, fusable=True))
FUSED_BATCH_NORM = _register(
    OpKind("FusedBatchNormV3", Placement.TPU, CostKind.COMPUTE, fusable=True)
)
FUSED_BATCH_NORM_GRAD = _register(
    OpKind("FusedBatchNormGradV3", Placement.TPU, CostKind.COMPUTE, fusable=True)
)
RELU = _register(OpKind("Relu", Placement.TPU, CostKind.COMPUTE, fusable=True))
SUM = _register(OpKind("Sum", Placement.TPU, CostKind.COMPUTE, fusable=True))
SOFTMAX = _register(OpKind("Softmax", Placement.TPU, CostKind.COMPUTE, fusable=True))
TANH = _register(OpKind("Tanh", Placement.TPU, CostKind.COMPUTE, fusable=True))

# --- TPU memory/layout ops -----------------------------------------------------

RESHAPE = _register(OpKind("Reshape", Placement.TPU, CostKind.MEMORY))
TRANSPOSE = _register(OpKind("Transpose", Placement.TPU, CostKind.MEMORY))
COPY = _register(OpKind("Copy", Placement.TPU, CostKind.MEMORY))

# --- TPU communication/data-exchange ops ----------------------------------------

INFEED = _register(OpKind("Infeed", Placement.TPU, CostKind.TRANSFER))
INFEED_DEQUEUE = _register(OpKind("InfeedDequeueTuple", Placement.TPU, CostKind.TRANSFER))
OUTFEED_ENQUEUE = _register(OpKind("OutfeedEnqueueTuple", Placement.TPU, CostKind.TRANSFER))
ALL_REDUCE = _register(OpKind("all-reduce", Placement.TPU, CostKind.MEMORY))

# --- host data-exchange ops -----------------------------------------------------

TRANSFER_INFEED = _register(
    OpKind("TransferBufferToInfeedLocked", Placement.HOST, CostKind.TRANSFER)
)
INFEED_ENQUEUE = _register(OpKind("InfeedEnqueueTuple", Placement.HOST, CostKind.TRANSFER))
OUTFEED_DEQUEUE = _register(OpKind("OutfeedDequeueTuple", Placement.HOST, CostKind.TRANSFER))
LINEARIZE = _register(OpKind("LinearizeX32", Placement.HOST, CostKind.HOST_CPU))
LSRA = _register(OpKind("LSRAv2", Placement.HOST, CostKind.HOST_CPU))

# --- host runtime/session ops -----------------------------------------------------

RUN_GRAPH = _register(OpKind("RunGraph", Placement.HOST, CostKind.HOST_CPU))
SEND = _register(OpKind("Send", Placement.HOST, CostKind.HOST_CPU))
RECV = _register(OpKind("Recv", Placement.HOST, CostKind.HOST_CPU))
START_PROGRAM = _register(OpKind("StartProgram", Placement.HOST, CostKind.HOST_CPU))
BUILD_PADDED_OUTPUT = _register(OpKind("BuildPaddedOutput", Placement.HOST, CostKind.HOST_CPU))
INITIALIZE_TPU = _register(
    OpKind("InitializeHostForDistributedTpu", Placement.HOST, CostKind.HOST_CPU)
)
DISCONNECT_TPU = _register(
    OpKind("DisconnectHostFromDistributedTPUSystem", Placement.HOST, CostKind.HOST_CPU)
)
RESTORE_V2 = _register(OpKind("RestoreV2", Placement.HOST, CostKind.HOST_CPU))
SAVE_V2 = _register(OpKind("SaveV2", Placement.HOST, CostKind.HOST_CPU))

# --- host preprocessing ops --------------------------------------------------------

DECODE_AND_CROP_JPEG = _register(
    OpKind("DecodeAndCropJpeg", Placement.HOST, CostKind.HOST_CPU)
)
RESIZE_BICUBIC = _register(OpKind("ResizeBicubic", Placement.HOST, CostKind.HOST_CPU))
CAST = _register(OpKind("Cast", Placement.EITHER, CostKind.HOST_CPU, fusable=True))
SUB = _register(OpKind("Sub", Placement.EITHER, CostKind.HOST_CPU, fusable=True))
MAXIMUM = _register(OpKind("Maximum", Placement.EITHER, CostKind.HOST_CPU, fusable=True))
MINIMUM = _register(OpKind("Minimum", Placement.EITHER, CostKind.HOST_CPU, fusable=True))

# --- literals / control ---------------------------------------------------------------

CONST = _register(OpKind("Const", Placement.EITHER, CostKind.CONSTANT))
IDENTITY = _register(OpKind("Identity", Placement.EITHER, CostKind.CONTROL))
NO_OP = _register(OpKind("NoOp", Placement.EITHER, CostKind.CONTROL))


@dataclass
class Operation:
    """A node in a computational graph.

    Attributes:
        name: unique node name within its graph.
        kind: registered operator kind.
        inputs: names of producer nodes.
        shape: output tensor shape.
        flops: compute work for COMPUTE ops.
        attrs: free-form attributes (e.g. matmul dims for MXU efficiency).
    """

    name: str
    kind: OpKind
    inputs: tuple[str, ...] = ()
    shape: TensorShape | None = None
    flops: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("operation name must be non-empty")
        if self.flops < 0:
            raise GraphError("flops must be non-negative")

    @property
    def output_bytes(self) -> float:
        """Bytes of the op's output tensor (0 when shapeless)."""
        return self.shape.num_bytes if self.shape is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Operation({self.name!r}, kind={self.kind.name})"
