"""Host/TPU graph partitioner.

The TensorFlow master places graph nodes on devices and splits the graph
into subgraphs for the workers (Section II-B). This partitioner assigns
every op to the host or the TPU (flexible ops follow their consumers),
then reports the cross-device edges — each host→TPU edge needs an infeed
and each TPU→host edge an outfeed, which is where the paper's dominant
data-exchange operators enter the execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.graph.ops import Operation, Placement


@dataclass(frozen=True)
class CrossDeviceEdge:
    """One producer→consumer edge that crosses the host/TPU boundary."""

    producer: str
    consumer: str
    num_bytes: float


@dataclass
class PartitionResult:
    """Outcome of partitioning: per-device op lists and boundary edges."""

    host_ops: list[Operation] = field(default_factory=list)
    tpu_ops: list[Operation] = field(default_factory=list)
    infeed_edges: list[CrossDeviceEdge] = field(default_factory=list)  # host → TPU
    outfeed_edges: list[CrossDeviceEdge] = field(default_factory=list)  # TPU → host
    assignment: dict[str, Placement] = field(default_factory=dict)

    @property
    def infeed_bytes(self) -> float:
        """Total bytes crossing into the TPU per execution."""
        return sum(edge.num_bytes for edge in self.infeed_edges)

    @property
    def outfeed_bytes(self) -> float:
        """Total bytes crossing back to the host per execution."""
        return sum(edge.num_bytes for edge in self.outfeed_edges)


def partition(graph: Graph) -> PartitionResult:
    """Assign every op to a device and collect boundary edges."""
    graph.validate()
    order = graph.topological_order()
    assignment: dict[str, Placement] = {}

    # Fixed placements first.
    flexible: list[Operation] = []
    for op in order:
        if op.kind.placement is Placement.EITHER:
            flexible.append(op)
        else:
            assignment[op.name] = op.kind.placement

    # Flexible ops follow their consumers: if any consumer is (or resolves
    # to) the TPU, the op runs on the TPU to avoid an extra transfer.
    # Process in reverse topological order so consumer placements are known.
    for op in reversed(order):
        if op.name in assignment:
            continue
        consumer_placements = {
            assignment.get(consumer.name, Placement.EITHER)
            for consumer in graph.consumers(op.name)
        }
        if Placement.TPU in consumer_placements:
            assignment[op.name] = Placement.TPU
        elif Placement.HOST in consumer_placements:
            assignment[op.name] = Placement.HOST
        else:
            assignment[op.name] = Placement.TPU  # dangling flexible op: accelerate it
    if len(assignment) != len(order):
        missing = [op.name for op in order if op.name not in assignment]
        raise PartitionError(f"unplaced operations: {missing}")

    result = PartitionResult(assignment=assignment)
    for op in order:
        target = result.tpu_ops if assignment[op.name] is Placement.TPU else result.host_ops
        target.append(op)
        for input_name in op.inputs:
            producer_place = assignment[input_name]
            consumer_place = assignment[op.name]
            if producer_place is consumer_place:
                continue
            edge = CrossDeviceEdge(
                producer=input_name,
                consumer=op.name,
                num_bytes=graph.op(input_name).output_bytes,
            )
            if consumer_place is Placement.TPU:
                result.infeed_edges.append(edge)
            else:
                result.outfeed_edges.append(edge)
    return result
