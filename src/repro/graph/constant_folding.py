"""Constant-folding pass.

The TensorFlow master applies optimizations such as constant folding
before handing subgraphs to workers (Section II-B). The pass replaces any
op whose inputs are all constants — and whose cost does not depend on
runtime data movement — with a constant of the same shape, iterating to a
fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph import ops as opdefs
from repro.graph.graph import Graph
from repro.graph.ops import CostKind, Operation


_FOLDABLE_COSTS = {CostKind.COMPUTE, CostKind.MEMORY, CostKind.CONTROL, CostKind.HOST_CPU}


@dataclass(frozen=True)
class FoldingReport:
    """Summary of one constant-folding run."""

    folded: int
    iterations: int


def _is_foldable(graph: Graph, op: Operation) -> bool:
    if op.kind.cost not in _FOLDABLE_COSTS:
        return False
    if not op.inputs:
        return False
    return all(graph.op(name).kind is opdefs.CONST for name in op.inputs)


def fold_constants(graph: Graph) -> FoldingReport:
    """Fold constant subexpressions in place; returns what was folded."""
    total_folded = 0
    iterations = 0
    while True:
        iterations += 1
        foldable = [op for op in graph.operations() if _is_foldable(graph, op)]
        if not foldable:
            break
        for op in foldable:
            folded = Operation(
                name=op.name,
                kind=opdefs.CONST,
                inputs=(),
                shape=op.shape,
                attrs={"folded_from": op.kind.name},
            )
            # Replace in place: same name, so consumers keep their edges.
            graph._ops[op.name] = folded  # noqa: SLF001 - pass owns the graph
            total_folded += 1
    graph.validate()
    return FoldingReport(folded=total_folded, iterations=iterations)
