"""Fluent helpers for building computational graphs.

Workload models describe their per-step compute as graphs; the builder
keeps their definitions short, generates unique names, and fills in FLOP
estimates from shapes so model code stays declarative.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graph import ops as opdefs
from repro.graph.graph import Graph
from repro.graph.ops import OpKind, Operation
from repro.graph.shapes import TensorShape, conv2d_flops, matmul_flops


class GraphBuilder:
    """Builds a :class:`Graph` with automatic unique naming."""

    def __init__(self, name: str = "graph"):
        self.graph = Graph(name)
        self._counters: dict[str, int] = {}

    def _unique_name(self, base: str) -> str:
        index = self._counters.get(base, 0)
        self._counters[base] = index + 1
        return base if index == 0 else f"{base}_{index}"

    # --- generic -------------------------------------------------------------

    def add(
        self,
        kind: OpKind,
        inputs: tuple[str, ...] = (),
        shape: TensorShape | None = None,
        flops: float = 0.0,
        name: str | None = None,
        **attrs,
    ) -> Operation:
        """Add an op of any kind, auto-naming it after the kind."""
        op = Operation(
            name=self._unique_name(name or kind.name),
            kind=kind,
            inputs=inputs,
            shape=shape,
            flops=flops,
            attrs=attrs,
        )
        return self.graph.add(op)

    # --- common node kinds -----------------------------------------------------

    def const(self, shape: TensorShape, name: str | None = None) -> Operation:
        """A literal/constant input (weights, hyper-parameters)."""
        return self.add(opdefs.CONST, shape=shape, name=name)

    def infeed(self, shape: TensorShape, name: str | None = None) -> Operation:
        """The TPU-side infeed dequeue producing this step's batch."""
        return self.add(opdefs.INFEED_DEQUEUE, shape=shape, name=name)

    def matmul(
        self, a: Operation, b: Operation, m: int, k: int, n: int, batch: int = 1
    ) -> Operation:
        """A (possibly batched) dense matmul with derived FLOPs."""
        shape = TensorShape((batch, m, n) if batch > 1 else (m, n))
        return self.add(
            opdefs.MATMUL,
            inputs=(a.name, b.name),
            shape=shape,
            flops=matmul_flops(m, k, n, batch),
            m=m,
            k=k,
            n=n,
            batch=batch,
        )

    def conv2d(
        self,
        image: Operation,
        kernel: Operation,
        batch: int,
        out_height: int,
        out_width: int,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
    ) -> Operation:
        """A 2-D convolution with derived FLOPs."""
        shape = TensorShape((batch, out_height, out_width, out_channels))
        return self.add(
            opdefs.CONV2D,
            inputs=(image.name, kernel.name),
            shape=shape,
            flops=conv2d_flops(
                batch, out_height, out_width, in_channels, out_channels, kernel_size, kernel_size
            ),
        )

    def elementwise(
        self, kind: OpKind, source: Operation, flops_per_element: float = 1.0
    ) -> Operation:
        """An element-wise op inheriting its input's shape."""
        if source.shape is None:
            raise GraphError(f"elementwise source {source.name!r} has no shape")
        return self.add(
            kind,
            inputs=(source.name,),
            shape=source.shape,
            flops=source.shape.num_elements * flops_per_element,
        )

    def reshape(self, source: Operation, shape: TensorShape) -> Operation:
        """A layout change; costs memory traffic, not FLOPs."""
        return self.add(opdefs.RESHAPE, inputs=(source.name,), shape=shape)

    def transpose(self, source: Operation) -> Operation:
        """A transpose; costs memory traffic."""
        if source.shape is None:
            raise GraphError(f"transpose source {source.name!r} has no shape")
        return self.add(
            opdefs.TRANSPOSE,
            inputs=(source.name,),
            shape=TensorShape(tuple(reversed(source.shape.dims)), source.shape.dtype),
        )

    def outfeed(self, source: Operation) -> Operation:
        """The TPU-side outfeed enqueue returning results to the host."""
        return self.add(opdefs.OUTFEED_ENQUEUE, inputs=(source.name,), shape=source.shape)

    def build(self) -> Graph:
        """Validate and return the built graph."""
        self.graph.validate()
        return self.graph
