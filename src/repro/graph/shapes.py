"""Tensor shapes and work accounting.

Shapes carry just enough information to cost operators: element counts,
byte sizes for a dtype, and FLOP estimates for matrix multiplies and
convolutions. The simulator never materializes tensor data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError

_DTYPE_BYTES = {
    "float32": 4,
    "bfloat16": 2,
    "float16": 2,
    "int32": 4,
    "int64": 8,
    "uint8": 1,
    "bool": 1,
}


def dtype_bytes(dtype: str) -> int:
    """Bytes per element for a supported dtype name."""
    try:
        return _DTYPE_BYTES[dtype]
    except KeyError as exc:
        raise GraphError(f"unsupported dtype {dtype!r}") from exc


@dataclass(frozen=True)
class TensorShape:
    """A static tensor shape with a dtype.

    Dimensions must be positive; scalars are represented by ``dims=()``.
    """

    dims: tuple[int, ...]
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if any(dim <= 0 for dim in self.dims):
            raise GraphError(f"shape dimensions must be positive, got {self.dims}")
        dtype_bytes(self.dtype)  # validate eagerly

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def num_elements(self) -> int:
        count = 1
        for dim in self.dims:
            count *= dim
        return count

    @property
    def num_bytes(self) -> float:
        return float(self.num_elements * dtype_bytes(self.dtype))

    def with_batch(self, batch: int) -> "TensorShape":
        """Prepend a batch dimension."""
        if batch <= 0:
            raise GraphError("batch must be positive")
        return TensorShape((batch, *self.dims), self.dtype)

    def __str__(self) -> str:
        return f"{self.dtype}[{','.join(map(str, self.dims))}]"


def matmul_flops(m: int, k: int, n: int, batch: int = 1) -> float:
    """FLOPs of a batched (m,k)x(k,n) matrix multiply."""
    if min(m, k, n, batch) <= 0:
        raise GraphError("matmul dimensions must be positive")
    return 2.0 * batch * m * k * n


def conv2d_flops(
    batch: int,
    out_height: int,
    out_width: int,
    in_channels: int,
    out_channels: int,
    kernel_height: int,
    kernel_width: int,
) -> float:
    """FLOPs of a 2-D convolution (multiply-accumulate counted as 2)."""
    dims = (batch, out_height, out_width, in_channels, out_channels, kernel_height, kernel_width)
    if min(dims) <= 0:
        raise GraphError("conv dimensions must be positive")
    return (
        2.0
        * batch
        * out_height
        * out_width
        * out_channels
        * in_channels
        * kernel_height
        * kernel_width
    )


def attention_flops(batch: int, seq_len: int, hidden: int, num_heads: int) -> float:
    """FLOPs of one multi-head self-attention block (QKV + scores + output)."""
    if min(batch, seq_len, hidden, num_heads) <= 0:
        raise GraphError("attention dimensions must be positive")
    qkv = 3 * matmul_flops(seq_len, hidden, hidden, batch)
    scores = matmul_flops(seq_len, hidden, seq_len, batch)
    weighted = matmul_flops(seq_len, seq_len, hidden, batch)
    output = matmul_flops(seq_len, hidden, hidden, batch)
    return qkv + scores + weighted + output
