"""Computational-graph container.

A :class:`Graph` owns a set of named operations connected by producer →
consumer edges. It validates the wiring (inputs exist, no cycles) and
provides the topological order and traversal helpers that every pass
(constant folding, partitioning, fusion) builds on.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.errors import GraphError
from repro.graph.ops import Operation


class Graph:
    """A directed acyclic graph of :class:`Operation` nodes."""

    def __init__(self, name: str = "graph"):
        self.name = name
        self._ops: dict[str, Operation] = {}

    # --- construction ------------------------------------------------------

    def add(self, op: Operation) -> Operation:
        """Add an operation; duplicate names are rejected."""
        if op.name in self._ops:
            raise GraphError(f"duplicate operation name {op.name!r}")
        self._ops[op.name] = op
        return op

    def remove(self, name: str) -> None:
        """Remove an op; fails if other ops still consume it."""
        if name not in self._ops:
            raise GraphError(f"unknown operation {name!r}")
        for other in self._ops.values():
            if other.name != name and name in other.inputs:
                raise GraphError(
                    f"cannot remove {name!r}: still consumed by {other.name!r}"
                )
        del self._ops[name]

    # --- lookup --------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops.values())

    def op(self, name: str) -> Operation:
        """Fetch an operation by name."""
        try:
            return self._ops[name]
        except KeyError as exc:
            raise GraphError(f"unknown operation {name!r}") from exc

    def operations(self) -> list[Operation]:
        """All operations in insertion order."""
        return list(self._ops.values())

    def consumers(self, name: str) -> list[Operation]:
        """Operations that read the named op's output."""
        self.op(name)  # validate
        return [op for op in self._ops.values() if name in op.inputs]

    def producers(self, name: str) -> list[Operation]:
        """Operations whose outputs the named op reads."""
        return [self.op(input_name) for input_name in self.op(name).inputs]

    # --- validation / ordering ---------------------------------------------------

    def validate(self) -> None:
        """Check that all inputs exist and the graph is acyclic."""
        for op in self._ops.values():
            for input_name in op.inputs:
                if input_name not in self._ops:
                    raise GraphError(
                        f"operation {op.name!r} reads unknown input {input_name!r}"
                    )
        self.topological_order()  # raises on cycles

    def topological_order(self) -> list[Operation]:
        """Kahn's algorithm; raises GraphError when a cycle exists."""
        in_degree = {name: 0 for name in self._ops}
        for op in self._ops.values():
            for input_name in op.inputs:
                if input_name not in self._ops:
                    raise GraphError(
                        f"operation {op.name!r} reads unknown input {input_name!r}"
                    )
        for op in self._ops.values():
            in_degree[op.name] = len([i for i in op.inputs if i in self._ops])
        ready = deque(name for name, degree in in_degree.items() if degree == 0)
        order: list[Operation] = []
        consumers: dict[str, list[str]] = {name: [] for name in self._ops}
        for op in self._ops.values():
            for input_name in op.inputs:
                consumers[input_name].append(op.name)
        while ready:
            name = ready.popleft()
            order.append(self._ops[name])
            for consumer in consumers[name]:
                in_degree[consumer] -= 1
                if in_degree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self._ops):
            cyclic = sorted(set(self._ops) - {op.name for op in order})
            raise GraphError(f"graph contains a cycle through {cyclic}")
        return order

    # --- metrics -------------------------------------------------------------------

    def total_flops(self) -> float:
        """Sum of compute work across all ops."""
        return sum(op.flops for op in self._ops.values())

    def count_kind(self, kind_name: str) -> int:
        """Number of ops of a given kind name."""
        return sum(1 for op in self._ops.values() if op.kind.name == kind_name)
