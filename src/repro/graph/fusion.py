"""XLA-style fusion pass.

XLA combines compute-intensive TPU operations into ``fusion`` kernels to
reduce memory traffic; the paper finds the resulting ``fusion`` operator
to be the single most time-consuming TPU op across workloads. This pass
merges maximal producer→consumer *chains* of fusable ops into one
``fusion`` node per chain. Chain fusion (each member's output consumed
only by the next member) is the cycle-safe core of what XLA does and is
enough to reproduce the observed operator mix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph import ops as opdefs
from repro.graph.graph import Graph
from repro.graph.ops import Operation


@dataclass(frozen=True)
class FusionReport:
    """Summary of one fusion run."""

    fusions_created: int
    ops_fused: int


def _chain_from(graph: Graph, start: Operation, fused: set[str]) -> list[Operation]:
    """Grow the longest fusable chain starting at ``start``."""
    chain = [start]
    current = start
    while True:
        consumers = graph.consumers(current.name)
        if len(consumers) != 1:
            break
        nxt = consumers[0]
        if not nxt.kind.fusable or nxt.name in fused:
            break
        # Every other input of the next op must come from outside the chain
        # as a constant, otherwise fusing could bypass a live dependency.
        side_inputs = [name for name in nxt.inputs if name != current.name]
        if any(graph.op(name).kind is not opdefs.CONST for name in side_inputs):
            break
        chain.append(nxt)
        current = nxt
    return chain


def fuse(graph: Graph) -> FusionReport:
    """Fuse compute chains in place; returns what was fused."""
    graph.validate()
    fused: set[str] = set()
    fusions_created = 0
    ops_fused = 0
    for op in graph.topological_order():
        if op.name in fused or not op.kind.fusable:
            continue
        chain = _chain_from(graph, op, fused)
        if len(chain) < 2:
            continue
        member_names = [member.name for member in chain]
        fused.update(member_names)
        # External inputs: everything the chain reads that it doesn't produce.
        external_inputs = tuple(
            dict.fromkeys(
                name
                for member in chain
                for name in member.inputs
                if name not in member_names
            )
        )
        mxu_members = [member for member in chain if member.kind.uses_mxu]
        mxu_flops = sum(member.flops for member in mxu_members)
        attrs = {"members": tuple(member_names), "mxu_flops": mxu_flops}
        # Preserve calibrated efficiency: the fused kernel achieves the
        # FLOP-weighted efficiency of the matrix ops it absorbed.
        weighted = [
            (member.flops, float(member.attrs["mxu_efficiency"]))
            for member in mxu_members
            if "mxu_efficiency" in member.attrs and member.flops > 0
        ]
        if weighted and mxu_flops > 0:
            attrs["mxu_efficiency"] = sum(f * e for f, e in weighted) / sum(
                f for f, _ in weighted
            )
        fusion_op = Operation(
            name=f"{chain[0].name}.fusion",
            kind=opdefs.FUSION,
            inputs=external_inputs,
            shape=chain[-1].shape,
            flops=sum(member.flops for member in chain),
            attrs=attrs,
        )
        # Rewire consumers of the chain tail to read the fusion output.
        tail = chain[-1].name
        for consumer in graph.consumers(tail):
            consumer.inputs = tuple(
                fusion_op.name if name == tail else name for name in consumer.inputs
            )
        for name in member_names:
            del graph._ops[name]  # noqa: SLF001 - pass owns the graph
        graph.add(fusion_op)
        fusions_created += 1
        ops_fused += len(chain)
    graph.validate()
    return FusionReport(fusions_created=fusions_created, ops_fused=ops_fused)
