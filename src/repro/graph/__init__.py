"""TensorFlow-like graph substrate: ops, graphs, and compiler passes."""

from repro.graph.builder import GraphBuilder
from repro.graph.constant_folding import FoldingReport, fold_constants
from repro.graph.fusion import FusionReport, fuse
from repro.graph.graph import Graph
from repro.graph.ops import CostKind, OpKind, Operation, Placement, op_kind, registered_kinds
from repro.graph.partition import CrossDeviceEdge, PartitionResult, partition
from repro.graph.shapes import (
    TensorShape,
    attention_flops,
    conv2d_flops,
    dtype_bytes,
    matmul_flops,
)

__all__ = [
    "CostKind",
    "CrossDeviceEdge",
    "FoldingReport",
    "FusionReport",
    "Graph",
    "GraphBuilder",
    "OpKind",
    "Operation",
    "PartitionResult",
    "Placement",
    "TensorShape",
    "attention_flops",
    "conv2d_flops",
    "dtype_bytes",
    "fold_constants",
    "fuse",
    "matmul_flops",
    "op_kind",
    "partition",
    "registered_kinds",
]
