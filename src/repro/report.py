"""Characterization reports.

Renders one profiled run into a self-contained Markdown report: run
summary, phase breakdown per detection algorithm, dominant-phase
operator tables, and checkpoint associations — the human-readable
counterpart of the analyzer's JSON/CSV exports. Used by the CLI's
``report`` subcommand and usable as a library call.
"""

from __future__ import annotations

from pathlib import Path

from repro import units
from repro.core.analyzer.analyzer import AnalysisResult, TPUPointAnalyzer
from repro.costs import run_cost
from repro.core.analyzer.checkpoints import associate_checkpoints
from repro.core.analyzer.operators import top_operators_of_longest_phase
from repro.runtime.events import DeviceKind
from repro.runtime.session import SessionSummary
from repro.storage.checkpoints import CheckpointStore


def _summary_section(title: str, summary: SessionSummary) -> list[str]:
    return [
        f"# TPUPoint characterization: {title}",
        "",
        "## Run summary",
        "",
        f"- simulated wall time: **{units.format_duration(summary.wall_us)}**",
        f"- TPU idle time: **{summary.tpu_idle_fraction:.1%}**",
        f"- MXU utilization: **{summary.mxu_utilization:.1%}**",
        f"- steps profiled: {summary.steps_executed}",
        f"- events recorded: {summary.events_recorded}",
        "",
    ]


def _phase_section(result: AnalysisResult) -> list[str]:
    coverage = result.coverage()
    lines = [
        f"## Phases — {result.method} {result.params}",
        "",
        f"- phases detected: **{result.num_phases}**",
        f"- top-3 coverage: **{coverage.top(3):.1%}**",
        "",
        "| rank | phase | steps | duration | idle | top TPU ops | top host ops |",
        "|---|---|---|---|---|---|---|",
    ]
    for rank, phase in enumerate(result.phases[:8]):
        tpu = ", ".join(s.name for s in phase.top_operators(3, DeviceKind.TPU)) or "-"
        host = ", ".join(s.name for s in phase.top_operators(3, DeviceKind.HOST)) or "-"
        lines.append(
            f"| {rank} | {phase.phase_id} | {phase.num_steps} | "
            f"{units.format_duration(phase.total_duration_us)} | "
            f"{phase.idle_fraction:.1%} | {tpu} | {host} |"
        )
    lines.append("")
    return lines


def _operator_section(result: AnalysisResult) -> list[str]:
    cell = top_operators_of_longest_phase(result.phases)
    lines = ["## Dominant-phase operators", ""]
    for device in (DeviceKind.TPU, DeviceKind.HOST):
        row = cell[device]
        lines.append(f"### {device.value.upper()}")
        lines.append("")
        lines.append("| operator | total time |")
        lines.append("|---|---|")
        for name, duration in zip(row.operators, row.durations_us):
            lines.append(f"| {name} | {units.format_duration(duration)} |")
        lines.append("")
    return lines


def _checkpoint_section(
    result: AnalysisResult, store: CheckpointStore, analyzer: TPUPointAnalyzer
) -> list[str]:
    if not len(store):
        return ["## Checkpoints", "", "_no checkpoints were saved during the run_", ""]
    associations = associate_checkpoints(result.phases, store, analyzer.steps)
    lines = [
        "## Checkpoint associations (fast-forward targets)",
        "",
        "| phase | checkpoint | distance (steps) |",
        "|---|---|---|",
    ]
    for phase_id, assoc in sorted(associations.items()):
        lines.append(
            f"| {phase_id} | model.ckpt-{assoc.checkpoint.step} | {assoc.distance_steps} |"
        )
    lines.append("")
    return lines


def _economics_section(summary: SessionSummary, generation) -> list[str]:
    cost = run_cost(summary, generation)
    return [
        "## Economics",
        "",
        f"- TPU bill: **${cost.tpu_dollars:.4f}** "
        f"(${cost.idle_dollars:.4f}, {cost.idle_dollar_fraction:.0%}, paid for idle time)",
        f"- host bill: ${cost.host_dollars:.4f}",
        f"- energy: {cost.total_energy_joules / 1e3:.2f} kJ",
        "",
    ]


def build_report(
    title: str,
    summary: SessionSummary,
    analyzer: TPUPointAnalyzer,
    methods: tuple[str, ...] = ("ols",),
    checkpoint_store: CheckpointStore | None = None,
    generation=None,
) -> str:
    """Render the Markdown report for one profiled run."""
    lines = _summary_section(title, summary)
    if generation is not None:
        lines.extend(_economics_section(summary, generation))
    primary: AnalysisResult | None = None
    for method in methods:
        result = analyzer.analyze(method)
        if primary is None:
            primary = result
        lines.extend(_phase_section(result))
    assert primary is not None
    lines.extend(_operator_section(primary))
    if checkpoint_store is not None:
        lines.extend(_checkpoint_section(primary, checkpoint_store, analyzer))
    return "\n".join(lines)


def write_report(path: str | Path, report: str) -> Path:
    """Persist a report; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(report, encoding="utf-8")
    return path
