"""Figure 3: the TPUPoint profiling-output timeline.

The paper's Figure 3 shows two horizontal breakdowns of one run — the
*Profile Breakdown* (each profile record as a small span) above the
*Phase Breakdown* (each detected phase as a larger span covering several
records). This module renders that picture as a standalone SVG, the
image counterpart of the chrome://tracing export.
"""

from __future__ import annotations

from repro.core.analyzer.phases import Phase
from repro.core.profiler.record import ProfileRecord
from repro.errors import ConfigurationError
from repro.viz.svg import PALETTE, SvgCanvas


def phase_timeline_svg(
    records: list[ProfileRecord],
    phases: list[Phase],
    title: str = "Figure 3: profile and phase breakdown",
    width: int = 900,
) -> str:
    """Render the two-track timeline of one profiled run."""
    if not records or not phases:
        raise ConfigurationError("timeline needs records and phases")

    start = min(record.window_start_us for record in records)
    end = max(record.window_end_us for record in records)
    for phase in phases:
        start = min(start, phase.start_us)
        end = max(end, phase.end_us)
    span = max(end - start, 1.0)

    margin_left, track_h, gap = 130, 34, 14
    plot_w = width - margin_left - 20
    height = 60 + 2 * track_h + gap + 46
    canvas = SvgCanvas(width, height)
    canvas.text(width / 2, 24, title, size=15, anchor="middle")

    def x_of(time_us: float) -> float:
        return margin_left + plot_w * (time_us - start) / span

    # Track 1: profile records, alternating shades.
    y_profiles = 48
    canvas.text(margin_left - 8, y_profiles + track_h / 2 + 4, "Profile Breakdown",
                size=11, anchor="end")
    for record in records:
        x0 = x_of(record.window_start_us)
        x1 = x_of(record.window_end_us)
        shade = "#9ecae1" if record.index % 2 == 0 else "#c6dbef"
        canvas.rect(x0, y_profiles, max(x1 - x0, 0.5), track_h, shade)
        canvas.line(x0, y_profiles, x0, y_profiles + track_h, stroke="#ffffff", width=0.5)

    # Track 2: phases, ordered by timeline position, colored by identity.
    y_phases = y_profiles + track_h + gap
    canvas.text(margin_left - 8, y_phases + track_h / 2 + 4, "Phase Breakdown",
                size=11, anchor="end")
    ordered = sorted(phases, key=lambda p: p.start_us)
    for index, phase in enumerate(ordered):
        color = PALETTE[index % len(PALETTE)]
        x0 = x_of(phase.start_us)
        x1 = x_of(phase.end_us)
        phase_w = max(x1 - x0, 1.0)
        canvas.rect(x0, y_phases, phase_w, track_h, color, opacity=0.85)
        if phase_w > 60:
            canvas.text(
                x0 + phase_w / 2,
                y_phases + track_h / 2 + 4,
                f"phase {phase.phase_id} ({phase.num_steps} steps)",
                size=10,
                anchor="middle",
                color="#ffffff",
            )

    # Time axis in seconds.
    y_axis = y_phases + track_h + 10
    canvas.line(margin_left, y_axis, margin_left + plot_w, y_axis)
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        x = margin_left + plot_w * fraction
        canvas.line(x, y_axis, x, y_axis + 4)
        seconds = (start + span * fraction) / 1e6
        canvas.text(x, y_axis + 18, f"{seconds:.1f}s", size=10, anchor="middle")
    return canvas.render()
