"""Figure regeneration: dependency-free SVG charts of the paper's plots."""

from repro.viz.figures import DEFAULT_WORKLOADS, FIGURES, FigureData, generate_figures
from repro.viz.svg import PALETTE, SvgCanvas, bar_chart, line_chart
from repro.viz.timeline import phase_timeline_svg

__all__ = [
    "DEFAULT_WORKLOADS",
    "FIGURES",
    "FigureData",
    "PALETTE",
    "SvgCanvas",
    "bar_chart",
    "generate_figures",
    "line_chart",
    "phase_timeline_svg",
]
