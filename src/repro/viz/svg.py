"""A minimal, dependency-free SVG chart backend.

Just enough vector drawing to regenerate the paper's figures as images:
grouped bar charts (Figures 10-16) and multi-series line charts
(Figures 4-6). Output is a self-contained SVG string that renders in
any browser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from xml.sax.saxutils import escape

from repro.errors import ConfigurationError

#: A color-blind-safe categorical palette (Okabe-Ito).
PALETTE = (
    "#0072B2",
    "#E69F00",
    "#009E73",
    "#D55E00",
    "#CC79A7",
    "#56B4E9",
    "#F0E442",
    "#000000",
)

_FONT = "font-family='Helvetica,Arial,sans-serif'"


@dataclass
class SvgCanvas:
    """An SVG element buffer with fixed pixel dimensions."""

    width: int
    height: int
    _elements: list[str] = field(default_factory=list)

    def rect(self, x, y, w, h, fill, opacity: float = 1.0) -> None:
        self._elements.append(
            f"<rect x='{x:.1f}' y='{y:.1f}' width='{w:.1f}' height='{h:.1f}' "
            f"fill='{fill}' opacity='{opacity}'/>"
        )

    def line(self, x1, y1, x2, y2, stroke="#444", width=1.0) -> None:
        self._elements.append(
            f"<line x1='{x1:.1f}' y1='{y1:.1f}' x2='{x2:.1f}' y2='{y2:.1f}' "
            f"stroke='{stroke}' stroke-width='{width}'/>"
        )

    def polyline(self, points, stroke, width=2.0) -> None:
        coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self._elements.append(
            f"<polyline points='{coords}' fill='none' stroke='{stroke}' "
            f"stroke-width='{width}'/>"
        )

    def circle(self, x, y, r, fill) -> None:
        self._elements.append(f"<circle cx='{x:.1f}' cy='{y:.1f}' r='{r}' fill='{fill}'/>")

    def text(self, x, y, content, size=12, anchor="start", rotate: float | None = None,
             color="#222") -> None:
        transform = (
            f" transform='rotate({rotate:.0f} {x:.1f} {y:.1f})'" if rotate is not None else ""
        )
        self._elements.append(
            f"<text x='{x:.1f}' y='{y:.1f}' font-size='{size}' {_FONT} "
            f"fill='{color}' text-anchor='{anchor}'{transform}>{escape(str(content))}</text>"
        )

    def render(self) -> str:
        body = "\n".join(self._elements)
        return (
            f"<svg xmlns='http://www.w3.org/2000/svg' width='{self.width}' "
            f"height='{self.height}' viewBox='0 0 {self.width} {self.height}'>\n"
            f"<rect width='{self.width}' height='{self.height}' fill='white'/>\n"
            f"{body}\n</svg>"
        )


def _nice_ticks(maximum: float, count: int = 5) -> list[float]:
    if maximum <= 0:
        return [0.0, 1.0]
    raw = maximum / count
    magnitude = 10 ** len(str(int(raw))) / 10 if raw >= 1 else 10 ** -len(str(int(1 / raw)))
    step = max(raw, magnitude)
    # Round the step to 1/2/5 x 10^k.
    import math

    exponent = math.floor(math.log10(step))
    base = step / 10**exponent
    if base <= 1:
        base = 1
    elif base <= 2:
        base = 2
    elif base <= 5:
        base = 5
    else:
        base = 10
    step = base * 10**exponent
    ticks = []
    value = 0.0
    while value <= maximum * 1.0001:
        ticks.append(value)
        value += step
    return ticks


def bar_chart(
    title: str,
    categories: list[str],
    series: dict[str, list[float]],
    width: int = 860,
    height: int = 360,
    percent: bool = False,
    ylabel: str = "",
) -> str:
    """A grouped bar chart; one bar group per category."""
    if not categories or not series:
        raise ConfigurationError("bar_chart needs categories and series")
    for label, values in series.items():
        if len(values) != len(categories):
            raise ConfigurationError(f"series {label!r} length mismatch")

    margin_left, margin_bottom, margin_top = 64, 86, 40
    plot_w = width - margin_left - 20
    plot_h = height - margin_top - margin_bottom
    canvas = SvgCanvas(width, height)
    canvas.text(width / 2, 22, title, size=15, anchor="middle")

    maximum = max(max(values) for values in series.values())
    maximum = max(maximum, 1e-9)
    ticks = _nice_ticks(maximum if not percent else min(maximum, 1.0))

    def y_of(value: float) -> float:
        top = ticks[-1]
        return margin_top + plot_h * (1.0 - value / top)

    for tick in ticks:
        y = y_of(tick)
        canvas.line(margin_left, y, margin_left + plot_w, y, stroke="#ddd")
        label = f"{tick:.0%}" if percent else f"{tick:g}"
        canvas.text(margin_left - 6, y + 4, label, size=11, anchor="end")
    canvas.line(margin_left, margin_top, margin_left, margin_top + plot_h)
    canvas.line(margin_left, margin_top + plot_h, margin_left + plot_w, margin_top + plot_h)
    if ylabel:
        canvas.text(16, margin_top + plot_h / 2, ylabel, size=12, anchor="middle", rotate=-90)

    group_w = plot_w / len(categories)
    bar_w = group_w * 0.7 / len(series)
    for column, category in enumerate(categories):
        x0 = margin_left + column * group_w + group_w * 0.15
        for row, (label, values) in enumerate(series.items()):
            x = x0 + row * bar_w
            y = y_of(values[column])
            canvas.rect(x, y, bar_w * 0.92, margin_top + plot_h - y, PALETTE[row % len(PALETTE)])
        canvas.text(
            margin_left + column * group_w + group_w / 2,
            margin_top + plot_h + 14,
            category,
            size=10,
            anchor="end",
            rotate=-30,
        )

    legend_x = margin_left
    legend_y = height - 14
    for row, label in enumerate(series):
        canvas.rect(legend_x, legend_y - 10, 12, 12, PALETTE[row % len(PALETTE)])
        canvas.text(legend_x + 16, legend_y, label, size=11)
        legend_x += 24 + 7 * len(label)
    return canvas.render()


def line_chart(
    title: str,
    x_values: list[float],
    series: dict[str, list[float]],
    width: int = 860,
    height: int = 400,
    xlabel: str = "",
    ylabel: str = "",
    log_y: bool = False,
) -> str:
    """A multi-series line chart over shared x values."""
    if not x_values or not series:
        raise ConfigurationError("line_chart needs x values and series")
    for label, values in series.items():
        if len(values) != len(x_values):
            raise ConfigurationError(f"series {label!r} length mismatch")

    import math

    margin_left, margin_bottom, margin_top, margin_right = 64, 56, 40, 170
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom
    canvas = SvgCanvas(width, height)
    canvas.text((margin_left + plot_w) / 2, 22, title, size=15, anchor="middle")

    x_min, x_max = min(x_values), max(x_values)
    x_span = (x_max - x_min) or 1.0
    all_values = [v for values in series.values() for v in values]
    if log_y:
        floor = max(min(v for v in all_values if v > 0), 1e-9)
        transform = lambda v: math.log10(max(v, floor))  # noqa: E731
    else:
        transform = lambda v: v  # noqa: E731
    y_min = min(transform(v) for v in all_values)
    y_max = max(transform(v) for v in all_values)
    y_span = (y_max - y_min) or 1.0

    def point(x, value):
        px = margin_left + plot_w * (x - x_min) / x_span
        py = margin_top + plot_h * (1.0 - (transform(value) - y_min) / y_span)
        return px, py

    canvas.line(margin_left, margin_top, margin_left, margin_top + plot_h)
    canvas.line(margin_left, margin_top + plot_h, margin_left + plot_w, margin_top + plot_h)
    for x in x_values:
        px, _ = point(x, all_values[0])
        canvas.line(px, margin_top + plot_h, px, margin_top + plot_h + 4)
        canvas.text(px, margin_top + plot_h + 18, f"{x:g}", size=10, anchor="middle")
    if xlabel:
        canvas.text(margin_left + plot_w / 2, height - 10, xlabel, size=12, anchor="middle")
    if ylabel:
        label = f"{ylabel} (log)" if log_y else ylabel
        canvas.text(16, margin_top + plot_h / 2, label, size=12, anchor="middle", rotate=-90)

    legend_y = margin_top + 4
    for row, (label, values) in enumerate(series.items()):
        color = PALETTE[row % len(PALETTE)]
        points = [point(x, v) for x, v in zip(x_values, values)]
        canvas.polyline(points, stroke=color)
        for px, py in points:
            canvas.circle(px, py, 2.4, color)
        canvas.line(
            margin_left + plot_w + 10, legend_y, margin_left + plot_w + 30, legend_y,
            stroke=color, width=2.5,
        )
        canvas.text(margin_left + plot_w + 36, legend_y + 4, label, size=11)
        legend_y += 18
    return canvas.render()
