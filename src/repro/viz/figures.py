"""Regenerate the paper's figures as SVG images.

Each generator runs the required workloads (deterministically, with a
shared cache), computes the same series the paper plots, and writes a
self-contained ``figNN.svg``. `generate_figures` drives the full set;
the CLI exposes it as ``tpupoint figures``.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.analyzer import TPUPointAnalyzer
from repro.core.api import TPUPoint
from repro.viz.svg import bar_chart, line_chart
from repro.viz.timeline import phase_timeline_svg
from repro.workloads.runner import WorkloadRun, build_estimator, run_workload
from repro.workloads.spec import WorkloadSpec

#: Default workload set (the paper's nine, in figure order).
DEFAULT_WORKLOADS = (
    "bert-mrpc",
    "bert-squad",
    "bert-cola",
    "bert-mnli",
    "dcgan-cifar10",
    "dcgan-mnist",
    "qanet-squad",
    "retinanet-coco",
    "resnet-imagenet",
)


class FigureData:
    """Caches runs/analyzers across figure generators."""

    def __init__(self, workloads: tuple[str, ...] = DEFAULT_WORKLOADS):
        self.workloads = workloads
        self._runs: dict[tuple[str, str], WorkloadRun] = {}
        self._analyzers: dict[tuple[str, str], TPUPointAnalyzer] = {}

    def run(self, key: str, generation: str = "v2") -> WorkloadRun:
        cache_key = (key, generation)
        if cache_key not in self._runs:
            self._runs[cache_key] = run_workload(WorkloadSpec(key, generation=generation))
        return self._runs[cache_key]

    def analyzer(self, key: str, generation: str = "v2") -> TPUPointAnalyzer:
        cache_key = (key, generation)
        if cache_key not in self._analyzers:
            estimator = build_estimator(WorkloadSpec(key, generation=generation))
            tpupoint = TPUPoint(estimator)
            tpupoint.Start(analyzer=True)
            estimator.train()
            tpupoint.Stop()
            self._analyzers[cache_key] = TPUPointAnalyzer(tpupoint.records)
        return self._analyzers[cache_key]


def figure03(data: FigureData) -> str:
    """The profile/phase breakdown timeline for one representative run."""
    key = data.workloads[0]
    analyzer = data.analyzer(key)
    phases = analyzer.ols_phases(0.70).phases
    return phase_timeline_svg(
        analyzer.records,
        phases,
        title=f"Figure 3: profile and phase breakdown ({key}, OLS @ 70%)",
    )


def figure04(data: FigureData) -> str:
    """k-means SSD vs k, normalized to k=1."""
    ks = list(range(1, 16))
    series = {}
    for key in data.workloads:
        sweep = data.analyzer(key).kmeans_sweep(range(1, 16))
        base = max(sweep[1], 1e-12)
        series[key] = [sweep.get(k, 0.0) / base for k in ks]
    return line_chart(
        "Figure 4: k-means sum of squared distances vs k",
        [float(k) for k in ks],
        series,
        xlabel="k",
        ylabel="SSD / SSD(k=1)",
    )


def figure05(data: FigureData) -> str:
    """DBSCAN noise ratio vs minimum samples."""
    sweep_range = list(range(5, 181, 25))
    series = {}
    for key in data.workloads:
        sweep = data.analyzer(key).dbscan_sweep(sweep_range)
        series[key] = [sweep[m] for m in sweep_range]
    return line_chart(
        "Figure 5: DBSCAN noise ratio vs minimum samples",
        [float(m) for m in sweep_range],
        series,
        xlabel="minimum samples",
        ylabel="noise ratio",
    )


def figure06(data: FigureData) -> str:
    """OLS phase count vs similarity threshold."""
    thresholds = [round(0.1 * i, 1) for i in range(11)]
    series = {}
    for key in data.workloads:
        sweep = data.analyzer(key).ols_sweep(thresholds)
        series[key] = [float(sweep[t]) for t in thresholds]
    return line_chart(
        "Figure 6: OLS phases vs similarity threshold",
        [t * 100 for t in thresholds],
        series,
        xlabel="similarity threshold (%)",
        ylabel="phases",
        log_y=True,
    )


def figure07(data: FigureData) -> str:
    """Top-3 phase coverage, OLS @ 70% (stacked as grouped bars)."""
    series = {"phase 1": [], "phase 2": [], "phase 3": []}
    for key in data.workloads:
        report = data.analyzer(key).ols_phases(0.70).coverage()
        fractions = list(report.fractions) + [0.0, 0.0, 0.0]
        for index in range(3):
            series[f"phase {index + 1}"].append(fractions[index])
    return bar_chart(
        "Figure 7: top-3 phase coverage, OLS @ 70%",
        list(data.workloads),
        series,
        percent=True,
        ylabel="fraction of execution time",
    )


def figure10(data: FigureData) -> str:
    """TPU idle time, v2 vs v3."""
    series = {
        "TPUv2": [data.run(key, "v2").idle_fraction for key in data.workloads],
        "TPUv3": [data.run(key, "v3").idle_fraction for key in data.workloads],
    }
    return bar_chart(
        "Figure 10: TPU idle time",
        list(data.workloads),
        series,
        percent=True,
        ylabel="idle fraction",
    )


def figure11(data: FigureData) -> str:
    """MXU utilization, v2 vs v3."""
    series = {
        "TPUv2": [data.run(key, "v2").mxu_utilization for key in data.workloads],
        "TPUv3": [data.run(key, "v3").mxu_utilization for key in data.workloads],
    }
    return bar_chart(
        "Figure 11: MXU utilization",
        list(data.workloads),
        series,
        percent=True,
        ylabel="MXU utilization",
    )


def figure14(data: FigureData) -> str:
    """Optimizer speedups on TPUv2 for the long-running workloads."""
    keys = [k for k in ("qanet-squad", "retinanet-coco") if k in data.workloads] or list(
        data.workloads[:2]
    )
    speedups = []
    for key in keys:
        baseline = data.run(key, "v2")
        estimator = build_estimator(WorkloadSpec(key, generation="v2"))
        result = TPUPoint(estimator).optimize()
        speedups.append(baseline.summary.wall_us / result.summary.wall_us)
    return bar_chart(
        "Figure 14: TPUPoint-Optimizer speedups (TPUv2)",
        keys,
        {"speedup": speedups},
        ylabel="speedup (x)",
    )


#: name -> generator
FIGURES = {
    "fig03": figure03,
    "fig04": figure04,
    "fig05": figure05,
    "fig06": figure06,
    "fig07": figure07,
    "fig10": figure10,
    "fig11": figure11,
    "fig14": figure14,
}


def generate_figures(
    out_dir: str | Path,
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    names: tuple[str, ...] | None = None,
) -> dict[str, Path]:
    """Write the requested figures; returns {name: path}."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    data = FigureData(workloads)
    written: dict[str, Path] = {}
    for name, generator in FIGURES.items():
        if names is not None and name not in names:
            continue
        path = out_dir / f"{name}.svg"
        path.write_text(generator(data), encoding="utf-8")
        written[name] = path
    return written
