"""Objects stored in a simulated cloud-storage bucket.

A stored object is just a named blob with a size; dataset shards add the
number of training examples they carry so the input pipeline can convert
"read one shard" into "produced N examples".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StorageObject:
    """One immutable object in a bucket."""

    name: str
    num_bytes: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("object name must be non-empty")
        if self.num_bytes < 0:
            raise ConfigurationError("object size must be non-negative")


@dataclass(frozen=True)
class DatasetShard(StorageObject):
    """A dataset shard: a blob holding a known number of examples."""

    num_examples: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.num_examples < 0:
            raise ConfigurationError("num_examples must be non-negative")

    @property
    def bytes_per_example(self) -> float:
        """Average serialized example size within this shard."""
        if self.num_examples == 0:
            return 0.0
        return self.num_bytes / self.num_examples


def shard_dataset(
    name: str, total_bytes: float, total_examples: int, num_shards: int
) -> list[DatasetShard]:
    """Split a dataset into evenly sized shards (last shard takes the slack)."""
    if num_shards <= 0:
        raise ConfigurationError("num_shards must be positive")
    if total_examples < num_shards:
        num_shards = max(1, total_examples) if total_examples else 1
    base_examples = total_examples // num_shards
    base_bytes = total_bytes / num_shards
    shards = []
    remaining_examples = total_examples
    for index in range(num_shards):
        examples = base_examples if index < num_shards - 1 else remaining_examples
        shards.append(
            DatasetShard(
                name=f"{name}-{index:05d}-of-{num_shards:05d}",
                num_bytes=base_bytes,
                num_examples=examples,
            )
        )
        remaining_examples -= examples
    return shards
