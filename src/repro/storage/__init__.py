"""Cloud-storage substrate: buckets, objects, and checkpoints."""

from repro.storage.bucket import Bucket, BucketStats
from repro.storage.checkpoints import Checkpoint, CheckpointStore
from repro.storage.kvstore import JsonDocumentStore
from repro.storage.objects import DatasetShard, StorageObject, shard_dataset

__all__ = [
    "Bucket",
    "BucketStats",
    "Checkpoint",
    "CheckpointStore",
    "DatasetShard",
    "JsonDocumentStore",
    "StorageObject",
    "shard_dataset",
]
