"""Durable JSON document store.

Small subsystem state that must survive across runs — most prominently
the autotuner's knowledge base (:mod:`repro.core.optimizer.knowledge`)
— persists through this store rather than ad-hoc file handling. Two
properties matter:

* **Atomic writes.** Documents are written to a temporary sibling and
  moved into place with :func:`os.replace`, so a crash mid-save leaves
  either the old document or the new one, never a torn file. (The same
  discipline as the profiler's crash-safe journal, minus the append
  log: documents here are small and rewritten whole.)
* **Explicit corruption.** An unreadable document raises
  :class:`~repro.errors.StorageError` with the offending path; callers
  that can degrade (the knowledge base falls back to an empty prior
  set) catch it, callers that cannot see a precise failure.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import StorageError

_SUFFIX = ".json"


class JsonDocumentStore:
    """Named JSON documents under one directory, written atomically."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise StorageError(f"cannot create store directory {directory}: {error}")

    def path(self, name: str) -> Path:
        """Filesystem path of one document."""
        if not name or "/" in name or name.startswith("."):
            raise StorageError(f"invalid document name {name!r}")
        return self.directory / f"{name}{_SUFFIX}"

    def exists(self, name: str) -> bool:
        return self.path(name).exists()

    def names(self) -> list[str]:
        """All stored document names, sorted."""
        return sorted(p.stem for p in self.directory.glob(f"*{_SUFFIX}"))

    def load(self, name: str) -> dict | None:
        """Read one document; None when absent, StorageError when corrupt."""
        path = self.path(name)
        if not path.exists():
            return None
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise StorageError(f"unreadable document {path}: {error}")
        if not isinstance(document, dict):
            raise StorageError(f"document {path} is not a JSON object")
        return document

    def save(self, name: str, document: dict) -> Path:
        """Write one document atomically; returns the path written."""
        path = self.path(name)
        try:
            payload = json.dumps(document, indent=2, sort_keys=True)
        except (TypeError, ValueError) as error:
            raise StorageError(f"document {name!r} is not JSON-serializable: {error}")
        tmp = path.with_suffix(".tmp")
        try:
            tmp.write_text(payload + "\n", encoding="utf-8")
            os.replace(tmp, path)
        except OSError as error:
            raise StorageError(f"cannot write document {path}: {error}")
        return path

    def delete(self, name: str) -> bool:
        """Remove one document; returns whether it existed."""
        path = self.path(name)
        if not path.exists():
            return False
        path.unlink()
        return True
