"""Cloud-storage bucket model.

A Cloud TPU deployment keeps training data and model checkpoints in a
Storage Bucket that the host VM reads over the network. The bucket model
charges a per-request latency plus throughput-limited transfer time, which
makes dataset size and shard layout visible to the input pipeline — the
mechanism behind the paper's Observation 6 (bottlenecks move when the
dataset changes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, StorageError
from repro.storage.objects import StorageObject


@dataclass
class BucketStats:
    """Running request/byte counters for a bucket."""

    reads: int = 0
    writes: int = 0
    bytes_read: float = 0.0
    bytes_written: float = 0.0


@dataclass
class Bucket:
    """A named bucket with a simple latency/throughput cost model.

    Attributes:
        name: bucket name (``gs://name``).
        read_bandwidth: sustained read throughput in bytes/s.
        write_bandwidth: sustained write throughput in bytes/s.
        request_latency_us: fixed per-request latency in microseconds.
        quota_bytes: storage quota; writes that would exceed it raise
            StorageError (None = unlimited), the way a full project
            quota fails a checkpoint save in production.
    """

    name: str
    read_bandwidth: float = 800e6
    write_bandwidth: float = 400e6
    request_latency_us: float = 30_000.0
    quota_bytes: float | None = None
    _objects: dict[str, StorageObject] = field(default_factory=dict, repr=False)
    stats: BucketStats = field(default_factory=BucketStats, repr=False)

    def __post_init__(self) -> None:
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ConfigurationError("bucket bandwidth must be positive")
        if self.request_latency_us < 0:
            raise ConfigurationError("request latency must be non-negative")

    # --- object management ---------------------------------------------

    def used_bytes(self) -> float:
        """Bytes currently stored."""
        return sum(obj.num_bytes for obj in self._objects.values())

    def put(self, obj: StorageObject) -> float:
        """Store an object; returns the simulated write time in us.

        Raises StorageError when the write would exceed the quota.
        """
        if self.quota_bytes is not None:
            existing = self._objects.get(obj.name)
            projected = self.used_bytes() - (existing.num_bytes if existing else 0.0)
            if projected + obj.num_bytes > self.quota_bytes:
                raise StorageError(
                    f"bucket {self.name!r} quota exceeded: "
                    f"{projected + obj.num_bytes:.0f} B > {self.quota_bytes:.0f} B"
                )
        self._objects[obj.name] = obj
        self.stats.writes += 1
        self.stats.bytes_written += obj.num_bytes
        return self.request_latency_us + obj.num_bytes / self.write_bandwidth * 1e6

    def get(self, name: str) -> StorageObject:
        """Fetch object metadata without charging a transfer."""
        try:
            return self._objects[name]
        except KeyError as exc:
            raise StorageError(f"object {name!r} not found in bucket {self.name!r}") from exc

    def exists(self, name: str) -> bool:
        """Whether an object with this name is stored."""
        return name in self._objects

    def delete(self, name: str) -> None:
        """Remove an object; missing names raise StorageError."""
        if name not in self._objects:
            raise StorageError(f"object {name!r} not found in bucket {self.name!r}")
        del self._objects[name]

    def list(self, prefix: str = "") -> list[StorageObject]:
        """List stored objects whose names start with ``prefix``, sorted."""
        return sorted(
            (obj for name, obj in self._objects.items() if name.startswith(prefix)),
            key=lambda obj: obj.name,
        )

    # --- transfer costing ------------------------------------------------

    def read_time_us(self, name: str) -> float:
        """Simulated time to read one object in full."""
        obj = self.get(name)
        self.stats.reads += 1
        self.stats.bytes_read += obj.num_bytes
        return self.request_latency_us + obj.num_bytes / self.read_bandwidth * 1e6

    def read_bytes_time_us(self, num_bytes: float) -> float:
        """Simulated time to read ``num_bytes`` of sequential data."""
        if num_bytes < 0:
            raise ConfigurationError("num_bytes must be non-negative")
        self.stats.reads += 1
        self.stats.bytes_read += num_bytes
        return self.request_latency_us + num_bytes / self.read_bandwidth * 1e6
