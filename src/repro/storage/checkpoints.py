"""Checkpoint store.

TensorFlow periodically saves model checkpoints tagged with the global
step. TPUPoint-Analyzer associates each detected phase with the nearest
checkpoint so a user can fast-forward a run to the interesting phase
(Section IV-C), and TPUPoint-Optimizer restarts from checkpoints while
tuning. The store keeps checkpoints in a bucket and answers
nearest-checkpoint queries.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.errors import CheckpointError, ConfigurationError
from repro.storage.bucket import Bucket
from repro.storage.objects import StorageObject


@dataclass(frozen=True)
class Checkpoint:
    """One saved model checkpoint."""

    step: int
    saved_at_us: float
    num_bytes: float

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ConfigurationError("checkpoint step must be non-negative")
        if self.num_bytes < 0:
            raise ConfigurationError("checkpoint size must be non-negative")

    @property
    def object_name(self) -> str:
        return f"model.ckpt-{self.step}"


class CheckpointStore:
    """Checkpoints for one training run, persisted into a bucket."""

    def __init__(self, bucket: Bucket, prefix: str = "checkpoints/"):
        self.bucket = bucket
        self.prefix = prefix
        self._checkpoints: list[Checkpoint] = []  # sorted by step

    def __len__(self) -> int:
        return len(self._checkpoints)

    @property
    def checkpoints(self) -> list[Checkpoint]:
        """All checkpoints, ordered by step."""
        return list(self._checkpoints)

    def save(self, checkpoint: Checkpoint) -> float:
        """Persist a checkpoint; returns the simulated write time in us.

        Steps must be strictly increasing, matching TensorFlow's behaviour
        of writing monotonically tagged checkpoints during one run.
        """
        if self._checkpoints and checkpoint.step <= self._checkpoints[-1].step:
            raise CheckpointError(
                f"checkpoint steps must increase: got {checkpoint.step} after "
                f"{self._checkpoints[-1].step}"
            )
        write_us = self.bucket.put(
            StorageObject(self.prefix + checkpoint.object_name, checkpoint.num_bytes)
        )
        self._checkpoints.append(checkpoint)
        return write_us

    def latest(self) -> Checkpoint:
        """The most recent checkpoint; raises if none exist."""
        if not self._checkpoints:
            raise CheckpointError("no checkpoints have been saved")
        return self._checkpoints[-1]

    def nearest(self, step: int) -> Checkpoint:
        """The checkpoint with the smallest step distance to ``step``.

        Ties between an earlier and a later checkpoint prefer the earlier
        one, since restoring earlier never skips the target step.
        """
        if not self._checkpoints:
            raise CheckpointError("no checkpoints have been saved")
        steps = [ckpt.step for ckpt in self._checkpoints]
        idx = bisect_right(steps, step)
        candidates = []
        if idx > 0:
            candidates.append(self._checkpoints[idx - 1])
        if idx < len(self._checkpoints):
            candidates.append(self._checkpoints[idx])
        return min(candidates, key=lambda ckpt: (abs(ckpt.step - step), ckpt.step))

    def nearest_before(self, step: int) -> Checkpoint:
        """The latest checkpoint at or before ``step`` (for fast-forwarding)."""
        if not self._checkpoints:
            raise CheckpointError("no checkpoints have been saved")
        steps = [ckpt.step for ckpt in self._checkpoints]
        idx = bisect_right(steps, step)
        if idx == 0:
            raise CheckpointError(f"no checkpoint at or before step {step}")
        return self._checkpoints[idx - 1]

    def restore_time_us(self, checkpoint: Checkpoint) -> float:
        """Simulated time to restore a checkpoint from the bucket."""
        return self.bucket.read_time_us(self.prefix + checkpoint.object_name)
