"""Exception hierarchy for the TPUPoint reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch the whole library with a single except clause while the
subsystem-specific subclasses keep error handling precise.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was configured with invalid or inconsistent options."""


class GraphError(ReproError):
    """A computational graph is malformed or an op is used incorrectly."""


class PartitionError(GraphError):
    """The host/TPU partitioner could not place the graph."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class StorageError(ReproError):
    """A cloud-storage bucket or object operation failed."""


class CheckpointError(StorageError):
    """A checkpoint could not be saved, found, or restored."""


class ProfilerError(ReproError):
    """TPUPoint-Profiler misuse (double start, stop before start, ...)."""


class ProfileServiceError(ProfilerError):
    """The gRPC-style profile service rejected or dropped a request."""


class FaultInjectionError(ProfileServiceError):
    """An injected fault fired at a pipeline boundary.

    Carries the fault ``kind`` (the :class:`repro.faults.FaultKind` value)
    and whether the failure is ``retryable`` — the resilient profile
    client retries only errors flagged retryable.
    """

    def __init__(self, message: str, kind: str = "error", retryable: bool = True):
        super().__init__(message)
        self.kind = kind
        self.retryable = retryable


class CircuitOpenError(ProfilerError):
    """The profile client's circuit breaker is open; no request was sent."""


class JournalError(ProfilerError):
    """The record journal could not be written, read, or recovered."""


class CodecError(ProfilerError):
    """A binary record payload, block, or wire frame failed to encode/decode."""


class AnalyzerError(ReproError):
    """TPUPoint-Analyzer received unusable profile data."""


class ClusteringError(AnalyzerError):
    """A clustering algorithm was invoked with invalid hyper-parameters."""


class AnalyzerMemoryError(AnalyzerError):
    """A clustering method exceeded the analyzer's memory budget."""


class CacheError(AnalyzerError):
    """The analysis memo cache was misused or hit unreadable entries."""


class ServeError(ReproError):
    """Fleet profiling service misuse (unknown job, bad lifecycle move)."""


class UnknownJobError(ServeError):
    """A query or ingest named a job id the fleet has never registered."""


class ShardError(ServeError):
    """Sharded-fleet misuse (bad shard count, resize while ingesting)."""


class ObsError(ReproError):
    """Self-observability misuse (bad metric name, unparseable dump)."""


class OptimizerError(ReproError):
    """TPUPoint-Optimizer misuse or tuning failure."""


class QualityViolationError(OptimizerError):
    """A parameter adjustment changed program output and was rolled back."""
