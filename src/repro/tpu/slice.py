"""Multi-chip TPU slices (beyond-paper extension).

The paper confines its study to single-TPU instances because scaling to
slices "requires significant tuning and optimization" (Section V,
quoting Google's system-architecture docs). This module supplies the
substrate to *show* why: a :class:`TpuSliceSpec` describes a
data-parallel slice (e.g. a v2-8 board's four chips) with an ICI
interconnect; per-step compute and infeed shard across chips while the
host input pipeline — and its tuning — stays shared, so the host-bound
crossover arrives exactly ``num_chips`` times sooner.

Execution reuses the single-device machinery: lowering costs ops
against the slice's *aggregate* spec (n x peak FLOPS, n x HBM, n links),
which is timing-equivalent to per-chip execution of 1/n of the batch,
except the gradient all-reduce, which pays a ring-transfer cost over
the ICI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.tpu.specs import TpuChipSpec, TpuGeneration, chip_spec


@dataclass(frozen=True)
class TpuSliceSpec:
    """A data-parallel slice of identical TPU chips.

    Attributes:
        chip: the member chip's spec.
        num_chips: chips in the slice (1 degenerates to a single device).
        ici_bandwidth: per-link inter-chip-interconnect bandwidth, bytes/s.
        ici_latency_us: per-hop ICI latency in microseconds.
    """

    chip: TpuChipSpec
    num_chips: int
    ici_bandwidth: float = 100e9
    ici_latency_us: float = 25.0

    def __post_init__(self) -> None:
        if self.num_chips <= 0:
            raise ConfigurationError("num_chips must be positive")
        if self.ici_bandwidth <= 0:
            raise ConfigurationError("ici_bandwidth must be positive")
        if self.ici_latency_us < 0:
            raise ConfigurationError("ici_latency_us must be non-negative")

    @property
    def generation(self) -> TpuGeneration:
        return self.chip.generation

    @property
    def name(self) -> str:
        """Cloud naming: a vN-K slice exposes 2 cores per chip."""
        return f"{self.generation.value}-{self.num_chips * 2}"

    def aggregate_chip_spec(self) -> TpuChipSpec:
        """The slice viewed as one big device (data-parallel equivalence).

        Costing an op against n x peak with the full batch equals costing
        1/n of the batch against one chip; the same holds for HBM traffic
        and the per-chip infeed DMA links.
        """
        return replace(
            self.chip,
            mxu_count=self.chip.mxu_count * self.num_chips,
            peak_flops=self.chip.peak_flops * self.num_chips,
            hbm_bytes=self.chip.hbm_bytes * self.num_chips,
            hbm_bandwidth=self.chip.hbm_bandwidth * self.num_chips,
            tdp_watts=self.chip.tdp_watts * self.num_chips,
            infeed_bandwidth=self.chip.infeed_bandwidth * self.num_chips,
        )

    def all_reduce_us(self, gradient_bytes: float) -> float:
        """Ring all-reduce time for one gradient exchange.

        The ring moves ``2 (n-1)/n`` of the payload per chip across the
        ICI, plus a latency term per ring step.
        """
        if gradient_bytes < 0:
            raise ConfigurationError("gradient_bytes must be non-negative")
        if self.num_chips == 1:
            return 0.0
        n = self.num_chips
        transfer = 2.0 * (n - 1) / n * gradient_bytes / self.ici_bandwidth * 1e6
        latency = 2.0 * (n - 1) * self.ici_latency_us
        return transfer + latency


def tpu_slice(generation: TpuGeneration | str | TpuChipSpec, num_chips: int) -> TpuSliceSpec:
    """Convenience constructor: ``tpu_slice("v2", 4)`` is a v2-8 board."""
    return TpuSliceSpec(chip=chip_spec(generation), num_chips=num_chips)


def scaling_efficiency(single_wall_us: float, slice_wall_us: float, num_chips: int) -> float:
    """Achieved fraction of ideal linear scaling."""
    if slice_wall_us <= 0 or num_chips <= 0:
        raise ConfigurationError("wall time and chip count must be positive")
    speedup = single_wall_us / slice_wall_us
    return speedup / num_chips


def ring_hops(num_chips: int) -> int:
    """Ring steps per all-reduce (2(n-1), reduce-scatter + all-gather)."""
    if num_chips <= 0:
        raise ConfigurationError("num_chips must be positive")
    return 2 * (num_chips - 1)


def tree_depth(num_chips: int) -> int:
    """Depth of a binary reduction tree over the slice (alternative cost)."""
    if num_chips <= 0:
        raise ConfigurationError("num_chips must be positive")
    return math.ceil(math.log2(num_chips)) if num_chips > 1 else 0
