"""High-bandwidth-memory model.

Memory-bound TPU operators (reshape, transpose, copy, element-wise math)
are limited by HBM bandwidth rather than MXU throughput. The model also
tracks allocations against capacity so that oversized workloads fail the
same way the real platform does (k-means/DBSCAN hitting memory limits on
RetinaNet/ResNet is an observation in the paper).
"""

from __future__ import annotations

from repro.errors import ConfigurationError, SimulationError
from repro.tpu.specs import TpuChipSpec


class HbmModel:
    """Capacity and bandwidth model for a chip's HBM stacks."""

    def __init__(self, spec: TpuChipSpec):
        self.spec = spec
        self._allocated_bytes = 0.0

    # --- bandwidth -----------------------------------------------------

    def transfer_time_us(self, num_bytes: float, streams: int = 1) -> float:
        """Time to move ``num_bytes`` through HBM.

        ``streams`` > 1 models ops that both read and write (copy-like ops
        touch memory twice), multiplying the traffic.
        """
        if num_bytes < 0:
            raise ConfigurationError("num_bytes must be non-negative")
        if streams <= 0:
            raise ConfigurationError("streams must be positive")
        return num_bytes * streams / self.spec.hbm_bandwidth * 1e6

    # --- capacity ------------------------------------------------------

    @property
    def allocated_bytes(self) -> float:
        """Bytes currently allocated on the device."""
        return self._allocated_bytes

    @property
    def free_bytes(self) -> float:
        """Bytes still available on the device."""
        return self.spec.hbm_bytes - self._allocated_bytes

    def allocate(self, num_bytes: float) -> None:
        """Reserve device memory, raising SimulationError when exhausted."""
        if num_bytes < 0:
            raise ConfigurationError("num_bytes must be non-negative")
        if self._allocated_bytes + num_bytes > self.spec.hbm_bytes:
            raise SimulationError(
                f"HBM out of memory: requested {num_bytes:.0f} B with only "
                f"{self.free_bytes:.0f} B free of {self.spec.hbm_bytes:.0f} B"
            )
        self._allocated_bytes += num_bytes

    def release(self, num_bytes: float) -> None:
        """Return device memory; releasing more than allocated is an error."""
        if num_bytes < 0:
            raise ConfigurationError("num_bytes must be non-negative")
        if num_bytes > self._allocated_bytes + 1e-6:
            raise SimulationError("released more HBM than was allocated")
        self._allocated_bytes = max(0.0, self._allocated_bytes - num_bytes)

    def reset(self) -> None:
        """Free all allocations (device reinitialization)."""
        self._allocated_bytes = 0.0
