"""Infeed and outfeed queue models.

The host feeds training batches to the TPU through an *infeed* queue and
drains results through an *outfeed* queue. When the host cannot produce
batches as fast as the TPU consumes them, the TPU stalls — this is the
mechanism behind the paper's headline observation that infeed/outfeed
and reshape, not computation, dominate modern TPU workloads.

The queues here are occupancy models driven by explicit timestamps rather
than callback-driven simulators: the session computes, per step, when the
producer finished and when the consumer wanted the data, and the queue
answers how long the consumer had to wait.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError, SimulationError


@dataclass(frozen=True)
class QueueItem:
    """One enqueued batch: when it became ready and how large it is."""

    ready_at_us: float
    num_bytes: float


class TransferQueue:
    """Bounded FIFO connecting a producer and a consumer with timestamps.

    The producer calls :meth:`push` with the simulation time at which the
    item is fully transferred; the consumer calls :meth:`pop` with the time
    it *asks* for an item and receives the time it actually *obtains* one
    (``max(ask, ready)``). The difference is consumer stall time.
    """

    def __init__(self, capacity: int, name: str = "queue"):
        if capacity <= 0:
            raise ConfigurationError("queue capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._items: deque[QueueItem] = deque()
        self.total_pushed = 0
        self.total_popped = 0
        self.total_stall_us = 0.0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        """Whether the producer would block on the next push."""
        return len(self._items) >= self.capacity

    def push(self, ready_at_us: float, num_bytes: float) -> None:
        """Enqueue an item that finishes transferring at ``ready_at_us``."""
        if self.full:
            raise SimulationError(
                f"{self.name}: push into a full queue (capacity {self.capacity})"
            )
        if num_bytes < 0:
            raise ConfigurationError("num_bytes must be non-negative")
        if self._items and ready_at_us < self._items[-1].ready_at_us:
            raise SimulationError(f"{self.name}: non-monotonic ready times")
        self._items.append(QueueItem(ready_at_us, num_bytes))
        self.total_pushed += 1

    def pop(self, ask_at_us: float) -> tuple[float, QueueItem]:
        """Dequeue the oldest item; returns (obtained_at, item)."""
        if not self._items:
            raise SimulationError(f"{self.name}: pop from an empty queue")
        item = self._items.popleft()
        obtained_at = max(ask_at_us, item.ready_at_us)
        self.total_stall_us += obtained_at - ask_at_us
        self.total_popped += 1
        return obtained_at, item

    def reset(self) -> None:
        """Drop all items and counters."""
        self._items.clear()
        self.total_pushed = 0
        self.total_popped = 0
        self.total_stall_us = 0.0
