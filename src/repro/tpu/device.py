"""TPU device: executes one step's worth of TPU operators.

The device consumes a *TPU op schedule* — an ordered list of work items
produced by the workload model after graph partitioning and fusion — and
turns it into timed executions using the MXU and HBM models. It also
accounts the two quantities TPUPoint's profiler reports as device
metadata: **idle time** (the TPU waiting on infeed/outfeed) and **MXU
utilization** (achieved matmul FLOPs against peak).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.tpu.hbm import HbmModel
from repro.tpu.mxu import MxuModel
from repro.tpu.specs import TpuChipSpec, TpuGeneration, chip_spec

# --- output digests -------------------------------------------------------
#
# The simulator carries no real tensor data, so "the numbers an op
# produced" are modeled as a 64-bit FNV-1a digest folded op by op from
# each op's observable outcome (name, achieved duration, and any
# corruption salt a silent-data-corruption model mixed in). Digests are
# only computed for injectors that ask for them (the scrubber's; fleet
# injectors corrupt without collecting, so arming SDC stays cheap) and
# are process-independent (SHA-256 name hashes, not randomized str
# hashes) so scrub golden runs compare exactly across processes.

DIGEST_SEED = 0xCBF29CE484222325
_DIGEST_PRIME = 0x100000001B3
_DIGEST_MASK = 0xFFFFFFFFFFFFFFFF
_NAME_HASHES: dict[str, int] = {}


def _name_hash(name: str) -> int:
    value = _NAME_HASHES.get(name)
    if value is None:
        value = int.from_bytes(hashlib.sha256(name.encode("utf-8")).digest()[:8], "big")
        _NAME_HASHES[name] = value
    return value


def fold_digest(digest: int, name: str, duration_us: float, salt: int = 0) -> int:
    """Fold one op's observable output into a running step digest."""
    value = _name_hash(name) ^ (int(duration_us * 1024.0) & _DIGEST_MASK) ^ (salt & _DIGEST_MASK)
    return ((digest ^ value) * _DIGEST_PRIME) & _DIGEST_MASK


class TpuOpCategory(enum.Enum):
    """How a TPU operator's cost is computed."""

    COMPUTE = "compute"  # MXU-bound: cost from FLOPs
    MEMORY = "memory"  # HBM-bound: cost from bytes moved
    INFEED = "infeed"  # waits for the host, then transfers over the link
    OUTFEED = "outfeed"  # transfers results back toward the host
    SYNC = "sync"  # fixed-cost synchronization (all-reduce, ...)


@dataclass(frozen=True)
class TpuOpWork:
    """One operator's worth of work to run on the device.

    Attributes:
        name: TensorFlow-style operator name (e.g. ``fusion``, ``Reshape``).
        category: cost model used for the op.
        flops: compute work (COMPUTE ops; counted toward MXU utilization
            when ``uses_mxu`` is set).
        num_bytes: memory or transfer traffic (MEMORY/INFEED/OUTFEED ops).
        efficiency: fraction of peak a COMPUTE op achieves (shape effects).
        uses_mxu: whether the op's FLOPs run on the matrix units.
        fixed_us: additive fixed cost (kernel launch, sync latency).
    """

    name: str
    category: TpuOpCategory
    flops: float = 0.0
    num_bytes: float = 0.0
    efficiency: float = 0.5
    uses_mxu: bool = False
    fixed_us: float = 0.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.num_bytes < 0 or self.fixed_us < 0:
            raise ConfigurationError("op work quantities must be non-negative")


@dataclass(frozen=True)
class TpuOpExecution:
    """A completed operator execution on the device timeline."""

    name: str
    category: TpuOpCategory
    start_us: float
    duration_us: float
    flops: float
    num_bytes: float

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


@dataclass
class StepExecution:
    """Result of running one step's TPU schedule."""

    step_number: int
    start_us: float
    end_us: float
    executions: list[TpuOpExecution] = field(default_factory=list)
    idle_us: float = 0.0
    mxu_flops: float = 0.0
    #: Digest of the step's op outputs; ``None`` unless an SDC injector
    #: is attached (clean runs skip digesting entirely).
    output_digest: int | None = None

    @property
    def elapsed_us(self) -> float:
        return self.end_us - self.start_us

    @property
    def idle_fraction(self) -> float:
        """Fraction of the step the TPU spent waiting on data exchange."""
        if self.elapsed_us <= 0:
            return 0.0
        return min(self.idle_us / self.elapsed_us, 1.0)


class TpuDevice:
    """A single Cloud TPU chip executing op schedules step by step."""

    def __init__(self, spec: TpuChipSpec | TpuGeneration | str):
        if not isinstance(spec, TpuChipSpec):
            spec = chip_spec(spec)
        self.spec = spec
        self.mxu = MxuModel(spec)
        self.hbm = HbmModel(spec)
        self.total_busy_us = 0.0
        self.total_idle_us = 0.0
        self.total_mxu_flops = 0.0
        self.sdc = None

    def attach_sdc(self, injector) -> None:
        """Attach (or detach with ``None``) a silent-data-corruption injector.

        The injector (see :mod:`repro.tpu.sdc`) perturbs op durations,
        achieved-FLOPs credit, and output digests — it never raises, so
        a corrupted chip is only distinguishable behaviorally.
        """
        self.sdc = injector

    # --- per-op costing --------------------------------------------------

    def _op_duration_us(self, op: TpuOpWork, data_wait_us: float) -> float:
        if op.category is TpuOpCategory.COMPUTE:
            return op.fixed_us + self.mxu.compute_time_us(op.flops, op.efficiency)
        if op.category is TpuOpCategory.MEMORY:
            return op.fixed_us + self.hbm.transfer_time_us(op.num_bytes, streams=2)
        if op.category in (TpuOpCategory.INFEED, TpuOpCategory.OUTFEED):
            transfer = op.num_bytes / self.spec.infeed_bandwidth * 1e6
            return op.fixed_us + data_wait_us + transfer
        return op.fixed_us  # SYNC

    # --- step execution ---------------------------------------------------

    def execute_step(
        self,
        step_number: int,
        schedule: list[TpuOpWork],
        start_us: float,
        infeed_ready_us: float = 0.0,
    ) -> StepExecution:
        """Run one step's schedule sequentially starting at ``start_us``.

        ``infeed_ready_us`` is the simulation time at which the host has
        fully staged this step's batch; an INFEED op issued before that
        time stalls the device, and the stall is accounted as idle time.
        """
        result = StepExecution(step_number=step_number, start_us=start_us, end_us=start_us)
        now = start_us
        sdc = self.sdc
        active = sdc.begin_step() if sdc is not None else None
        collect = sdc is not None and sdc.digests
        digest = DIGEST_SEED
        for op in schedule:
            data_wait = 0.0
            if op.category is TpuOpCategory.INFEED:
                data_wait = max(0.0, infeed_ready_us - now)
            duration = self._op_duration_us(op, data_wait)
            flops_credit = op.flops
            if sdc is not None:
                salt = 0
                if active:
                    effect = sdc.corrupt(op)
                    if effect is not None:
                        duration *= effect.duration_scale
                        flops_credit = op.flops * effect.flops_scale
                        salt = effect.digest_salt
                if collect:
                    digest = fold_digest(digest, op.name, duration, salt)
            execution = TpuOpExecution(
                name=op.name,
                category=op.category,
                start_us=now,
                duration_us=duration,
                flops=op.flops,
                num_bytes=op.num_bytes,
            )
            result.executions.append(execution)
            now += duration
            if op.category in (TpuOpCategory.INFEED, TpuOpCategory.OUTFEED):
                result.idle_us += duration
            if op.uses_mxu:
                result.mxu_flops += flops_credit
        result.end_us = now
        if collect:
            result.output_digest = digest
        self.total_busy_us += result.elapsed_us - result.idle_us
        self.total_idle_us += result.idle_us
        self.total_mxu_flops += result.mxu_flops
        return result

    # --- aggregate metrics --------------------------------------------------

    @property
    def total_elapsed_us(self) -> float:
        """Busy plus idle time accumulated across all executed steps."""
        return self.total_busy_us + self.total_idle_us

    def idle_fraction(self) -> float:
        """Lifetime fraction of time the device spent idle."""
        elapsed = self.total_elapsed_us
        if elapsed <= 0:
            return 0.0
        return self.total_idle_us / elapsed

    def mxu_utilization(self) -> float:
        """Lifetime achieved matmul FLOPs as a fraction of peak."""
        elapsed = self.total_elapsed_us
        if elapsed <= 0:
            return 0.0
        achieved = self.total_mxu_flops / (elapsed / 1e6)
        return min(achieved / self.spec.peak_flops, 1.0)

    def reset(self) -> None:
        """Clear accumulated counters and device memory."""
        self.total_busy_us = 0.0
        self.total_idle_us = 0.0
        self.total_mxu_flops = 0.0
        self.hbm.reset()
