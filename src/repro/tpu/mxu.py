"""Matrix-unit (MXU) timing model.

An MXU is a 128x128 systolic array. A matrix multiply only achieves peak
throughput when its dimensions fill the array; ragged dimensions waste
lanes. This model converts a FLOP count plus the operand shape into an
execution time and an achieved-utilization figure, which is exactly the
quantity TPUPoint's profiler reports as "MXU utilization".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tpu.specs import TpuChipSpec


def _dim_efficiency(dim: int, lanes: int) -> float:
    """Fraction of systolic lanes a dimension keeps busy.

    A dimension of 300 on a 128-lane array needs ceil(300/128)=3 passes but
    only fills 300/384 of the lanes across them.
    """
    if dim <= 0:
        return 0.0
    passes = -(-dim // lanes)  # ceil division
    return dim / (passes * lanes)


@dataclass(frozen=True)
class MatmulShape:
    """Logical shape of a (possibly batched) matrix multiply: (m,k)x(k,n)."""

    m: int
    k: int
    n: int
    batch: int = 1

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n, self.batch) <= 0:
            raise ConfigurationError("matmul dimensions must be positive")

    @property
    def flops(self) -> float:
        """Multiply-accumulate FLOPs for this shape (2*m*k*n per batch)."""
        return 2.0 * self.m * self.k * self.n * self.batch


class MxuModel:
    """Timing/utilization model for the matrix units of one TPU chip."""

    def __init__(self, spec: TpuChipSpec):
        self.spec = spec

    def shape_efficiency(self, shape: MatmulShape) -> float:
        """Achievable fraction of peak for a matmul shape.

        The product of the lane efficiencies in each systolic dimension,
        floored at a small pipeline-startup efficiency so tiny matrices do
        not report zero.
        """
        lanes = self.spec.mxu_dim
        eff = (
            _dim_efficiency(shape.m, lanes)
            * _dim_efficiency(shape.k, lanes)
            * _dim_efficiency(shape.n, lanes)
        )
        return max(eff, 0.01)

    def matmul_time_us(self, shape: MatmulShape) -> float:
        """Execution time in microseconds for a matmul on all MXUs."""
        achieved = self.spec.peak_flops * self.shape_efficiency(shape)
        return shape.flops / achieved * 1e6

    def compute_time_us(self, flops: float, efficiency: float = 1.0) -> float:
        """Time for a generic compute op expressed only as a FLOP count."""
        if flops < 0:
            raise ConfigurationError("flops must be non-negative")
        if not 0.0 < efficiency <= 1.0:
            raise ConfigurationError("efficiency must be in (0, 1]")
        return flops / (self.spec.peak_flops * efficiency) * 1e6

    def utilization(self, flops: float, elapsed_us: float) -> float:
        """Fraction of peak the chip achieved over an elapsed window."""
        if elapsed_us <= 0:
            return 0.0
        achieved = flops / (elapsed_us / 1e6)
        return min(achieved / self.spec.peak_flops, 1.0)
