"""TPU hardware substrate: chip specs, MXU/HBM models, queues, devices."""

from repro.tpu.device import (
    StepExecution,
    TpuDevice,
    TpuOpCategory,
    TpuOpExecution,
    TpuOpWork,
)
from repro.tpu.hbm import HbmModel
from repro.tpu.mxu import MatmulShape, MxuModel
from repro.tpu.queues import QueueItem, TransferQueue
from repro.tpu.slice import TpuSliceSpec, scaling_efficiency, tpu_slice
from repro.tpu.specs import TPU_V2, TPU_V3, TpuChipSpec, TpuGeneration, chip_spec

__all__ = [
    "TPU_V2",
    "TPU_V3",
    "HbmModel",
    "MatmulShape",
    "MxuModel",
    "QueueItem",
    "StepExecution",
    "TpuChipSpec",
    "TpuDevice",
    "TpuGeneration",
    "TpuOpCategory",
    "TpuOpExecution",
    "TpuOpWork",
    "TpuSliceSpec",
    "TransferQueue",
    "scaling_efficiency",
    "tpu_slice",
    "chip_spec",
]
