"""TPU hardware substrate: chip specs, MXU/HBM models, queues, devices."""

from repro.tpu.device import (
    StepExecution,
    TpuDevice,
    TpuOpCategory,
    TpuOpExecution,
    TpuOpWork,
    fold_digest,
)
from repro.tpu.hbm import HbmModel
from repro.tpu.mxu import MatmulShape, MxuModel
from repro.tpu.queues import QueueItem, TransferQueue
from repro.tpu.sdc import (
    ChipScrubResult,
    ScrubReport,
    SdcEffect,
    SdcEvent,
    SdcFaultModel,
    SdcInjector,
    SdcSpec,
    chip_name,
    run_scrub,
    scrub_cost_us,
    scrub_schedule,
)
from repro.tpu.slice import TpuSliceSpec, scaling_efficiency, tpu_slice
from repro.tpu.specs import TPU_V2, TPU_V3, TpuChipSpec, TpuGeneration, chip_spec

__all__ = [
    "TPU_V2",
    "TPU_V3",
    "ChipScrubResult",
    "HbmModel",
    "MatmulShape",
    "MxuModel",
    "QueueItem",
    "ScrubReport",
    "SdcEffect",
    "SdcEvent",
    "SdcFaultModel",
    "SdcInjector",
    "SdcSpec",
    "StepExecution",
    "TpuChipSpec",
    "TpuDevice",
    "TpuGeneration",
    "TpuOpCategory",
    "TpuOpExecution",
    "TpuOpWork",
    "TpuSliceSpec",
    "TransferQueue",
    "chip_name",
    "chip_spec",
    "fold_digest",
    "run_scrub",
    "scaling_efficiency",
    "scrub_cost_us",
    "scrub_schedule",
    "tpu_slice",
]
