"""Cloud TPU generation specifications.

Numbers come from Section II of the paper and Google's published system
architecture documentation: a TPUv2 chip has two 128x128 MXUs with 8 GiB of
HBM per MXU and 45 TFLOPS peak; TPUv3 doubles the MXU count and HBM for
90 TFLOPS at a similar power envelope. Bandwidth figures use the publicly
stated 600 GB/s (v2) and 900 GB/s (v3) per chip.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import units
from repro.errors import ConfigurationError


class TpuGeneration(enum.Enum):
    """Cloud TPU generations available through the Google Cloud Platform."""

    V2 = "v2"
    V3 = "v3"

    def __str__(self) -> str:
        return f"TPU{self.value}"


@dataclass(frozen=True)
class TpuChipSpec:
    """Static description of one TPU chip.

    Attributes:
        generation: which Cloud TPU generation this spec describes.
        mxu_count: number of 128x128 matrix units on the chip.
        mxu_dim: systolic array dimension (128 lanes per side).
        peak_flops: peak chip throughput in FLOP/s across all MXUs.
        hbm_bytes: total high-bandwidth-memory capacity in bytes.
        hbm_bandwidth: HBM bandwidth in bytes/s.
        clock_hz: MXU clock frequency.
        tdp_watts: thermal design power of the chip.
        infeed_bandwidth: host-to-TPU transfer bandwidth in bytes/s
            (PCIe/ICI-limited path used by infeed).
    """

    generation: TpuGeneration
    mxu_count: int
    mxu_dim: int
    peak_flops: float
    hbm_bytes: float
    hbm_bandwidth: float
    clock_hz: float
    tdp_watts: float
    infeed_bandwidth: float

    def __post_init__(self) -> None:
        if self.mxu_count <= 0:
            raise ConfigurationError("mxu_count must be positive")
        if self.peak_flops <= 0:
            raise ConfigurationError("peak_flops must be positive")
        if self.hbm_bytes <= 0 or self.hbm_bandwidth <= 0:
            raise ConfigurationError("HBM capacity/bandwidth must be positive")

    @property
    def peak_flops_per_mxu(self) -> float:
        """Peak FLOP/s contributed by a single MXU."""
        return self.peak_flops / self.mxu_count


TPU_V2 = TpuChipSpec(
    generation=TpuGeneration.V2,
    mxu_count=2,
    mxu_dim=128,
    peak_flops=units.tflops(45.0),
    hbm_bytes=units.gib(16.0),
    hbm_bandwidth=600e9,
    clock_hz=700e6,
    tdp_watts=225.0,
    infeed_bandwidth=5e9,
)

TPU_V3 = TpuChipSpec(
    generation=TpuGeneration.V3,
    mxu_count=4,
    mxu_dim=128,
    peak_flops=units.tflops(90.0),
    hbm_bytes=units.gib(32.0),
    hbm_bandwidth=900e9,
    clock_hz=940e6,
    tdp_watts=225.0,
    infeed_bandwidth=5e9,
)

_SPECS = {TpuGeneration.V2: TPU_V2, TpuGeneration.V3: TPU_V3}


def chip_spec(generation: "TpuGeneration | str | TpuChipSpec") -> TpuChipSpec:
    """Resolve a chip spec.

    Accepts a generation enum, a "v2"/"v3" string, or — for portability
    to other accelerators (Section VIII: TPUPoint works at the
    programming-language level and ports by swapping the low-level
    calls) — a fully custom :class:`TpuChipSpec`, which is returned
    as-is.
    """
    if isinstance(generation, TpuChipSpec):
        return generation
    if isinstance(generation, str):
        normalized = generation.lower().removeprefix("tpu")
        try:
            generation = TpuGeneration(normalized)
        except ValueError as exc:
            raise ConfigurationError(
                f"unknown TPU generation {generation!r}; expected 'v2' or 'v3'"
            ) from exc
    return _SPECS[generation]
