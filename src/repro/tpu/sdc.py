"""Silent-data-corruption (SDC) injection inside the chip model.

`repro.faults` injects misbehaviour at the RPC/wire/recorder boundaries;
this module injects it *inside the chip*, where real fleets suffer the
faults that never raise: a flipped accumulator bit, a stuck lane in the
systolic array, a part that silently degrades to a low-precision
accumulate path. SDC surfaces as wrong numbers and anomalous behaviour,
not errors — so every fault model here perturbs op outputs (step
digests), achieved-utilization figures, and op timings (hence the
downstream operator mix), and **never raises**.

Three fault models:

``bit_flip``
    A transient flip in MXU accumulation or an HBM read. Outputs are
    wrong (a random bit of the step digest is salted) and the poisoned
    partial products are discounted from the achieved-FLOPs counter
    (``severity`` fraction), so utilization sags while timings stay
    bit-identical — the classic "silent" signature.

``stuck_at``
    A persistently stuck lane/column. The compiler routes around the
    dead lanes, so affected ops run at reduced effective efficiency
    (duration scales by ``1/(1-severity)``) and carry a *stable* wrong
    digest. Slower compute shifts the operator mix, which is what the
    ``PHASE_DRIFT`` alarm keys on.

``low_precision``
    A degraded chip whose wide accumulator fell back to
    ``accumulator_bits`` bits ("degraded chip" knob): chunked
    re-accumulation bounds the rounding error at a ``1+severity``
    duration cost, and the rounded outputs perturb the digest.

Schedules mirror :class:`repro.faults.plan.FaultSpec` semantics —
per-step ``nth`` / ``every_nth`` / seeded ``probability`` inside a
``[first_step, last_step]`` window, first matching spec wins — plus two
selectors of their own: ``chips`` (which chips are bad; empty = all)
and ``ops`` (``compute`` = MXU accumulation, ``memory`` = HBM reads,
``all`` = both). Each spec draws from its own named RNG stream
(``sdc:{chip}:{index}``), so the same plan+seed yields the same
injection log on every run and at any worker count.

The module also implements the *scrub* half of the loop: a seeded
checkered self-test (alternating MXU matmul tiles and HBM sweeps, two
tile magnitudes interleaved like a checkerboard memory test) run on
every chip and compared **exactly** — per-step digests, wall time, and
MXU utilization — against a golden clean execution. Clean chips are
bit-identical to golden, so scrub has zero false positives by
construction.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field

from repro import rng as rng_mod
from repro.errors import ConfigurationError
from repro.tpu.device import TpuDevice, TpuOpCategory, TpuOpWork
from repro.tpu.specs import TpuChipSpec, chip_spec

#: Steps the scrub self-test executes per chip. Plans calibrated to
#: fire inside this window (e.g. ``examples/faults/sdc_burst.json``)
#: are caught by both the live fleet and the offline scrub.
DEFAULT_SCRUB_STEPS = 96

#: Ops per scrub step: alternating MXU / HBM work items.
SCRUB_OPS_PER_STEP = 8

#: Injection events retained verbatim per injector; totals keep
#: counting past the cap so heavy bursts stay bounded in memory.
MAX_SDC_EVENTS = 512

_OP_SELECTORS = ("compute", "memory", "all")


def chip_name(index: int) -> str:
    """Canonical chip id used by the fleet and the scrubber alike."""
    return f"chip-{index}"


def _stable_salt(*parts) -> int:
    """A process-independent 64-bit salt derived from ``parts``."""
    text = ":".join(str(part) for part in parts)
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


# --- wire-format coercion -------------------------------------------------
#
# Shared by SdcSpec.from_dict and FaultSpec.from_dict: user-supplied JSON
# must fail with a ConfigurationError that names the field, never with a
# bare TypeError/ValueError from deep inside a conversion.


def coerce_float(value, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise ConfigurationError(f"{name!r} must be a number, got {value!r}")
    try:
        return float(value)
    except ValueError:
        raise ConfigurationError(f"{name!r} must be a number, got {value!r}") from None


def coerce_int(value, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise ConfigurationError(f"{name!r} must be an integer, got {value!r}")
    try:
        result = int(value)
    except ValueError:
        raise ConfigurationError(f"{name!r} must be an integer, got {value!r}") from None
    if float(result) != float(value):
        raise ConfigurationError(f"{name!r} must be an integer, got {value!r}")
    return result


def coerce_optional_int(value, name: str) -> int | None:
    if value is None:
        return None
    return coerce_int(value, name)


def coerce_int_tuple(value, name: str) -> tuple[int, ...]:
    if isinstance(value, (str, bytes)) or not hasattr(value, "__iter__"):
        raise ConfigurationError(f"{name!r} must be a list of integers, got {value!r}")
    return tuple(coerce_int(item, name) for item in value)


def coerce_str_tuple(value, name: str) -> tuple[str, ...]:
    if isinstance(value, (str, bytes)) or not hasattr(value, "__iter__"):
        raise ConfigurationError(f"{name!r} must be a list of strings, got {value!r}")
    items = tuple(value)
    if any(not isinstance(item, str) or not item for item in items):
        raise ConfigurationError(f"{name!r} must be a list of non-empty strings")
    return items


class SdcFaultModel(enum.Enum):
    """What kind of silent corruption a degraded chip exhibits."""

    BIT_FLIP = "bit_flip"  # transient accumulator/read flip
    STUCK_AT = "stuck_at"  # persistent dead lanes, rerouted around
    LOW_PRECISION = "low_precision"  # degraded low-bit accumulate path


@dataclass(frozen=True)
class SdcEffect:
    """How one corrupted op execution is perturbed (never an exception)."""

    model: SdcFaultModel
    duration_scale: float = 1.0
    flops_scale: float = 1.0
    digest_salt: int = 0


@dataclass(frozen=True)
class SdcEvent:
    """One injection, as remembered by the log."""

    chip: str
    step: int
    op: str
    model: str


@dataclass(frozen=True)
class SdcSpec:
    """One chip-level fault model and its schedule.

    A spec fires on a chip's 1-based step index ``i`` when ``i`` is
    inside ``[first_step, last_step]`` and either ``i`` is listed in
    ``nth``, ``i`` is a multiple of ``every_nth``, or a seeded coin with
    ``probability`` comes up — the same grammar as
    :class:`repro.faults.plan.FaultSpec`, counted per chip step instead
    of per request. Within a firing step, every scheduled op the spec
    ``applies_to`` is corrupted; across specs the first match wins.
    """

    model: SdcFaultModel
    chips: tuple[str, ...] = ()  # empty = every chip
    ops: str = "all"  # compute | memory | all
    probability: float = 0.0
    every_nth: int | None = None
    nth: tuple[int, ...] = ()
    first_step: int = 1
    last_step: int | None = None
    severity: float = 0.25
    accumulator_bits: int = 16

    def __post_init__(self) -> None:
        if self.ops not in _OP_SELECTORS:
            raise ConfigurationError(
                f"sdc 'ops' must be one of {', '.join(_OP_SELECTORS)}; got {self.ops!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("sdc probability must be in [0, 1]")
        if self.every_nth is not None and self.every_nth <= 0:
            raise ConfigurationError("every_nth must be positive when set")
        if any(n <= 0 for n in self.nth):
            raise ConfigurationError("nth step indices are 1-based and positive")
        if self.first_step <= 0:
            raise ConfigurationError("first_step is 1-based and positive")
        if self.last_step is not None and self.last_step < self.first_step:
            raise ConfigurationError("last_step must be >= first_step")
        if not 0.0 < self.severity <= 0.9:
            raise ConfigurationError("sdc severity must be in (0, 0.9]")
        if not 2 <= self.accumulator_bits <= 32:
            raise ConfigurationError("accumulator_bits must be in [2, 32]")
        if self.probability == 0.0 and self.every_nth is None and not self.nth:
            raise ConfigurationError(
                "sdc spec needs a schedule: probability, every_nth, or nth"
            )

    # --- selection ---------------------------------------------------------

    def applies_to_chip(self, chip_id: str) -> bool:
        return not self.chips or chip_id in self.chips

    def applies_to(self, op: TpuOpWork) -> bool:
        """Whether this fault model can corrupt ``op``.

        SDC lives in the MXU datapath and the HBM read path; infeed,
        outfeed, and sync ops are host/link-bound and never corrupted.
        """
        if self.ops == "compute":
            return op.category is TpuOpCategory.COMPUTE and op.uses_mxu
        if self.ops == "memory":
            return op.category is TpuOpCategory.MEMORY
        return (
            op.category is TpuOpCategory.COMPUTE and op.uses_mxu
        ) or op.category is TpuOpCategory.MEMORY

    def matches(self, step_index: int, rng) -> bool:
        """Whether this spec fires on 1-based chip step ``step_index``."""
        if step_index < self.first_step:
            return False
        if self.last_step is not None and step_index > self.last_step:
            return False
        if step_index in self.nth:
            return True
        if self.every_nth is not None and step_index % self.every_nth == 0:
            return True
        if self.probability > 0.0:
            return float(rng.random()) < self.probability
        return False

    def effect(self, chip_id: str, spec_index: int, rng) -> SdcEffect:
        """The perturbation one corrupted op suffers under this model."""
        if self.model is SdcFaultModel.BIT_FLIP:
            # A transient flip: outputs wrong (random digest bit), the
            # poisoned partial products discounted from achieved FLOPs,
            # timings untouched.
            return SdcEffect(
                model=self.model,
                flops_scale=1.0 - self.severity,
                digest_salt=1 << int(rng.integers(0, 64)),
            )
        if self.model is SdcFaultModel.STUCK_AT:
            # Persistent dead lanes: stable wrong digest, ops rerouted
            # around the stuck region run at reduced efficiency.
            return SdcEffect(
                model=self.model,
                duration_scale=1.0 / (1.0 - self.severity),
                digest_salt=_stable_salt("stuck_at", chip_id, spec_index),
            )
        # LOW_PRECISION: chunked re-accumulation bounds the rounding
        # error at a duration cost; the rounding itself is deterministic.
        return SdcEffect(
            model=self.model,
            duration_scale=1.0 + self.severity,
            digest_salt=_stable_salt("low_precision", self.accumulator_bits),
        )

    # --- wire format -------------------------------------------------------

    def to_dict(self) -> dict:
        payload: dict = {"model": self.model.value}
        if self.chips:
            payload["chips"] = list(self.chips)
        if self.ops != "all":
            payload["ops"] = self.ops
        if self.probability:
            payload["probability"] = self.probability
        if self.every_nth is not None:
            payload["every_nth"] = self.every_nth
        if self.nth:
            payload["nth"] = list(self.nth)
        if self.first_step != 1:
            payload["first_step"] = self.first_step
        if self.last_step is not None:
            payload["last_step"] = self.last_step
        payload["severity"] = self.severity
        if self.model is SdcFaultModel.LOW_PRECISION:
            payload["accumulator_bits"] = self.accumulator_bits
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SdcSpec":
        if not isinstance(payload, dict):
            raise ConfigurationError("each sdc spec must be a JSON object")
        try:
            model = SdcFaultModel(payload["model"])
        except KeyError:
            raise ConfigurationError("sdc spec is missing 'model'") from None
        except (ValueError, TypeError):
            known_models = ", ".join(m.value for m in SdcFaultModel)
            raise ConfigurationError(
                f"unknown sdc model {payload.get('model')!r}; expected one of {known_models}"
            ) from None
        known = {
            "model", "chips", "ops", "probability", "every_nth", "nth",
            "first_step", "last_step", "severity", "accumulator_bits",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown sdc spec fields: {', '.join(sorted(unknown))}"
            )
        ops = payload.get("ops", "all")
        if not isinstance(ops, str):
            raise ConfigurationError(f"'ops' must be a string, got {ops!r}")
        return cls(
            model=model,
            chips=coerce_str_tuple(payload.get("chips", ()), "chips"),
            ops=ops,
            probability=coerce_float(payload.get("probability", 0.0), "probability"),
            every_nth=coerce_optional_int(payload.get("every_nth"), "every_nth"),
            nth=coerce_int_tuple(payload.get("nth", ()), "nth"),
            first_step=coerce_int(payload.get("first_step", 1), "first_step"),
            last_step=coerce_optional_int(payload.get("last_step"), "last_step"),
            severity=coerce_float(payload.get("severity", 0.25), "severity"),
            accumulator_bits=coerce_int(
                payload.get("accumulator_bits", 16), "accumulator_bits"
            ),
        )


class SdcInjector:
    """Deterministic per-chip corruption decisions.

    One injector serves one chip. Each applicable spec draws from its
    own seeded stream named ``sdc:{chip}:{plan index}``, so adding a
    spec never shifts another's decisions and a chip's injection log
    is identical across repeat runs and worker counts. The injector
    never raises on the corruption path: every decision resolves to an
    :class:`SdcEffect` or ``None``.

    ``digests`` asks the device to fold a per-step output digest while
    this injector is attached. Only the scrubber needs that (exact
    comparison against a golden run); fleet injectors leave it off so
    an armed-but-quiet plan costs the hot loop almost nothing.
    """

    def __init__(self, specs, seed: int, chip_id: str, digests: bool = False):
        self.chip_id = chip_id
        self.seed = int(seed)
        self.digests = bool(digests)
        indexed = [
            (index, spec)
            for index, spec in enumerate(specs)
            if spec.applies_to_chip(chip_id)
        ]
        self._specs = tuple(
            (spec, index, rng_mod.stream(f"sdc:{chip_id}:{index}", self.seed))
            for index, spec in indexed
        )
        self.steps_seen = 0
        self.injected: dict[str, int] = {}
        self.events: list[SdcEvent] = []
        self.events_total = 0
        self._active: list = []
        # No spec can fire before its window opens, and matches() draws
        # no randomness until then — so steps before the earliest window
        # can skip the spec scan without perturbing any seeded stream.
        self._wake_step = min(
            (spec.first_step for spec, _, _ in self._specs), default=0
        )

    def begin_step(self) -> list:
        """Advance the per-chip step counter; returns this step's active specs.

        The device treats the return value as a truthiness fast-path: an
        empty list means the per-op corruption check is a single branch.
        """
        self.steps_seen += 1
        step = self.steps_seen
        if step < self._wake_step:
            if self._active:
                self._active = []
            return self._active
        self._active = [
            entry for entry in self._specs if entry[0].matches(step, entry[2])
        ]
        return self._active

    def corrupt(self, op: TpuOpWork) -> SdcEffect | None:
        """The perturbation (if any) for one op in the current step."""
        for spec, index, rng in self._active:
            if spec.applies_to(op):
                effect = spec.effect(self.chip_id, index, rng)
                model = spec.model.value
                self.injected[model] = self.injected.get(model, 0) + 1
                self.events_total += 1
                if len(self.events) < MAX_SDC_EVENTS:
                    self.events.append(
                        SdcEvent(
                            chip=self.chip_id,
                            step=self.steps_seen,
                            op=op.name,
                            model=model,
                        )
                    )
                return effect
        return None

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def log(self) -> tuple[SdcEvent, ...]:
        """The retained injection events (determinism witness)."""
        return tuple(self.events)


# --- the checkered scrub self-test ---------------------------------------


def scrub_schedule(spec: TpuChipSpec, seed: int = rng_mod.DEFAULT_SEED) -> list[TpuOpWork]:
    """The seeded checkered self-test schedule for one step.

    Alternates MXU matmul tiles and HBM sweeps of seeded magnitudes —
    the accelerator analogue of a checkerboard memory test: every scrub
    step exercises both corruptible datapaths at varying intensities so
    a fault model gated to either ``ops`` selector still shows up.
    """
    pattern = rng_mod.stream("sdc:scrub-pattern", seed)
    schedule: list[TpuOpWork] = []
    for index in range(SCRUB_OPS_PER_STEP):
        if index % 2 == 0:
            target_us = 40.0 + float(pattern.random()) * 50.0
            schedule.append(
                TpuOpWork(
                    name=f"ScrubMatmul{index}",
                    category=TpuOpCategory.COMPUTE,
                    flops=target_us * 1e-6 * spec.peak_flops * 0.75,
                    efficiency=0.75,
                    uses_mxu=True,
                )
            )
        else:
            target_us = 20.0 + float(pattern.random()) * 30.0
            schedule.append(
                TpuOpWork(
                    name=f"ScrubHbmSweep{index}",
                    category=TpuOpCategory.MEMORY,
                    # transfer_time_us uses streams=2: bytes = t * bw / 2
                    num_bytes=target_us * 1e-6 * spec.hbm_bandwidth / 2.0,
                )
            )
    return schedule


@dataclass(frozen=True)
class ChipScrubResult:
    """One chip's self-test verdict against the golden reference."""

    chip: str
    steps: int
    digest_mismatches: int
    first_bad_step: int  # 0 when every digest matched
    elapsed_us: float
    elapsed_delta_us: float
    mxu_utilization: float
    utilization_drop: float
    injected: dict = field(default_factory=dict)
    suspect: bool = False

    def to_dict(self) -> dict:
        return {
            "chip": self.chip,
            "steps": self.steps,
            "digest_mismatches": self.digest_mismatches,
            "first_bad_step": self.first_bad_step,
            "elapsed_us": self.elapsed_us,
            "elapsed_delta_us": self.elapsed_delta_us,
            "mxu_utilization": self.mxu_utilization,
            "utilization_drop": self.utilization_drop,
            "injected": dict(self.injected),
            "suspect": self.suspect,
        }


@dataclass(frozen=True)
class ScrubReport:
    """Fleet-wide scrub outcome."""

    generation: str
    seed: int
    steps: int
    golden_elapsed_us: float
    golden_utilization: float
    results: tuple[ChipScrubResult, ...] = ()

    def suspects(self) -> list[str]:
        return [result.chip for result in self.results if result.suspect]

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "generation": self.generation,
            "seed": self.seed,
            "steps": self.steps,
            "golden_elapsed_us": self.golden_elapsed_us,
            "golden_utilization": self.golden_utilization,
            "chips": [result.to_dict() for result in self.results],
            "suspects": self.suspects(),
        }

    def format(self) -> list[str]:
        lines = [
            f"chips scanned : {len(self.results)} ({self.generation}, "
            f"{self.steps} steps, seed {self.seed})",
            f"golden run    : {self.golden_elapsed_us:.1f} us, "
            f"mxu {self.golden_utilization:.1%}",
            f"{'chip':<12} {'digests':>10} {'dt(us)':>12} {'mxu':>7} "
            f"{'drop':>7}  verdict",
        ]
        for result in self.results:
            digests = (
                f"{result.digest_mismatches} bad"
                if result.digest_mismatches
                else "ok"
            )
            injected = ""
            if result.injected:
                injected = " (" + ", ".join(
                    f"{model}={count}"
                    for model, count in sorted(result.injected.items())
                ) + ")"
            lines.append(
                f"{result.chip:<12} {digests:>10} {result.elapsed_delta_us:>+12.1f} "
                f"{result.mxu_utilization:>7.1%} {result.utilization_drop:>+7.1%}  "
                f"{'SUSPECT' if result.suspect else 'clean'}{injected}"
            )
        suspects = self.suspects()
        lines.append(
            "suspect chips : " + (", ".join(suspects) if suspects else "none")
        )
        return lines


def _scrub_run(spec, schedule, steps, injector):
    """Run one chip through the self-test; per-step digests + the device."""
    device = TpuDevice(spec)
    device.attach_sdc(injector)
    digests = []
    now = 0.0
    for step in range(1, steps + 1):
        result = device.execute_step(step, schedule, start_us=now)
        digests.append(result.output_digest)
        now = result.end_us
    return digests, device


def run_scrub(
    chips,
    generation="v2",
    plan=None,
    seed: int = rng_mod.DEFAULT_SEED,
    steps: int = DEFAULT_SCRUB_STEPS,
) -> ScrubReport:
    """Self-test ``chips`` against a golden clean run.

    ``chips`` is a chip count or an explicit list of chip ids (ids match
    the fleet's ``chip-<n>`` naming via :func:`chip_name`). ``plan`` is
    anything exposing ``.sdc`` (a tuple of :class:`SdcSpec`) and
    ``.seed`` — normally a :class:`repro.faults.plan.FaultPlan`; ``None``
    scrubs a clean fleet. Comparison against golden is exact, so a clean
    chip can never be flagged.
    """
    if isinstance(chips, int):
        if chips <= 0:
            raise ConfigurationError("chip count must be positive")
        chips = [chip_name(index) for index in range(chips)]
    chips = list(chips)
    if steps <= 0:
        raise ConfigurationError("scrub steps must be positive")
    spec = chip_spec(generation)
    schedule = scrub_schedule(spec, seed)
    sdc_specs = tuple(getattr(plan, "sdc", ()) or ())
    plan_seed = int(getattr(plan, "seed", 0) or 0)

    golden_digests, golden_device = _scrub_run(
        spec, schedule, steps, SdcInjector((), 0, "scrub-golden", digests=True)
    )
    golden_elapsed = golden_device.total_elapsed_us
    golden_util = golden_device.mxu_utilization()

    results = []
    for chip in chips:
        injector = SdcInjector(sdc_specs, plan_seed, chip, digests=True)
        digests, device = _scrub_run(spec, schedule, steps, injector)
        mismatches = sum(
            1 for ours, golden in zip(digests, golden_digests) if ours != golden
        )
        first_bad = next(
            (
                index + 1
                for index, (ours, golden) in enumerate(zip(digests, golden_digests))
                if ours != golden
            ),
            0,
        )
        elapsed = device.total_elapsed_us
        utilization = device.mxu_utilization()
        suspect = (
            mismatches > 0
            or elapsed != golden_elapsed
            or utilization != golden_util
        )
        results.append(
            ChipScrubResult(
                chip=chip,
                steps=steps,
                digest_mismatches=mismatches,
                first_bad_step=first_bad,
                elapsed_us=elapsed,
                elapsed_delta_us=elapsed - golden_elapsed,
                mxu_utilization=utilization,
                utilization_drop=golden_util - utilization,
                injected=dict(injector.injected),
                suspect=suspect,
            )
        )
    return ScrubReport(
        generation=spec.generation.value,
        seed=seed,
        steps=steps,
        golden_elapsed_us=golden_elapsed,
        golden_utilization=golden_util,
        results=tuple(results),
    )


_SCRUB_COST_CACHE: dict[tuple, float] = {}


def scrub_cost_us(
    generation="v2",
    seed: int = rng_mod.DEFAULT_SEED,
    steps: int = DEFAULT_SCRUB_STEPS,
) -> float:
    """Simulated wall time one chip spends in the self-test.

    This is the deterministic loss the goodput ledger charges to the
    ``sdc_scrub`` badput bucket when a chip is quarantined: the fleet
    pays one scrub pass to confirm the suspect.
    """
    spec = chip_spec(generation)
    key = (spec.generation.value, seed, steps)
    cached = _SCRUB_COST_CACHE.get(key)
    if cached is None:
        schedule = scrub_schedule(spec, seed)
        _, device = _scrub_run(spec, schedule, steps, SdcInjector((), 0, "scrub-cost"))
        cached = device.total_elapsed_us
        _SCRUB_COST_CACHE[key] = cached
    return cached
