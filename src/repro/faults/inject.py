"""Fault injection shims for the profile pipeline.

Two boundaries get wrapped, matching where real deployments actually
fail. :class:`FaultyProfileService` sits where the client→master gRPC
channel lives (Section III-A) and makes ``serve`` misbehave: transport
errors, deadline timeouts, empty or force-truncated windows, injected
latency. :class:`RecordTransit` models the producer→fleet wire and can
drop records or corrupt them in flight.

The injected failures are shaped so the pipeline's recovery story is
testable: profile-boundary faults never advance the inner service's
window cursor, so a retried or re-issued request recovers exactly the
events a failed one would have carried — which is what makes the
"lossless plan ⇒ identical phase labels" property hold.
"""

from __future__ import annotations

import copy

from repro import obs
from repro import rng as rng_mod
from repro.core.profiler import codec
from repro.core.profiler.record import ProfileRecord
from repro.errors import FaultInjectionError
from repro.faults.plan import FaultInjector, FaultKind, FaultPlan, FaultTarget
from repro.runtime.rpc import ProfileRequest, ProfileResponse, ProfileService

_INJECTED_TOTAL = obs.counter(
    "repro_faults_injected_total",
    "Faults injected by the active fault plan, by target and kind.",
    labels=("target", "kind"),
)


def count_injected(target: str, kind: str) -> None:
    """Count one injected fault in the shared obs registry."""
    _INJECTED_TOTAL.labels(target=target, kind=kind).inc()


class FaultyProfileService:
    """Wraps a :class:`ProfileService`, injecting faults per the plan.

    Duck-types the service interface the stubs use (``serve``,
    ``window_start_us``, ``session_finished``). Every injected failure
    leaves the inner service untouched, so failures defer profile
    windows rather than losing them.
    """

    def __init__(self, inner: ProfileService, plan: FaultPlan, key: str = ""):
        self.inner = inner
        self.plan = plan
        self.injector: FaultInjector = plan.injector(FaultTarget.PROFILE, key=key)
        self.delay_ms_total = 0.0

    @property
    def log(self):
        return self.inner.log

    @property
    def window_start_us(self) -> float:
        return self.inner.window_start_us

    @property
    def requests_served(self) -> int:
        return self.inner.requests_served

    def session_finished(self) -> bool:
        return self.inner.session_finished()

    def serve(self, request: ProfileRequest, finished: bool | None = None) -> ProfileResponse:
        spec = self.injector.decide()
        if spec is None:
            return self.inner.serve(request, finished=finished)
        _INJECTED_TOTAL.labels(target="profile", kind=spec.kind.value).inc()
        if spec.kind is FaultKind.ERROR:
            raise FaultInjectionError(
                f"injected transport error on profile request "
                f"#{self.injector.requests_seen} (UNAVAILABLE)",
                kind="error",
            )
        if spec.kind is FaultKind.TIMEOUT:
            raise FaultInjectionError(
                f"injected deadline timeout on profile request "
                f"#{self.injector.requests_seen} (DEADLINE_EXCEEDED)",
                kind="timeout",
            )
        if spec.kind is FaultKind.EMPTY:
            # A master that answers with nothing: zero events, window not
            # advanced. The next request re-covers the same span.
            start = self.inner.window_start_us
            return ProfileResponse(
                events=(),
                step_metadata=(),
                window_start_us=start,
                window_end_us=start,
                truncated=False,
                final=False,
            )
        if spec.kind is FaultKind.TRUNCATE:
            squeezed = ProfileRequest(
                max_events=min(request.max_events, spec.truncate_events),
                max_duration_ms=request.max_duration_ms,
                deadline_ms=request.deadline_ms,
            )
            return self.inner.serve(squeezed, finished=finished)
        if spec.kind is FaultKind.DELAY:
            self.delay_ms_total += spec.delay_ms
            if request.deadline_ms is not None and spec.delay_ms > request.deadline_ms:
                raise FaultInjectionError(
                    f"injected {spec.delay_ms:g}ms delay exceeded the "
                    f"{request.deadline_ms:g}ms deadline (DEADLINE_EXCEEDED)",
                    kind="timeout",
                )
            return self.inner.serve(request, finished=finished)
        raise FaultInjectionError(
            f"fault kind {spec.kind.value!r} cannot target the profile boundary",
            kind=spec.kind.value,
            retryable=False,
        )


def corrupt_record(record: ProfileRecord, rng) -> ProfileRecord:
    """A deep-copied, deterministically mangled version of ``record``.

    The mangled copy is always detectable downstream: either its
    checksum no longer matches the producer's, or its structure fails
    validation (a step filed under the wrong key).
    """
    mangled = copy.deepcopy(record)
    modes = ["window"]
    if mangled.steps:
        modes += ["count", "key"]
    mode = modes[int(rng.random() * len(modes)) % len(modes)]
    if mode == "count":
        step = next(iter(mangled.steps.values()))
        for stats in step.operators.values():
            stats.count = -stats.count - 1
            break
        else:
            mode = "window"
    if mode == "key":
        number, step = next(iter(mangled.steps.items()))
        del mangled.steps[number]
        mangled.steps[number + 1000] = step
    if mode == "window":
        mangled.window_start_us, mangled.window_end_us = (
            mangled.window_end_us + 1.0,
            mangled.window_start_us,
        )
    return mangled


def corrupt_frame(frame: bytes, rng) -> bytes:
    """A copy of a binary wire frame with exactly one payload bit flipped.

    The flip lands past the frame header, so the framing (magic, seq,
    window span, payload length) stays intact and the receiver can still
    attribute the frame — but the payload CRC-32 *must* catch it: CRC-32
    detects every single-bit error regardless of frame size, which is
    what makes the "corrupt frames are always quarantined, never
    silently accepted" property provable rather than probabilistic.
    """
    if len(frame) <= codec.FRAME_HEADER_BYTES:
        return frame
    payload_bits = (len(frame) - codec.FRAME_HEADER_BYTES) * 8
    bit = int(rng.integers(payload_bits))
    mangled = bytearray(frame)
    mangled[codec.FRAME_HEADER_BYTES + bit // 8] ^= 1 << (bit % 8)
    return bytes(mangled)


def truncate_frame(frame: bytes) -> bytes:
    """The leading half of a wire frame — a connection cut mid-send.

    Always shorter than the input (minimum: the frame magic), so the
    receiver sees a frame whose header promises more payload bytes than
    arrived.
    """
    keep = max(len(codec.FRAME_MAGIC), len(frame) // 2)
    return frame[: min(keep, len(frame) - 1)]


class RecordTransit:
    """The wire between a profiling producer and the fleet service.

    Two wire models, matching the service's two ingest formats:

    ``apply`` is the object wire (``--format json``): it returns the
    record unchanged, a corrupted deep copy (CORRUPT/TRUNCATE), or
    ``None`` (DROP — the record never arrives). ``apply_frame`` is the
    binary wire: it operates on encoded frame *bytes* — a single flipped
    payload bit (CORRUPT), a mid-block cut (TRUNCATE), or ``None``
    (DROP). Either way the producer's own in-memory record stays
    intact.
    """

    def __init__(self, plan: FaultPlan, key: str = ""):
        self.plan = plan
        self.injector: FaultInjector = plan.injector(FaultTarget.INGEST, key=key)
        self._corrupt_rng = rng_mod.stream(f"faults:corrupt:{key}", plan.seed)
        self.dropped = 0
        self.corrupted = 0
        self.truncated = 0

    def apply(self, record: ProfileRecord) -> ProfileRecord | None:
        spec = self.injector.decide()
        if spec is None:
            return record
        _INJECTED_TOTAL.labels(target="ingest", kind=spec.kind.value).inc()
        if spec.kind is FaultKind.DROP:
            self.dropped += 1
            return None
        if spec.kind is FaultKind.CORRUPT:
            self.corrupted += 1
            return corrupt_record(record, self._corrupt_rng)
        if spec.kind is FaultKind.TRUNCATE:
            # The object wire has no frames to cut; a mid-record cut
            # manifests to the receiver as a mangled record.
            self.truncated += 1
            return corrupt_record(record, self._corrupt_rng)
        return record

    def apply_frame(self, frame: bytes) -> bytes | None:
        spec = self.injector.decide()
        if spec is None:
            return frame
        _INJECTED_TOTAL.labels(target="ingest", kind=spec.kind.value).inc()
        if spec.kind is FaultKind.DROP:
            self.dropped += 1
            return None
        if spec.kind is FaultKind.CORRUPT:
            self.corrupted += 1
            return corrupt_frame(frame, self._corrupt_rng)
        if spec.kind is FaultKind.TRUNCATE:
            self.truncated += 1
            return truncate_frame(frame)
        return frame


__all__ = [
    "FaultyProfileService",
    "RecordTransit",
    "corrupt_frame",
    "corrupt_record",
    "count_injected",
    "truncate_frame",
]
