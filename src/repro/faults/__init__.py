"""Deterministic fault injection for the profile pipeline.

See :mod:`repro.faults.plan` for the declarative fault model and
:mod:`repro.faults.inject` for the shims that apply a plan to the
profile-service and record-ingest boundaries. ``docs/robustness.md``
documents the fault taxonomy and the recovery guarantees end to end.
"""

from repro.faults.inject import (
    FaultyProfileService,
    RecordTransit,
    corrupt_frame,
    corrupt_record,
    count_injected,
    truncate_frame,
)
from repro.faults.plan import (
    LOSSLESS_KINDS,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    FaultTarget,
    load_plan,
    save_plan,
)
from repro.tpu.sdc import SdcFaultModel, SdcInjector, SdcSpec

__all__ = [
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultTarget",
    "FaultyProfileService",
    "LOSSLESS_KINDS",
    "RecordTransit",
    "SdcFaultModel",
    "SdcInjector",
    "SdcSpec",
    "corrupt_frame",
    "corrupt_record",
    "count_injected",
    "load_plan",
    "save_plan",
    "truncate_frame",
]
