"""Declarative, seedable fault plans.

Real Cloud TPU profiling lives on a fragile client→master gRPC boundary
(Section III-A): requests time out, come back empty or truncated, and
the recording pipeline can lose or mangle records mid-run. A
:class:`FaultPlan` describes that misbehaviour *deterministically*: each
:class:`FaultSpec` names a fault kind, the boundary it targets, and a
schedule (specific request indices, every-nth, or a seeded probability).
Two runs with the same plan inject exactly the same faults at exactly
the same request indices, so resilience claims are provable rather than
anecdotal.

Plans load from JSON (``tpupoint profile --faults plan.json``); the
optional ``client`` section configures the resilient profile client
(retry/backoff/circuit-breaker knobs — see
:mod:`repro.runtime.resilience`).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro import rng as rng_mod
from repro.errors import ConfigurationError
from repro.tpu.sdc import (
    SdcInjector,
    SdcSpec,
    coerce_float,
    coerce_int,
    coerce_int_tuple,
    coerce_optional_int,
)


class FaultKind(enum.Enum):
    """What goes wrong when a fault fires."""

    ERROR = "error"  # transport error (UNAVAILABLE); retryable
    TIMEOUT = "timeout"  # deadline exceeded; retryable
    EMPTY = "empty"  # response with zero events, window not advanced
    TRUNCATE = "truncate"  # event cap forced far below the request's
    DELAY = "delay"  # added latency (times out past the deadline)
    CORRUPT = "corrupt"  # record mangled in transit to the fleet service
    DROP = "drop"  # record lost in transit to the fleet service
    CRASH = "crash"  # recording thread dies mid-append (torn journal)


class FaultTarget(enum.Enum):
    """Which pipeline boundary a fault applies to."""

    PROFILE = "profile"  # client → master profile requests
    INGEST = "ingest"  # producer → FleetService.submit transit
    RECORDER = "recorder"  # the journaling recording thread
    DEVICE = "device"  # silent data corruption inside the chip ('sdc' section)


#: Faults the pipeline absorbs without losing any profile data: errors
#: and timeouts are retried against an unchanged service cursor, and
#: empty/truncated/delayed responses only defer events to a later
#: window. CORRUPT/DROP/CRASH lose data by design, and so does *any*
#: kind at the ingest boundary (see :meth:`FaultSpec.lossless`).
LOSSLESS_KINDS = frozenset(
    {FaultKind.ERROR, FaultKind.TIMEOUT, FaultKind.EMPTY, FaultKind.TRUNCATE, FaultKind.DELAY}
)

_DEFAULT_TARGETS = {
    FaultKind.CORRUPT: FaultTarget.INGEST,
    FaultKind.DROP: FaultTarget.INGEST,
    FaultKind.CRASH: FaultTarget.RECORDER,
}

_VALID_BY_TARGET = {
    FaultTarget.PROFILE: frozenset(
        {FaultKind.ERROR, FaultKind.TIMEOUT, FaultKind.EMPTY, FaultKind.TRUNCATE, FaultKind.DELAY}
    ),
    FaultTarget.INGEST: frozenset(
        {FaultKind.CORRUPT, FaultKind.DROP, FaultKind.TRUNCATE}
    ),
    FaultTarget.RECORDER: frozenset({FaultKind.CRASH}),
    # Chip-level faults are silent by definition: no wire FaultKind
    # applies; they are declared in the plan's 'sdc' section instead.
    FaultTarget.DEVICE: frozenset(),
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault and its schedule.

    A spec fires on request index ``i`` (1-based, per target boundary)
    when ``i`` is inside ``[first_request, last_request]`` and either
    ``i`` is listed in ``nth``, ``i`` is a multiple of ``every_nth``, or
    a seeded coin with ``probability`` comes up. The first matching spec
    wins, so at most one fault fires per request.
    """

    kind: FaultKind
    target: FaultTarget
    probability: float = 0.0
    every_nth: int | None = None
    nth: tuple[int, ...] = ()
    first_request: int = 1
    last_request: int | None = None
    delay_ms: float = 0.0
    truncate_events: int = 64

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("fault probability must be in [0, 1]")
        if self.every_nth is not None and self.every_nth <= 0:
            raise ConfigurationError("every_nth must be positive when set")
        if any(n <= 0 for n in self.nth):
            raise ConfigurationError("nth request indices are 1-based and positive")
        if self.first_request <= 0:
            raise ConfigurationError("first_request is 1-based and positive")
        if self.last_request is not None and self.last_request < self.first_request:
            raise ConfigurationError("last_request must be >= first_request")
        if self.delay_ms < 0:
            raise ConfigurationError("delay_ms must be non-negative")
        if self.truncate_events <= 0:
            raise ConfigurationError("truncate_events must be positive")
        if self.target is FaultTarget.DEVICE:
            raise ConfigurationError(
                "device faults are silent-data-corruption models; declare "
                "them in the plan's 'sdc' section, not 'faults'"
            )
        if self.kind not in _VALID_BY_TARGET[self.target]:
            raise ConfigurationError(
                f"fault kind {self.kind.value!r} does not apply to "
                f"target {self.target.value!r}"
            )
        if self.probability == 0.0 and self.every_nth is None and not self.nth:
            raise ConfigurationError(
                "fault spec needs a schedule: probability, every_nth, or nth"
            )

    @property
    def lossless(self) -> bool:
        """Whether the pipeline can absorb this fault without data loss.

        Kind alone is not enough: TRUNCATE at the profile boundary only
        squeezes a window (the deferred events come back later), but
        TRUNCATE at the ingest boundary cuts a wire frame mid-block —
        the record is refused and quarantined, i.e. lost. Everything at
        the ingest boundary is lossy by construction.
        """
        if self.target is FaultTarget.INGEST:
            return False
        return self.kind in LOSSLESS_KINDS

    def matches(self, index: int, rng) -> bool:
        """Whether this spec fires on 1-based request ``index``."""
        if index < self.first_request:
            return False
        if self.last_request is not None and index > self.last_request:
            return False
        if index in self.nth:
            return True
        if self.every_nth is not None and index % self.every_nth == 0:
            return True
        if self.probability > 0.0:
            return float(rng.random()) < self.probability
        return False

    def to_dict(self) -> dict:
        payload: dict = {"kind": self.kind.value, "target": self.target.value}
        if self.probability:
            payload["probability"] = self.probability
        if self.every_nth is not None:
            payload["every_nth"] = self.every_nth
        if self.nth:
            payload["nth"] = list(self.nth)
        if self.first_request != 1:
            payload["first_request"] = self.first_request
        if self.last_request is not None:
            payload["last_request"] = self.last_request
        if self.kind is FaultKind.DELAY:
            payload["delay_ms"] = self.delay_ms
        if self.kind is FaultKind.TRUNCATE:
            payload["truncate_events"] = self.truncate_events
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        if not isinstance(payload, dict):
            raise ConfigurationError("each fault spec must be a JSON object")
        try:
            kind = FaultKind(payload["kind"])
        except KeyError:
            raise ConfigurationError("fault spec is missing 'kind'") from None
        except (ValueError, TypeError):
            known_kinds = ", ".join(k.value for k in FaultKind)
            raise ConfigurationError(
                f"unknown fault kind {payload.get('kind')!r}; "
                f"expected one of {known_kinds}"
            ) from None
        target_value = payload.get("target")
        if target_value is None:
            target = _DEFAULT_TARGETS.get(kind, FaultTarget.PROFILE)
        else:
            try:
                target = FaultTarget(target_value)
            except (ValueError, TypeError):
                known_targets = ", ".join(t.value for t in FaultTarget)
                raise ConfigurationError(
                    f"unknown fault target {target_value!r}; "
                    f"expected one of {known_targets}"
                ) from None
        known = {
            "kind", "target", "probability", "every_nth", "nth",
            "first_request", "last_request", "delay_ms", "truncate_events",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault spec fields: {', '.join(sorted(unknown))}"
            )
        return cls(
            kind=kind,
            target=target,
            probability=coerce_float(payload.get("probability", 0.0), "probability"),
            every_nth=coerce_optional_int(payload.get("every_nth"), "every_nth"),
            nth=coerce_int_tuple(payload.get("nth", ()), "nth"),
            first_request=coerce_int(payload.get("first_request", 1), "first_request"),
            last_request=coerce_optional_int(payload.get("last_request"), "last_request"),
            delay_ms=coerce_float(payload.get("delay_ms", 0.0), "delay_ms"),
            truncate_events=coerce_int(payload.get("truncate_events", 64), "truncate_events"),
        )


class FaultInjector:
    """Deterministic fault decisions for one target boundary.

    One injector serves one boundary instance (one profile service, one
    job's ingest transit, one recorder). Each spec draws from its own
    seeded RNG stream, so adding a spec never shifts another spec's
    probabilistic decisions, and the same ``(seed, key)`` pair always
    yields the same fault sequence.
    """

    def __init__(self, specs, seed: int, target: FaultTarget, key: str = ""):
        self.target = target
        self.key = key
        self._specs = tuple(spec for spec in specs if spec.target is target)
        self._rngs = [
            rng_mod.stream(f"faults:{target.value}:{key}:{i}", seed)
            for i in range(len(self._specs))
        ]
        self.requests_seen = 0
        self.injected: dict[str, int] = {}

    def decide(self) -> FaultSpec | None:
        """The fault (if any) that fires on the next request."""
        self.requests_seen += 1
        for spec, rng in zip(self._specs, self._rngs):
            if spec.matches(self.requests_seen, rng):
                self.injected[spec.kind.value] = self.injected.get(spec.kind.value, 0) + 1
                return spec
        return None

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def injected_of(self, *kinds: FaultKind) -> int:
        """Total faults injected among the given kinds."""
        return sum(self.injected.get(kind.value, 0) for kind in kinds)


@dataclass(frozen=True)
class FaultPlan:
    """A seed, fault specs, SDC specs, and optional client-policy knobs.

    The ``faults`` section injects at the wire/recorder boundaries; the
    ``sdc`` section (:class:`repro.tpu.sdc.SdcSpec`) injects silent data
    corruption inside the chips themselves and is addressed through
    :attr:`FaultTarget.DEVICE`.
    """

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()
    client: dict = field(default_factory=dict)
    sdc: tuple[SdcSpec, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.client, dict):
            raise ConfigurationError("fault plan 'client' must be an object")

    def targets(self, target: FaultTarget) -> bool:
        """Whether any spec applies to ``target``."""
        if target is FaultTarget.DEVICE:
            return bool(self.sdc)
        return any(spec.target is target for spec in self.specs)

    @property
    def lossless(self) -> bool:
        """Whether every fault in the plan is absorbable without loss.

        Silent data corruption is never lossless: the corrupted numbers
        are gone even though no record is dropped.
        """
        return not self.sdc and all(spec.lossless for spec in self.specs)

    def injector(self, target: FaultTarget, key: str = "") -> FaultInjector:
        """A fresh deterministic injector for one boundary instance."""
        return FaultInjector(self.specs, self.seed, target, key=key)

    def sdc_injector(self, chip_id: str) -> SdcInjector:
        """A fresh deterministic chip-level injector for ``chip_id``."""
        return SdcInjector(self.sdc, self.seed, chip_id)

    def to_dict(self) -> dict:
        payload: dict = {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.specs],
        }
        if self.sdc:
            payload["sdc"] = [spec.to_dict() for spec in self.sdc]
        if self.client:
            payload["client"] = dict(self.client)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ConfigurationError("fault plan must be a JSON object")
        unknown = set(payload) - {"seed", "faults", "sdc", "client"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan fields: {', '.join(sorted(unknown))}"
            )
        faults = payload.get("faults", [])
        if not isinstance(faults, list):
            raise ConfigurationError("fault plan 'faults' must be a list")
        sdc = payload.get("sdc", [])
        if not isinstance(sdc, list):
            raise ConfigurationError("fault plan 'sdc' must be a list")
        return cls(
            seed=coerce_int(payload.get("seed", 0), "seed"),
            specs=tuple(FaultSpec.from_dict(entry) for entry in faults),
            client=dict(payload.get("client", {})),
            sdc=tuple(SdcSpec.from_dict(entry) for entry in sdc),
        )


def load_plan(path: str | Path) -> FaultPlan:
    """Load a fault plan from a JSON file."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"fault plan not found: {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"fault plan {path} is not valid JSON: {error}")
    return FaultPlan.from_dict(payload)


def save_plan(plan: FaultPlan, path: str | Path) -> Path:
    """Write a plan as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(plan.to_dict(), indent=2) + "\n", encoding="utf-8")
    return path
