"""End-to-end workload runner.

Runs a :class:`~repro.workloads.spec.WorkloadSpec` to completion and
returns the estimator (with its full event log), the session summary, and
convenience metrics. This is the entry point every benchmark and the
analyzer's test fixtures use; results are memoizable because runs are
fully deterministic in the spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.rng import RngFactory
from repro.runtime.estimator import TPUEstimator
from repro.runtime.session import SessionSummary
from repro.workloads.spec import WorkloadSpec

RecordSink = Callable[["object"], None]


@dataclass(frozen=True)
class WorkloadRun:
    """A completed run: the estimator (holding the event log) + summary."""

    spec: WorkloadSpec
    estimator: TPUEstimator
    summary: SessionSummary

    @property
    def idle_fraction(self) -> float:
        """TPU idle time over the whole run (Figure 10/12/15 metric)."""
        return self.summary.tpu_idle_fraction

    @property
    def mxu_utilization(self) -> float:
        """MXU utilization over the whole run (Figure 11/13/16 metric)."""
        return self.summary.mxu_utilization

    @property
    def wall_seconds(self) -> float:
        """Total simulated execution time in seconds."""
        return self.summary.wall_us / 1e6


def build_estimator(spec: WorkloadSpec) -> TPUEstimator:
    """Assemble the estimator for a spec without running it."""
    with obs.trace("workloads.build_estimator", workload=spec.key):
        entry = spec.resolve()
        rngs = RngFactory(spec.seed)
        return entry.model.build_estimator(
            dataset=entry.dataset,
            generation=spec.generation,
            plan=spec.plan,
            pipeline_config=spec.pipeline_config,
            rng=rngs.stream(f"runner:{spec.key}:{spec.generation}"),
        )


def attach_record_sink(estimator: TPUEstimator, sink: RecordSink, options=None):
    """Profile a run and hand each record to ``sink`` as it is produced.

    Starts a :class:`TPUPointProfiler` whose records flow to the sink
    live (the hand-off :mod:`repro.serve` ingests from); the caller owns
    the run and must call ``stop()`` on the returned profiler after it.
    """
    from repro.core.profiler import ProfilerOptions, TPUPointProfiler

    profiler = TPUPointProfiler(estimator, options or ProfilerOptions())
    profiler.add_record_hook(sink)
    profiler.start(analyzer=True)
    return profiler


def run_workload(spec: WorkloadSpec, record_sink: RecordSink | None = None) -> WorkloadRun:
    """Run a workload to completion.

    With ``record_sink``, the run executes under the profiler and every
    statistical record is handed to the sink as it is produced.
    """
    with obs.trace(
        "workloads.run", workload=spec.key, generation=spec.generation
    ) as span:
        estimator = build_estimator(spec)
        if record_sink is None:
            summary = estimator.train()
        else:
            profiler = attach_record_sink(estimator, record_sink)
            summary = estimator.train()
            profiler.stop()
        span.set(steps=estimator.session.global_step)
    obs.counter(
        "repro_workloads_runs_total",
        "Workload runs driven by the runner, by workload key.",
        labels=("workload",),
    ).labels(workload=spec.key).inc()
    return WorkloadRun(spec=spec, estimator=estimator, summary=summary)
