"""Workload run specifications.

A :class:`WorkloadSpec` pins down everything one experiment run needs:
the workload (model + dataset), the TPU generation, optional overrides of
the session plan and pipeline knobs, and the seed. Benchmarks build specs
declaratively and hand them to the runner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.pipeline import PipelineConfig
from repro.models.registry import WorkloadEntry, workload
from repro.rng import DEFAULT_SEED
from repro.runtime.session import SessionPlan
from repro.tpu.specs import TpuGeneration


@dataclass(frozen=True)
class WorkloadSpec:
    """One fully specified workload run."""

    key: str
    generation: TpuGeneration | str = TpuGeneration.V2
    plan: SessionPlan | None = None
    pipeline_config: PipelineConfig | None = None
    seed: int = DEFAULT_SEED

    def resolve(self) -> WorkloadEntry:
        """Resolve the workload key against the registry."""
        return workload(self.key)

    @property
    def display_name(self) -> str:
        """Human-readable run label including the accelerator."""
        if isinstance(self.generation, str):
            label = f"TPU{self.generation}"
        elif hasattr(self.generation, "value"):
            label = f"TPU{self.generation.value}"
        else:  # a custom accelerator spec (portability mode)
            label = str(getattr(self.generation, "generation", self.generation))
        return f"{self.resolve().display_name} ({label})"

    def with_generation(self, generation: TpuGeneration | str) -> "WorkloadSpec":
        """The same run on another TPU generation."""
        return WorkloadSpec(
            key=self.key,
            generation=generation,
            plan=self.plan,
            pipeline_config=self.pipeline_config,
            seed=self.seed,
        )
