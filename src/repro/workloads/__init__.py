"""Workload execution: run specs end-to-end, producing event logs."""

from repro.workloads.runner import WorkloadRun, build_estimator, run_workload
from repro.workloads.spec import WorkloadSpec

__all__ = ["WorkloadRun", "WorkloadSpec", "build_estimator", "run_workload"]
