"""Naive workload variants for the TPUPoint-Optimizer study.

The public TPU model-zoo implementations were hand-optimized by Google
engineers, so to evaluate the optimizer the paper's authors wrote naive
implementations of each workload (Section VII-C). The naive variant keeps
the model's compute identical but ships the input pipeline a beginner
would write: no prefetching, single-threaded decode, one storage read
stream, and an oversized shuffle buffer. Everything TPUPoint-Optimizer
knows how to fix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import DatasetSpec
from repro.graph.graph import Graph
from repro.host.pipeline import PipelineConfig
from repro.host.stages import StageSpec
from repro.models.base import WorkloadDefaults, WorkloadModel


def naive_pipeline_config() -> PipelineConfig:
    """The untuned knobs of a first-draft input pipeline."""
    return PipelineConfig(
        num_parallel_reads=1,
        num_parallel_calls=1,
        prefetch_depth=0,
        shuffle_buffer=65_536,
        infeed_threads=1,
    )


@dataclass
class NaiveVariant(WorkloadModel):
    """Wraps a workload model with a naive input pipeline."""

    base: WorkloadModel = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.base is None:
            raise TypeError("NaiveVariant requires a base model")
        self.name = f"Naive{self.base.name}"
        self.workload_type = self.base.workload_type

    def build_train_graph(self, batch_size: int, dataset: DatasetSpec) -> Graph:
        return self.base.build_train_graph(batch_size, dataset)

    def build_eval_graph(self, batch_size: int, dataset: DatasetSpec) -> Graph:
        return self.base.build_eval_graph(batch_size, dataset)

    def defaults(self, dataset: DatasetSpec) -> WorkloadDefaults:
        return self.base.defaults(dataset)

    def pipeline_stages(self, dataset: DatasetSpec) -> tuple[StageSpec, ...]:
        return self.base.pipeline_stages(dataset)

    def default_pipeline_config(self) -> PipelineConfig:
        return naive_pipeline_config()
