"""Reusable neural-network blocks for workload graphs.

Workload models assemble their per-step training graphs from these
builders. Each block adds the forward operators with realistic FLOP and
shape accounting, and the matching ``*_backward`` helpers add the
gradient operators (``Conv2DBackpropFilter``, ``BiasAddGrad``, mirrored
``MatMul``s, ...) that show up among the paper's top TPU operators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph import ops as opdefs
from repro.graph.builder import GraphBuilder
from repro.graph.ops import Operation
from repro.graph.shapes import TensorShape, conv2d_flops, matmul_flops


@dataclass(frozen=True)
class ConvSpec:
    """One convolution layer's geometry."""

    in_channels: int
    out_channels: int
    kernel: int
    stride: int = 1

    def out_size(self, size: int) -> int:
        return max(1, size // self.stride)


def dense_layer(
    b: GraphBuilder, x: Operation, batch: int, in_dim: int, out_dim: int, activation=opdefs.RELU
) -> Operation:
    """Fully connected layer: MatMul + activation."""
    w = b.const(TensorShape((in_dim, out_dim)))
    h = b.matmul(x, w, batch, in_dim, out_dim)
    if activation is not None:
        h = b.elementwise(activation, h)
    return h


def dense_backward(
    b: GraphBuilder, grad: Operation, batch: int, in_dim: int, out_dim: int
) -> Operation:
    """Gradients of a dense layer: dX and dW matmuls plus BiasAddGrad."""
    w = b.const(TensorShape((out_dim, in_dim)))
    dx = b.matmul(grad, w, batch, out_dim, in_dim)
    dw = b.add(
        opdefs.MATMUL,
        inputs=(grad.name,),
        shape=TensorShape((in_dim, out_dim)),
        flops=matmul_flops(in_dim, batch, out_dim),
        m=in_dim,
        k=batch,
        n=out_dim,
    )
    b.add(
        opdefs.BIAS_ADD_GRAD,
        inputs=(grad.name,),
        shape=TensorShape((out_dim,)),
        flops=float(batch * out_dim),
    )
    del dw  # weight gradient feeds the (implicit) optimizer update
    return dx


def conv_block(
    b: GraphBuilder,
    x: Operation,
    batch: int,
    size: int,
    spec: ConvSpec,
    batch_norm: bool = True,
) -> tuple[Operation, int]:
    """Conv2D (+ FusedBatchNormV3 + Relu); returns (output op, output size)."""
    out_size = spec.out_size(size)
    kernel = b.const(TensorShape((spec.kernel, spec.kernel, spec.in_channels, spec.out_channels)))
    h = b.conv2d(
        x,
        kernel,
        batch=batch,
        out_height=out_size,
        out_width=out_size,
        in_channels=spec.in_channels,
        out_channels=spec.out_channels,
        kernel_size=spec.kernel,
    )
    if batch_norm:
        h = b.elementwise(opdefs.FUSED_BATCH_NORM, h, flops_per_element=4.0)
    h = b.elementwise(opdefs.RELU, h)
    return h, out_size


def conv_backward(
    b: GraphBuilder,
    grad: Operation,
    batch: int,
    out_size: int,
    spec: ConvSpec,
    batch_norm: bool = True,
) -> Operation:
    """Gradient operators of one conv block; returns the input gradient."""
    flops = conv2d_flops(
        batch, out_size, out_size, spec.in_channels, spec.out_channels, spec.kernel, spec.kernel
    )
    if batch_norm:
        grad = b.elementwise(opdefs.FUSED_BATCH_NORM_GRAD, grad, flops_per_element=6.0)
    b.add(
        opdefs.CONV2D_BACKPROP_FILTER,
        inputs=(grad.name,),
        shape=TensorShape((spec.kernel, spec.kernel, spec.in_channels, spec.out_channels)),
        flops=flops,
    )
    in_size = out_size * spec.stride
    dx = b.add(
        opdefs.CONV2D_BACKPROP_INPUT,
        inputs=(grad.name,),
        shape=TensorShape((batch, in_size, in_size, spec.in_channels)),
        flops=flops,
    )
    return dx


def attention_block(
    b: GraphBuilder, x: Operation, batch: int, seq: int, hidden: int, heads: int
) -> Operation:
    """Multi-head self-attention with the layout ops TPUs actually run."""
    head_dim = hidden // heads
    wq = b.const(TensorShape((hidden, hidden)))
    q = b.matmul(x, wq, seq, hidden, hidden, batch=batch)
    wk = b.const(TensorShape((hidden, hidden)))
    k = b.matmul(x, wk, seq, hidden, hidden, batch=batch)
    wv = b.const(TensorShape((hidden, hidden)))
    v = b.matmul(x, wv, seq, hidden, hidden, batch=batch)
    # Split heads: reshape + transpose (memory ops the paper observes).
    q = b.reshape(q, TensorShape((batch * heads, seq, head_dim)))
    k = b.reshape(k, TensorShape((batch * heads, seq, head_dim)))
    v = b.reshape(v, TensorShape((batch * heads, seq, head_dim)))
    kt = b.transpose(k)
    scores = b.add(
        opdefs.MATMUL,
        inputs=(q.name, kt.name),
        shape=TensorShape((batch * heads, seq, seq)),
        flops=matmul_flops(seq, head_dim, seq, batch * heads),
        m=seq,
        k=head_dim,
        n=seq,
        batch=batch * heads,
    )
    probs = b.elementwise(opdefs.SOFTMAX, scores, flops_per_element=5.0)
    context = b.add(
        opdefs.MATMUL,
        inputs=(probs.name, v.name),
        shape=TensorShape((batch * heads, seq, head_dim)),
        flops=matmul_flops(seq, seq, head_dim, batch * heads),
        m=seq,
        k=seq,
        n=head_dim,
        batch=batch * heads,
    )
    merged = b.reshape(context, TensorShape((batch, seq, hidden)))
    wo = b.const(TensorShape((hidden, hidden)))
    return b.matmul(merged, wo, seq, hidden, hidden, batch=batch)


def feed_forward_block(
    b: GraphBuilder, x: Operation, batch: int, seq: int, hidden: int, ffn: int
) -> Operation:
    """Transformer FFN: hidden -> ffn -> hidden with a GELU-ish activation."""
    w1 = b.const(TensorShape((hidden, ffn)))
    h = b.matmul(x, w1, seq, hidden, ffn, batch=batch)
    h = b.elementwise(opdefs.TANH, h, flops_per_element=8.0)
    w2 = b.const(TensorShape((ffn, hidden)))
    return b.matmul(h, w2, seq, ffn, hidden, batch=batch)


def transformer_layer(
    b: GraphBuilder, x: Operation, batch: int, seq: int, hidden: int, ffn: int, heads: int
) -> Operation:
    """One encoder layer: attention + FFN (+ cheap residual Mul)."""
    attended = attention_block(b, x, batch, seq, hidden, heads)
    h = feed_forward_block(b, attended, batch, seq, hidden, ffn)
    return b.elementwise(opdefs.MUL, h)


def transformer_backward(
    b: GraphBuilder, grad: Operation, batch: int, seq: int, hidden: int, ffn: int
) -> Operation:
    """Approximate gradient work of one encoder layer.

    Backprop through a transformer costs about 2x the forward matmul
    work; it is modelled as the dX/dW matmul pairs of the four projection
    layers and the FFN, which is where the time actually goes.
    """
    tokens = batch * seq
    grad = dense_backward(b, grad, tokens, hidden, ffn)
    grad = dense_backward(b, grad, tokens, ffn, hidden)
    for _ in range(2):  # attention projections, folded pairwise
        grad = dense_backward(b, grad, tokens, hidden, hidden)
    return grad


def loss_and_optimizer(b: GraphBuilder, logits: Operation, weight_elements: float) -> Operation:
    """Loss reduction, L2 regularization, all-reduce, and weight update.

    Returns a small metrics tensor suitable for the outfeed — weights and
    gradients stay on the device; only losses/counters cross back to the
    host each step.
    """
    loss = b.elementwise(opdefs.SUM, logits, flops_per_element=1.0)
    b.add(
        opdefs.L2LOSS,
        inputs=(loss.name,),
        shape=TensorShape((1,)),
        flops=2.0 * weight_elements,
    )
    reduced = b.add(
        opdefs.ALL_REDUCE,
        inputs=(loss.name,),
        shape=TensorShape((max(1, int(weight_elements)),)),
    )
    # Optimizer update: element-wise work over every weight (VPU-bound).
    b.add(
        opdefs.MUL,
        inputs=(reduced.name,),
        shape=TensorShape((max(1, int(weight_elements)),)),
        flops=3.0 * weight_elements,
        name="weight_update",
    )
    metrics = b.add(
        opdefs.SUM,
        inputs=(reduced.name,),
        shape=TensorShape((16,)),
        flops=float(weight_elements),
        name="metrics",
    )
    return metrics
