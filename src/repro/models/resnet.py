"""ResNet-50 image-classification workload (Table I, row 5).

The standard ResNet-50 bottleneck architecture trained on ImageNet with
batch size 1024, plus the CIFAR-10 variant the paper uses to demonstrate
dataset sensitivity (Figures 12/13): the same model code fed 32x32 images
does almost no matrix work per step, collapsing MXU utilization.

:func:`resnet50_backbone` is shared with the RetinaNet model, which uses
the same backbone under its detection heads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import DatasetSpec
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.ops import Operation
from repro.graph.shapes import TensorShape
from repro.models import layers
from repro.models.base import WorkloadDefaults, WorkloadModel, apply_mxu_efficiency

# Bottleneck stages of ResNet-50: (blocks, inner channels, output channels).
_STAGES = ((3, 64, 256), (4, 128, 512), (6, 256, 1024), (3, 512, 2048))
# Achieved fraction of peak for large-image convolutions.
_RESNET_MXU_EFFICIENCY = 0.52


def _bottleneck(
    b: GraphBuilder,
    x: Operation,
    batch: int,
    size: int,
    in_channels: int,
    inner: int,
    out_channels: int,
    stride: int,
) -> tuple[Operation, int, list[tuple[layers.ConvSpec, int]]]:
    """One bottleneck block; returns (output, size, conv specs for backprop)."""
    specs: list[tuple[layers.ConvSpec, int]] = []
    spec1 = layers.ConvSpec(in_channels, inner, kernel=1, stride=1)
    x, size = layers.conv_block(b, x, batch, size, spec1)
    specs.append((spec1, size))
    spec2 = layers.ConvSpec(inner, inner, kernel=3, stride=stride)
    x, size = layers.conv_block(b, x, batch, size, spec2)
    specs.append((spec2, size))
    spec3 = layers.ConvSpec(inner, out_channels, kernel=1, stride=1)
    x, size = layers.conv_block(b, x, batch, size, spec3)
    specs.append((spec3, size))
    return x, size, specs


def resnet50_backbone(
    b: GraphBuilder, x: Operation, batch: int, image_size: int
) -> tuple[Operation, int, list[tuple[layers.ConvSpec, int]]]:
    """ResNet-50 forward pass; returns (features, size, conv specs)."""
    all_specs: list[tuple[layers.ConvSpec, int]] = []
    stem = layers.ConvSpec(3, 64, kernel=7, stride=2)
    x, size = layers.conv_block(b, x, batch, image_size, stem)
    all_specs.append((stem, size))
    size = max(1, size // 2)  # max-pool
    in_channels = 64
    for blocks, inner, out_channels in _STAGES:
        for block_index in range(blocks):
            stride = 2 if block_index == 0 and out_channels != 256 else 1
            x, size, specs = _bottleneck(
                b, x, batch, size, in_channels, inner, out_channels, stride
            )
            all_specs.extend(specs)
            in_channels = out_channels
    return x, size, all_specs


def backbone_backward(
    b: GraphBuilder, grad: Operation, batch: int, specs: list[tuple[layers.ConvSpec, int]]
) -> Operation:
    """Gradient ops for a stack of conv blocks, deepest layer first."""
    for spec, out_size in reversed(specs):
        grad = layers.conv_backward(b, grad, batch, out_size, spec)
    return grad


@dataclass
class ResNetModel(WorkloadModel):
    """ResNet-50 classifier."""

    num_classes: int = 1000

    name: str = "ResNet"
    workload_type: str = "Image Classification"

    def build_train_graph(self, batch_size: int, dataset: DatasetSpec) -> Graph:
        image_size = dataset.example_shape[0]
        b = GraphBuilder(f"resnet50-train-{dataset.name}-b{batch_size}")
        images = b.infeed(TensorShape((batch_size, image_size, image_size, 3)))
        features, size, specs = resnet50_backbone(b, images, batch_size, image_size)
        pooled = b.reshape(features, TensorShape((batch_size, 2048)))
        logits = layers.dense_layer(b, pooled, batch_size, 2048, self.num_classes, activation=None)
        grad = layers.dense_backward(b, logits, batch_size, 2048, self.num_classes)
        grad = backbone_backward(b, grad, batch_size, specs)
        weight_elements = 25.6e6  # ResNet-50 parameter count
        reduced = layers.loss_and_optimizer(b, grad, weight_elements)
        b.outfeed(reduced)
        return apply_mxu_efficiency(b.build(), _RESNET_MXU_EFFICIENCY)

    def build_eval_graph(self, batch_size: int, dataset: DatasetSpec) -> Graph:
        image_size = dataset.example_shape[0]
        b = GraphBuilder(f"resnet50-eval-{dataset.name}-b{batch_size}")
        images = b.infeed(TensorShape((batch_size, image_size, image_size, 3)))
        features, _, _ = resnet50_backbone(b, images, batch_size, image_size)
        pooled = b.reshape(features, TensorShape((batch_size, 2048)))
        logits = layers.dense_layer(b, pooled, batch_size, 2048, self.num_classes, activation=None)
        b.outfeed(logits)
        return apply_mxu_efficiency(b.build(), _RESNET_MXU_EFFICIENCY)

    def defaults(self, dataset: DatasetSpec) -> WorkloadDefaults:
        return WorkloadDefaults(
            batch_size=1024,
            train_steps=500,
            paper_train_steps=112_590,
            iterations_per_loop=50,
            checkpoint_every=125,
            checkpoint_bytes=100e6,
            incidental_scale=6.0,
        )
