"""Workload substrate: behavioural models of Table I's ML workloads."""

from repro.models.base import WorkloadDefaults, WorkloadModel, apply_mxu_efficiency
from repro.models.bert import BertModel
from repro.models.dcgan import DcganModel
from repro.models.naive import NaiveVariant, naive_pipeline_config
from repro.models.qanet import QanetModel
from repro.models.registry import (
    OPTIMIZER_WORKLOADS,
    PAPER_WORKLOADS,
    SMALL_DATASET_WORKLOADS,
    WorkloadEntry,
    all_workloads,
    model,
    workload,
)
from repro.models.resnet import ResNetModel
from repro.models.retinanet import RetinaNetModel

__all__ = [
    "OPTIMIZER_WORKLOADS",
    "PAPER_WORKLOADS",
    "SMALL_DATASET_WORKLOADS",
    "BertModel",
    "DcganModel",
    "NaiveVariant",
    "QanetModel",
    "ResNetModel",
    "RetinaNetModel",
    "WorkloadDefaults",
    "WorkloadEntry",
    "WorkloadModel",
    "all_workloads",
    "apply_mxu_efficiency",
    "model",
    "naive_pipeline_config",
    "workload",
]
