"""Workload-model interface.

A workload model is the behavioural stand-in for one entry of the paper's
Table I: it builds the per-step training/eval graphs (which the master
compiles into a TPU schedule), describes its input pipeline's stages for
a given dataset, and supplies default session parameters. Everything a
:class:`~repro.runtime.estimator.TPUEstimator` needs comes from here.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.datasets.base import DatasetKind, DatasetSpec
from repro.graph.graph import Graph
from repro.host.pipeline import InputPipeline, PipelineConfig
from repro.host.stages import StageKind, StageSpec
from repro.host.vm import HostVM
from repro.runtime.estimator import TPUEstimator
from repro.runtime.session import SessionPlan
from repro.storage.bucket import Bucket
from repro.storage.objects import StorageObject
from repro.tpu.specs import TpuGeneration

# Transfer-stage operator mix: the locked infeed DMA plus its helpers.
_TRANSFER_OPS = (
    ("TransferBufferToInfeedLocked", 0.5),
    ("InfeedEnqueueTuple", 0.2),
    ("LinearizeX32", 0.2),
    ("LSRAv2", 0.1),
)

_IMAGE_PREPROCESS_OPS = (
    ("ResizeBicubic", 0.5),
    ("Cast", 0.2),
    ("Sub", 0.15),
    ("Maximum", 0.08),
    ("Minimum", 0.07),
)

_TEXT_PARSE_OPS = (("Cast", 0.6), ("Sub", 0.4))
_TEXT_PREPROCESS_OPS = (("Maximum", 0.4), ("Minimum", 0.3), ("Cast", 0.3))


@dataclass(frozen=True)
class WorkloadDefaults:
    """Default training parameters for one (model, dataset) pairing.

    ``paper_train_steps`` records the publication's configuration;
    ``train_steps`` is the scaled-down simulation default that keeps the
    benchmark harness fast while preserving the phase structure.
    """

    batch_size: int
    train_steps: int
    paper_train_steps: int
    iterations_per_loop: int = 20
    eval_every: int = 0
    eval_steps: int = 0
    checkpoint_every: int = 0
    checkpoint_bytes: float = 350e6
    incidental_scale: float = 1.0

    def session_plan(self) -> SessionPlan:
        """Materialize the defaults as a session plan."""
        return SessionPlan(
            train_steps=self.train_steps,
            batch_size=self.batch_size,
            iterations_per_loop=self.iterations_per_loop,
            eval_every=self.eval_every,
            eval_steps=self.eval_steps,
            checkpoint_every=self.checkpoint_every,
            checkpoint_bytes=self.checkpoint_bytes,
            incidental_scale=self.incidental_scale,
        )


def apply_mxu_efficiency(graph: Graph, efficiency: float) -> Graph:
    """Stamp a calibrated MXU efficiency onto every compute op of a graph.

    Shape-based efficiency alone overestimates what real models achieve;
    each workload model calibrates its achieved fraction of peak to the
    utilization levels the paper (and ParaDnn) report for that model
    family.
    """
    for op in graph:
        if op.kind.uses_mxu:
            op.attrs.setdefault("mxu_efficiency", efficiency)
    return graph


class WorkloadModel(abc.ABC):
    """Behavioural model of one TPU workload."""

    #: model name as it appears in Table I ("BERT", "ResNet", ...)
    name: str = "workload"
    #: workload type column of Table I ("Natural Language", ...)
    workload_type: str = "Generic"

    # --- graphs -----------------------------------------------------------

    @abc.abstractmethod
    def build_train_graph(self, batch_size: int, dataset: DatasetSpec) -> Graph:
        """The per-step training graph (forward + backward + optimizer).

        The dataset participates because input geometry (image size,
        sequence length) determines the graph's compute — the mechanism
        behind the paper's Observation 6.
        """

    def build_eval_graph(self, batch_size: int, dataset: DatasetSpec) -> Graph:
        """The per-step eval graph; defaults to the training graph."""
        return self.build_train_graph(batch_size, dataset)

    # --- defaults -----------------------------------------------------------

    @abc.abstractmethod
    def defaults(self, dataset: DatasetSpec) -> WorkloadDefaults:
        """Default training parameters for a dataset."""

    def default_pipeline_config(self) -> PipelineConfig:
        """Reasonably tuned knobs (the public TPU-zoo implementations)."""
        return PipelineConfig()

    # --- input pipeline ---------------------------------------------------------

    def pipeline_stages(self, dataset: DatasetSpec) -> tuple[StageSpec, ...]:
        """tf.data stages for this model on a dataset, by modality."""
        if dataset.kind is DatasetKind.IMAGE:
            return (
                StageSpec("read", StageKind.READ, ops=(("Send", 0.5), ("Recv", 0.5))),
                StageSpec(
                    "decode",
                    StageKind.CPU,
                    cpu_us_per_example=dataset.decode_cpu_us,
                    ops=(("DecodeAndCropJpeg", 1.0),),
                ),
                StageSpec(
                    "preprocess",
                    StageKind.CPU,
                    cpu_us_per_example=dataset.preprocess_cpu_us,
                    ops=_IMAGE_PREPROCESS_OPS,
                ),
                StageSpec(
                    "batch",
                    StageKind.BATCH,
                    cpu_us_per_example=0.4,
                    parallelizable=False,
                    ops=(("Cast", 1.0),),
                ),
                StageSpec("transfer", StageKind.TRANSFER, ops=_TRANSFER_OPS),
            )
        return (
            StageSpec("read", StageKind.READ, ops=(("Send", 0.5), ("Recv", 0.5))),
            StageSpec(
                "parse",
                StageKind.CPU,
                cpu_us_per_example=dataset.decode_cpu_us,
                ops=_TEXT_PARSE_OPS,
            ),
            StageSpec(
                "preprocess",
                StageKind.CPU,
                cpu_us_per_example=dataset.preprocess_cpu_us,
                ops=_TEXT_PREPROCESS_OPS,
            ),
            StageSpec(
                "batch",
                StageKind.BATCH,
                cpu_us_per_example=0.6,
                parallelizable=False,
                ops=(("BuildPaddedOutput", 1.0),),
            ),
            StageSpec("transfer", StageKind.TRANSFER, ops=_TRANSFER_OPS),
        )

    # --- wiring -------------------------------------------------------------------

    def build_estimator(
        self,
        dataset: DatasetSpec,
        generation: TpuGeneration | str = TpuGeneration.V2,
        plan: SessionPlan | None = None,
        pipeline_config: PipelineConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> TPUEstimator:
        """Assemble a ready-to-train estimator for this workload."""
        defaults = self.defaults(dataset)
        plan = plan or defaults.session_plan()
        config = pipeline_config or self.default_pipeline_config()
        stages = self.pipeline_stages(dataset)

        def pipeline_factory(cfg: PipelineConfig, bucket: Bucket) -> InputPipeline:
            for shard in dataset.shards():
                if not bucket.exists(shard.name):
                    bucket.put(StorageObject(shard.name, shard.num_bytes))
            return InputPipeline(
                vm=HostVM(),
                bucket=bucket,
                stages=stages,
                config=cfg,
                bytes_per_example_storage=dataset.storage_bytes_per_example,
                bytes_per_example_device=dataset.device_bytes_per_example,
            )

        return TPUEstimator(
            train_graph=self.build_train_graph(plan.batch_size, dataset),
            pipeline_factory=pipeline_factory,
            plan=plan,
            generation=generation,
            pipeline_config=config,
            eval_graph=self.build_eval_graph(plan.batch_size, dataset),
            rng=rng,
        )
