"""RetinaNet object-detection workload (Table I, row 4 of the models).

RetinaNet = ResNet-50 backbone + feature-pyramid network (FPN) + shared
classification/box subnets applied at five pyramid scales, trained on
COCO at 640x640 with batch size 64. The detection heads dominate the
compute; the heavy JPEG decode of COCO dominates the host.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import DatasetSpec
from repro.host.pipeline import PipelineConfig
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.ops import Operation
from repro.graph.shapes import TensorShape
from repro.models import layers
from repro.models.base import WorkloadDefaults, WorkloadModel, apply_mxu_efficiency
from repro.models.resnet import backbone_backward, resnet50_backbone

_FPN_CHANNELS = 96
_SUBNET_DEPTH = 2
_ANCHORS = 9
_NUM_CLASSES = 90
# Achieved fraction of peak for detection convolutions.
_RETINANET_MXU_EFFICIENCY = 0.5


def _pyramid_sizes(image_size: int) -> list[int]:
    """Feature map sizes for pyramid levels P3..P7."""
    return [max(1, image_size // (2**level)) for level in range(3, 8)]


@dataclass
class RetinaNetModel(WorkloadModel):
    """RetinaNet single-stage detector."""

    name: str = "RetinaNet"
    workload_type: str = "Object Detection"

    def default_pipeline_config(self) -> "PipelineConfig":
        # The public implementation of the era parallelized decode only
        # modestly, leaving the heavy COCO preprocessing nearly serial —
        # the headroom TPUPoint-Optimizer exploits (Figure 14).
        return PipelineConfig(num_parallel_calls=2, prefetch_depth=2)

    def _heads(
        self, b: GraphBuilder, features: Operation, batch: int, image_size: int
    ) -> tuple[Operation, list[tuple[layers.ConvSpec, int]]]:
        """FPN laterals plus class/box subnets at every pyramid scale."""
        specs: list[tuple[layers.ConvSpec, int]] = []
        x = features
        for size in _pyramid_sizes(image_size):
            lateral = layers.ConvSpec(_FPN_CHANNELS, _FPN_CHANNELS, kernel=1)
            x, _ = layers.conv_block(b, x, batch, size, lateral, batch_norm=False)
            specs.append((lateral, size))
            for spec_list, out_channels in (
                ("class", _ANCHORS * _NUM_CLASSES),
                ("box", _ANCHORS * 4),
            ):
                del spec_list
                subnet_in = _FPN_CHANNELS
                for _ in range(_SUBNET_DEPTH):
                    conv = layers.ConvSpec(subnet_in, _FPN_CHANNELS, kernel=3)
                    x, _ = layers.conv_block(b, x, batch, size, conv, batch_norm=False)
                    specs.append((conv, size))
                    subnet_in = _FPN_CHANNELS
                head = layers.ConvSpec(_FPN_CHANNELS, out_channels, kernel=3)
                x, _ = layers.conv_block(b, x, batch, size, head, batch_norm=False)
                specs.append((head, size))
        return x, specs

    def build_train_graph(self, batch_size: int, dataset: DatasetSpec) -> Graph:
        image_size = dataset.example_shape[0]
        b = GraphBuilder(f"retinanet-train-{dataset.name}-b{batch_size}")
        images = b.infeed(TensorShape((batch_size, image_size, image_size, 3)))
        features, _, backbone_specs = resnet50_backbone(b, images, batch_size, image_size)
        # Adapt backbone output into the pyramid's channel width.
        neck = b.reshape(
            features,
            TensorShape((batch_size, max(1, image_size // 8), max(1, image_size // 8), 256)),
        )
        predictions, head_specs = self._heads(b, neck, batch_size, image_size)
        grad = backbone_backward(b, predictions, batch_size, head_specs)
        grad = backbone_backward(b, grad, batch_size, backbone_specs)
        weight_elements = 36.3e6  # RetinaNet-50 parameter count
        reduced = layers.loss_and_optimizer(b, grad, weight_elements)
        b.outfeed(reduced)
        return apply_mxu_efficiency(b.build(), _RETINANET_MXU_EFFICIENCY)

    def build_eval_graph(self, batch_size: int, dataset: DatasetSpec) -> Graph:
        image_size = dataset.example_shape[0]
        b = GraphBuilder(f"retinanet-eval-{dataset.name}-b{batch_size}")
        images = b.infeed(TensorShape((batch_size, image_size, image_size, 3)))
        features, _, _ = resnet50_backbone(b, images, batch_size, image_size)
        neck = b.reshape(
            features,
            TensorShape((batch_size, max(1, image_size // 8), max(1, image_size // 8), 256)),
        )
        predictions, _ = self._heads(b, neck, batch_size, image_size)
        b.outfeed(predictions)
        return apply_mxu_efficiency(b.build(), _RETINANET_MXU_EFFICIENCY)

    def defaults(self, dataset: DatasetSpec) -> WorkloadDefaults:
        half = dataset.name.endswith("-half")
        return WorkloadDefaults(
            batch_size=64,
            train_steps=350,
            paper_train_steps=28_125,  # 15 epochs x 120k examples / batch 64
            iterations_per_loop=50,
            # Epoch-tied cadences tighten when the dataset shrinks.
            eval_every=60 if half else 120,
            eval_steps=5,
            checkpoint_every=50 if half else 100,
            checkpoint_bytes=145e6,
            incidental_scale=6.0,
        )
