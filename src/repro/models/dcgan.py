"""DCGAN image-generation workload (Table I, row 2).

A deep convolutional GAN trained on CIFAR-10 or MNIST with batch size
1024. Both the generator (transposed convolutions modelled as convs at
the output resolution) and the discriminator train each step. The tiny
channel counts fill the MXU poorly, which is why DCGAN sits at the bottom
of the paper's MXU-utilization chart while its large batch keeps the
infeed busy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import DatasetSpec
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.ops import Operation
from repro.graph.shapes import TensorShape
from repro.models import layers
from repro.models.base import WorkloadDefaults, WorkloadModel, apply_mxu_efficiency

_LATENT_DIM = 100
# Small GAN convolutions fill very little of the systolic array.
_DCGAN_MXU_EFFICIENCY = 0.12


@dataclass
class DcganModel(WorkloadModel):
    """DCGAN generator + discriminator trained jointly."""

    base_channels: int = 96

    name: str = "DCGAN"
    workload_type: str = "Image Generation"

    def _generator(
        self, b: GraphBuilder, batch: int, image_size: int, channels: int
    ) -> tuple[Operation, list[tuple[layers.ConvSpec, int]]]:
        specs: list[tuple[layers.ConvSpec, int]] = []
        noise = b.const(TensorShape((batch, _LATENT_DIM)))
        seed_size = max(1, image_size // 8)
        projected = layers.dense_layer(
            b, noise, batch, _LATENT_DIM, seed_size * seed_size * self.base_channels * 4
        )
        x = b.reshape(
            projected, TensorShape((batch, seed_size, seed_size, self.base_channels * 4))
        )
        size = seed_size
        out_channels = self.base_channels * 4
        while size < image_size:
            next_channels = max(self.base_channels, out_channels // 2)
            size *= 2
            spec = layers.ConvSpec(out_channels, next_channels, kernel=5, stride=1)
            x, _ = layers.conv_block(b, x, batch, size, spec, batch_norm=True)
            specs.append((spec, size))
            out_channels = next_channels
        final = layers.ConvSpec(out_channels, channels, kernel=5, stride=1)
        x, _ = layers.conv_block(b, x, batch, size, final, batch_norm=False)
        specs.append((final, size))
        return x, specs

    def _discriminator(
        self, b: GraphBuilder, images: Operation, batch: int, image_size: int, channels: int
    ) -> tuple[Operation, list[tuple[layers.ConvSpec, int]]]:
        specs: list[tuple[layers.ConvSpec, int]] = []
        x = images
        size = image_size
        in_channels = channels
        out_channels = self.base_channels
        while size > 4:
            spec = layers.ConvSpec(in_channels, out_channels, kernel=5, stride=2)
            x, size = layers.conv_block(b, x, batch, size, spec, batch_norm=True)
            specs.append((spec, size))
            in_channels = out_channels
            out_channels *= 2
        flat = b.reshape(x, TensorShape((batch, size * size * in_channels)))
        verdict = layers.dense_layer(
            b, flat, batch, size * size * in_channels, 1, activation=None
        )
        return verdict, specs

    def build_train_graph(self, batch_size: int, dataset: DatasetSpec) -> Graph:
        image_size = dataset.example_shape[0]
        channels = dataset.example_shape[2] if len(dataset.example_shape) > 2 else 1
        b = GraphBuilder(f"dcgan-train-{dataset.name}-b{batch_size}")
        real = b.infeed(TensorShape((batch_size, image_size, image_size, channels)))
        fake, gen_specs = self._generator(b, batch_size, image_size, channels)
        # The discriminator scores real and fake batches each step.
        verdict_fake, disc_specs = self._discriminator(b, fake, batch_size, image_size, channels)
        verdict_real, disc_specs_real = self._discriminator(
            b, real, batch_size, image_size, channels
        )
        grad = layers.dense_backward(b, verdict_fake, batch_size, 1, 1)
        grad = backbone_grads(b, grad, batch_size, disc_specs + disc_specs_real + gen_specs)
        weight_elements = 3.5e6
        reduced = layers.loss_and_optimizer(b, verdict_real, weight_elements)
        del grad
        b.outfeed(reduced)
        return apply_mxu_efficiency(b.build(), _DCGAN_MXU_EFFICIENCY)

    def build_eval_graph(self, batch_size: int, dataset: DatasetSpec) -> Graph:
        image_size = dataset.example_shape[0]
        channels = dataset.example_shape[2] if len(dataset.example_shape) > 2 else 1
        b = GraphBuilder(f"dcgan-eval-{dataset.name}-b{batch_size}")
        fake, _ = self._generator(b, batch_size, image_size, channels)
        b.outfeed(fake)
        return apply_mxu_efficiency(b.build(), _DCGAN_MXU_EFFICIENCY)

    def defaults(self, dataset: DatasetSpec) -> WorkloadDefaults:
        return WorkloadDefaults(
            batch_size=1024,
            train_steps=300,
            paper_train_steps=10_000,
            iterations_per_loop=20,  # paper: iterations per loop 100
            eval_every=100,  # paper: train steps per eval 1000
            eval_steps=4,
            checkpoint_every=100,
            checkpoint_bytes=50e6,
        )


def backbone_grads(
    b: GraphBuilder, grad: Operation, batch: int, specs: list[tuple[layers.ConvSpec, int]]
) -> Operation:
    """Gradient ops for all GAN convolutions, deepest first."""
    for spec, out_size in reversed(specs):
        grad = layers.conv_backward(b, grad, batch, out_size, spec, batch_norm=False)
    return grad
