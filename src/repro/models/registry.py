"""Workload registry: every (model, dataset) pairing of Table I.

Workloads are addressed as ``"<model>-<dataset>"`` (lowercase), e.g.
``"bert-mrpc"`` or ``"resnet-imagenet"``. The registry also exposes the
reduced-dataset pairings of Figures 12/13 and the naive variants of
Section VII.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import DatasetSpec
from repro.datasets.registry import dataset as dataset_by_name
from repro.errors import ConfigurationError
from repro.models.base import WorkloadModel
from repro.models.bert import BertModel
from repro.models.dcgan import DcganModel
from repro.models.naive import NaiveVariant
from repro.models.qanet import QanetModel
from repro.models.resnet import ResNetModel
from repro.models.retinanet import RetinaNetModel

_MODELS: dict[str, WorkloadModel] = {
    "bert": BertModel(),
    "dcgan": DcganModel(),
    "qanet": QanetModel(),
    "retinanet": RetinaNetModel(),
    "resnet": ResNetModel(),
}

#: The nine workload/dataset pairings evaluated in the paper (Table I).
PAPER_WORKLOADS: tuple[str, ...] = (
    "bert-mrpc",
    "bert-squad",
    "bert-cola",
    "bert-mnli",
    "dcgan-cifar10",
    "dcgan-mnist",
    "qanet-squad",
    "retinanet-coco",
    "resnet-imagenet",
)

#: The reduced-dataset pairings of Figures 12/13.
SMALL_DATASET_WORKLOADS: tuple[str, ...] = (
    "qanet-squad-half",
    "retinanet-coco-half",
    "resnet-cifar10",
)

#: Long-running workloads used in the optimizer study (Figure 14).
OPTIMIZER_WORKLOADS: tuple[str, ...] = ("qanet-squad", "retinanet-coco")


@dataclass(frozen=True)
class WorkloadEntry:
    """A resolved workload: model plus dataset."""

    key: str
    model: WorkloadModel
    dataset: DatasetSpec

    @property
    def display_name(self) -> str:
        """E.g. ``BERT-MRPC``, as the paper's figures label workloads."""
        return f"{self.model.name}-{self.dataset.name}"


def model(name: str) -> WorkloadModel:
    """Look up a model by name; a ``naive-`` prefix wraps it naively."""
    key = name.lower()
    if key.startswith("naive-"):
        return NaiveVariant(base=model(key.removeprefix("naive-")))
    try:
        return _MODELS[key]
    except KeyError as exc:
        raise ConfigurationError(f"unknown model {name!r}; known: {sorted(_MODELS)}") from exc


def workload(key: str) -> WorkloadEntry:
    """Resolve ``"<model>-<dataset>"`` (optionally ``naive-`` prefixed)."""
    normalized = key.lower()
    naive = normalized.startswith("naive-")
    if naive:
        normalized = normalized.removeprefix("naive-")
    parts = normalized.split("-", 1)
    if len(parts) != 2:
        raise ConfigurationError(f"workload key {key!r} must look like 'model-dataset'")
    model_name, dataset_name = parts
    resolved_model = model(f"naive-{model_name}" if naive else model_name)
    return WorkloadEntry(
        key=key.lower(),
        model=resolved_model,
        dataset=dataset_by_name(dataset_name),
    )


def all_workloads() -> list[WorkloadEntry]:
    """The paper's nine workload/dataset pairings, resolved."""
    return [workload(key) for key in PAPER_WORKLOADS]
