"""BERT fine-tuning workload (Table I, rows 1-4).

A BERT-base encoder (12 layers, hidden 768, 12 heads, FFN 3072) fine-tuned
with max sequence length 128 and batch size 32, as the paper ran it on
SQuAD, MRPC, MNLI, and CoLA. The graph carries the full attention/FFN
matmul structure — including the reshape/transpose layout ops that make
``Reshape`` a top TPU operator — plus the mirrored gradient matmuls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import DatasetSpec
from repro.graph import ops as opdefs
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.shapes import TensorShape
from repro.models import layers
from repro.models.base import WorkloadDefaults, WorkloadModel, apply_mxu_efficiency

# Simulation-scale step counts per dataset (paper runs 3 epochs each).
_SIM_STEPS = {"SQuAD": 400, "MRPC": 120, "MNLI": 480, "CoLA": 160}
# Achieved fraction of peak for BERT-class matmuls on a TPU core.
_BERT_MXU_EFFICIENCY = 0.38


@dataclass
class BertModel(WorkloadModel):
    """BERT-base encoder fine-tuning."""

    num_layers: int = 12
    hidden: int = 768
    num_heads: int = 12
    ffn: int = 3072
    seq_len: int = 128

    name: str = "BERT"
    workload_type: str = "Natural Language"

    def _forward(self, b: GraphBuilder, batch_size: int) -> "layers.Operation":
        tokens = b.infeed(TensorShape((batch_size, self.seq_len, 3), dtype="int32"))
        # Embedding lookup: a gather (memory-bound) then layout to [B,S,H].
        embedded = b.reshape(tokens, TensorShape((batch_size, self.seq_len, self.hidden)))
        x = b.elementwise(opdefs.CAST, embedded)
        for _ in range(self.num_layers):
            x = layers.transformer_layer(
                b, x, batch_size, self.seq_len, self.hidden, self.ffn, self.num_heads
            )
        return x

    def build_train_graph(self, batch_size: int, dataset: DatasetSpec | None = None) -> Graph:
        b = GraphBuilder(f"bert-train-b{batch_size}")
        encoded = self._forward(b, batch_size)
        # Task head: pooled classification/span logits.
        pooled = b.reshape(encoded, TensorShape((batch_size * self.seq_len, self.hidden)))
        logits = layers.dense_layer(
            b, pooled, batch_size * self.seq_len, self.hidden, 2, activation=None
        )
        grad = logits
        for _ in range(self.num_layers):
            grad = layers.transformer_backward(
                b, grad, batch_size, self.seq_len, self.hidden, self.ffn
            )
        weight_elements = self.num_layers * (4 * self.hidden**2 + 2 * self.hidden * self.ffn)
        reduced = layers.loss_and_optimizer(b, grad, float(weight_elements))
        b.outfeed(reduced)
        return apply_mxu_efficiency(b.build(), _BERT_MXU_EFFICIENCY)

    def build_eval_graph(self, batch_size: int, dataset: DatasetSpec | None = None) -> Graph:
        b = GraphBuilder(f"bert-eval-b{batch_size}")
        encoded = self._forward(b, batch_size)
        pooled = b.reshape(encoded, TensorShape((batch_size * self.seq_len, self.hidden)))
        logits = layers.dense_layer(
            b, pooled, batch_size * self.seq_len, self.hidden, 2, activation=None
        )
        b.outfeed(logits)
        return apply_mxu_efficiency(b.build(), _BERT_MXU_EFFICIENCY)

    def defaults(self, dataset: DatasetSpec) -> WorkloadDefaults:
        base_name = dataset.name.removesuffix("-half")
        epochs = 3
        paper_steps = max(1, dataset.num_examples * epochs // 32)
        sim_steps = _SIM_STEPS.get(base_name, min(400, paper_steps))
        return WorkloadDefaults(
            batch_size=32,
            train_steps=sim_steps,
            paper_train_steps=paper_steps,
            iterations_per_loop=20,
            checkpoint_every=75,
            checkpoint_bytes=440e6,  # BERT-base checkpoint
        )
