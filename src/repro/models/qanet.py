"""QANet question-answering workload (Table I, row 3).

QANet combines depthwise-separable convolutions with self-attention in
its encoder blocks (no recurrence). The paper trains it on SQuAD with
batch size 32. Narrow hidden dimensions (128) and depthwise convolutions
fill the MXU poorly, matching the ~16% TPUv2 FLOP utilization the paper
reports for this workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import DatasetSpec
from repro.graph import ops as opdefs
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.ops import Operation
from repro.graph.shapes import TensorShape
from repro.models import layers
from repro.models.base import WorkloadDefaults, WorkloadModel, apply_mxu_efficiency

# Achieved fraction of peak for QANet's narrow convolutions/attention.
_QANET_MXU_EFFICIENCY = 0.22


@dataclass
class QanetModel(WorkloadModel):
    """QANet reading-comprehension model."""

    hidden: int = 128
    num_heads: int = 8
    context_len: int = 400
    question_len: int = 50
    embedding_blocks: int = 1
    model_blocks: int = 7
    convs_per_block: int = 2

    name: str = "QANet"
    workload_type: str = "Q/A Natural Language"

    def _encoder_block(
        self, b: GraphBuilder, x: Operation, batch: int, seq: int
    ) -> Operation:
        """One QANet encoder block: convs, self-attention, feed-forward."""
        for _ in range(self.convs_per_block):
            # Depthwise-separable conv over the sequence: a depthwise pass
            # (element-wise scale work) plus a pointwise 1x1 projection.
            x = b.elementwise(opdefs.MUL, x, flops_per_element=7.0 * 2)
            w = b.const(TensorShape((self.hidden, self.hidden)))
            x = b.matmul(x, w, seq, self.hidden, self.hidden, batch=batch)
        attended = layers.attention_block(b, x, batch, seq, self.hidden, self.num_heads)
        return layers.feed_forward_block(b, attended, batch, seq, self.hidden, self.hidden * 4)

    def _forward(self, b: GraphBuilder, batch_size: int) -> Operation:
        tokens = b.infeed(
            TensorShape((batch_size, self.context_len + self.question_len, 3), dtype="int32")
        )
        x = b.reshape(tokens, TensorShape((batch_size, self.context_len, self.hidden)))
        x = b.elementwise(opdefs.CAST, x)
        for _ in range(self.embedding_blocks):
            x = self._encoder_block(b, x, batch_size, self.context_len)
        # Context-query attention over the question span.
        x = layers.attention_block(b, x, batch_size, self.question_len, self.hidden, self.num_heads)
        for _ in range(self.model_blocks):
            x = self._encoder_block(b, x, batch_size, self.context_len)
        return x

    def build_train_graph(self, batch_size: int, dataset: DatasetSpec | None = None) -> Graph:
        b = GraphBuilder(f"qanet-train-b{batch_size}")
        encoded = self._forward(b, batch_size)
        flat = b.reshape(encoded, TensorShape((batch_size * self.context_len, self.hidden)))
        logits = layers.dense_layer(
            b, flat, batch_size * self.context_len, self.hidden, 2, activation=None
        )
        grad = logits
        blocks = self.embedding_blocks + self.model_blocks
        for _ in range(blocks):
            grad = layers.transformer_backward(
                b, grad, batch_size, self.context_len, self.hidden, self.hidden * 4
            )
        weight_elements = 1.3e6  # QANet parameter count
        reduced = layers.loss_and_optimizer(b, grad, weight_elements)
        b.outfeed(reduced)
        return apply_mxu_efficiency(b.build(), _QANET_MXU_EFFICIENCY)

    def build_eval_graph(self, batch_size: int, dataset: DatasetSpec | None = None) -> Graph:
        b = GraphBuilder(f"qanet-eval-b{batch_size}")
        encoded = self._forward(b, batch_size)
        flat = b.reshape(encoded, TensorShape((batch_size * self.context_len, self.hidden)))
        logits = layers.dense_layer(
            b, flat, batch_size * self.context_len, self.hidden, 2, activation=None
        )
        b.outfeed(logits)
        return apply_mxu_efficiency(b.build(), _QANET_MXU_EFFICIENCY)

    def pipeline_stages(self, dataset: DatasetSpec):
        # QANet regenerates char-level features on the fly, making its
        # host preprocessing far heavier than BERT's on the same SQuAD
        # records; scale the per-example CPU costs accordingly.
        from dataclasses import replace as _replace

        heavy = _replace(dataset, decode_cpu_us=1_500.0, preprocess_cpu_us=5_200.0)
        return super().pipeline_stages(heavy)

    def defaults(self, dataset: DatasetSpec) -> WorkloadDefaults:
        half = dataset.name.endswith("-half")
        return WorkloadDefaults(
            batch_size=32,
            train_steps=700,
            paper_train_steps=100_000,  # 5 epochs x 20000 steps per epoch
            iterations_per_loop=20,
            # Epoch-tied cadences tighten when the dataset shrinks.
            checkpoint_every=50 if half else 100,
            eval_every=60 if half else 120,
            eval_steps=4,
            checkpoint_bytes=120e6,
        )
