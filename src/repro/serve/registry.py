"""Job registry for the fleet profiling service.

A *job* is one training run streaming profile records into the service.
The registry tracks each job's metadata (workload, TPU generation, start
step) and its lifecycle:

    registered --> active <--> stalled --> completed
         \\           \\           |            |
          +-----------+----------+--> evicted <+

Jobs activate on their first ingested record, complete when the producer
declares the run finished, and may be evicted at any point (an evicted
job's live state is discarded but its registry entry remains for
accounting). An active job that goes silent past the service's heartbeat
deadline is parked in STALLED — still live, still queryable — and
resumes to ACTIVE on its next record. Transitions outside the diagram
raise :class:`ServeError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ServeError, UnknownJobError
from repro.tpu.specs import TpuGeneration, chip_spec


class JobState(enum.Enum):
    """Lifecycle state of one registered job."""

    REGISTERED = "registered"
    ACTIVE = "active"
    STALLED = "stalled"
    COMPLETED = "completed"
    EVICTED = "evicted"


_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.REGISTERED: frozenset({JobState.ACTIVE, JobState.EVICTED}),
    JobState.ACTIVE: frozenset(
        {JobState.STALLED, JobState.COMPLETED, JobState.EVICTED}
    ),
    JobState.STALLED: frozenset(
        {JobState.ACTIVE, JobState.COMPLETED, JobState.EVICTED}
    ),
    JobState.COMPLETED: frozenset({JobState.EVICTED}),
    JobState.EVICTED: frozenset(),
}


@dataclass
class JobInfo:
    """Metadata for one job in the fleet."""

    job_id: str
    workload: str
    generation: str
    peak_flops: float
    start_step: int = 0
    sequence: int = 0
    state: JobState = JobState.REGISTERED

    @property
    def live(self) -> bool:
        """Whether the job still holds live analysis state."""
        return self.state in (JobState.REGISTERED, JobState.ACTIVE, JobState.STALLED)


@dataclass
class JobRegistry:
    """All jobs known to one fleet service instance.

    ``max_jobs`` bounds the number of jobs holding live state
    (registered + active); registration past the cap raises
    :class:`ServeError` so admission control is explicit rather than a
    silent queue of unbounded tenants.
    """

    max_jobs: int | None = None
    _jobs: dict[str, JobInfo] = field(default_factory=dict)
    _sequence: int = 0

    def __post_init__(self) -> None:
        if self.max_jobs is not None and self.max_jobs <= 0:
            raise ServeError("max_jobs must be positive when set")

    def register(
        self,
        workload: str,
        generation: TpuGeneration | str = TpuGeneration.V2,
        job_id: str | None = None,
        start_step: int = 0,
    ) -> JobInfo:
        """Admit a new job; returns its metadata entry."""
        if self.max_jobs is not None and len(self.jobs(live=True)) >= self.max_jobs:
            raise ServeError(f"registry is full ({self.max_jobs} live jobs)")
        if job_id is None:
            job_id = f"{workload}/{self._sequence}"
        if job_id in self._jobs:
            raise ServeError(f"job {job_id!r} is already registered")
        if start_step < 0:
            raise ServeError("start_step must be non-negative")
        spec = chip_spec(generation)
        info = JobInfo(
            job_id=job_id,
            workload=workload,
            generation=str(getattr(generation, "value", generation)),
            peak_flops=spec.peak_flops,
            start_step=start_step,
            sequence=self._sequence,
        )
        self._sequence += 1
        self._jobs[job_id] = info
        return info

    def get(self, job_id: str) -> JobInfo:
        """Look a job up; unknown ids raise :class:`UnknownJobError`."""
        info = self._jobs.get(job_id)
        if info is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        return info

    def transition(self, job_id: str, state: JobState) -> JobInfo:
        """Move a job to ``state``, validating the lifecycle diagram."""
        info = self.get(job_id)
        if state not in _TRANSITIONS[info.state]:
            raise ServeError(
                f"job {job_id!r} cannot move {info.state.value} -> {state.value}"
            )
        info.state = state
        return info

    def activate(self, job_id: str) -> JobInfo:
        return self.transition(job_id, JobState.ACTIVE)

    def stall(self, job_id: str) -> JobInfo:
        return self.transition(job_id, JobState.STALLED)

    def resume(self, job_id: str) -> JobInfo:
        return self.transition(job_id, JobState.ACTIVE)

    def complete(self, job_id: str) -> JobInfo:
        return self.transition(job_id, JobState.COMPLETED)

    def evict(self, job_id: str) -> JobInfo:
        return self.transition(job_id, JobState.EVICTED)

    def jobs(self, state: JobState | None = None, live: bool = False) -> list[JobInfo]:
        """Jobs in registration order, optionally filtered."""
        found = sorted(self._jobs.values(), key=lambda info: info.sequence)
        if state is not None:
            found = [info for info in found if info.state is state]
        if live:
            found = [info for info in found if info.live]
        return found

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs

    def __len__(self) -> int:
        return len(self._jobs)
