"""Snapshot queries over the fleet.

Queries never mutate service state: a snapshot is a frozen view of what
the drain loop has folded so far, safe to take while runs are in flight.
Per-job snapshots carry the live phase table; the fleet rollup
aggregates across jobs the way *Machine Learning Fleet Efficiency*
rolls per-job Goodput into fleet-level efficiency — duration-weighted
idle, capacity-weighted MXU utilization, and a phase-count histogram.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.events import DeviceKind
from repro.serve.ingest import IngestQueue
from repro.serve.live import LiveJobAnalysis
from repro.serve.registry import JobInfo


@dataclass(frozen=True)
class PhaseView:
    """One phase row in a job snapshot."""

    phase_id: int
    num_steps: int
    first_step: int
    last_step: int
    duration_us: float
    idle_fraction: float
    top_tpu_operators: tuple[str, ...]
    top_host_operators: tuple[str, ...]


@dataclass(frozen=True)
class JobSnapshot:
    """Live view of one job."""

    job_id: str
    workload: str
    generation: str
    state: str
    steps_seen: int
    pending_steps: int
    num_phases: int
    coverage_top3: float
    idle_fraction: float
    mxu_utilization: float
    duration_us: float
    mxu_flops: float
    peak_flops: float
    queue_depth: int
    records_submitted: int
    records_ingested: int
    records_dropped: int
    phases: tuple[PhaseView, ...]
    records_quarantined: int = 0
    chip: str = ""  # assigned chip id ("" before SDC wiring assigns one)
    chip_quarantined: bool = False

    def format(self) -> list[str]:
        chip_note = ""
        if self.chip:
            chip_note = f" on {self.chip}" + (
                " [QUARANTINED]" if self.chip_quarantined else ""
            )
        lines = [
            f"{self.job_id} [{self.state}] {self.workload} on TPU{self.generation}"
            f"{chip_note}: "
            f"{self.steps_seen} steps, {self.num_phases} phases "
            f"(top-3 cover {self.coverage_top3:.1%}), "
            f"idle {self.idle_fraction:.1%}, MXU {self.mxu_utilization:.1%}"
        ]
        for phase in self.phases:
            ops = ", ".join(phase.top_tpu_operators) or "-"
            lines.append(
                f"  phase #{phase.phase_id}: {phase.num_steps} steps "
                f"(steps {phase.first_step}-{phase.last_step}), "
                f"idle {phase.idle_fraction:.1%}  [{ops}]"
            )
        return lines


@dataclass(frozen=True)
class FleetSnapshot:
    """Rollup across every job holding live state."""

    jobs: tuple[JobSnapshot, ...]
    active_jobs: int
    stalled_jobs: int
    completed_jobs: int
    total_steps: int
    total_records: int
    total_drops: int
    idle_fraction: float
    mxu_utilization: float
    phase_histogram: dict[int, int]
    total_quarantined: int = 0
    quarantined_chips: tuple[str, ...] = ()

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    def format(self) -> list[str]:
        histogram = ", ".join(
            f"{phases}p x{count}" for phases, count in sorted(self.phase_histogram.items())
        )
        lines = [
            f"jobs            : {self.num_jobs} "
            f"({self.active_jobs} active, {self.stalled_jobs} stalled, "
            f"{self.completed_jobs} completed)",
            f"steps assembled : {self.total_steps} "
            f"from {self.total_records} records ({self.total_drops} dropped)",
            f"fleet idle      : {self.idle_fraction:.1%}",
            f"fleet MXU util  : {self.mxu_utilization:.1%}",
            f"phase histogram : {histogram or '-'}",
        ]
        if self.quarantined_chips:
            lines.append(
                "quarantined chips: " + ", ".join(self.quarantined_chips)
            )
        return lines


def job_snapshot(
    info: JobInfo,
    analysis: LiveJobAnalysis,
    queue: IngestQueue,
    max_phases: int = 5,
    top_operators: int = 3,
    quarantined: int = 0,
    chip: str = "",
    chip_quarantined: bool = False,
) -> JobSnapshot:
    """Freeze one job's live state into a query result."""
    phases = tuple(
        PhaseView(
            phase_id=phase.phase_id,
            num_steps=phase.num_steps,
            first_step=phase.first_step,
            last_step=phase.last_step,
            duration_us=phase.duration_us,
            idle_fraction=phase.idle_fraction,
            top_tpu_operators=tuple(
                stats.name for stats in phase.top_operators(top_operators, DeviceKind.TPU)
            ),
            top_host_operators=tuple(
                stats.name for stats in phase.top_operators(top_operators, DeviceKind.HOST)
            ),
        )
        for phase in analysis.phases_by_duration()[:max_phases]
    )
    return JobSnapshot(
        job_id=info.job_id,
        workload=info.workload,
        generation=info.generation,
        state=info.state.value,
        steps_seen=analysis.steps_seen,
        pending_steps=analysis.pending_steps,
        num_phases=analysis.num_phases,
        coverage_top3=analysis.coverage(3),
        idle_fraction=analysis.idle_fraction,
        mxu_utilization=analysis.mxu_utilization,
        duration_us=analysis.total_duration_us,
        mxu_flops=analysis.mxu_flops,
        peak_flops=info.peak_flops,
        queue_depth=queue.depth,
        records_submitted=queue.submitted,
        records_ingested=analysis.records_seen,
        records_dropped=queue.dropped,
        phases=phases,
        records_quarantined=quarantined,
        chip=chip,
        chip_quarantined=chip_quarantined,
    )


def fleet_snapshot(snapshots: list[JobSnapshot]) -> FleetSnapshot:
    """Roll per-job snapshots into the fleet view."""
    total_duration = sum(snap.duration_us for snap in snapshots)
    total_idle = sum(snap.idle_fraction * snap.duration_us for snap in snapshots)
    # Capacity-weighted utilization: achieved matrix FLOPs over the FLOPs
    # the fleet's chips could have delivered in the profiled time.
    possible_flops = sum(
        snap.peak_flops * (snap.duration_us / 1e6) for snap in snapshots
    )
    achieved_flops = sum(snap.mxu_flops for snap in snapshots)
    histogram: dict[int, int] = {}
    for snap in snapshots:
        histogram[snap.num_phases] = histogram.get(snap.num_phases, 0) + 1
    return FleetSnapshot(
        jobs=tuple(snapshots),
        active_jobs=sum(1 for snap in snapshots if snap.state == "active"),
        stalled_jobs=sum(1 for snap in snapshots if snap.state == "stalled"),
        completed_jobs=sum(1 for snap in snapshots if snap.state == "completed"),
        total_steps=sum(snap.steps_seen for snap in snapshots),
        total_records=sum(snap.records_submitted for snap in snapshots),
        total_drops=sum(snap.records_dropped for snap in snapshots),
        idle_fraction=(total_idle / total_duration) if total_duration > 0 else 0.0,
        mxu_utilization=(
            min(achieved_flops / possible_flops, 1.0) if possible_flops > 0 else 0.0
        ),
        phase_histogram=histogram,
        total_quarantined=sum(snap.records_quarantined for snap in snapshots),
        quarantined_chips=tuple(
            dict.fromkeys(  # registration-ordered, deduped across co-located jobs
                snap.chip for snap in snapshots if snap.chip_quarantined and snap.chip
            )
        ),
    )
