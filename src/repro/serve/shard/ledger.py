"""Per-tenant goodput/badput accounting.

*Machine Learning Fleet Efficiency with ML Productivity Goodput* frames
the fleet-level metric TPUPoint's toolchain never computed: of each
tenant's wall time, how much advanced training (goodput) and how much
was wasted, bucketed by cause (badput). This ledger implements that
accounting over the signals the serve tier already produces:

* every step the live analysis attributes to a phase is split into
  productive device time and infeed stall (the step's TPU idle time);
* non-training step kinds (init, checkpoint, shutdown) are protective
  overhead, not progress — their busy time lands in ``checkpoint``;
* quarantined records charge the wall time their steps cover to
  ``quarantine`` (the work was done, the evidence was unusable);
* the retry/backoff, recovery/replay, and tuning-trial machinery report
  their wasted time through :meth:`GoodputLedger.charge` (the fleet
  driver wires the resilient profile client's counters in).

The invariant — per tenant, ``goodput + sum(badput buckets) == total
wall time charged`` — holds by construction: every charge lands in
exactly one bucket and in the tenant's total. All times are simulated
microseconds, so reports are deterministic and diffable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.profiler.record import ProfileRecord, StepStats
from repro.errors import ServeError
from repro.obs import MetricsRegistry
from repro.runtime.events import StepKind

#: The productive bucket.
GOODPUT_BUCKET = "goodput"

#: Wasted-time buckets, by cause. Order is the canonical report order.
BADPUT_BUCKETS = (
    "infeed_stall",     # TPU idle inside productive steps (starved pipeline)
    "checkpoint",       # init/checkpoint/shutdown step time (protective overhead)
    "retry_backoff",    # resilient-client retries and backoff waits
    "recovery_replay",  # profile windows lost to faults, journal replay
    "quarantine",       # wall time covered by records the service refused
    "tuning_trials",    # steps spent measuring autotune candidates
    "sdc_scrub",        # self-test passes confirming SDC-suspect chips
)

ALL_BUCKETS = (GOODPUT_BUCKET,) + BADPUT_BUCKETS

#: Step kinds whose busy time counts as training progress.
_PRODUCTIVE_KINDS = frozenset({StepKind.TRAIN, StepKind.EVAL})


@dataclass(frozen=True)
class TenantLedger:
    """One tenant's frozen goodput/badput row."""

    job_id: str
    buckets: dict[str, float]  # bucket -> accumulated microseconds

    @property
    def goodput_us(self) -> float:
        return self.buckets.get(GOODPUT_BUCKET, 0.0)

    @property
    def badput_us(self) -> float:
        return sum(self.buckets.get(bucket, 0.0) for bucket in BADPUT_BUCKETS)

    @property
    def total_us(self) -> float:
        """All wall time charged to this tenant (goodput + badput)."""
        return self.goodput_us + self.badput_us

    @property
    def goodput_fraction(self) -> float:
        total = self.total_us
        return (self.goodput_us / total) if total > 0 else 0.0

    def format(self) -> str:
        causes = ", ".join(
            f"{bucket} {self.buckets[bucket] / 1e3:.1f}ms"
            for bucket in BADPUT_BUCKETS
            if self.buckets.get(bucket, 0.0) > 0
        )
        return (
            f"{self.job_id}: goodput {self.goodput_fraction:.1%} "
            f"({self.goodput_us / 1e3:.1f}ms of {self.total_us / 1e3:.1f}ms)"
            + (f"  badput: {causes}" if causes else "")
        )


@dataclass(frozen=True)
class GoodputReport:
    """Fleet-wide goodput rollup: one row per tenant plus totals."""

    tenants: tuple[TenantLedger, ...]

    @property
    def goodput_us(self) -> float:
        return sum(tenant.goodput_us for tenant in self.tenants)

    @property
    def badput_us(self) -> float:
        return sum(tenant.badput_us for tenant in self.tenants)

    @property
    def total_us(self) -> float:
        return self.goodput_us + self.badput_us

    @property
    def goodput_fraction(self) -> float:
        total = self.total_us
        return (self.goodput_us / total) if total > 0 else 0.0

    def bucket_us(self, bucket: str) -> float:
        return sum(tenant.buckets.get(bucket, 0.0) for tenant in self.tenants)

    def to_dict(self) -> dict:
        return {
            "goodput_fraction": self.goodput_fraction,
            "total_us": self.total_us,
            "buckets": {bucket: self.bucket_us(bucket) for bucket in ALL_BUCKETS},
            "tenants": {
                tenant.job_id: dict(tenant.buckets) for tenant in self.tenants
            },
        }

    def format(self) -> list[str]:
        lines = [
            f"fleet goodput   : {self.goodput_fraction:.1%} "
            f"({self.goodput_us / 1e3:.1f}ms of {self.total_us / 1e3:.1f}ms)"
        ]
        for bucket in BADPUT_BUCKETS:
            wasted = self.bucket_us(bucket)
            if self.total_us > 0:
                lines.append(
                    f"  badput {bucket:<15s}: {wasted / 1e3:>10.1f}ms "
                    f"({wasted / self.total_us:.1%})"
                )
        for tenant in self.tenants:
            lines.append(tenant.format())
        return lines


class GoodputLedger:
    """Accumulates per-tenant goodput/badput charges.

    Attach one ledger per fleet tier (``FleetService.attach_ledger`` or
    a :class:`~repro.serve.shard.ShardedFleet`, which owns one). Charges
    also land on a ``repro_serve_goodput_us_total{bucket}`` counter
    family so the split exports through the usual Prometheus/JSON
    exposition; the registry is per-instance, like
    :class:`~repro.serve.metrics.ServiceMetrics`.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._family = self.registry.counter(
            "repro_serve_goodput_us_total",
            "Per-cause split of fleet wall time, microseconds.",
            labels=("bucket",),
        )
        for bucket in ALL_BUCKETS:  # stable exposition: all series from zero
            self._family.labels(bucket=bucket)
        self._tenants: dict[str, dict[str, float]] = {}
        # Shard pumps run on worker-pool threads, each charging its own
        # tenants; one lock keeps the tenant table consistent.
        self._lock = threading.Lock()

    # --- charging ----------------------------------------------------------

    def charge(self, job_id: str, bucket: str, us: float) -> None:
        """Attribute ``us`` microseconds of one tenant's wall time."""
        if bucket not in ALL_BUCKETS:
            raise ServeError(
                f"unknown goodput bucket {bucket!r} (one of {ALL_BUCKETS})"
            )
        if us < 0:
            raise ServeError("goodput charges must be non-negative")
        if us == 0:
            return
        with self._lock:
            buckets = self._tenants.setdefault(job_id, {})
            buckets[bucket] = buckets.get(bucket, 0.0) + us
            self._family.labels(bucket=bucket).inc(us)

    def observe_step(self, job_id: str, step: StepStats) -> None:
        """Classify one assembled step's wall time.

        TPU idle inside the step is infeed stall; the busy remainder is
        goodput for train/eval steps and checkpoint overhead for the
        init/checkpoint/shutdown bookends. Steps with no metadata (kind
        None) are presumed productive.
        """
        elapsed = step.elapsed_us
        if elapsed <= 0:
            return
        stalled = min(max(step.tpu_idle_us, 0.0), elapsed)
        busy = elapsed - stalled
        self.charge(job_id, "infeed_stall", stalled)
        if step.kind is None or step.kind in _PRODUCTIVE_KINDS:
            self.charge(job_id, GOODPUT_BUCKET, busy)
        else:
            self.charge(job_id, "checkpoint", busy)

    def observe_quarantine(self, job_id: str, record: ProfileRecord) -> None:
        """Charge the wall time a refused record covered to quarantine."""
        covered = sum(step.elapsed_us for step in record.steps.values())
        if covered <= 0:
            covered = max(record.window_end_us - record.window_start_us, 0.0)
        self.charge(job_id, "quarantine", covered)

    def observe_fault_report(
        self,
        job_id: str,
        report: dict,
        request_interval_ms: float = 1000.0,
    ) -> None:
        """Charge one tenant's resilience overhead from its fault report.

        ``report`` is a :meth:`repro.core.profiler.Profiler.fault_report`
        dict: backoff waits spent inside the resilient client become
        ``retry_backoff``; profile windows the client skipped or
        abandoned each cost one request interval of lost coverage,
        charged to ``recovery_replay``.
        """
        client = report.get("client") or {}
        self.charge(
            job_id, "retry_backoff", float(client.get("backoff_ms_total", 0.0)) * 1e3
        )
        lost_windows = float(report.get("windows_skipped", 0)) + float(
            report.get("windows_abandoned", 0)
        )
        self.charge(
            job_id, "recovery_replay", lost_windows * request_interval_ms * 1e3
        )

    # --- reading -----------------------------------------------------------

    def tenant(self, job_id: str) -> TenantLedger:
        """One tenant's frozen row (all-zero if never charged)."""
        with self._lock:
            return TenantLedger(
                job_id=job_id, buckets=dict(self._tenants.get(job_id, {}))
            )

    def report(self) -> GoodputReport:
        """All tenants, ordered by job id for a deterministic rollup."""
        with self._lock:
            job_ids = sorted(self._tenants)
            rows = tuple(
                TenantLedger(job_id=job_id, buckets=dict(self._tenants[job_id]))
                for job_id in job_ids
            )
        return GoodputReport(tenants=rows)
