"""repro.serve.shard — the horizontally sharded fleet tier.

Tenants route to N independent :class:`~repro.serve.FleetService`
shards over a seeded consistent-hash ring; ingest batches per shard and
pumps on a worker pool; queries scatter-gather back into the exact
order a single service would report; and a fleet-wide
:class:`GoodputLedger` classifies every tenant's wall time into
productive goodput vs badput buckets. See ``docs/fleet.md``.
"""

from repro.serve.shard.ledger import (
    ALL_BUCKETS,
    BADPUT_BUCKETS,
    GOODPUT_BUCKET,
    GoodputLedger,
    GoodputReport,
    TenantLedger,
)
from repro.serve.shard.ring import DEFAULT_REPLICAS, HashRing
from repro.serve.shard.sharded import (
    DEFAULT_BATCH_SIZE,
    AggregateMetrics,
    ShardedFleet,
    ShardedFleetOptions,
)

__all__ = [
    "ALL_BUCKETS",
    "AggregateMetrics",
    "BADPUT_BUCKETS",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_REPLICAS",
    "GOODPUT_BUCKET",
    "GoodputLedger",
    "GoodputReport",
    "HashRing",
    "ShardedFleet",
    "ShardedFleetOptions",
    "TenantLedger",
]
