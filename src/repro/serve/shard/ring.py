"""Seeded consistent-hash ring for tenant-to-shard routing.

Routing must be deterministic (same tenant id, same seed, same shard
count -> same shard, on any machine, in any process) and *stable* under
resize: growing the fleet from N to M shards moves only the tenants
whose arc of the ring is claimed by the new shards' virtual nodes, not a
~(M-1)/M reshuffle like ``hash(tenant) % M`` would. Both properties come
from the same construction :mod:`repro.rng` uses for its substreams — a
SHA-256 of ``"{seed}:{token}"`` — so Python's per-process string-hash
salt never leaks into placement.

Each shard contributes ``replicas`` virtual nodes so tenant load spreads
evenly even at small shard counts; a tenant routes to the first virtual
node clockwise of its own hash point.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ShardError
from repro.rng import DEFAULT_SEED

#: Virtual nodes per shard. 64 keeps the max/mean tenant-load ratio low
#: (empirically < 1.4 at 8 shards) while the ring stays tiny.
DEFAULT_REPLICAS = 64


def _point(seed: int, token: str) -> int:
    """A stable 64-bit ring position for ``token`` under ``seed``."""
    digest = hashlib.sha256(f"{seed}:{token}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent tenant-to-shard routing, deterministic at any size."""

    def __init__(
        self,
        shards: int,
        seed: int = DEFAULT_SEED,
        replicas: int = DEFAULT_REPLICAS,
    ):
        if shards <= 0:
            raise ShardError("a hash ring needs at least one shard")
        if replicas <= 0:
            raise ShardError("replicas per shard must be positive")
        self.shards = int(shards)
        self.seed = int(seed)
        self.replicas = int(replicas)
        entries = sorted(
            (_point(self.seed, f"shard-{shard}#{replica}"), shard)
            for shard in range(self.shards)
            for replica in range(self.replicas)
        )
        self._points = [point for point, _ in entries]
        self._owners = [shard for _, shard in entries]

    def route(self, tenant_id: str) -> int:
        """The shard owning ``tenant_id`` (first virtual node clockwise)."""
        point = _point(self.seed, f"tenant-{tenant_id}")
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):  # wrap past 2^64 back to the start
            index = 0
        return self._owners[index]

    def resized(self, shards: int) -> "HashRing":
        """A ring over ``shards`` shards with the same seed and replicas.

        Shards common to both rings keep their virtual nodes at identical
        positions, so only tenants on arcs claimed by added (or vacated
        by removed) virtual nodes change owner.
        """
        return HashRing(shards, seed=self.seed, replicas=self.replicas)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HashRing(shards={self.shards}, seed={self.seed}, "
            f"replicas={self.replicas})"
        )
