"""Horizontally sharded fleet tier with scatter-gather queries.

One :class:`~repro.serve.service.FleetService` folds every tenant's
records on a single drain loop; at fleet scale (thousands of tenants)
each global pump walks every live job. :class:`ShardedFleet` splits the
fleet across N independent ``FleetService`` shards:

* tenants route to shards via a seeded consistent-hash
  :class:`~repro.serve.shard.ring.HashRing` — deterministic at any
  shard count, stable under resize;
* ingest is batched per shard; a full batch flushes through
  ``FleetService.submit_many`` and immediately pumps *that shard only*,
  so per-pump work scales with tenants-per-shard, not fleet size, and
  queue depth never exceeds the batch size (the **no-drop invariant**:
  with ``batch_size <= queue_capacity`` the sharded path never sheds a
  record, which is what makes its results bit-identical to a single
  service's);
* per-shard pumps fan out on a :class:`~repro.parallel.WorkerPool`, so
  a global drain touches shards concurrently but merges results
  deterministically;
* queries scatter to the owning shard (per-job) or to every shard
  (fleet snapshot, fleet-wide phase similarity, tuning priors) and
  gather in global registration order — the same order a single
  service would report;
* :meth:`resize` rebalances by replay: the fleet settles, every
  tenant's journaled submissions replay into fresh shards on the new
  ring, and the goodput ledger attaches only *after* replay so no
  tenant's wall time is ever double-charged.

The fleet owns one :class:`~repro.serve.shard.ledger.GoodputLedger`
shared by all shards, so goodput/badput accounting stays fleet-wide
across rebalances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.core.analyzer.streaming import StreamingAnalysis
from repro.core.optimizer.knowledge import TuningKnowledgeBase
from repro.core.profiler import codec
from repro.core.profiler.record import ProfileRecord
from repro.core.profiler.serialize import record_checksum
from repro.errors import CodecError, ServeError, ShardError, UnknownJobError
from repro.parallel import WorkerPool
from repro.serve.ingest import IngestAck
from repro.serve.live import LiveJobAnalysis
from repro.serve.query import FleetSnapshot, JobSnapshot, fleet_snapshot
from repro.serve.registry import JobInfo
from repro.serve.service import (
    FleetService,
    FleetServiceOptions,
    QuarantinedRecord,
    TuningPrior,
)
from repro.serve.shard.ledger import GoodputLedger, GoodputReport, TenantLedger
from repro.serve.shard.ring import DEFAULT_REPLICAS, HashRing
from repro.rng import DEFAULT_SEED
from repro.tpu.specs import TpuGeneration

#: Records buffered per shard before a flush + shard pump.
DEFAULT_BATCH_SIZE = 32

_SHARDS_GAUGE = obs.gauge(
    "repro_serve_shards", "Shards in the current sharded-fleet topology."
)
_SHARD_PUMPS = obs.counter(
    "repro_serve_shard_pumps_total",
    "Per-shard pump passes, by trigger (batch-full vs global drain).",
    labels=("trigger",),
)
_REBALANCED = obs.counter(
    "repro_serve_shard_rebalanced_tenants_total",
    "Tenants that changed shard across resize rebalances.",
)

#: Aggregate counter keys summed across shard ServiceMetrics (the
#: deterministic subset; query latencies stay per-shard).
_AGGREGATE_KEYS = (
    "jobs_registered",
    "jobs_completed",
    "jobs_evicted",
    "jobs_stalled",
    "jobs_resumed",
    "records_submitted",
    "records_ingested",
    "records_dropped",
    "records_quarantined",
    "steps_assembled",
    "evicted_drops",
    "evicted_quarantines",
)


@dataclass(frozen=True)
class ShardedFleetOptions:
    """Configuration of one sharded fleet.

    ``batch_size`` is clamped to the per-job queue capacity so a flush
    can never overflow a queue — the no-drop invariant the rebalance
    bit-identity guarantee rests on. ``workers`` sizes the pump pool
    (default: one worker per shard, capped at 8).
    """

    shards: int = 2
    batch_size: int = DEFAULT_BATCH_SIZE
    seed: int = DEFAULT_SEED
    replicas: int = DEFAULT_REPLICAS
    workers: int | None = None
    service: FleetServiceOptions = field(default_factory=FleetServiceOptions)

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise ShardError("a sharded fleet needs at least one shard")
        if self.batch_size <= 0:
            raise ShardError("batch_size must be positive")
        if self.workers is not None and self.workers <= 0:
            raise ShardError("workers must be positive when set")


@dataclass
class _TenantEntry:
    """The fleet-level view of one tenant: placement plus its journal.

    The journal holds every submission (record, producer checksum) in
    order — including ones the shard quarantined, since quarantine
    decisions are deterministic and must reproduce on replay.
    """

    job_id: str
    workload: str
    generation: str
    start_step: int
    sequence: int
    shard: int
    journal: list[tuple[ProfileRecord, int | None]] = field(default_factory=list)
    completed: bool = False


class ShardedFleet:
    """N independent fleet shards behind one service-shaped surface.

    Duck-typed to :class:`FleetService` where the fleet driver cares
    (``register`` / ``sink`` / ``submit`` / ``pump`` / ``complete`` /
    ``job_snapshot`` / ``fleet_snapshot`` / ``quarantined`` / ...), so
    ``run_fleet`` drives either tier unchanged.
    """

    def __init__(self, options: ShardedFleetOptions | None = None):
        self.options = options or ShardedFleetOptions()
        self.ring = HashRing(
            self.options.shards,
            seed=self.options.seed,
            replicas=self.options.replicas,
        )
        self.ledger = GoodputLedger()
        self.shards: list[FleetService] = []
        self._batches: list[list[tuple[str, ProfileRecord, int | None]]] = []
        self._knowledge: TuningKnowledgeBase | None = None
        self._build_shards(self.options.shards)
        workers = self.options.workers
        if workers is None:
            workers = min(self.options.shards, 8)
        self._pool = WorkerPool(workers, label="serve-shard")
        self._tenants: dict[str, _TenantEntry] = {}
        self._sequence = 0
        self._chips: dict[str, str] = {}  # fleet-level job -> chip
        self._quarantined_chips: dict[str, int] = {}  # deduped across shards
        # Flushes can never shed: a full batch fits the queue whole.
        self.batch_size = min(
            self.options.batch_size, self.options.service.queue_capacity
        )

    def _build_shards(self, count: int) -> None:
        self.shards = [
            FleetService(options=self.options.service) for _ in range(count)
        ]
        self._batches = [[] for _ in range(count)]
        if self._knowledge is not None:
            for service in self.shards:
                service.attach_knowledge(self._knowledge)
        for service in self.shards:
            service.attach_ledger(self.ledger)
        _SHARDS_GAUGE.labels().set(count)

    # --- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "ShardedFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop the pump pool (idempotent)."""
        self._pool.shutdown()

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    # --- tenancy -----------------------------------------------------------

    def register(
        self,
        workload: str,
        generation: TpuGeneration | str = TpuGeneration.V2,
        job_id: str | None = None,
        start_step: int = 0,
    ) -> JobInfo:
        """Admit one tenant on the shard its id hashes to.

        Default job ids use the fleet-global sequence, so a sharded
        fleet mints the same ``workload/N`` ids a single service would.
        """
        if job_id is None:
            job_id = f"{workload}/{self._sequence}"
        if job_id in self._tenants:
            raise ServeError(f"job {job_id!r} is already registered")
        shard = self.ring.route(job_id)
        info = self.shards[shard].register(
            workload, generation=generation, job_id=job_id, start_step=start_step
        )
        self._tenants[job_id] = _TenantEntry(
            job_id=job_id,
            workload=info.workload,
            generation=info.generation,
            start_step=info.start_step,
            sequence=self._sequence,
            shard=shard,
        )
        self._sequence += 1
        return info

    def _entry(self, job_id: str) -> _TenantEntry:
        entry = self._tenants.get(job_id)
        if entry is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        return entry

    def shard_of(self, job_id: str) -> int:
        """The shard currently owning ``job_id``."""
        return self._entry(job_id).shard

    def shard_tenants(self) -> list[list[str]]:
        """Tenant ids per shard, in registration order (the topology)."""
        tenants: list[list[str]] = [[] for _ in self.shards]
        for entry in sorted(self._tenants.values(), key=lambda e: e.sequence):
            tenants[entry.shard].append(entry.job_id)
        return tenants

    def sink(self, job_id: str, transit=None) -> Callable[[ProfileRecord], None]:
        """A record callback bound to one tenant (see ``FleetService.sink``).

        On the binary wire a frame that fails to decode is routed
        through the normal journaled submit path as its header-recovered
        stub with a deliberately poisoned checksum: the shard refuses
        and quarantines it like any corrupt record, the journal retains
        the refusal, and a :meth:`resize` replay reproduces the
        quarantine decision deterministically.
        """
        self._entry(job_id)
        if self.options.service.wire_format == "binary":
            sequence = iter(range(1 << 62))

            def _submit_binary(record: ProfileRecord) -> None:
                frame = codec.encode_frame(next(sequence), record)
                delivered = frame if transit is None else transit.apply_frame(frame)
                if delivered is None:
                    # Charge the wire loss to the owning shard so the
                    # aggregate submitted/dropped counters stay
                    # shard-invariant (see FleetService.sink).
                    metrics = self.shards[self._entry(job_id).shard].metrics
                    metrics.records_submitted += 1
                    metrics.record_drop(job_id, 1)
                    return
                try:
                    decoded = codec.decode_frame(delivered)
                except CodecError:
                    stub = codec.frame_stub(delivered)
                    self.submit(
                        job_id, stub, checksum=record_checksum(stub) ^ 1
                    )
                    return
                self.submit(job_id, decoded)

            return _submit_binary

        def _submit(record: ProfileRecord) -> None:
            checksum = record_checksum(record)
            delivered = record if transit is None else transit.apply(record)
            if delivered is None:
                # Charge the wire loss to the owning shard so the
                # aggregate submitted/dropped counters stay
                # shard-invariant (see FleetService.sink).
                metrics = self.shards[self._entry(job_id).shard].metrics
                metrics.records_submitted += 1
                metrics.record_drop(job_id, 1)
                return
            self.submit(job_id, delivered, checksum=checksum)

        return _submit

    # --- ingestion ---------------------------------------------------------

    def submit(
        self, job_id: str, record: ProfileRecord, checksum: int | None = None
    ) -> IngestAck | None:
        """Journal and buffer one record; a full batch pumps its shard.

        Returns the record's :class:`IngestAck` when its batch flushed
        on this call, or None while it sits buffered (``pump`` /
        ``flush`` will deliver it).
        """
        entry = self._entry(job_id)
        if entry.completed:
            raise ServeError(f"job {job_id!r} is completed; cannot ingest")
        entry.journal.append((record, checksum))
        batch = self._batches[entry.shard]
        batch.append((job_id, record, checksum))
        if len(batch) >= self.batch_size:
            acks = self._flush_shard(entry.shard)
            self.shards[entry.shard].pump()
            _SHARD_PUMPS.labels(trigger="batch").inc()
            return acks[-1]
        return None

    def _flush_shard(self, shard: int) -> list[IngestAck]:
        """Offer a shard's buffered batch, preserving per-tenant order."""
        batch = self._batches[shard]
        if not batch:
            return []
        self._batches[shard] = []
        service = self.shards[shard]
        grouped: dict[str, list[tuple[ProfileRecord, int | None]]] = {}
        for job_id, record, checksum in batch:
            grouped.setdefault(job_id, []).append((record, checksum))
        acks_by_job = {
            job_id: iter(
                service.submit_many(
                    job_id,
                    [record for record, _ in items],
                    checksums=[checksum for _, checksum in items],
                )
            )
            for job_id, items in grouped.items()
        }
        return [next(acks_by_job[job_id]) for job_id, _, _ in batch]

    def flush(self) -> int:
        """Offer every buffered batch to its shard; returns records moved."""
        moved = 0
        for shard in range(self.num_shards):
            moved += len(self._batches[shard])
            self._flush_shard(shard)
        return moved

    def pump(self, job_id: str | None = None, max_records: int | None = None) -> int:
        """Flush buffers and drain: one tenant's shard, or all shards.

        A global pump fans the per-shard drains out on the worker pool;
        the returned step count is the deterministic sum across shards.
        """
        if job_id is not None:
            entry = self._entry(job_id)
            self._flush_shard(entry.shard)
            return self.shards[entry.shard].pump(job_id, max_records)
        for shard in range(self.num_shards):
            self._flush_shard(shard)
        steps = self._pool.map(
            lambda service: service.pump(None, max_records), self.shards
        )
        _SHARD_PUMPS.labels(trigger="drain").inc(self.num_shards)
        return sum(steps)

    def complete(self, job_id: str) -> JobInfo:
        """Flush, drain, and close one tenant."""
        entry = self._entry(job_id)
        self._flush_shard(entry.shard)
        info = self.shards[entry.shard].complete(job_id)
        entry.completed = True
        return info

    def evict(self, job_id: str) -> JobInfo:
        """Discard a tenant's live state, buffered records, and journal."""
        entry = self._entry(job_id)
        self._batches[entry.shard] = [
            item for item in self._batches[entry.shard] if item[0] != job_id
        ]
        info = self.shards[entry.shard].evict(job_id)
        del self._tenants[job_id]
        self._chips.pop(job_id, None)
        return info

    # --- shared tuning knowledge -------------------------------------------

    def attach_knowledge(self, knowledge: TuningKnowledgeBase) -> None:
        """Share one tuning knowledge base across every shard."""
        self._knowledge = knowledge
        for service in self.shards:
            service.attach_knowledge(knowledge)

    # --- chip placement + quarantine ---------------------------------------

    def assign_chip(self, job_id: str, chip: str) -> None:
        """Record chip placement fleet-wide and on the owning shard."""
        entry = self._entry(job_id)
        self.shards[entry.shard].assign_chip(job_id, chip)
        self._chips[job_id] = chip

    def chip_assignments(self) -> dict[str, str]:
        """``job_id -> chip`` in fleet-global registration order."""
        return {
            entry.job_id: self._chips[entry.job_id]
            for entry in self._ordered_tenants()
            if entry.job_id in self._chips
        }

    def quarantine_chip(self, chip: str) -> list[str]:
        """Quarantine one chip on every shard hosting it.

        The fleet-level set dedupes, so the chip count — and the ledger
        charges, which land once per resident job on its single owning
        shard — are identical at any shard count. Returns the affected
        jobs in registration order.
        """
        if not chip:
            raise ServeError("chip id must be non-empty")
        if chip in self._quarantined_chips:
            return []
        self._quarantined_chips[chip] = 1
        shard_indices = sorted(
            {
                self._entry(job_id).shard
                for job_id, assigned in self._chips.items()
                if assigned == chip
            }
        )
        affected: list[str] = []
        for shard in shard_indices:
            affected.extend(self.shards[shard].quarantine_chip(chip))
        order = {entry.job_id: entry.sequence for entry in self._ordered_tenants()}
        affected.sort(key=lambda job_id: order.get(job_id, len(order)))
        return affected

    def quarantined_chips(self) -> list[str]:
        """Chips pulled from service, in quarantine order."""
        return list(self._quarantined_chips)

    def chip_quarantine_counts(self) -> dict[str, int]:
        """``chip -> quarantine count`` for every assigned chip."""
        counts = {chip: 0 for chip in dict.fromkeys(self.chip_assignments().values())}
        counts.update(self._quarantined_chips)
        return counts

    # --- per-tenant queries (route to the owning shard) --------------------

    def analysis(self, job_id: str) -> LiveJobAnalysis:
        return self.shards[self._entry(job_id).shard].analysis(job_id)

    def queue_depth(self, job_id: str) -> int:
        return self.shards[self._entry(job_id).shard].queue_depth(job_id)

    def similar_phases(
        self, job_id: str, threshold: float | None = None
    ) -> list[tuple[int, int, float]]:
        return self.shards[self._entry(job_id).shard].similar_phases(
            job_id, threshold
        )

    def phase_analysis(self, job_id: str) -> StreamingAnalysis:
        """One tenant's full streaming phase analysis (owning shard)."""
        return self.shards[self._entry(job_id).shard].phase_analysis(job_id)

    def tuning_priors(
        self, job_id: str, threshold: float | None = None, top_k: int = 8
    ) -> list[TuningPrior]:
        return self.shards[self._entry(job_id).shard].tuning_priors(
            job_id, threshold=threshold, top_k=top_k
        )

    def surrogate_pairs(
        self, job_id: str, threshold: float | None = None, top_k: int = 8
    ):
        """Fleet-shared surrogate training pairs for one tenant (owning shard)."""
        return self.shards[self._entry(job_id).shard].surrogate_pairs(
            job_id, threshold=threshold, top_k=top_k
        )

    def job_snapshot(self, job_id: str) -> JobSnapshot:
        return self.shards[self._entry(job_id).shard].job_snapshot(job_id)

    # --- scatter-gather queries --------------------------------------------

    def _ordered_tenants(self) -> list[_TenantEntry]:
        return sorted(self._tenants.values(), key=lambda entry: entry.sequence)

    def fleet_snapshot(self) -> FleetSnapshot:
        """Scatter to every shard, gather in global registration order.

        The merged rollup is recomputed from the gathered job snapshots
        with the same pure function a single service uses, so the result
        is bit-identical to the unsharded fleet's.
        """
        with obs.trace("serve.shard.fleet_snapshot", shards=self.num_shards):
            shard_snaps = self._pool.map(
                lambda service: service.fleet_snapshot(), self.shards
            )
            by_job = {
                snap.job_id: snap for shard in shard_snaps for snap in shard.jobs
            }
            ordered = [
                by_job[entry.job_id]
                for entry in self._ordered_tenants()
                if entry.job_id in by_job
            ]
            return fleet_snapshot(ordered)

    def fleet_similar_phases(
        self, threshold: float | None = None
    ) -> list[tuple[str, int, int, float]]:
        """Every tenant's near-duplicate phase pairs, fleet-wide.

        Scatters per tenant to the owning shard; rows come back as
        ``(job_id, phase_a, phase_b, distance)`` in registration order.
        """
        tenants = self._ordered_tenants()
        gathered = self._pool.map(
            lambda entry: self.shards[entry.shard].similar_phases(
                entry.job_id, threshold
            ),
            tenants,
        )
        return [
            (entry.job_id, a, b, distance)
            for entry, pairs in zip(tenants, gathered)
            for a, b, distance in pairs
        ]

    def fleet_tuning_priors(
        self, threshold: float | None = None, top_k: int = 8
    ) -> list[TuningPrior]:
        """Warm-start priors for every tenant, best matches first.

        Gathered rows sort by similarity (descending), then by tenant
        registration order, then phase id — fully deterministic.
        """
        tenants = self._ordered_tenants()
        gathered = self._pool.map(
            lambda entry: self.shards[entry.shard].tuning_priors(
                entry.job_id, threshold=threshold, top_k=top_k
            ),
            tenants,
        )
        order = {entry.job_id: entry.sequence for entry in tenants}
        priors = [prior for found in gathered for prior in found]
        priors.sort(
            key=lambda prior: (
                -prior.similarity,
                order[prior.job_id],
                prior.phase_id,
            )
        )
        return priors

    def quarantined(self, job_id: str | None = None) -> list[QuarantinedRecord]:
        """Refused records across shards, in tenant registration order."""
        if job_id is not None:
            return self.shards[self._entry(job_id).shard].quarantined(job_id)
        found = [entry for shard in self.shards for entry in shard.quarantined()]
        order = {job_id: entry.sequence for job_id, entry in self._tenants.items()}
        # Stable sort by tenant order keeps each shard's intra-tenant
        # submission order; quarantines of since-evicted tenants sort last.
        found.sort(key=lambda q: (order.get(q.job_id, len(order)), q.job_id))
        return found

    # --- health ------------------------------------------------------------

    def live_analyses(self) -> list[tuple[str, LiveJobAnalysis]]:
        """``(job_id, analysis)`` per live tenant, in registration order.

        Gathers from the owning shards but orders by the fleet-global
        sequence — the same order a single service reports — so the
        health monitor's drift series are shard-count invariant.
        """
        found: list[tuple[str, LiveJobAnalysis]] = []
        for entry in self._ordered_tenants():
            if entry.completed:
                continue
            try:
                found.append((entry.job_id, self.analysis(entry.job_id)))
            except ServeError:
                continue  # evicted mid-walk
        return found

    def health_targets(self) -> list[tuple[str, object]]:
        """``(label, ServiceMetrics)`` scrape targets, one per shard."""
        return [
            (f"shard-{index}", service.metrics)
            for index, service in enumerate(self.shards)
        ]

    # --- goodput -----------------------------------------------------------

    def goodput_report(self) -> GoodputReport:
        """The fleet-wide goodput/badput rollup."""
        return self.ledger.report()

    def goodput(self, job_id: str) -> TenantLedger:
        """One tenant's goodput/badput row."""
        self._entry(job_id)
        return self.ledger.tenant(job_id)

    # --- metrics -----------------------------------------------------------

    @property
    def metrics(self) -> "AggregateMetrics":
        """Counters summed across every shard's ServiceMetrics."""
        return AggregateMetrics(self)

    @property
    def registries(self) -> list:
        """Every exposition registry this fleet feeds (ledger + shards)."""
        return [self.ledger.registry] + [
            service.metrics.registry for service in self.shards
        ]

    # --- rebalance ---------------------------------------------------------

    def resize(self, shards: int) -> int:
        """Re-shard the fleet by journal replay; returns tenants moved.

        The fleet settles (flush + full drain), every tenant re-registers
        on the shard the resized ring assigns it, and its journal replays
        in batch-sized chunks with a pump after each — reproducing queue
        counters, quarantine decisions, and analyses bit-for-bit. The
        shared ledger attaches to the fresh shards only *after* replay,
        so no step or quarantine is charged twice. Completed tenants are
        re-completed; stalled tenants resume ACTIVE (heartbeat clocks
        restart from zero on the new shards).
        """
        if shards == self.num_shards:
            return 0
        with obs.trace(
            "serve.shard.resize", shards_from=self.num_shards, shards_to=shards
        ):
            self.pump()  # settle: nothing buffered, nothing queued
            ring = self.ring.resized(shards)
            services = [
                FleetService(options=self.options.service) for _ in range(shards)
            ]
            if self._knowledge is not None:
                for service in services:
                    service.attach_knowledge(self._knowledge)
            moved = 0
            for entry in self._ordered_tenants():
                target = ring.route(entry.job_id)
                if target != entry.shard:
                    moved += 1
                service = services[target]
                service.register(
                    entry.workload,
                    generation=entry.generation,
                    job_id=entry.job_id,
                    start_step=entry.start_step,
                )
                for start in range(0, len(entry.journal), self.batch_size):
                    chunk = entry.journal[start : start + self.batch_size]
                    service.submit_many(
                        entry.job_id,
                        [record for record, _ in chunk],
                        checksums=[checksum for _, checksum in chunk],
                    )
                    service.pump(entry.job_id)
                if entry.completed:
                    service.complete(entry.job_id)
                entry.shard = target
            # Re-apply chip placements and quarantines before the ledger
            # attaches: the original quarantine already charged each
            # resident job's sdc_scrub cost, and a ledger-less shard
            # records the quarantine without re-charging it.
            for job_id, chip in self._chips.items():
                entry = self._tenants[job_id]
                services[entry.shard].assign_chip(job_id, chip)
            for chip in self._quarantined_chips:
                shard_indices = sorted(
                    {
                        self._tenants[job_id].shard
                        for job_id, assigned in self._chips.items()
                        if assigned == chip
                    }
                )
                for shard in shard_indices:
                    services[shard].quarantine_chip(chip)
            # Attach the ledger only now: replayed steps must not
            # re-charge goodput the original ingest already recorded.
            for service in services:
                service.attach_ledger(self.ledger)
            self.shards = services
            self.ring = ring
            self._batches = [[] for _ in range(shards)]
            _SHARDS_GAUGE.labels().set(shards)
            _REBALANCED.labels().inc(moved)
            return moved


class AggregateMetrics:
    """A read-only, deterministic sum over the shard ServiceMetrics.

    Duck-typed to the counters the CLI and fleet driver read
    (``records_quarantined``, ``records_dropped``, ...); recomputed on
    every attribute access so it is always current.
    """

    def __init__(self, fleet: ShardedFleet):
        self._fleet = fleet

    def __getattr__(self, name: str):
        if name in _AGGREGATE_KEYS:
            return sum(
                getattr(service.metrics, name) for service in self._fleet.shards
            )
        raise AttributeError(name)

    @property
    def drop_fraction(self) -> float:
        submitted = self.records_submitted
        return (self.records_dropped / submitted) if submitted else 0.0

    @property
    def chips_quarantined(self) -> int:
        """Distinct quarantined chips, fleet-wide.

        Deliberately not summed from the shard counters: a chip hosting
        jobs on several shards increments each shard's counter, so the
        sum would vary with shard count. The fleet-level dedup map is
        the shard-invariant truth.
        """
        return len(self._fleet._quarantined_chips)

    @property
    def dropped_by_job(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for service in self._fleet.shards:
            merged.update(service.metrics.dropped_by_job)
        return merged

    @property
    def quarantined_by_job(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for service in self._fleet.shards:
            merged.update(service.metrics.quarantined_by_job)
        return merged

    def to_dict(self) -> dict:
        snap = {key: getattr(self, key) for key in _AGGREGATE_KEYS}
        snap["drop_fraction"] = self.drop_fraction
        snap["chips_quarantined"] = self.chips_quarantined
        snap["dropped_by_job"] = self.dropped_by_job
        snap["quarantined_by_job"] = self.quarantined_by_job
        snap["shards"] = self._fleet.num_shards
        return snap

    def format(self) -> list[str]:
        """Deterministic counter lines (the sharded CLI metrics block)."""
        snap = self.to_dict()
        return [
            f"shards                            : {snap['shards']}",
            f"jobs registered/completed/evicted : "
            f"{snap['jobs_registered']}/{snap['jobs_completed']}/{snap['jobs_evicted']}",
            f"records submitted/ingested/dropped: "
            f"{snap['records_submitted']}/{snap['records_ingested']}/{snap['records_dropped']}"
            f" ({snap['drop_fraction']:.1%} shed)",
            f"records quarantined               : {snap['records_quarantined']} "
            f"(jobs stalled {snap['jobs_stalled']}, resumed {snap['jobs_resumed']})",
            f"steps assembled                   : {snap['steps_assembled']}",
            f"evicted-job dropped records       : {snap['evicted_drops']}",
        ]
