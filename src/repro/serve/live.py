"""Incremental per-job analysis state.

Folds completed steps into the online linear scan as records arrive and
maintains running phase tables, operator totals, and idle/MXU aggregates
— the live counterpart of :class:`~repro.core.analyzer.analyzer.TPUPointAnalyzer`.
The same statistical-summary discipline as the paper's recorder applies:
raw :class:`StepStats` are folded into per-phase accumulators and
discarded, so a job's live state is O(phases x operator vocabulary)
regardless of run length, and queries read the accumulators directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.analyzer.distance import pairwise_distances
from repro.core.analyzer.ols import DEFAULT_SIMILARITY_THRESHOLD, OnlineLinearScan
from repro.core.analyzer.streaming import StreamingAnalysis, StreamingAnalyzer
from repro.core.profiler.record import OperatorStats, ProfileRecord, StepStats
from repro.core.profiler.streaming import StepStream
from repro.errors import ServeError
from repro.runtime.events import DeviceKind

#: Default cutoff for :meth:`LiveJobAnalysis.similar_phase_pairs`: two
#: phases whose operator-mix vectors (unit-normalized duration shares)
#: are closer than this are reported as near-duplicates. The maximum
#: possible distance between two such vectors is sqrt(2) (disjoint
#: operator sets), so 0.25 means "mostly the same mix".
DEFAULT_PHASE_MERGE_DISTANCE = 0.25


@dataclass
class LivePhase:
    """Running accumulator for one detected phase."""

    phase_id: int
    num_steps: int = 0
    first_step: int = -1
    last_step: int = -1
    duration_us: float = 0.0
    tpu_idle_us: float = 0.0
    mxu_flops: float = 0.0
    operators: dict[tuple[str, str], OperatorStats] = field(default_factory=dict)

    def fold(self, step: StepStats) -> None:
        """Accumulate one completed step; the step is not retained."""
        if self.num_steps == 0:
            self.first_step = step.step
        self.num_steps += 1
        self.last_step = step.step
        self.duration_us += step.elapsed_us
        self.tpu_idle_us += step.tpu_idle_us
        self.mxu_flops += step.mxu_flops
        for key, stats in step.operators.items():
            existing = self.operators.get(key)
            if existing is None:
                self.operators[key] = OperatorStats(
                    name=stats.name,
                    device=stats.device,
                    count=stats.count,
                    total_duration_us=stats.total_duration_us,
                )
            else:
                existing.merge(stats)

    @property
    def idle_fraction(self) -> float:
        if self.duration_us <= 0:
            return 0.0
        return min(self.tpu_idle_us / self.duration_us, 1.0)

    def top_operators(
        self, k: int = 5, device: DeviceKind | None = None
    ) -> list[OperatorStats]:
        """The k most time-consuming operators folded into this phase."""
        totals = [
            stats
            for stats in self.operators.values()
            if device is None or stats.device is device
        ]
        totals.sort(key=lambda stats: -stats.total_duration_us)
        return totals[:k]


@dataclass
class LiveJobAnalysis:
    """All live analysis state for one job."""

    threshold: float = DEFAULT_SIMILARITY_THRESHOLD
    peak_flops: float = 0.0
    _stream: StepStream = field(default_factory=StepStream)
    _scanner: OnlineLinearScan | None = None
    phases: dict[int, LivePhase] = field(default_factory=dict)
    steps_seen: int = 0
    records_seen: int = 0
    total_duration_us: float = 0.0
    tpu_idle_us: float = 0.0
    mxu_flops: float = 0.0
    _step_numbers: list[int] = field(default_factory=list)
    #: The streaming clustering analyzer riding alongside the online
    #: linear scan: every folded step also feeds its signature table and
    #: mini-batch centroids, so :meth:`phase_analysis` can answer a
    #: *full* PCA'd cluster analysis mid-run, not just OLS labels.
    streaming: StreamingAnalyzer = field(default_factory=StreamingAnalyzer)
    finished: bool = False
    #: Invoked with each step the moment it is attributed to a phase.
    #: The goodput ledger hangs off this; replayed analyses leave it unset
    #: so a rebalance never double-charges a tenant.
    on_step: Callable[[StepStats], None] | None = None

    def __post_init__(self) -> None:
        if self._scanner is None:
            self._scanner = OnlineLinearScan(threshold=self.threshold)

    # --- folding -----------------------------------------------------------

    def ingest(self, record: ProfileRecord) -> int:
        """Fold one record in; returns the number of steps completed by it."""
        if self.finished:
            raise ServeError("job analysis already finished")
        self.records_seen += 1
        folded = 0
        for step in self._stream.submit(record):
            self._fold(step)
            folded += 1
        self.streaming.end_window()
        return folded

    def finish(self) -> int:
        """Flush the step stream (end of run); returns steps released."""
        if self.finished:
            return 0
        folded = 0
        for step in self._stream.flush():
            self._fold(step)
            folded += 1
        self.streaming.end_window()
        self.finished = True
        return folded

    def _fold(self, step: StepStats) -> None:
        self.streaming.fold_step(step)
        label = self._scanner.observe(step)
        phase = self.phases.get(label)
        if phase is None:
            phase = LivePhase(phase_id=label)
            self.phases[label] = phase
        phase.fold(step)
        self.steps_seen += 1
        self.total_duration_us += step.elapsed_us
        self.tpu_idle_us += step.tpu_idle_us
        self.mxu_flops += step.mxu_flops
        self._step_numbers.append(step.step)
        if self.on_step is not None:
            self.on_step(step)

    # --- live queries ------------------------------------------------------

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def pending_steps(self) -> int:
        """Steps withheld by the assembler (not yet attributed to a phase)."""
        return self._stream.pending_steps

    @property
    def labels(self) -> list[int]:
        """Phase label per folded step, in step order (parity surface)."""
        return list(self._scanner.labels)

    @property
    def phase_labels(self) -> dict[int, int]:
        """Step number -> phase label for every folded step."""
        return dict(zip(self._step_numbers, self._scanner.labels))

    @property
    def idle_fraction(self) -> float:
        """Running TPU idle fraction over all folded steps."""
        if self.total_duration_us <= 0:
            return 0.0
        return min(self.tpu_idle_us / self.total_duration_us, 1.0)

    @property
    def mxu_utilization(self) -> float:
        """Running MXU utilization against the job's chip peak."""
        if self.total_duration_us <= 0 or self.peak_flops <= 0:
            return 0.0
        achieved = self.mxu_flops / (self.total_duration_us / 1e6)
        return min(achieved / self.peak_flops, 1.0)

    def coverage(self, n: int = 3) -> float:
        """Fraction of folded execution time in the n longest phases."""
        if self.total_duration_us <= 0:
            return 0.0
        durations = sorted(
            (phase.duration_us for phase in self.phases.values()), reverse=True
        )
        return min(sum(durations[:n]) / self.total_duration_us, 1.0)

    def phases_by_duration(self) -> list[LivePhase]:
        """Phases ordered by descending accumulated duration."""
        return sorted(self.phases.values(), key=lambda phase: -phase.duration_us)

    def phase_analysis(self) -> StreamingAnalysis:
        """A full streaming phase analysis of everything folded so far.

        PCA'd cluster labels, per-phase tables, and phase boundaries —
        the live counterpart of ``TPUPointAnalyzer.kmeans_phases()``;
        under the streaming analyzer's default (exact) mode the labels
        are bit-identical to what the batch analyzer would produce over
        the same released steps. Non-destructive: folding continues
        afterwards and a later call reflects the longer run.
        """
        return self.streaming.analyze()

    # --- phase similarity (shared distance kernel) -------------------------

    def phase_vectors(self) -> tuple[list[int], np.ndarray]:
        """Per-phase operator-mix vectors over the job's shared vocabulary.

        Each row is a phase's operator duration shares (fractions of the
        phase's total operator time), aligned to the sorted union of
        operator keys across all phases — the live counterpart of the
        offline analyzer's duration-frequency feature rows.
        """
        ids = sorted(self.phases)
        vocabulary = sorted({key for pid in ids for key in self.phases[pid].operators})
        column = {key: i for i, key in enumerate(vocabulary)}
        vectors = np.zeros((len(ids), max(len(vocabulary), 1)))
        for row, pid in enumerate(ids):
            operators = self.phases[pid].operators
            total = sum(stats.total_duration_us for stats in operators.values())
            if total <= 0:
                continue
            for key, stats in operators.items():
                vectors[row, column[key]] = stats.total_duration_us / total
        return ids, vectors

    def phase_distance_matrix(self) -> tuple[list[int], np.ndarray]:
        """Pairwise Euclidean distances between phase operator mixes.

        Computed by the analyzer's blocked distance kernel, so a job with
        many phases never materializes an O(phases^2 x vocabulary)
        broadcast intermediate.
        """
        ids, vectors = self.phase_vectors()
        return ids, pairwise_distances(vectors)

    def similar_phase_pairs(
        self, threshold: float = DEFAULT_PHASE_MERGE_DISTANCE
    ) -> list[tuple[int, int, float]]:
        """Phase-id pairs whose operator mixes are within ``threshold``.

        Returned as ``(phase_a, phase_b, distance)`` sorted by ascending
        distance — the live signal that the online scan split one logical
        phase (e.g. training steps around an eval interruption) that the
        offline clustering would merge.
        """
        if threshold < 0:
            raise ServeError("phase similarity threshold must be non-negative")
        ids, distances = self.phase_distance_matrix()
        pairs = [
            (ids[i], ids[j], float(distances[i, j]))
            for i in range(len(ids))
            for j in range(i + 1, len(ids))
            if distances[i, j] <= threshold
        ]
        pairs.sort(key=lambda pair: pair[2])
        return pairs
