"""Service observability counters and gauges.

The fleet service profiles other programs; these metrics make the
service itself observable — ingestion volume, shed load, assembly
progress, and query latency — in the spirit of the paper's own
profiler-overhead accounting (Section V).

Since the :mod:`repro.obs` layer landed, :class:`ServiceMetrics` is a
facade over a :class:`~repro.obs.MetricsRegistry`: every counter is
backed by a ``repro_serve_*`` family, so the same numbers export as
Prometheus text or JSON (``tpupoint fleet --metrics-out``) while the
original attribute API (``metrics.jobs_registered``, ``+=`` included)
keeps working. Each instance owns its registry, so concurrent services
in one process never mix counts. Query latency is real wall time from
:func:`time.perf_counter`, the one deliberately non-deterministic
measurement here.

Per-job drop counts stay bounded: when a job is evicted,
:meth:`record_eviction` folds its entry into the ``evicted_drops``
total instead of retaining per-job keys forever.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.obs import MetricsRegistry

#: Snapshot queries are in-process dictionary assembly: microseconds to
#: low milliseconds.
_QUERY_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)

_JOB_EVENTS = ("registered", "completed", "evicted", "stalled", "resumed")
_RECORD_EVENTS = ("submitted", "ingested", "dropped", "quarantined")


def _counter_property(family_attr: str, event: str):
    """An int-like read/write property over one labeled counter child."""

    def getter(self) -> int:
        return int(getattr(self, family_attr).labels(event=event).value)

    def setter(self, value: int) -> None:
        child = getattr(self, family_attr).labels(event=event)
        child.inc(value - child.value)  # negative deltas raise: counters go up

    return property(getter, setter)


class ServiceMetrics:
    """Counters/gauges for one fleet service instance."""

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._jobs = self.registry.counter(
            "repro_serve_jobs_total", "Job lifecycle events.", labels=("event",)
        )
        self._records = self.registry.counter(
            "repro_serve_records_total", "Record ingestion events.", labels=("event",)
        )
        self._job_drops = self.registry.counter(
            "repro_serve_job_dropped_records_total",
            "Records shed from one live job's queue.",
            labels=("job",),
        )
        self._evicted_drops = self.registry.counter(
            "repro_serve_evicted_dropped_records_total",
            "Shed-record counts folded in from evicted jobs.",
        ).labels()
        self._job_quarantines = self.registry.counter(
            "repro_serve_job_quarantined_records_total",
            "Records quarantined from one live job's stream.",
            labels=("job",),
        )
        self._evicted_quarantines = self.registry.counter(
            "repro_serve_evicted_quarantined_records_total",
            "Quarantined-record counts folded in from evicted jobs.",
        ).labels()
        self._steps = self.registry.counter(
            "repro_serve_steps_assembled_total",
            "Steps assembled from ingested records.",
        ).labels()
        self._chip_quarantines = self.registry.counter(
            "repro_serve_chips_quarantined_total",
            "Chips pulled from service as SDC suspects.",
        ).labels()
        self._query = self.registry.histogram(
            "repro_serve_query_seconds",
            "Snapshot query latency.",
            buckets=_QUERY_BUCKETS,
        ).labels()
        # Zero-value samples for every known label keep exposition stable
        # (a fresh service exposes jobs_total{event="registered"} 0, not
        # a missing series).
        for event in _JOB_EVENTS:
            self._jobs.labels(event=event)
        for event in _RECORD_EVENTS:
            self._records.labels(event=event)

    # --- the original attribute API ----------------------------------------

    jobs_registered = _counter_property("_jobs", "registered")
    jobs_completed = _counter_property("_jobs", "completed")
    jobs_evicted = _counter_property("_jobs", "evicted")
    jobs_stalled = _counter_property("_jobs", "stalled")
    jobs_resumed = _counter_property("_jobs", "resumed")
    records_submitted = _counter_property("_records", "submitted")
    records_ingested = _counter_property("_records", "ingested")
    records_dropped = _counter_property("_records", "dropped")
    records_quarantined = _counter_property("_records", "quarantined")

    @property
    def steps_assembled(self) -> int:
        return int(self._steps.value)

    @steps_assembled.setter
    def steps_assembled(self, value: int) -> None:
        self._steps.inc(value - self._steps.value)

    @property
    def chips_quarantined(self) -> int:
        return int(self._chip_quarantines.value)

    @chips_quarantined.setter
    def chips_quarantined(self, value: int) -> None:
        self._chip_quarantines.inc(value - self._chip_quarantines.value)

    @property
    def dropped_by_job(self) -> dict[str, int]:
        """Shed counts per *live* job (evicted jobs fold into a total)."""
        return {
            child.label_values["job"]: int(child.value)
            for child in self._job_drops.children()
        }

    @property
    def evicted_drops(self) -> int:
        """Shed records attributed to jobs since evicted."""
        return int(self._evicted_drops.value)

    @property
    def quarantined_by_job(self) -> dict[str, int]:
        """Quarantine counts per *live* job (evicted jobs fold into a total)."""
        return {
            child.label_values["job"]: int(child.value)
            for child in self._job_quarantines.children()
        }

    @property
    def evicted_quarantines(self) -> int:
        """Quarantined records attributed to jobs since evicted."""
        return int(self._evicted_quarantines.value)

    @property
    def queries_served(self) -> int:
        return self._query.count

    @property
    def query_seconds_total(self) -> float:
        return self._query.sum

    @property
    def query_seconds_max(self) -> float:
        return self._query.max

    # --- recording ---------------------------------------------------------

    def record_drop(self, job_id: str, count: int) -> None:
        """Count records shed by one job's queue."""
        if count <= 0:
            return
        self.records_dropped += count
        self._job_drops.labels(job=job_id).inc(count)

    def record_quarantine(self, job_id: str, count: int = 1) -> None:
        """Count records quarantined from one job's stream."""
        if count <= 0:
            return
        self.records_quarantined += count
        self._job_quarantines.labels(job=job_id).inc(count)

    def record_eviction(self, job_id: str) -> None:
        """Fold an evicted job's per-tenant counts into bounded totals.

        Keeps the per-job series from growing without bound as tenants
        churn: the job's labeled drop and quarantine counters are removed
        and their values land in ``evicted_drops`` / ``evicted_quarantines``
        (the fleet-wide ``records_dropped`` / ``records_quarantined``
        totals already include them).
        """
        child = self._job_drops.remove(job=job_id)
        if child is not None and child.value > 0:
            self._evicted_drops.inc(child.value)
        child = self._job_quarantines.remove(job=job_id)
        if child is not None and child.value > 0:
            self._evicted_quarantines.inc(child.value)

    @contextmanager
    def time_query(self):
        """Measure one snapshot query's latency."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._query.observe(time.perf_counter() - start)

    # --- reading -----------------------------------------------------------

    @property
    def drop_fraction(self) -> float:
        """Fraction of submitted records shed before analysis."""
        if self.records_submitted == 0:
            return 0.0
        return self.records_dropped / self.records_submitted

    @property
    def mean_query_seconds(self) -> float:
        return self._query.mean

    def to_dict(self) -> dict:
        """The snapshot every render path shares (one source of truth).

        :meth:`format`, the ``tpupoint fleet`` output, and the registry
        exposition all derive from these counters, so the CLI can never
        drift from what ``--metrics-out`` exports.
        """
        return {
            "jobs_registered": self.jobs_registered,
            "jobs_completed": self.jobs_completed,
            "jobs_evicted": self.jobs_evicted,
            "jobs_stalled": self.jobs_stalled,
            "jobs_resumed": self.jobs_resumed,
            "records_submitted": self.records_submitted,
            "records_ingested": self.records_ingested,
            "records_dropped": self.records_dropped,
            "records_quarantined": self.records_quarantined,
            "drop_fraction": self.drop_fraction,
            "steps_assembled": self.steps_assembled,
            "chips_quarantined": self.chips_quarantined,
            "queries_served": self.queries_served,
            "query_seconds_total": self.query_seconds_total,
            "query_seconds_mean": self.mean_query_seconds,
            "query_seconds_max": self.query_seconds_max,
            "dropped_by_job": self.dropped_by_job,
            "evicted_drops": self.evicted_drops,
            "quarantined_by_job": self.quarantined_by_job,
            "evicted_quarantines": self.evicted_quarantines,
        }

    def format(self) -> list[str]:
        """Human-readable counter lines (the CLI's metrics block)."""
        snap = self.to_dict()
        return [
            f"jobs registered/completed/evicted : "
            f"{snap['jobs_registered']}/{snap['jobs_completed']}/{snap['jobs_evicted']}",
            f"records submitted/ingested/dropped: "
            f"{snap['records_submitted']}/{snap['records_ingested']}/{snap['records_dropped']}"
            f" ({snap['drop_fraction']:.1%} shed)",
            f"records quarantined               : {snap['records_quarantined']} "
            f"(jobs stalled {snap['jobs_stalled']}, resumed {snap['jobs_resumed']})",
            f"steps assembled                   : {snap['steps_assembled']}",
            f"queries served                    : {snap['queries_served']} "
            f"(mean {snap['query_seconds_mean'] * 1e6:.0f} us, "
            f"max {snap['query_seconds_max'] * 1e6:.0f} us)",
            f"evicted-job dropped records       : {snap['evicted_drops']}",
        ]
