"""Service observability counters and gauges.

The fleet service profiles other programs; these metrics make the
service itself observable — ingestion volume, shed load, assembly
progress, and query latency — in the spirit of the paper's own
profiler-overhead accounting (Section V). Counters are plain integers
(the simulation is single-threaded); query latency is real wall time
from :func:`time.perf_counter`, the one deliberately non-deterministic
measurement here.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class ServiceMetrics:
    """Counters/gauges for one fleet service instance."""

    jobs_registered: int = 0
    jobs_completed: int = 0
    jobs_evicted: int = 0
    records_submitted: int = 0
    records_dropped: int = 0
    records_ingested: int = 0
    steps_assembled: int = 0
    queries_served: int = 0
    query_seconds_total: float = 0.0
    query_seconds_max: float = 0.0
    dropped_by_job: dict[str, int] = field(default_factory=dict)

    # --- recording ---------------------------------------------------------

    def record_drop(self, job_id: str, count: int) -> None:
        """Count records shed by one job's queue."""
        if count <= 0:
            return
        self.records_dropped += count
        self.dropped_by_job[job_id] = self.dropped_by_job.get(job_id, 0) + count

    @contextmanager
    def time_query(self):
        """Measure one snapshot query's latency."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.queries_served += 1
            self.query_seconds_total += elapsed
            self.query_seconds_max = max(self.query_seconds_max, elapsed)

    # --- reading -----------------------------------------------------------

    @property
    def drop_fraction(self) -> float:
        """Fraction of submitted records shed before analysis."""
        if self.records_submitted == 0:
            return 0.0
        return self.records_dropped / self.records_submitted

    @property
    def mean_query_seconds(self) -> float:
        if self.queries_served == 0:
            return 0.0
        return self.query_seconds_total / self.queries_served

    def format(self) -> list[str]:
        """Human-readable counter lines (the CLI's metrics block)."""
        return [
            f"jobs registered/completed/evicted : "
            f"{self.jobs_registered}/{self.jobs_completed}/{self.jobs_evicted}",
            f"records submitted/ingested/dropped: "
            f"{self.records_submitted}/{self.records_ingested}/{self.records_dropped}"
            f" ({self.drop_fraction:.1%} shed)",
            f"steps assembled                   : {self.steps_assembled}",
            f"queries served                    : {self.queries_served} "
            f"(mean {self.mean_query_seconds * 1e6:.0f} us, "
            f"max {self.query_seconds_max * 1e6:.0f} us)",
        ]
