"""The multi-tenant fleet profiling service.

:class:`FleetService` ties the pieces together: the job registry
(lifecycle + metadata), one bounded ingest queue and one live analysis
state per job, service-level metrics, and the snapshot query surface.
Producers push :class:`ProfileRecord` streams in; a cooperative drain
loop (:meth:`pump`) feeds each job's step assembler and folds completed
steps into the online linear scan — so per-job phases and fleet rollups
are answerable *while runs are in flight*, unlike the offline analyzer
which requires the run to have ended.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Sequence

from repro import obs
from repro.core.analyzer.ols import DEFAULT_SIMILARITY_THRESHOLD
from repro.core.analyzer.streaming import StreamingAnalysis
from repro.core.optimizer.knowledge import TuningKnowledgeBase
from repro.core.optimizer.surrogate import TrainingPair, dedup_pairs
from repro.core.profiler import codec
from repro.core.profiler.record import ProfileRecord
from repro.core.profiler.serialize import record_checksum
from repro.errors import CodecError, OptimizerError, ProfilerError, ServeError
from repro.serve.ingest import (
    DEFAULT_QUEUE_CAPACITY,
    IngestAck,
    IngestQueue,
    validate_record,
)
from repro.serve.live import LiveJobAnalysis
from repro.serve.metrics import ServiceMetrics
from repro.serve.query import FleetSnapshot, JobSnapshot, fleet_snapshot, job_snapshot
from repro.serve.registry import JobInfo, JobRegistry, JobState
from repro.tpu.sdc import scrub_cost_us
from repro.tpu.specs import TpuGeneration


@dataclass(frozen=True)
class QuarantinedRecord:
    """One record the service refused, and why."""

    job_id: str
    record: ProfileRecord
    reason: str


@dataclass(frozen=True)
class TuningPrior:
    """One knowledge-base configuration matched to a live job's phase.

    The fleet counterpart of the autotuner's warm start: a tenant asks
    which stored best-configurations look like the phases its job is
    executing *right now*, and seeds its own search from the closest
    one. The prior carries the evidence (similarity, improvement, trial
    count, source workload) so the consumer can apply its own bar.
    """

    job_id: str
    phase_id: int
    similarity: float
    config: dict[str, object]
    improvement: float
    trials: int
    workload: str


@dataclass(frozen=True)
class FleetServiceOptions:
    """Configuration of one fleet service instance.

    ``heartbeat_deadline`` is counted in global pump ticks: an ACTIVE
    job that contributes no accepted record for that many consecutive
    ``pump()`` rounds is parked in STALLED (None disables stall
    detection). ``quarantine_capacity`` bounds how many refused records
    are retained for inspection — the count is unbounded, the evidence
    is a ring buffer.

    ``wire_format`` selects the producer→service encoding that
    :meth:`FleetService.sink` models: ``"binary"`` (default) ships each
    record as one CRC-framed columnar block
    (:mod:`repro.core.profiler.codec`) and skips the per-record JSON
    checksum — the frame CRC is the integrity check; ``"json"`` is the
    legacy object wire with the canonical-JSON checksum.
    """

    queue_capacity: int = DEFAULT_QUEUE_CAPACITY
    threshold: float = DEFAULT_SIMILARITY_THRESHOLD
    max_jobs: int | None = None
    snapshot_phases: int = 5
    snapshot_operators: int = 3
    heartbeat_deadline: int | None = None
    quarantine_capacity: int = 32
    wire_format: str = "binary"

    def __post_init__(self) -> None:
        if self.heartbeat_deadline is not None and self.heartbeat_deadline <= 0:
            raise ServeError("heartbeat_deadline must be positive when set")
        if self.quarantine_capacity <= 0:
            raise ServeError("quarantine_capacity must be positive")
        if self.wire_format not in ("binary", "json"):
            raise ServeError(
                f"unknown wire_format {self.wire_format!r}; use binary or json"
            )


@dataclass
class FleetService:
    """Ingestion + live analysis for many concurrent training jobs."""

    options: FleetServiceOptions = field(default_factory=FleetServiceOptions)
    metrics: ServiceMetrics = field(default_factory=ServiceMetrics)

    def __post_init__(self) -> None:
        self.registry = JobRegistry(max_jobs=self.options.max_jobs)
        self._queues: dict[str, IngestQueue] = {}
        self._analyses: dict[str, LiveJobAnalysis] = {}
        self._quarantine: deque[QuarantinedRecord] = deque(
            maxlen=self.options.quarantine_capacity
        )
        self._tick = 0
        self._last_accept_tick: dict[str, int] = {}
        self._knowledge: TuningKnowledgeBase | None = None
        self._ledger = None
        self._chips: dict[str, str] = {}  # job_id -> chip, registration order
        self._quarantined_chips: dict[str, int] = {}  # chip -> quarantine count

    # --- shared tuning knowledge -------------------------------------------

    def attach_knowledge(self, knowledge: TuningKnowledgeBase) -> None:
        """Share one tuning knowledge base across every tenant.

        Priors flow both ways conceptually — tenants query stored best
        configurations via :meth:`tuning_priors`, and their own finished
        searches land in the same base through the autotune engine.
        """
        self._knowledge = knowledge

    def attach_ledger(self, ledger) -> None:
        """Charge goodput/badput for every tenant to ``ledger``.

        ``ledger`` is a :class:`repro.serve.shard.GoodputLedger` (duck-
        typed: anything with ``observe_step`` / ``observe_quarantine``).
        Steps already folded before attachment are not back-charged —
        the sharded tier exploits this to replay journals during a
        rebalance without double-counting any tenant's wall time.
        """
        self._ledger = ledger
        for job_id, analysis in self._analyses.items():
            analysis.on_step = partial(ledger.observe_step, job_id)

    # --- chip placement + quarantine ---------------------------------------

    def assign_chip(self, job_id: str, chip: str) -> None:
        """Record which simulated chip ``job_id`` executes on.

        The fleet driver assigns chips in registration order; the health
        monitor reads the mapping back through :meth:`chip_assignments`
        to build per-chip ``chip_sdc:*`` anomaly series.
        """
        self.registry.get(job_id)
        if not chip:
            raise ServeError("chip id must be non-empty")
        self._chips[job_id] = chip

    def chip_assignments(self) -> dict[str, str]:
        """``job_id -> chip`` for every assigned job, registration order."""
        return dict(self._chips)

    def quarantine_chip(self, chip: str) -> list[str]:
        """Pull an SDC-suspect chip from service; returns its resident jobs.

        Idempotent: a chip already in quarantine returns ``[]`` and
        charges nothing. Otherwise every job assigned to the chip is
        charged one deterministic scrub pass (the self-test that
        confirms the suspect) to the ledger's ``sdc_scrub`` badput
        bucket — the fleet pays to know the chip is bad.
        """
        if not chip:
            raise ServeError("chip id must be non-empty")
        if chip in self._quarantined_chips:
            return []
        jobs = [job_id for job_id, assigned in self._chips.items() if assigned == chip]
        self._quarantined_chips[chip] = 1
        self.metrics.chips_quarantined += 1
        if self._ledger is not None:
            for job_id in jobs:
                info = self.registry.get(job_id)
                self._ledger.charge(job_id, "sdc_scrub", scrub_cost_us(info.generation))
        return jobs

    def quarantined_chips(self) -> list[str]:
        """Chips pulled from service, in quarantine order."""
        return list(self._quarantined_chips)

    def chip_quarantine_counts(self) -> dict[str, int]:
        """``chip -> quarantine count`` for every assigned chip (0 if healthy)."""
        counts = {
            chip: 0 for chip in dict.fromkeys(self._chips.values())
        }
        counts.update(self._quarantined_chips)
        return counts

    # --- tenancy -----------------------------------------------------------

    def register(
        self,
        workload: str,
        generation: TpuGeneration | str = TpuGeneration.V2,
        job_id: str | None = None,
        start_step: int = 0,
    ) -> JobInfo:
        """Admit one job and allocate its queue + live analysis state."""
        info = self.registry.register(
            workload, generation=generation, job_id=job_id, start_step=start_step
        )
        self._queues[info.job_id] = IngestQueue(
            job_id=info.job_id, capacity=self.options.queue_capacity
        )
        analysis = LiveJobAnalysis(
            threshold=self.options.threshold, peak_flops=info.peak_flops
        )
        if self._ledger is not None:
            analysis.on_step = partial(self._ledger.observe_step, info.job_id)
        self._analyses[info.job_id] = analysis
        self.metrics.jobs_registered += 1
        self._last_accept_tick[info.job_id] = self._tick
        return info

    def sink(self, job_id: str, transit=None) -> Callable[[ProfileRecord], None]:
        """A record callback bound to one job (the producer hand-off).

        On the binary wire (the default) each record is encoded as one
        CRC-framed block *before* ``transit`` (a
        :class:`repro.faults.RecordTransit` or anything with the same
        ``apply``/``apply_frame``) touches it: a corrupted or truncated
        frame fails to decode, is quarantined under a header-recovered
        stub, and never reaches the queue — the frame CRC replaces the
        JSON object wire's per-record checksum, sparing a second full
        JSON encode per record. On the JSON wire the producer-side
        checksum is stamped before transit, so object-level corruption
        is detectable at submit. Either way a transit returning None
        models a lost record: nothing reaches the queue, but the loss
        still counts as a submitted-then-dropped record so the ingest
        SLO sees it.
        """
        self.registry.get(job_id)
        if self.options.wire_format == "binary":
            sequence = iter(range(1 << 62))

            def _submit_binary(record: ProfileRecord) -> None:
                frame = codec.encode_frame(next(sequence), record)
                delivered = frame if transit is None else transit.apply_frame(frame)
                if delivered is None:
                    self.metrics.records_submitted += 1
                    self.metrics.record_drop(job_id, 1)
                    return
                try:
                    decoded = codec.decode_frame(delivered)
                except CodecError as error:
                    self.metrics.records_submitted += 1
                    self._quarantine_record(
                        job_id,
                        codec.frame_stub(delivered),
                        f"binary frame refused: {error}",
                    )
                    return
                self.submit(job_id, decoded)

            return _submit_binary

        def _submit(record: ProfileRecord) -> None:
            checksum = record_checksum(record)
            delivered = record if transit is None else transit.apply(record)
            if delivered is None:
                self.metrics.records_submitted += 1
                self.metrics.record_drop(job_id, 1)
                return
            self.submit(job_id, delivered, checksum=checksum)

        return _submit

    # --- ingestion ---------------------------------------------------------

    def submit(
        self, job_id: str, record: ProfileRecord, checksum: int | None = None
    ) -> IngestAck:
        """Enqueue one record for a job; first record activates it.

        Records that fail structural validation — or whose recomputed
        checksum disagrees with the producer's — are quarantined rather
        than enqueued: counted, retained for inspection, and answered
        with ``accepted=False``. A malformed record never reaches the
        analyses and never raises out of the ingest path.
        """
        info = self.registry.get(job_id)
        if not info.live:
            raise ServeError(f"job {job_id!r} is {info.state.value}; cannot ingest")
        self.metrics.records_submitted += 1
        reason = validate_record(record, checksum=checksum)
        if reason is not None:
            self._quarantine_record(job_id, record, reason)
            return IngestAck(
                job_id=job_id,
                accepted=False,
                dropped=0,
                depth=self._queues[job_id].depth,
            )
        if info.state is JobState.REGISTERED:
            self.registry.activate(job_id)
        elif info.state is JobState.STALLED:
            self.registry.resume(job_id)
            self.metrics.jobs_resumed += 1
        self._last_accept_tick[job_id] = self._tick
        ack = self._queues[job_id].offer(record)
        self.metrics.record_drop(job_id, ack.dropped)
        return ack

    def submit_many(
        self,
        job_id: str,
        records: Sequence[ProfileRecord],
        checksums: Sequence[int | None] | None = None,
    ) -> list[IngestAck]:
        """Enqueue a batch for one job: one validation pass, one lock hold.

        Semantically identical to calling :meth:`submit` per record —
        same quarantine decisions, same counters, same first-record
        activation — but records that survive validation reach the queue
        through :meth:`IngestQueue.offer_many`, so a concurrent producer
        can never interleave inside the batch. The sharded tier's
        batched ingest pumps ride on this.
        """
        if checksums is None:
            checksums = [None] * len(records)
        if len(checksums) != len(records):
            raise ServeError("checksums must align one-to-one with records")
        info = self.registry.get(job_id)
        if not info.live:
            raise ServeError(f"job {job_id!r} is {info.state.value}; cannot ingest")
        if not records:
            return []
        self.metrics.records_submitted += len(records)
        accepted: list[ProfileRecord] = []
        refusals: list[int] = []
        for position, (record, checksum) in enumerate(zip(records, checksums)):
            reason = validate_record(record, checksum=checksum)
            if reason is None:
                accepted.append(record)
            else:
                self._quarantine_record(job_id, record, reason)
                refusals.append(position)
        if accepted:
            if info.state is JobState.REGISTERED:
                self.registry.activate(job_id)
            elif info.state is JobState.STALLED:
                self.registry.resume(job_id)
                self.metrics.jobs_resumed += 1
            self._last_accept_tick[job_id] = self._tick
        queue = self._queues[job_id]
        queue_acks = iter(queue.offer_many(accepted))
        refused = set(refusals)
        acks: list[IngestAck] = []
        for position in range(len(records)):
            if position in refused:
                acks.append(
                    IngestAck(
                        job_id=job_id, accepted=False, dropped=0, depth=queue.depth
                    )
                )
            else:
                ack = next(queue_acks)
                self.metrics.record_drop(job_id, ack.dropped)
                acks.append(ack)
        return acks

    def _quarantine_record(self, job_id: str, record: ProfileRecord, reason: str) -> None:
        self._quarantine.append(
            QuarantinedRecord(job_id=job_id, record=record, reason=reason)
        )
        self.metrics.record_quarantine(job_id)
        if self._ledger is not None:
            self._ledger.observe_quarantine(job_id, record)

    def quarantined(self, job_id: str | None = None) -> list[QuarantinedRecord]:
        """The retained tail of refused records, optionally per job."""
        found = list(self._quarantine)
        if job_id is not None:
            found = [entry for entry in found if entry.job_id == job_id]
        return found

    def pump(self, job_id: str | None = None, max_records: int | None = None) -> int:
        """Drain queued records into the live analyses.

        Returns the number of steps newly assembled. With ``job_id`` the
        drain is restricted to one tenant; ``max_records`` bounds the
        work done in one call so the loop can be scheduled fairly.

        A record the assembler rejects is quarantined, not raised: one
        tenant's bad stream cannot take the drain loop down for everyone
        else. Global pumps also advance the heartbeat clock — an ACTIVE
        job silent for ``heartbeat_deadline`` consecutive global pumps
        is parked in STALLED.
        """
        with obs.trace("serve.pump", job=job_id or "all") as span:
            if job_id is not None:
                queues = [self._queue(job_id)]
            else:
                queues = [
                    self._queues[info.job_id]
                    for info in self.registry.jobs()
                    if info.live
                ]
            assembled = 0
            drained = 0
            for queue in queues:
                analysis = self._analyses[queue.job_id]
                for record in queue.drain(max_records):
                    drained += 1
                    self.metrics.records_ingested += 1
                    try:
                        assembled += analysis.ingest(record)
                    except ProfilerError as error:
                        self._quarantine_record(queue.job_id, record, str(error))
            self.metrics.steps_assembled += assembled
            if job_id is None:
                self._heartbeat_tick()
            span.set(records=drained, steps=assembled)
        return assembled

    def _heartbeat_tick(self) -> None:
        """One global heartbeat: stall jobs silent past the deadline."""
        self._tick += 1
        deadline = self.options.heartbeat_deadline
        if deadline is None:
            return
        for info in self.registry.jobs(state=JobState.ACTIVE):
            if self._tick - self._last_accept_tick.get(info.job_id, self._tick) >= deadline:
                self.registry.stall(info.job_id)
                self.metrics.jobs_stalled += 1

    def complete(self, job_id: str) -> JobInfo:
        """Drain what is queued, flush the assembler, close the job."""
        with obs.trace("serve.complete", job=job_id):
            info = self.registry.get(job_id)
            if info.state is JobState.REGISTERED:
                # A job that never produced a record still completes cleanly.
                self.registry.activate(job_id)
            self.pump(job_id)
            flushed = self._analyses[job_id].finish()
            self.metrics.steps_assembled += flushed
            info = self.registry.complete(job_id)
            self.metrics.jobs_completed += 1
            self._last_accept_tick.pop(job_id, None)
            return info

    def evict(self, job_id: str) -> JobInfo:
        """Discard a job's live state; its registry entry remains.

        The job's per-key drop count folds into the bounded
        ``evicted_drops`` total so metrics stay O(live jobs), not
        O(all jobs ever).
        """
        info = self.registry.evict(job_id)
        self._queues.pop(job_id, None)
        self._analyses.pop(job_id, None)
        self._last_accept_tick.pop(job_id, None)
        self._chips.pop(job_id, None)
        self.metrics.jobs_evicted += 1
        self.metrics.record_eviction(job_id)
        return info

    # --- queries -----------------------------------------------------------

    def queue_depth(self, job_id: str) -> int:
        return self._queue(job_id).depth

    def analysis(self, job_id: str) -> LiveJobAnalysis:
        """Direct access to one job's live state (parity tests use this).

        Unknown ids raise :class:`repro.errors.UnknownJobError` (via the
        registry); known-but-evicted jobs raise plain ``ServeError``.
        """
        self.registry.get(job_id)
        analysis = self._analyses.get(job_id)
        if analysis is None:
            raise ServeError(f"job {job_id!r} holds no live state")
        return analysis

    def live_analyses(self) -> list[tuple[str, LiveJobAnalysis]]:
        """``(job_id, analysis)`` for every job still holding live state.

        Registration order, completed jobs excluded — the scrape surface
        the health monitor's drift detector walks. The sharded tier
        exposes the same method with the same ordering, so drift series
        are identical at any shard count.
        """
        return [
            (info.job_id, self._analyses[info.job_id])
            for info in self.registry.jobs()
            if info.state is not JobState.COMPLETED and info.job_id in self._analyses
        ]

    def health_targets(self) -> list[tuple[str, object]]:
        """``(label, ServiceMetrics)`` scrape targets for health rings."""
        return [("service", self.metrics)]

    def similar_phases(
        self, job_id: str, threshold: float | None = None
    ) -> list[tuple[int, int, float]]:
        """Near-duplicate phase pairs of one job, by operator mix.

        Runs the analyzer's blocked distance kernel over the job's live
        phase vectors — the query that flags an online-scan split (two
        phases with nearly identical operator profiles) while the run is
        still in flight.
        """
        with obs.trace("serve.similar_phases", job=job_id) as span, \
                self.metrics.time_query():
            analysis = self.analysis(job_id)
            if threshold is None:
                pairs = analysis.similar_phase_pairs()
            else:
                pairs = analysis.similar_phase_pairs(threshold)
            span.set(phases=analysis.num_phases, pairs=len(pairs))
            return pairs

    def phase_analysis(self, job_id: str) -> StreamingAnalysis:
        """A full streaming phase analysis of one live (or completed) job.

        PCA'd cluster labels, phase boundaries, and per-phase tables
        over every step folded so far — answered mid-run from the
        per-job streaming analyzer, without materializing the batch
        feature matrix. In the default (exact) streaming mode the
        labels are bit-identical to running the offline
        ``TPUPointAnalyzer.kmeans_phases()`` over the same steps.
        """
        with obs.trace("serve.phase_analysis", job=job_id) as span, \
                self.metrics.time_query():
            result = self.analysis(job_id).phase_analysis()
            span.set(phases=result.num_phases, steps=len(result.labels))
            return result

    def tuning_priors(
        self, job_id: str, threshold: float | None = None, top_k: int = 8
    ) -> list[TuningPrior]:
        """Stored best-configurations matching one job's live phases.

        Each of the job's phases is fingerprinted the way the autotune
        engine keys its knowledge base (top-``top_k`` operators by
        accumulated duration) and looked up against the attached
        :class:`TuningKnowledgeBase`. Matches come back ordered by
        similarity (then by the phase's share of run time), one per
        distinct stored entry, so a tenant warm-starts from the closest
        prior the fleet has collected.
        """
        if self._knowledge is None:
            raise ServeError("no tuning knowledge base attached to this service")
        cutoff = threshold if threshold is not None else self.options.threshold
        with obs.trace("serve.tuning_priors", job=job_id) as span, \
                self.metrics.time_query():
            analysis = self.analysis(job_id)
            priors: list[TuningPrior] = []
            claimed: set[frozenset[str]] = set()
            ranked_phases = sorted(
                analysis.phases.values(), key=lambda phase: -phase.duration_us
            )
            for phase in ranked_phases:
                names = frozenset(
                    stats.name for stats in phase.top_operators(top_k)
                )
                if not names:
                    continue
                match = self._knowledge.lookup(names, cutoff)
                if match is None or match.entry.signature in claimed:
                    continue
                claimed.add(match.entry.signature)
                priors.append(
                    TuningPrior(
                        job_id=job_id,
                        phase_id=phase.phase_id,
                        similarity=match.similarity,
                        config=dict(match.entry.config),
                        improvement=match.entry.improvement,
                        trials=match.entry.trials,
                        workload=match.entry.workload,
                    )
                )
            priors.sort(key=lambda prior: -prior.similarity)
            span.set(phases=len(analysis.phases), priors=len(priors))
            return priors

    def surrogate_pairs(
        self, job_id: str, threshold: float | None = None, top_k: int = 8
    ) -> list[TrainingPair]:
        """Fleet-shared surrogate training pairs matched to one job.

        The training-set counterpart of :meth:`tuning_priors`: instead
        of best configurations, this returns the raw per-trial
        observations (:class:`~repro.core.optimizer.surrogate.TrainingPair`
        rows) of every knowledge-base entry whose signature matches one
        of the job's live phase fingerprints. A tenant folds them into
        its surrogate via ``build_surrogate(extra_pairs=...)``, so one
        tenant's finished searches speed up every lookalike workload on
        the fleet. Each stored entry contributes at most once; rows come
        back deduplicated in a deterministic (signature, knobs) order.
        """
        if self._knowledge is None:
            raise ServeError("no tuning knowledge base attached to this service")
        cutoff = threshold if threshold is not None else self.options.threshold
        with obs.trace("serve.surrogate_pairs", job=job_id) as span, \
                self.metrics.time_query():
            analysis = self.analysis(job_id)
            pairs: list[TrainingPair] = []
            claimed: set[frozenset[str]] = set()
            ranked_phases = sorted(
                analysis.phases.values(), key=lambda phase: -phase.duration_us
            )
            for phase in ranked_phases:
                names = frozenset(
                    stats.name for stats in phase.top_operators(top_k)
                )
                if not names:
                    continue
                match = self._knowledge.lookup(names, cutoff)
                if match is None or match.entry.signature in claimed:
                    continue
                claimed.add(match.entry.signature)
                for raw in match.entry.observations:
                    try:
                        pairs.append(
                            TrainingPair(
                                signature=match.entry.signature,
                                config=dict(raw["config"]),
                                throughput=float(raw["throughput"]),
                                source=f"fleet:{match.entry.workload or 'unknown'}",
                            )
                        )
                    except (KeyError, TypeError, ValueError, OptimizerError):
                        continue
            pairs = sorted(dedup_pairs(pairs), key=lambda pair: pair.key())
            span.set(phases=len(analysis.phases), pairs=len(pairs))
            return pairs

    def job_snapshot(self, job_id: str) -> JobSnapshot:
        """Freeze one job's live view; never mutates service state."""
        with self.metrics.time_query():
            info = self.registry.get(job_id)
            chip = self._chips.get(job_id, "")
            return job_snapshot(
                info,
                self.analysis(job_id),
                self._queue(job_id),
                max_phases=self.options.snapshot_phases,
                top_operators=self.options.snapshot_operators,
                quarantined=self.metrics.quarantined_by_job.get(job_id, 0),
                chip=chip,
                chip_quarantined=chip in self._quarantined_chips,
            )

    def fleet_snapshot(self) -> FleetSnapshot:
        """Roll every non-evicted job into the fleet view."""
        with obs.trace("serve.fleet_snapshot", jobs=len(self.registry)), \
                self.metrics.time_query():
            quarantined = self.metrics.quarantined_by_job
            snapshots = [
                job_snapshot(
                    info,
                    self._analyses[info.job_id],
                    self._queues[info.job_id],
                    max_phases=self.options.snapshot_phases,
                    top_operators=self.options.snapshot_operators,
                    quarantined=quarantined.get(info.job_id, 0),
                    chip=self._chips.get(info.job_id, ""),
                    chip_quarantined=self._chips.get(info.job_id, "")
                    in self._quarantined_chips,
                )
                for info in self.registry.jobs()
                if info.job_id in self._analyses
            ]
            return fleet_snapshot(snapshots)

    def _queue(self, job_id: str) -> IngestQueue:
        self.registry.get(job_id)
        queue = self._queues.get(job_id)
        if queue is None:
            raise ServeError(f"job {job_id!r} holds no live state")
        return queue
