"""Fleet driver: many concurrent workloads through one service.

Simulates a multi-tenant deployment: N training jobs, each with its own
estimator and profiler, are scheduled round-robin in bounded step
quanta, and every profiler hands its records to the shared
:class:`FleetService` as they are produced. Because the drain loop runs
between quanta, snapshot queries taken mid-flight observe genuinely
partial runs — the live-analysis property the offline analyzer cannot
provide. The CLI's ``tpupoint fleet`` and the fleet bench both drive
this entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.profiler import ProfilerOptions
from repro.errors import ServeError
from repro.serve.query import FleetSnapshot, JobSnapshot
from repro.serve.service import FleetService, FleetServiceOptions
from repro.serve.shard import GoodputReport, ShardedFleet, ShardedFleetOptions
from repro.workloads.runner import attach_record_sink, build_estimator
from repro.workloads.spec import WorkloadSpec

#: Fast Table I workloads the CLI cycles through when none are given.
DEFAULT_FLEET_WORKLOADS = ("bert-mrpc", "dcgan-mnist", "dcgan-cifar10", "bert-cola")

#: Invoked after every scheduling round with (service, round_index).
#: The service is a FleetService, or a ShardedFleet when sharding is on.
RoundHook = Callable[[object, int], None]


@dataclass(frozen=True)
class FleetJobResult:
    """One job's outcome after the fleet run finished."""

    job_id: str
    spec: WorkloadSpec
    summary: object
    records: tuple = ()
    snapshot: JobSnapshot | None = None


@dataclass(frozen=True)
class FleetRunResult:
    """Outcome of one fleet run.

    ``goodput`` is populated when the service tier carries a goodput
    ledger (the sharded fleet always does); plain single-service runs
    leave it None. ``health`` is the monitor passed to ``run_fleet``
    (already finished — residual alerts resolved), or None.
    """

    service: FleetService | ShardedFleet
    jobs: tuple[FleetJobResult, ...]
    rollup: FleetSnapshot
    rounds: int
    goodput: GoodputReport | None = None
    health: object | None = None


@dataclass
class _FleetJob:
    job_id: str
    spec: WorkloadSpec
    estimator: object
    profiler: object
    done: bool = False
    summary: object = None


def run_fleet(
    workloads: Sequence[str],
    generation: str = "v2",
    chunk_steps: int = 16,
    service: FleetService | ShardedFleet | None = None,
    service_options: FleetServiceOptions | None = None,
    profiler_options: ProfilerOptions | None = None,
    on_round: RoundHook | None = None,
    fault_plan=None,
    shards: int | None = None,
    health=None,
    plan_overrides: dict | None = None,
) -> FleetRunResult:
    """Run every workload to completion through a shared fleet service.

    With ``plan_overrides`` (e.g. ``{"eval_every": 40, "eval_steps": 12}``),
    every job's default session plan is rebuilt with those fields
    replaced — the lever the health CLI uses to induce a deterministic
    mid-run phase shift (an eval or checkpoint excursion) that the
    drift detector must catch and watch resolve.

    With ``fault_plan``, each job's producer→service wire goes through
    its own :class:`repro.faults.RecordTransit` (keyed by job id, so
    drops and corruption stay deterministic per tenant), and the plan is
    also handed to every profiler unless ``profiler_options`` already
    carries one.

    With ``shards``, tenants spread over a :class:`ShardedFleet` of
    that many shards instead of one service — queries and snapshots are
    bit-identical either way, and the run result additionally carries
    the fleet's goodput/badput report.

    With ``health`` (a :class:`repro.obs.health.HealthMonitor`), the
    monitor observes the service after every scheduling round — its
    tick axis *is* the round index — and is finished (residual alerts
    resolved) before the result returns.

    A ``fault_plan`` with an ``sdc`` section additionally places every
    job on a simulated chip (``chip-<i>`` in registration order), wires
    that chip's seeded :class:`~repro.tpu.sdc.SdcInjector` into the
    job's device, and — when a health monitor is watching — quarantines
    any chip whose ``CHIP_SDC_SUSPECT`` alert fires, charging each
    resident tenant one scrub pass of ``sdc_scrub`` badput.
    """
    if not workloads:
        raise ServeError("fleet run needs at least one workload")
    if chunk_steps <= 0:
        raise ServeError("chunk_steps must be positive")
    if shards is not None and service is not None:
        raise ServeError("pass either a service instance or shards, not both")
    if service is None:
        if shards is not None:
            service = ShardedFleet(
                ShardedFleetOptions(
                    shards=shards,
                    service=service_options or FleetServiceOptions(),
                )
            )
        else:
            service = FleetService(options=service_options or FleetServiceOptions())
    sdc_on = False
    if fault_plan is not None:
        from dataclasses import replace

        from repro.faults import FaultTarget, RecordTransit

        if profiler_options is None:
            profiler_options = ProfilerOptions(fault_plan=fault_plan)
        elif profiler_options.fault_plan is None:
            profiler_options = replace(profiler_options, fault_plan=fault_plan)
        sdc_on = fault_plan.targets(FaultTarget.DEVICE)

    jobs: list[_FleetJob] = []
    for index, key in enumerate(workloads):
        spec = WorkloadSpec(key, generation=generation)
        if plan_overrides:
            from dataclasses import replace

            entry = spec.resolve()
            try:
                plan = replace(
                    entry.model.defaults(entry.dataset).session_plan(),
                    **plan_overrides,
                )
            except TypeError as error:
                raise ServeError(f"unknown session-plan override: {error}")
            spec = WorkloadSpec(key, generation=generation, plan=plan)
        info = service.register(key, generation=generation)
        estimator = build_estimator(spec)
        if sdc_on:
            # One simulated chip per job, named by registration order so
            # placement — and therefore which tenants a corrupted chip
            # degrades — is identical at any shard count.
            from repro.tpu.sdc import chip_name

            chip = chip_name(index)
            estimator.attach_sdc(fault_plan.sdc_injector(chip))
            service.assign_chip(info.job_id, chip)
        transit = None
        if fault_plan is not None and fault_plan.targets(FaultTarget.INGEST):
            transit = RecordTransit(fault_plan, key=info.job_id)
        profiler = attach_record_sink(
            estimator,
            service.sink(info.job_id, transit=transit),
            options=profiler_options,
        )
        jobs.append(
            _FleetJob(job_id=info.job_id, spec=spec, estimator=estimator, profiler=profiler)
        )

    ledger = getattr(service, "ledger", None)
    charged: dict[str, tuple[float, float]] = {}

    def charge_resilience(job: _FleetJob) -> None:
        # Charge the *delta* of the profiler's resilience overhead since
        # the last round, so retry/backoff and lost-window badput land
        # in the rounds the faults actually happen — the health
        # monitor's burn-rate windows see the degradation while it is
        # going on, not as one spike when the tenant finishes.
        report = job.profiler.fault_report()
        client = report.get("client") or {}
        backoff_ms = float(client.get("backoff_ms_total", 0.0))
        lost = float(report.get("windows_skipped", 0)) + float(
            report.get("windows_abandoned", 0)
        )
        previous_backoff, previous_lost = charged.get(job.job_id, (0.0, 0.0))
        interval_ms = job.profiler.options.request_interval_ms
        ledger.charge(
            job.job_id, "retry_backoff", max(backoff_ms - previous_backoff, 0.0) * 1e3
        )
        ledger.charge(
            job.job_id,
            "recovery_replay",
            max(lost - previous_lost, 0.0) * interval_ms * 1e3,
        )
        charged[job.job_id] = (backoff_ms, lost)

    rounds = 0
    while any(not job.done for job in jobs):
        for job in jobs:
            if job.done:
                continue
            job.estimator.train_steps(chunk_steps)
            session = job.estimator.session
            if session.global_step >= job.estimator.plan.train_steps:
                job.summary = job.estimator.finalize()
                job.profiler.stop()
                service.pump(job.job_id)
                service.complete(job.job_id)
                job.done = True
            if ledger is not None:
                charge_resilience(job)
        service.pump()
        rounds += 1
        if health is not None:
            events = health.observe(service, tick=rounds)
            # Close the SDC loop: a confirmed suspect chip leaves
            # service. Quarantine is idempotent and keyed to the alert's
            # *fired* transition, so re-fires after a resolve charge
            # nothing new.
            quarantine = getattr(service, "quarantine_chip", None)
            if callable(quarantine):
                for event in events:
                    if event.rule == "CHIP_SDC_SUSPECT" and event.transition == "fired":
                        quarantine(event.scope)
        if on_round is not None:
            on_round(service, rounds)

    if health is not None:
        health.finish()
    results = tuple(
        FleetJobResult(
            job_id=job.job_id,
            spec=job.spec,
            summary=job.summary,
            records=tuple(job.profiler.records),
            snapshot=service.job_snapshot(job.job_id),
        )
        for job in jobs
    )
    return FleetRunResult(
        service=service,
        jobs=results,
        rollup=service.fleet_snapshot(),
        rounds=rounds,
        goodput=ledger.report() if ledger is not None else None,
        health=health,
    )
