"""Fleet driver: many concurrent workloads through one service.

Simulates a multi-tenant deployment: N training jobs, each with its own
estimator and profiler, are scheduled round-robin in bounded step
quanta, and every profiler hands its records to the shared
:class:`FleetService` as they are produced. Because the drain loop runs
between quanta, snapshot queries taken mid-flight observe genuinely
partial runs — the live-analysis property the offline analyzer cannot
provide. The CLI's ``tpupoint fleet`` and the fleet bench both drive
this entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.profiler import ProfilerOptions
from repro.errors import ServeError
from repro.serve.query import FleetSnapshot, JobSnapshot
from repro.serve.service import FleetService, FleetServiceOptions
from repro.serve.shard import GoodputReport, ShardedFleet, ShardedFleetOptions
from repro.workloads.runner import attach_record_sink, build_estimator
from repro.workloads.spec import WorkloadSpec

#: Fast Table I workloads the CLI cycles through when none are given.
DEFAULT_FLEET_WORKLOADS = ("bert-mrpc", "dcgan-mnist", "dcgan-cifar10", "bert-cola")

#: Invoked after every scheduling round with (service, round_index).
#: The service is a FleetService, or a ShardedFleet when sharding is on.
RoundHook = Callable[[object, int], None]


@dataclass(frozen=True)
class FleetJobResult:
    """One job's outcome after the fleet run finished."""

    job_id: str
    spec: WorkloadSpec
    summary: object
    records: tuple = ()
    snapshot: JobSnapshot | None = None


@dataclass(frozen=True)
class FleetRunResult:
    """Outcome of one fleet run.

    ``goodput`` is populated when the service tier carries a goodput
    ledger (the sharded fleet always does); plain single-service runs
    leave it None.
    """

    service: FleetService | ShardedFleet
    jobs: tuple[FleetJobResult, ...]
    rollup: FleetSnapshot
    rounds: int
    goodput: GoodputReport | None = None


@dataclass
class _FleetJob:
    job_id: str
    spec: WorkloadSpec
    estimator: object
    profiler: object
    done: bool = False
    summary: object = None


def run_fleet(
    workloads: Sequence[str],
    generation: str = "v2",
    chunk_steps: int = 16,
    service: FleetService | ShardedFleet | None = None,
    service_options: FleetServiceOptions | None = None,
    profiler_options: ProfilerOptions | None = None,
    on_round: RoundHook | None = None,
    fault_plan=None,
    shards: int | None = None,
) -> FleetRunResult:
    """Run every workload to completion through a shared fleet service.

    With ``fault_plan``, each job's producer→service wire goes through
    its own :class:`repro.faults.RecordTransit` (keyed by job id, so
    drops and corruption stay deterministic per tenant), and the plan is
    also handed to every profiler unless ``profiler_options`` already
    carries one.

    With ``shards``, tenants spread over a :class:`ShardedFleet` of
    that many shards instead of one service — queries and snapshots are
    bit-identical either way, and the run result additionally carries
    the fleet's goodput/badput report.
    """
    if not workloads:
        raise ServeError("fleet run needs at least one workload")
    if chunk_steps <= 0:
        raise ServeError("chunk_steps must be positive")
    if shards is not None and service is not None:
        raise ServeError("pass either a service instance or shards, not both")
    if service is None:
        if shards is not None:
            service = ShardedFleet(
                ShardedFleetOptions(
                    shards=shards,
                    service=service_options or FleetServiceOptions(),
                )
            )
        else:
            service = FleetService(options=service_options or FleetServiceOptions())
    if fault_plan is not None:
        from dataclasses import replace

        from repro.faults import FaultTarget, RecordTransit

        if profiler_options is None:
            profiler_options = ProfilerOptions(fault_plan=fault_plan)
        elif profiler_options.fault_plan is None:
            profiler_options = replace(profiler_options, fault_plan=fault_plan)

    jobs: list[_FleetJob] = []
    for key in workloads:
        spec = WorkloadSpec(key, generation=generation)
        info = service.register(key, generation=generation)
        estimator = build_estimator(spec)
        transit = None
        if fault_plan is not None and fault_plan.targets(FaultTarget.INGEST):
            transit = RecordTransit(fault_plan, key=info.job_id)
        profiler = attach_record_sink(
            estimator,
            service.sink(info.job_id, transit=transit),
            options=profiler_options,
        )
        jobs.append(
            _FleetJob(job_id=info.job_id, spec=spec, estimator=estimator, profiler=profiler)
        )

    ledger = getattr(service, "ledger", None)
    rounds = 0
    while any(not job.done for job in jobs):
        for job in jobs:
            if job.done:
                continue
            job.estimator.train_steps(chunk_steps)
            session = job.estimator.session
            if session.global_step >= job.estimator.plan.train_steps:
                job.summary = job.estimator.finalize()
                job.profiler.stop()
                service.pump(job.job_id)
                service.complete(job.job_id)
                job.done = True
                if ledger is not None:
                    # Resilience overhead (retries, lost windows) lands
                    # in the tenant's badput at the moment it finishes.
                    ledger.observe_fault_report(
                        job.job_id,
                        job.profiler.fault_report(),
                        request_interval_ms=job.profiler.options.request_interval_ms,
                    )
        service.pump()
        rounds += 1
        if on_round is not None:
            on_round(service, rounds)

    results = tuple(
        FleetJobResult(
            job_id=job.job_id,
            spec=job.spec,
            summary=job.summary,
            records=tuple(job.profiler.records),
            snapshot=service.job_snapshot(job.job_id),
        )
        for job in jobs
    )
    return FleetRunResult(
        service=service,
        jobs=results,
        rollup=service.fleet_snapshot(),
        rounds=rounds,
        goodput=ledger.report() if ledger is not None else None,
    )
