"""repro.serve — multi-tenant fleet profiling service.

A new layer between the per-run toolchain (``repro.core``) and the
evaluation harness: many concurrent training jobs stream their
:class:`~repro.core.profiler.record.ProfileRecord` summaries into one
:class:`FleetService`, which assembles steps online, folds them into the
online linear scan, and answers per-job and fleet-level queries while
the runs are still in flight.
"""

from repro.serve.fleet import (
    DEFAULT_FLEET_WORKLOADS,
    FleetJobResult,
    FleetRunResult,
    run_fleet,
)
from repro.serve.ingest import (
    DEFAULT_QUEUE_CAPACITY,
    IngestAck,
    IngestQueue,
    validate_record,
)
from repro.serve.live import LiveJobAnalysis, LivePhase
from repro.serve.metrics import ServiceMetrics
from repro.serve.query import FleetSnapshot, JobSnapshot, PhaseView
from repro.serve.registry import JobInfo, JobRegistry, JobState
from repro.serve.service import (
    FleetService,
    FleetServiceOptions,
    QuarantinedRecord,
    TuningPrior,
)
from repro.serve.shard import (
    GoodputLedger,
    GoodputReport,
    HashRing,
    ShardedFleet,
    ShardedFleetOptions,
    TenantLedger,
)

__all__ = [
    "DEFAULT_FLEET_WORKLOADS",
    "DEFAULT_QUEUE_CAPACITY",
    "FleetJobResult",
    "FleetRunResult",
    "FleetService",
    "FleetServiceOptions",
    "FleetSnapshot",
    "GoodputLedger",
    "GoodputReport",
    "HashRing",
    "IngestAck",
    "IngestQueue",
    "JobInfo",
    "JobRegistry",
    "JobSnapshot",
    "JobState",
    "LiveJobAnalysis",
    "LivePhase",
    "PhaseView",
    "QuarantinedRecord",
    "ServiceMetrics",
    "ShardedFleet",
    "ShardedFleetOptions",
    "TenantLedger",
    "TuningPrior",
    "run_fleet",
    "validate_record",
]
