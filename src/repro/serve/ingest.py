"""Bounded per-job ingestion queues.

Producers (training jobs) and the analysis drain run at different rates,
so each job gets a bounded queue between them. Overflow policy is
*drop-oldest*: a full queue admits the new record and discards the
stalest one, because for live phase detection the most recent window is
always the most valuable — exactly the trade the paper's profiler makes
when it caps profile windows rather than stalling the run.

Dropping a record is safe for :class:`~repro.core.profiler.streaming.StepStream`:
records only ever carry steps at or after the newest step already seen,
so a gap never triggers the revisit guard — the affected steps are
simply observed with partial statistics (lossy, never corrupt).

Backpressure is explicit: :meth:`IngestQueue.offer` reports whether the
queue had to shed load, and producers can consult
:attr:`IngestQueue.remaining_capacity` to throttle before that happens.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.profiler.record import ProfileRecord
from repro.errors import ServeError

DEFAULT_QUEUE_CAPACITY = 64


@dataclass(frozen=True)
class IngestAck:
    """Outcome of one record submission."""

    job_id: str
    accepted: bool
    dropped: int
    depth: int

    @property
    def overloaded(self) -> bool:
        """Whether the producer should back off."""
        return self.dropped > 0


@dataclass
class IngestQueue:
    """A bounded FIFO of profile records for one job."""

    job_id: str
    capacity: int = DEFAULT_QUEUE_CAPACITY
    _records: deque[ProfileRecord] = field(default_factory=deque)
    submitted: int = 0
    dropped: int = 0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ServeError("ingest queue capacity must be positive")

    @property
    def depth(self) -> int:
        """Records currently waiting to be drained."""
        return len(self._records)

    @property
    def remaining_capacity(self) -> int:
        """Free slots before the next offer sheds the oldest record."""
        return self.capacity - self.depth

    def offer(self, record: ProfileRecord) -> IngestAck:
        """Enqueue one record, shedding the oldest on overflow."""
        self.submitted += 1
        shed = 0
        if self.depth >= self.capacity:
            self._records.popleft()
            self.dropped += 1
            shed = 1
        self._records.append(record)
        return IngestAck(
            job_id=self.job_id, accepted=True, dropped=shed, depth=self.depth
        )

    def drain(self, max_records: int | None = None) -> Iterator[ProfileRecord]:
        """Pop queued records in FIFO order (all of them by default)."""
        popped = 0
        while self._records and (max_records is None or popped < max_records):
            popped += 1
            yield self._records.popleft()
