"""Bounded per-job ingestion queues.

Producers (training jobs) and the analysis drain run at different rates,
so each job gets a bounded queue between them. Overflow policy is
*drop-oldest*: a full queue admits the new record and discards the
stalest one, because for live phase detection the most recent window is
always the most valuable — exactly the trade the paper's profiler makes
when it caps profile windows rather than stalling the run.

Dropping a record is safe for :class:`~repro.core.profiler.streaming.StepStream`:
records only ever carry steps at or after the newest step already seen,
so a gap never triggers the revisit guard — the affected steps are
simply observed with partial statistics (lossy, never corrupt).

Backpressure is explicit: :meth:`IngestQueue.offer` reports whether the
queue had to shed load, and producers can consult
:attr:`IngestQueue.remaining_capacity` to throttle before that happens.

Producers may live on real threads, so each queue serializes its own
mutations with a lock: the depth check, the shed, the append, and the
counters in :meth:`IngestQueue.offer` are one atomic step, never
interleaved with another producer's (or the drain's).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.profiler.record import ProfileRecord
from repro.core.profiler.serialize import record_checksum
from repro.errors import ServeError

DEFAULT_QUEUE_CAPACITY = 64


def validate_record(record: ProfileRecord, checksum: int | None = None) -> str | None:
    """Why ``record`` must be quarantined, or None when it is sound.

    Structural checks catch mangling that survives serialization (a step
    filed under the wrong key, negative counters, an inverted window);
    the optional producer-side ``checksum`` catches everything else that
    changed in transit.
    """
    if record.index < 0:
        return f"negative record index {record.index}"
    if record.window_end_us < record.window_start_us:
        return (
            f"inverted window [{record.window_start_us:g}, "
            f"{record.window_end_us:g}]"
        )
    for key, step in record.steps.items():
        if key != step.step:
            return f"step {step.step} filed under key {key}"
        for stats in step.operators.values():
            if stats.count < 0:
                return f"negative count for operator {stats.name!r}"
            if stats.total_duration_us < 0:
                return f"negative duration for operator {stats.name!r}"
    if checksum is not None and record_checksum(record) != checksum:
        return "checksum mismatch (record corrupted in transit)"
    return None


@dataclass(frozen=True)
class IngestAck:
    """Outcome of one record submission."""

    job_id: str
    accepted: bool
    dropped: int
    depth: int

    @property
    def overloaded(self) -> bool:
        """Whether the producer should back off."""
        return self.dropped > 0


@dataclass
class IngestQueue:
    """A bounded FIFO of profile records for one job."""

    job_id: str
    capacity: int = DEFAULT_QUEUE_CAPACITY
    _records: deque[ProfileRecord] = field(default_factory=deque)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    submitted: int = 0
    dropped: int = 0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ServeError("ingest queue capacity must be positive")

    @property
    def depth(self) -> int:
        """Records currently waiting to be drained."""
        return len(self._records)

    @property
    def remaining_capacity(self) -> int:
        """Free slots before the next offer sheds the oldest record."""
        return self.capacity - self.depth

    def offer(self, record: ProfileRecord) -> IngestAck:
        """Enqueue one record, shedding the oldest on overflow.

        Atomic under the queue lock: two producers racing a full queue
        shed exactly one record each, and ``submitted``/``dropped``
        never under-count.
        """
        with self._lock:
            self.submitted += 1
            shed = 0
            if len(self._records) >= self.capacity:
                self._records.popleft()
                self.dropped += 1
                shed = 1
            self._records.append(record)
            return IngestAck(
                job_id=self.job_id, accepted=True, dropped=shed, depth=len(self._records)
            )

    def offer_many(self, records: Sequence[ProfileRecord]) -> list[IngestAck]:
        """Enqueue a batch atomically: one lock hold for the whole batch.

        Per-record semantics are identical to calling :meth:`offer` in a
        loop (same shed decisions, same counters), but a concurrent
        producer can never interleave inside the batch — the sharded
        tier's batched ingest path relies on this.
        """
        acks: list[IngestAck] = []
        with self._lock:
            for record in records:
                self.submitted += 1
                shed = 0
                if len(self._records) >= self.capacity:
                    self._records.popleft()
                    self.dropped += 1
                    shed = 1
                self._records.append(record)
                acks.append(
                    IngestAck(
                        job_id=self.job_id,
                        accepted=True,
                        dropped=shed,
                        depth=len(self._records),
                    )
                )
        return acks

    def drain(self, max_records: int | None = None) -> Iterator[ProfileRecord]:
        """Pop queued records in FIFO order (all of them by default)."""
        popped = 0
        while max_records is None or popped < max_records:
            with self._lock:
                if not self._records:
                    return
                record = self._records.popleft()
            popped += 1
            yield record
