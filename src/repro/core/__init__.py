"""The paper's contribution: TPUPoint profiler, analyzer, and optimizer."""

from repro.core.analyzer import AnalysisResult, TPUPointAnalyzer
from repro.core.api import TPUPoint
from repro.core.optimizer import OptimizationResult, OptimizerOptions, TPUPointOptimizer
from repro.core.profiler import ProfileRecord, ProfilerOptions, TPUPointProfiler

__all__ = [
    "AnalysisResult",
    "OptimizationResult",
    "OptimizerOptions",
    "ProfileRecord",
    "ProfilerOptions",
    "TPUPoint",
    "TPUPointAnalyzer",
    "TPUPointOptimizer",
    "TPUPointProfiler",
]
