"""Statistical profile records.

TPUPoint-Profiler does not keep raw event streams: to bound memory and
accelerate post-processing, it reduces each profile response to *per-step
operator statistics* — for every (step, device, operator) the number of
invocations and the accumulated duration — plus the device metadata (TPU
idle time, MXU utilization) the response carries (Section III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProfilerError
from repro.runtime.events import DeviceKind, StepKind, StepMetadata
from repro.runtime.rpc import ProfileResponse


@dataclass
class OperatorStats:
    """Accumulated statistics for one operator within one step."""

    name: str
    device: DeviceKind
    count: int = 0
    total_duration_us: float = 0.0

    def observe(self, duration_us: float) -> None:
        """Fold one invocation into the stats."""
        self.count += 1
        self.total_duration_us += duration_us

    def merge(self, other: "OperatorStats") -> None:
        """Fold another stats object for the same operator into this one."""
        if (other.name, other.device) != (self.name, self.device):
            raise ProfilerError("cannot merge stats of different operators")
        self.count += other.count
        self.total_duration_us += other.total_duration_us


@dataclass
class StepStats:
    """All operator statistics for one step."""

    step: int
    operators: dict[tuple[str, str], OperatorStats] = field(default_factory=dict)
    kind: StepKind | None = None
    start_us: float = 0.0
    end_us: float = 0.0
    tpu_idle_us: float = 0.0
    mxu_flops: float = 0.0

    def observe(self, name: str, device: DeviceKind, duration_us: float) -> None:
        """Fold one operator invocation into the step."""
        key = (name, device.value)
        stats = self.operators.get(key)
        if stats is None:
            stats = OperatorStats(name=name, device=device)
            self.operators[key] = stats
        stats.observe(duration_us)

    def attach_metadata(self, metadata: StepMetadata) -> None:
        """Attach the device counters reported for this step."""
        if metadata.step != self.step:
            raise ProfilerError(
                f"metadata for step {metadata.step} attached to step {self.step}"
            )
        self.kind = metadata.kind
        self.start_us = metadata.start_us
        self.end_us = metadata.end_us
        self.tpu_idle_us = metadata.tpu_idle_us
        self.mxu_flops = metadata.mxu_flops

    @property
    def elapsed_us(self) -> float:
        return max(0.0, self.end_us - self.start_us)

    @property
    def event_set(self) -> frozenset[tuple[str, str]]:
        """The set of unique events in the step (OLS's Equation 1 input)."""
        return frozenset(self.operators)

    def total_duration_us(self, device: DeviceKind | None = None) -> float:
        """Accumulated operator time, optionally restricted to one device."""
        return sum(
            stats.total_duration_us
            for stats in self.operators.values()
            if device is None or stats.device is device
        )

    def merge(self, other: "StepStats") -> None:
        """Fold a later record's view of the same step into this one."""
        if other.step != self.step:
            raise ProfilerError("cannot merge stats of different steps")
        for key, stats in other.operators.items():
            if key in self.operators:
                self.operators[key].merge(stats)
            else:
                self.operators[key] = OperatorStats(
                    name=stats.name,
                    device=stats.device,
                    count=stats.count,
                    total_duration_us=stats.total_duration_us,
                )
        if other.kind is not None:
            self.kind = other.kind
            self.start_us = other.start_us
            self.end_us = other.end_us
            self.tpu_idle_us = other.tpu_idle_us
            self.mxu_flops = other.mxu_flops


@dataclass
class ProfileRecord:
    """The statistical summary of one profile response.

    This is what the recording thread persists: per-step operator stats
    and the profile window's device metadata. Raw events are dropped.
    """

    index: int
    window_start_us: float
    window_end_us: float
    steps: dict[int, StepStats] = field(default_factory=dict)
    truncated: bool = False
    final: bool = False

    @classmethod
    def from_response(cls, index: int, response: ProfileResponse) -> "ProfileRecord":
        """Reduce a raw profile response into a statistical record."""
        record = cls(
            index=index,
            window_start_us=response.window_start_us,
            window_end_us=response.window_end_us,
            truncated=response.truncated,
            final=response.final,
        )
        for event in response.events:
            step = record.steps.get(event.step)
            if step is None:
                step = StepStats(step=event.step)
                record.steps[event.step] = step
            step.observe(event.name, event.device, event.duration_us)
        for metadata in response.step_metadata:
            step = record.steps.get(metadata.step)
            if step is None:
                step = StepStats(step=metadata.step)
                record.steps[metadata.step] = step
            step.attach_metadata(metadata)
        return record

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def duration_ms(self) -> float:
        return (self.window_end_us - self.window_start_us) / 1000.0

    def estimated_bytes(self) -> float:
        """Approximate serialized size (for the recording thread's writes)."""
        operators = sum(len(step.operators) for step in self.steps.values())
        return 64.0 + 48.0 * self.num_steps + 40.0 * operators
