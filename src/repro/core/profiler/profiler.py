"""TPUPoint-Profiler.

The profiler attaches to a running estimator, and — independently of the
training loop — periodically requests profiles from the TPU through the
gRPC-style profile service, reduces each response to a statistical
record, and (when the analyzer is enabled) hands records to a recording
thread that persists them to cloud storage (Section III-A).

Real TPUPoint uses OS threads; the simulation replaces preemption with a
step hook that fires the profiling thread whenever the requested
interval of *simulated* time has elapsed, which preserves the observable
contract (periodic bounded profile windows covering the entire run,
ending with a final drain at Stop()) while keeping runs deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import obs
from repro.core.profiler.options import ProfilerOptions
from repro.core.profiler.record import ProfileRecord
from repro.core.profiler.recorder import RecordingThread

_REQUESTS_TOTAL = obs.counter(
    "repro_profiler_requests_total", "Profile requests sent to the profile service."
).labels()
_RECORDS_KEPT_TOTAL = obs.counter(
    "repro_profiler_records_kept_total", "Statistical records kept after reduction."
).labels()
_REQUEST_SECONDS = obs.histogram(
    "repro_profiler_request_seconds",
    "Real wall time of one profile request + statistical reduction.",
).labels()
_OVERHEAD_FRACTION = obs.gauge(
    "repro_profiler_overhead_fraction",
    "Real wall time spent inside profiler code over the whole run.",
).labels()


@dataclass(frozen=True)
class ProfilerStats:
    """Work the profiler itself performed over one run.

    The paper's claim that statistical reduction keeps the tool cheap is
    checkable from these numbers: ``events_reduced`` raw events were
    folded into ``operator_entries`` per-step statistics — the
    compression that lets the recording thread keep up.
    """

    requests_served: int
    records_kept: int
    events_reduced: int
    operator_entries: int
    bytes_persisted: float

    @property
    def compression_ratio(self) -> float:
        """Raw events per persisted statistic entry."""
        if self.operator_entries == 0:
            return 0.0
        return self.events_reduced / self.operator_entries
from repro.errors import CircuitOpenError, ProfileServiceError, ProfilerError
from repro.runtime.estimator import TPUEstimator
from repro.runtime.events import StepMetadata
from repro.runtime.rpc import ProfileStub
from repro.runtime.session import TrainingSession

#: Hard ceiling on consecutive final-drain requests. The drain normally
#: converges in a handful of requests; an all-failing fault plan must
#: not hang stop() forever.
_MAX_DRAIN_REQUESTS = 1000

#: Degraded-cadence ceiling: an open circuit stretches the request
#: interval at most this many times its configured value.
_MAX_INTERVAL_SCALE = 8.0


@dataclass
class TPUPointProfiler:
    """Profiles one estimator's training run."""

    estimator: TPUEstimator
    options: ProfilerOptions = field(default_factory=ProfilerOptions)

    def __post_init__(self) -> None:
        self._stub: ProfileStub | None = None
        self._recorder: RecordingThread | None = None
        self._records: list[ProfileRecord] = []
        self._started = False
        self._stopped = False
        self._breakpoint_hit = False
        self._next_request_us = 0.0
        self._record_index = 0
        self._online_scanner = None
        self._online_stream = None
        self._online_steps: list[int] = []
        self._record_hooks: list = []
        self._fault_service = None
        self._crash_injector = None
        self._interval_scale = 1.0
        self._windows_skipped = 0
        self._windows_abandoned = 0
        # Section V overhead accounting, applied to ourselves: real wall
        # time spent inside profiler code vs. the run it observes.
        self._wall_start = 0.0
        self._self_seconds = 0.0

    # --- lifecycle ---------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._started

    @property
    def stopped(self) -> bool:
        return self._stopped

    def start(self, analyzer: bool = True) -> None:
        """Spawn the profiling (and, with ``analyzer``, recording) thread."""
        if self._started:
            raise ProfilerError("profiler already started")
        self._started = True
        self._wall_start = time.perf_counter()
        plan = self.options.fault_plan
        if plan is None:
            self._stub = self.estimator.profile_stub()
        else:
            # Faulty master + resilient client. Both layers are seeded
            # from the plan, so the whole run replays bit-for-bit.
            from repro.faults.inject import FaultyProfileService
            from repro.runtime.resilience import ResilientProfileStub, client_from_config

            self._fault_service = FaultyProfileService(
                self.estimator.profile_service(), plan
            )
            policy, breaker = client_from_config(plan.client)
            self._stub = ResilientProfileStub(
                self._fault_service, policy=policy, breaker=breaker, seed=plan.seed
            )
        if analyzer:
            bucket = self.estimator.bucket if self.options.record_to_storage else None
            journal = None
            if self.options.journal_path is not None:
                from repro.core.profiler.journal import RecordJournal

                journal = RecordJournal(
                    self.options.journal_path, format=self.options.journal_format
                )
            self._recorder = RecordingThread(bucket=bucket, journal=journal)
            if plan is not None:
                from repro.faults.plan import FaultTarget

                if plan.targets(FaultTarget.RECORDER):
                    self._crash_injector = plan.injector(FaultTarget.RECORDER)
        if self.options.online_phases:
            from repro.core.analyzer.ols import OnlineLinearScan
            from repro.core.profiler.streaming import StepStream

            self._online_scanner = OnlineLinearScan(
                threshold=self.options.online_phase_threshold
            )
            self._online_stream = StepStream()
        self._next_request_us = self.options.request_interval_ms * 1000.0
        self.estimator.add_step_hook(self._on_step)

    def add_record_hook(self, hook) -> None:
        """Register a callback invoked with each record as it is kept.

        This is the live hand-off consumers like :mod:`repro.serve` use:
        hooks fire during the run, in record order, before Stop() —
        unlike :attr:`records`, which is a post-hoc batch view.
        """
        self._record_hooks.append(hook)

    @property
    def breakpoint_hit(self) -> bool:
        """Whether a user-specified breakpoint ended profiling early."""
        return self._breakpoint_hit

    def stop(self) -> list[ProfileRecord]:
        """Send the final request(s), drain the log, stop all threads.

        When a breakpoint already ended profiling, stop() simply returns
        what was collected up to that point.
        """
        if not self._started:
            raise ProfilerError("profiler was never started")
        if self._stopped:
            raise ProfilerError("profiler already stopped")
        self._stopped = True
        if self._breakpoint_hit:
            self._publish_overhead()
            return list(self._records)
        began = time.perf_counter()
        with obs.trace("profiler.stop", records=len(self._records)):
            self._drain_and_close()
        self._self_seconds += time.perf_counter() - began
        self._publish_overhead()
        if self._recorder is not None:
            return list(self._recorder.records)
        return list(self._records)

    def _publish_overhead(self) -> None:
        """Expose the profiler's own wall-time share as a gauge."""
        total = time.perf_counter() - self._wall_start
        if total > 0:
            _OVERHEAD_FRACTION.set(min(self._self_seconds / total, 1.0))

    def _drain_and_close(self) -> None:
        # Final drain: keep requesting until the service marks the
        # response final (the session may have produced more than one
        # window's worth of events since the last periodic request).
        # Failed requests leave the service cursor untouched, so the
        # drain simply re-asks; an open circuit is forced to probe — at
        # stop() there is no training left to protect by backing off.
        attempts = 0
        while True:
            attempts += 1
            if attempts > _MAX_DRAIN_REQUESTS:
                raise ProfilerError(
                    f"final drain did not converge after {_MAX_DRAIN_REQUESTS} requests"
                )
            try:
                response = self._request(finished=True)
            except CircuitOpenError:
                breaker = getattr(self._stub, "breaker", None)
                if breaker is not None:
                    breaker.force_probe()
                continue
            except ProfileServiceError as error:
                if not getattr(error, "retryable", False):
                    raise
                continue
            if response.final:
                break
        if self._online_stream is not None:
            for step in self._online_stream.flush():
                self._online_scanner.observe(step)
                self._online_steps.append(step.step)
        if self._recorder is not None:
            self._recorder.close()

    # --- the profiling thread ------------------------------------------------

    def _on_step(self, session: TrainingSession, metadata: StepMetadata) -> None:
        """Step hook standing in for the periodic profiling thread."""
        del metadata
        if self._stopped or self._breakpoint_hit:
            return
        began = time.perf_counter()
        try:
            while session.clock.now_us >= self._next_request_us:
                try:
                    self._request(finished=False)
                except CircuitOpenError:
                    # Degraded cadence: while the circuit is open, space
                    # requests further apart instead of hammering a sick
                    # master. The window is deferred, not lost — the
                    # service cursor never moved.
                    self._windows_skipped += 1
                    self._interval_scale = min(
                        self._interval_scale * 2.0, _MAX_INTERVAL_SCALE
                    )
                except ProfileServiceError as error:
                    if not getattr(error, "retryable", False):
                        raise
                    # Every retry attempt was exhausted; the window stays
                    # pending and the next request re-covers it.
                    self._windows_abandoned += 1
                else:
                    self._interval_scale = 1.0
                self._next_request_us += (
                    self.options.request_interval_ms * 1000.0 * self._interval_scale
                )
            breakpoint_step = self.options.breakpoint_step
            if breakpoint_step is not None and session.global_step >= breakpoint_step:
                self._breakpoint_hit = True
                self._drain_and_close()
        finally:
            self._self_seconds += time.perf_counter() - began

    def _request(self, finished: bool):
        if self._stub is None:
            raise ProfilerError("profiler not started")
        began = time.perf_counter()
        response = self._stub.request_profile(
            max_events=self.options.max_events_per_profile,
            max_duration_ms=self.options.max_profile_duration_ms,
            finished=finished,
        )
        record = ProfileRecord.from_response(self._record_index, response)
        self._record_index += 1
        _REQUESTS_TOTAL.inc()
        if record.num_steps or record.truncated or record.final:
            self._records.append(record)
            _RECORDS_KEPT_TOTAL.inc()
            if self._recorder is not None:
                if self._crash_injector is not None and not self._recorder.crashed:
                    if self._crash_injector.decide() is not None:
                        from repro.faults.inject import count_injected

                        count_injected("recorder", "crash")
                        self._recorder.crash(record)
                self._recorder.submit(record)
            if self._online_stream is not None and record.num_steps:
                for step in self._online_stream.submit(record):
                    self._online_scanner.observe(step)
                    self._online_steps.append(step.step)
            for hook in self._record_hooks:
                hook(record)
        _REQUEST_SECONDS.observe(time.perf_counter() - began)
        return response

    # --- results ---------------------------------------------------------------

    @property
    def records(self) -> list[ProfileRecord]:
        """All statistical records collected so far."""
        return list(self._records)

    @property
    def recorder(self) -> RecordingThread | None:
        """The recording thread, when the analyzer flag enabled one."""
        return self._recorder

    def stats(self) -> ProfilerStats:
        """Aggregate work counters for this profiler."""
        events = 0
        entries = 0
        for record in self._records:
            for step in record.steps.values():
                entries += len(step.operators)
                events += sum(s.count for s in step.operators.values())
        return ProfilerStats(
            requests_served=self._record_index,
            records_kept=len(self._records),
            events_reduced=events,
            operator_entries=entries,
            bytes_persisted=self._recorder.bytes_written if self._recorder else 0.0,
        )

    def fault_report(self) -> dict:
        """What the active fault plan did to this run, and what it cost.

        Returns an empty dict on fault-free runs. Otherwise: injected
        fault counts per boundary, the resilient client's retry/breaker
        counters, and the recorder's crash state.
        """
        if self.options.fault_plan is None:
            return {}
        report: dict = {
            "profile": dict(self._fault_service.injector.injected),
            "windows_skipped": self._windows_skipped,
            "windows_abandoned": self._windows_abandoned,
        }
        stats = getattr(self._stub, "stats", None)
        if callable(stats):
            report["client"] = stats()
        if self._crash_injector is not None:
            report["recorder"] = {
                "crashes": self._crash_injector.total_injected,
                "crashed": bool(self._recorder is not None and self._recorder.crashed),
            }
        return report

    @property
    def online_phase_labels(self) -> dict[int, int]:
        """Step number -> phase label from the *online* linear scan.

        Only populated when ``options.online_phases`` is set; available
        immediately after stop() with no post-processing.
        """
        if self._online_scanner is None:
            raise ProfilerError("online phase tracking was not enabled")
        return dict(zip(self._online_steps, self._online_scanner.labels))

    @property
    def online_phase_count(self) -> int:
        """Number of phases the online scan has identified so far."""
        if self._online_scanner is None:
            raise ProfilerError("online phase tracking was not enabled")
        return self._online_scanner.num_phases
