"""TPUPoint-Profiler options."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.runtime.rpc import MAX_EVENTS_PER_PROFILE, MAX_PROFILE_DURATION_MS


@dataclass(frozen=True)
class ProfilerOptions:
    """Configuration of one TPUPoint-Profiler instance.

    Attributes:
        request_interval_ms: simulated time between profile requests from
            the profiling thread (Section III-A: the thread "periodically
            sends profile requests ... independently of the main
            TensorFlow thread").
        max_events_per_profile: per-response event cap (service clamps to
            1,000,000).
        max_profile_duration_ms: per-response window cap (service clamps
            to 60,000 ms).
        record_to_storage: persist statistical records through the
            recording thread into cloud storage (enabled when the
            analyzer flag is set; otherwise records stay in host memory).
        breakpoint_step: stop profiling once the session reaches this
            global step (Section III-A: the profiling thread sends its
            last request when the application completes *or reaches a
            user-specified breakpoint*). None profiles the entire run.
        online_phases: run the online linear scan *during recording*
            (the "online" in OLS, Section IV-A) so phase labels are
            available the moment profiling stops, with O(1) extra state.
        online_phase_threshold: StepSimilarity threshold for the online
            scan (the paper's default is 70%).
        fault_plan: a :class:`repro.faults.FaultPlan` to inject against
            this run (wraps the profile service, configures the
            resilient client, and can crash the recorder). None runs
            fault-free on the plain stub.
        journal_path: when set, the recording thread also appends every
            record to a crash-safe journal at this path
            (``tpupoint recover`` reads it back).
        journal_format: on-disk encoding of that journal — ``"binary"``
            (default: the columnar block codec with per-block CRC-32)
            or ``"json"`` (the legacy JSONL lines). Recovery
            auto-detects either by magic bytes.
    """

    request_interval_ms: float = 1_000.0
    max_events_per_profile: int = MAX_EVENTS_PER_PROFILE
    max_profile_duration_ms: float = MAX_PROFILE_DURATION_MS
    record_to_storage: bool = True
    breakpoint_step: int | None = None
    online_phases: bool = False
    online_phase_threshold: float = 0.70
    fault_plan: "object | None" = None
    journal_path: str | None = None
    journal_format: str = "binary"

    def __post_init__(self) -> None:
        if self.request_interval_ms <= 0:
            raise ConfigurationError("request_interval_ms must be positive")
        if self.max_events_per_profile <= 0:
            raise ConfigurationError("max_events_per_profile must be positive")
        if self.max_profile_duration_ms <= 0:
            raise ConfigurationError("max_profile_duration_ms must be positive")
        if self.breakpoint_step is not None and self.breakpoint_step <= 0:
            raise ConfigurationError("breakpoint_step must be positive when set")
        if not 0.0 <= self.online_phase_threshold <= 1.0:
            raise ConfigurationError("online_phase_threshold must be in [0, 1]")
        if self.journal_format not in ("binary", "json"):
            raise ConfigurationError(
                f"unknown journal_format {self.journal_format!r}; use binary or json"
            )
