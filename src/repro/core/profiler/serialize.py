"""Profile-record serialization.

The real TPUPoint persists statistical records into Cloud Storage so the
analyzer can run long after training finished, possibly on another
machine. This module provides the equivalent offline path: records
round-trip through a stable JSON schema, one file per record plus a
manifest, so ``TPUPointAnalyzer`` can be fed from disk (the CLI's
``analyze`` subcommand does exactly that).
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path

from repro.core.profiler.record import OperatorStats, ProfileRecord, StepStats
from repro.errors import ProfilerError
from repro.runtime.events import DeviceKind, StepKind

SCHEMA_VERSION = 1


def record_to_dict(record: ProfileRecord) -> dict:
    """A JSON-serializable view of one record."""
    return {
        "schema": SCHEMA_VERSION,
        "index": record.index,
        "window_start_us": record.window_start_us,
        "window_end_us": record.window_end_us,
        "truncated": record.truncated,
        "final": record.final,
        "steps": [
            {
                "step": step.step,
                "kind": step.kind.value if step.kind is not None else None,
                "start_us": step.start_us,
                "end_us": step.end_us,
                "tpu_idle_us": step.tpu_idle_us,
                "mxu_flops": step.mxu_flops,
                "operators": [
                    {
                        "name": stats.name,
                        "device": stats.device.value,
                        "count": stats.count,
                        "total_duration_us": stats.total_duration_us,
                    }
                    for stats in step.operators.values()
                ],
            }
            for step in record.steps.values()
        ],
    }


def canonical_payload(payload: dict) -> str:
    """The canonical JSON encoding checksums are computed over.

    Sorted keys and fixed separators make the encoding stable across a
    JSON round-trip, so a checksum computed at the producer still
    verifies after the payload was parsed and re-encoded.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_checksum(payload: dict) -> int:
    """CRC-32 of the canonical encoding of a record payload."""
    return zlib.crc32(canonical_payload(payload).encode("utf-8"))


def record_checksum(record: ProfileRecord) -> int:
    """End-to-end integrity checksum of one record.

    Producers stamp records with this before hand-off; the fleet service
    and the journal recovery loader recompute it to detect corruption in
    transit or on disk.
    """
    return payload_checksum(record_to_dict(record))


def record_from_dict(payload: dict) -> ProfileRecord:
    """Rebuild a record from its JSON view."""
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise ProfilerError(f"unsupported record schema {schema!r}")
    record = ProfileRecord(
        index=int(payload["index"]),
        window_start_us=float(payload["window_start_us"]),
        window_end_us=float(payload["window_end_us"]),
        truncated=bool(payload.get("truncated", False)),
        final=bool(payload.get("final", False)),
    )
    for step_payload in payload["steps"]:
        step = StepStats(
            step=int(step_payload["step"]),
            kind=StepKind(step_payload["kind"]) if step_payload.get("kind") else None,
            start_us=float(step_payload.get("start_us", 0.0)),
            end_us=float(step_payload.get("end_us", 0.0)),
            tpu_idle_us=float(step_payload.get("tpu_idle_us", 0.0)),
            mxu_flops=float(step_payload.get("mxu_flops", 0.0)),
        )
        for op_payload in step_payload["operators"]:
            device = DeviceKind(op_payload["device"])
            step.operators[(op_payload["name"], device.value)] = OperatorStats(
                name=op_payload["name"],
                device=device,
                count=int(op_payload["count"]),
                total_duration_us=float(op_payload["total_duration_us"]),
            )
        record.steps[step.step] = step
    return record


#: File carrying every record of a binary record store.
BINARY_RECORDS_FILE = "records.bin"

RECORD_FORMATS = ("binary", "json")


def save_records(
    records: list[ProfileRecord], directory: str | Path, format: str = "json"
) -> Path:
    """Write records plus a manifest under ``directory``; returns it.

    ``format="json"`` (the historical layout) writes one JSON file per
    record; ``format="binary"`` writes a single columnar block file
    (:mod:`repro.core.profiler.codec`) — one CRC-checked block per
    record. Either way :func:`load_records` reads the store back via
    the manifest's ``format`` field.
    """
    if format not in RECORD_FORMATS:
        raise ProfilerError(
            f"unknown record format {format!r}; expected one of "
            + "/".join(RECORD_FORMATS)
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if format == "binary":
        from repro.core.profiler import codec

        with open(directory / BINARY_RECORDS_FILE, "wb") as handle:
            handle.write(codec.MAGIC)
            for seq, record in enumerate(records):
                handle.write(codec.encode_block(seq, record))
        manifest = {
            "schema": SCHEMA_VERSION,
            "format": "binary",
            "codec": codec.CODEC_VERSION,
            "num_records": len(records),
            "records": [BINARY_RECORDS_FILE],
        }
    else:
        names = []
        for record in records:
            name = f"record-{record.index:06d}.json"
            with open(directory / name, "w", encoding="utf-8") as handle:
                json.dump(record_to_dict(record), handle)
            names.append(name)
        manifest = {
            "schema": SCHEMA_VERSION,
            "format": "json",
            "num_records": len(records),
            "records": names,
        }
    with open(directory / "manifest.json", "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    return directory


def load_records(directory: str | Path, format: str = "auto") -> list[ProfileRecord]:
    """Load records previously written by :func:`save_records`.

    ``format="auto"`` follows the manifest (stores written before the
    ``format`` field exists are JSON); naming a format instead asserts
    the store matches it, so a pipeline that expects binary records
    fails loudly on a JSON store rather than silently reading it.
    """
    directory = Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise ProfilerError(f"no manifest.json under {directory}")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("schema") != SCHEMA_VERSION:
        raise ProfilerError(f"unsupported manifest schema {manifest.get('schema')!r}")
    found = manifest.get("format", "json")
    if found not in RECORD_FORMATS:
        raise ProfilerError(f"unsupported record format {found!r} in {manifest_path}")
    if format not in RECORD_FORMATS + ("auto",):
        raise ProfilerError(
            f"unknown record format {format!r}; expected auto, "
            + ", or ".join(RECORD_FORMATS)
        )
    if format != "auto" and format != found:
        raise ProfilerError(
            f"records under {directory} are stored as {found}, not {format}"
        )
    records = []
    if found == "binary":
        from repro.core.profiler import codec

        for name in manifest["records"]:
            data = (directory / name).read_bytes()
            if not data.startswith(codec.MAGIC):
                raise ProfilerError(
                    f"{directory / name} lacks the binary record magic"
                )
            view = memoryview(data)
            offset = len(codec.MAGIC)
            while offset < len(view):
                read = codec.read_block(view, offset)
                if read.status != "ok":
                    raise ProfilerError(
                        f"corrupt record store {directory / name}: {read.error}"
                    )
                records.append(read.record)
                offset = read.next_offset
    else:
        for name in manifest["records"]:
            with open(directory / name, encoding="utf-8") as handle:
                records.append(record_from_dict(json.load(handle)))
    records.sort(key=lambda record: record.index)
    return records
